#!/usr/bin/env python3
"""CI shape gate for the committed simulator-core benchmark (BENCH_sim.json).

Validates a micro_sim JSON report. Two modes:

  * committed (default): the report is the repository-root BENCH_sim.json —
    the perf trajectory the active-set core promised. Beyond the shape, this
    asserts the headline claims future PRs must not regress structurally:
    every legacy-vs-active byte-equivalence check passed, the sweep covers
    multiple sizes / loads / shard counts, at least one n >= 65536
    configuration ran (the table-free-policy scale target), and at least one
    n >= 16384 row at the lowest swept load shows >= 10x speedup over the
    legacy full-scan core.
  * --smoke: the report came from a fresh small-n CI run used as a
    correctness + JSON-shape smoke; only the shape and the equivalence
    checks are gated — never timings, speedups, or sweep extents, which
    depend on the runner.

Exits 1 listing every failed check — never just the first.
"""
import argparse
import json
import sys

TOP_KEYS = {"bench", "unit", "pattern", "warmup_cycles", "measure_cycles",
            "drain_cycles", "results"}
ROW_KEYS = {"topology", "n", "hosts", "load_gbps_per_host", "sim_threads",
            "cycles", "wall_ms", "cycles_per_sec"}
LEGACY_KEYS = {"legacy_wall_ms", "legacy_cycles_per_sec", "speedup"}

SPEEDUP_FLOOR = 10.0
SCALE_N = 65536
SPEEDUP_N = 16384

errors = []


def fail(msg):
    errors.append(msg)


def row_name(row):
    return (f"(n={row.get('n')}, load={row.get('load_gbps_per_host')}, "
            f"threads={row.get('sim_threads')})")


def check_shape(path, report):
    if set(report) != TOP_KEYS:
        fail(f"{path}: top-level keys {sorted(report)} != {sorted(TOP_KEYS)}")
        return []
    if report["bench"] != "micro_sim":
        fail(f"{path}: bench {report['bench']!r} != 'micro_sim'")
    if report["unit"] != "cycles_per_sec":
        fail(f"{path}: unit {report['unit']!r} != 'cycles_per_sec'")
    rows = report["results"]
    if not rows:
        fail(f"{path}: empty results array")
        return []
    for row in rows:
        missing = sorted(ROW_KEYS - set(row))
        if missing:
            fail(f"{path}: row {row_name(row)} missing keys {missing}")
            continue
        if row["cycles"] <= 0 or row["cycles_per_sec"] <= 0:
            fail(f"{path}: row {row_name(row)} has non-positive throughput")
        # Legacy comparison fields travel as a unit; a partial set means the
        # bench row logic drifted.
        present = LEGACY_KEYS & set(row)
        if present and present != LEGACY_KEYS:
            fail(f"{path}: row {row_name(row)} has only {sorted(present)} of "
                 f"the legacy-comparison keys {sorted(LEGACY_KEYS)}")
        # 'check' rides with the legacy comparison: the byte-identical
        # SimResult replay. Any value but "ok" is a correctness failure.
        if "check" in row and row["check"] != "ok":
            fail(f"{path}: row {row_name(row)} check={row['check']!r}")
    return rows


def check_committed(path, rows):
    ns = {row["n"] for row in rows}
    loads = {row["load_gbps_per_host"] for row in rows}
    threads = {row["sim_threads"] for row in rows}
    if len(ns) < 2:
        fail(f"{path}: sweep covers a single size {sorted(ns)}; need >= 2")
    if len(loads) < 2:
        fail(f"{path}: sweep covers a single load {sorted(loads)}; need >= 2")
    if len(threads) < 2:
        fail(f"{path}: sweep covers a single shard count {sorted(threads)}; "
             "need >= 2")
    if not any(row["n"] >= SCALE_N for row in rows):
        fail(f"{path}: no n >= {SCALE_N} row — the scale target is gone")

    checked = [row for row in rows if "check" in row]
    if not checked:
        fail(f"{path}: no row carries a legacy byte-equivalence check")

    low_load = min(loads)
    headline = [row for row in rows
                if row["n"] >= SPEEDUP_N
                and row["load_gbps_per_host"] == low_load
                and "speedup" in row]
    if not headline:
        fail(f"{path}: no n >= {SPEEDUP_N} row at the lowest load ({low_load}) "
             "compares against the legacy core")
    elif max(row["speedup"] for row in headline) < SPEEDUP_FLOOR:
        best = max(headline, key=lambda row: row["speedup"])
        fail(f"{path}: best low-load speedup at n >= {SPEEDUP_N} is "
             f"{best['speedup']:.2f}x {row_name(best)}; the active core "
             f"promises >= {SPEEDUP_FLOOR:.0f}x")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="micro_sim JSON report to validate")
    parser.add_argument("--smoke", action="store_true",
                        help="fresh CI run: gate shape + equivalence checks "
                             "only, no timing or sweep-extent gates")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"sim-bench-gate: FAIL {args.report}: cannot load JSON: {e}",
              file=sys.stderr)
        return 1

    rows = check_shape(args.report, report)
    if rows and not args.smoke:
        check_committed(args.report, rows)

    if errors:
        print(f"sim-bench-gate: {len(errors)} check(s) failed", file=sys.stderr)
        for e in errors:
            print(f"  FAIL {e}", file=sys.stderr)
        return 1
    mode = "smoke" if args.smoke else "committed"
    print(f"sim-bench-gate: all checks passed ({mode}, {len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
