#!/usr/bin/env python3
"""CI shape gate for the committed simulator-core benchmark (BENCH_sim.json).

Validates a micro_sim JSON report. Two modes:

  * committed (default): the report is the repository-root BENCH_sim.json —
    the perf trajectory the active-set core promised. Beyond the shape, this
    asserts the headline claims future PRs must not regress structurally:
    every legacy-vs-active byte-equivalence check passed, the sweep covers
    multiple sizes / loads / shard counts, at least one n >= 65536
    configuration ran (the table-free-policy scale target), and at least one
    n >= 16384 row at the lowest swept load shows >= 10x speedup over the
    legacy full-scan core.
  * --smoke: the report came from a fresh small-n CI run used as a
    correctness + JSON-shape smoke; only the shape and the equivalence
    checks are gated — never timings, speedups, or sweep extents, which
    depend on the runner.

Exits 1 listing every failed check — never just the first.
"""
import sys

from bench_gate import BenchGate

TOP_KEYS = {"bench", "unit", "pattern", "warmup_cycles", "measure_cycles",
            "drain_cycles", "results"}
ROW_KEYS = {"topology", "n", "hosts", "load_gbps_per_host", "sim_threads",
            "cycles", "wall_ms", "cycles_per_sec"}
LEGACY_KEYS = {"legacy_wall_ms", "legacy_cycles_per_sec", "speedup"}

SPEEDUP_FLOOR = 10.0
SCALE_N = 65536
SPEEDUP_N = 16384


def row_name(row):
    return (f"(n={row.get('n')}, load={row.get('load_gbps_per_host')}, "
            f"threads={row.get('sim_threads')})")


def check_row(gate, path, row):
    if row["cycles"] <= 0 or row["cycles_per_sec"] <= 0:
        gate.fail(f"{path}: row {row_name(row)} has non-positive throughput")
    # Legacy comparison fields travel as a unit; a partial set means the
    # bench row logic drifted. The 'check' field (gated by bench_gate) rides
    # with them: the byte-identical SimResult replay.
    present = LEGACY_KEYS & set(row)
    if present and present != LEGACY_KEYS:
        gate.fail(f"{path}: row {row_name(row)} has only {sorted(present)} of "
                  f"the legacy-comparison keys {sorted(LEGACY_KEYS)}")


def check_committed(gate, path, rows):
    ns = {row["n"] for row in rows}
    loads = {row["load_gbps_per_host"] for row in rows}
    threads = {row["sim_threads"] for row in rows}
    if len(ns) < 2:
        gate.fail(f"{path}: sweep covers a single size {sorted(ns)}; need >= 2")
    if len(loads) < 2:
        gate.fail(f"{path}: sweep covers a single load {sorted(loads)}; "
                  "need >= 2")
    if len(threads) < 2:
        gate.fail(f"{path}: sweep covers a single shard count "
                  f"{sorted(threads)}; need >= 2")
    if not any(row["n"] >= SCALE_N for row in rows):
        gate.fail(f"{path}: no n >= {SCALE_N} row — the scale target is gone")

    checked = [row for row in rows if "check" in row]
    if not checked:
        gate.fail(f"{path}: no row carries a legacy byte-equivalence check")

    low_load = min(loads)
    headline = [row for row in rows
                if row["n"] >= SPEEDUP_N
                and row["load_gbps_per_host"] == low_load
                and "speedup" in row]
    if not headline:
        gate.fail(f"{path}: no n >= {SPEEDUP_N} row at the lowest load "
                  f"({low_load}) compares against the legacy core")
    elif max(row["speedup"] for row in headline) < SPEEDUP_FLOOR:
        best = max(headline, key=lambda row: row["speedup"])
        gate.fail(f"{path}: best low-load speedup at n >= {SPEEDUP_N} is "
                  f"{best['speedup']:.2f}x {row_name(best)}; the active core "
                  f"promises >= {SPEEDUP_FLOOR:.0f}x")


GATE = BenchGate(name="sim", bench="micro_sim", unit="cycles_per_sec",
                 top_keys=TOP_KEYS, row_keys=ROW_KEYS, row_name=row_name,
                 check_row=check_row, check_committed=check_committed,
                 doc=__doc__,
                 smoke_help="fresh CI run: gate shape + equivalence checks "
                            "only, no timing or sweep-extent gates")

if __name__ == "__main__":
    sys.exit(GATE.run())
