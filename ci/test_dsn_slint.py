#!/usr/bin/env python3
"""Self-tests for ci/dsn_slint.py, run as a ctest (`slint.selftest`) and in
the static-analysis CI job.

Every check is demonstrated both FIRING (fixture named fire_*) and SILENCED
(fixture named ok_*), per the acceptance bar for the lint suite; the lexer
tests pin the property the whole suite rests on — tokens in comments and
strings never fire.
"""
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

CI_DIR = Path(__file__).resolve().parent
FIXTURES = CI_DIR / "slint_fixtures"
REPO_ROOT = CI_DIR.parent

sys.path.insert(0, str(CI_DIR))
import dsn_slint  # noqa: E402


def run_fixture(name):
    """Lint one fixture file; returns (findings, suppression_errors)."""
    path = FIXTURES / name
    return dsn_slint.check_file(path, path.name, path.read_text())


def checks_fired(name):
    findings, errors = run_fixture(name)
    return sorted({f.check for f in findings} | {e.check for e in errors})


class StripLexerTest(unittest.TestCase):
    def test_preserves_line_structure(self):
        text = (FIXTURES / "ok_tokens_in_prose.cpp").read_text()
        stripped = dsn_slint.strip_comments_and_strings(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))

    def test_strips_line_and_block_comments(self):
        stripped = dsn_slint.strip_comments_and_strings(
            "int a; // std::mutex\n/* rand( */ int b;\n")
        self.assertNotIn("mutex", stripped)
        self.assertNotIn("rand", stripped)
        self.assertIn("int a;", stripped)
        self.assertIn("int b;", stripped)

    def test_strips_string_and_char_literals(self):
        stripped = dsn_slint.strip_comments_and_strings(
            'const char* s = "std::mutex"; char c = \'x\';\n')
        self.assertNotIn("std::mutex", stripped)
        self.assertNotIn("'x'", stripped)
        compact = stripped.replace(" ", "")
        self.assertIn('""', compact)   # quotes kept, contents blanked
        self.assertIn("''", compact)

    def test_strips_raw_strings(self):
        stripped = dsn_slint.strip_comments_and_strings(
            'auto r = R"(srand(1) "quoted" std::mutex)";\nint keep;\n')
        self.assertNotIn("srand", stripped)
        self.assertNotIn("mutex", stripped)
        self.assertIn("int keep;", stripped)

    def test_escaped_quote_does_not_derail(self):
        stripped = dsn_slint.strip_comments_and_strings(
            '"a\\"b"; std::mutex m;\n')
        self.assertIn("std::mutex", stripped)


class CheckFiringTest(unittest.TestCase):
    """Each check fires on its fire_* fixture, at the right place."""

    def test_unordered_in_deterministic(self):
        findings, errors = run_fixture("fire_unordered.cpp")
        self.assertEqual(errors, [])
        self.assertEqual({f.check for f in findings},
                         {"no-unordered-in-deterministic"})
        # The #include and the declaration both fire.
        self.assertEqual(len(findings), 2)
        self.assertEqual(findings[0].line, 4)

    def test_seeded_rng_only(self):
        findings, _ = run_fixture("fire_rng.cpp")
        self.assertEqual({f.check for f in findings}, {"seeded-rng-only"})
        # random_device, mt19937, rand( — three distinct tokens.
        self.assertEqual(len(findings), 3)

    def test_annotated_mutex_only(self):
        findings, _ = run_fixture("fire_mutex.cpp")
        self.assertEqual({f.check for f in findings}, {"annotated-mutex-only"})
        # std::mutex field + std::lock_guard and its std::mutex template arg.
        self.assertEqual(len(findings), 3)

    def test_obs_args_pure(self):
        findings, _ = run_fixture("fire_obs_args.cpp")
        self.assertEqual({f.check for f in findings}, {"obs-args-pure"})
        self.assertEqual(len(findings), 2)  # ++packets and packets = 7

    def test_header_hygiene(self):
        findings, _ = run_fixture("fire_header.hpp")
        self.assertEqual({f.check for f in findings}, {"header-hygiene"})
        messages = " ".join(f.message for f in findings)
        self.assertIn("#pragma once", messages)
        self.assertIn("using namespace", messages)


class SuppressionTest(unittest.TestCase):
    """Each check is silenced by its documented suppression syntax."""

    def test_line_suppression_unordered(self):
        self.assertEqual(checks_fired("ok_unordered_suppressed.cpp"), [])

    def test_line_suppression_rng(self):
        self.assertEqual(checks_fired("ok_rng_suppressed.cpp"), [])

    def test_file_suppression_mutex(self):
        self.assertEqual(checks_fired("ok_mutex_suppressed.cpp"), [])

    def test_line_suppression_obs_args(self):
        self.assertEqual(checks_fired("ok_obs_args_suppressed.cpp"), [])

    def test_unmarked_file_out_of_scope(self):
        self.assertEqual(checks_fired("ok_unordered_unmarked.cpp"), [])

    def test_pure_obs_args_clean(self):
        self.assertEqual(checks_fired("ok_obs_args_pure.cpp"), [])

    def test_clean_header(self):
        self.assertEqual(checks_fired("ok_header.hpp"), [])

    def test_tokens_in_prose_never_fire(self):
        self.assertEqual(checks_fired("ok_tokens_in_prose.cpp"), [])

    def test_bad_suppressions_are_findings_and_do_not_silence(self):
        findings, errors = run_fixture("fire_bad_suppression.cpp")
        self.assertEqual({e.check for e in errors}, {"suppression-syntax"})
        self.assertEqual(len(errors), 2)  # missing reason + unknown check
        # The malformed suppressions must not silence the real finding.
        self.assertEqual({f.check for f in findings}, {"annotated-mutex-only"})


class IncludeGraphTest(unittest.TestCase):
    """Cross-file pass: include-cycle and include-layering."""

    @staticmethod
    def graph(files):
        return dsn_slint.check_include_graph(files)

    @staticmethod
    def load(*names):
        return {name: (FIXTURES / name).read_text() for name in names}

    def test_mutual_include_cycle_fires_once(self):
        findings = self.graph(self.load("fire_include_cycle_a.hpp",
                                        "fire_include_cycle_b.hpp"))
        self.assertEqual([f.check for f in findings], ["include-cycle"])
        # Reported once, anchored at the lexicographically-first member,
        # with the whole loop spelled out.
        self.assertEqual(str(findings[0].path), "fire_include_cycle_a.hpp")
        self.assertIn("fire_include_cycle_a.hpp -> fire_include_cycle_b.hpp "
                      "-> fire_include_cycle_a.hpp", findings[0].message)

    def test_acyclic_pair_is_clean(self):
        self.assertEqual(self.graph(self.load("ok_include_cycle_a.hpp",
                                              "ok_include_cycle_b.hpp")), [])

    def test_self_include_fires(self):
        findings = self.graph({"a.hpp": '#include "a.hpp"\n'})
        self.assertEqual([f.check for f in findings], ["include-cycle"])

    def test_three_file_cycle_reported_once(self):
        files = {"a.hpp": '#include "b.hpp"\n',
                 "b.hpp": '#include "c.hpp"\n',
                 "c.hpp": '#include "a.hpp"\n'}
        findings = self.graph(files)
        self.assertEqual(len(findings), 1)
        self.assertIn("a.hpp -> b.hpp -> c.hpp -> a.hpp",
                      findings[0].message)

    def test_include_in_comment_never_creates_an_edge(self):
        files = {"a.hpp": '// #include "b.hpp"\n',
                 "b.hpp": '#include "a.hpp"\n'}
        self.assertEqual(self.graph(files), [])

    def test_cycle_suppressible_with_reason(self):
        files = {
            "a.hpp": ('// dsn-slint-ignore(include-cycle): legacy pair, '
                      'tracked in ROADMAP\n#include "b.hpp"\n'),
            "b.hpp": '#include "a.hpp"\n',
        }
        self.assertEqual(self.graph(files), [])

    def test_layering_violation_fires_on_written_path(self):
        # The sim/ header is NOT in the scanned set: layering is judged on
        # the written `dsn/<module>/` spelling alone.
        files = {"src/dsn/graph/g.hpp":
                 '#pragma once\n#include "dsn/sim/packet.hpp"\n'}
        findings = self.graph(files)
        self.assertEqual([f.check for f in findings], ["include-layering"])
        self.assertEqual(findings[0].line, 2)
        self.assertIn("`graph` may not depend on `sim`", findings[0].message)

    def test_layering_transitive_closure_allowed(self):
        files = {"src/dsn/check/v.cpp":
                 '#include "dsn/common/types.hpp"\n'
                 '#include "dsn/routing/route.hpp"\n'}
        self.assertEqual(self.graph(files), [])

    def test_obs_is_cross_cutting_but_restricted_itself(self):
        ok = {"src/dsn/common/thread_pool.cpp":
              '#include "dsn/obs/obs.hpp"\n'}
        self.assertEqual(self.graph(ok), [])
        bad = {"src/dsn/obs/trace.cpp": '#include "dsn/graph/graph.hpp"\n'}
        findings = self.graph(bad)
        self.assertEqual([f.check for f in findings], ["include-layering"])

    def test_non_module_files_exempt_from_layering(self):
        files = {"tools/dsn_lint.cpp": '#include "dsn/sim/packet.hpp"\n',
                 "tests/test_sim.cpp": '#include "dsn/analysis/factory.hpp"\n'}
        self.assertEqual(self.graph(files), [])

    def test_layer_table_matches_reality(self):
        # Every module directory under src/dsn/ must appear in LAYER_DEPS,
        # so a new module cannot silently dodge the layering gate.
        modules = sorted(p.name for p in (REPO_ROOT / "src" / "dsn").iterdir()
                         if p.is_dir())
        self.assertEqual(modules, sorted(dsn_slint.LAYER_DEPS))


class CliContractTest(unittest.TestCase):
    """Exit codes and report shape of the command-line entry point."""

    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, str(CI_DIR / "dsn_slint.py"), *args],
            capture_output=True, text=True)

    def test_firing_fixture_fails_strict_passes_advisory(self):
        target = str(FIXTURES / "fire_mutex.cpp")
        self.assertEqual(self.run_cli(target).returncode, 0)
        strict = self.run_cli("--strict", target)
        self.assertEqual(strict.returncode, 1)
        self.assertIn("annotated-mutex-only", strict.stderr)

    def test_bad_suppression_fails_even_without_strict(self):
        result = self.run_cli(str(FIXTURES / "fire_bad_suppression.cpp"))
        self.assertEqual(result.returncode, 1)
        self.assertIn("suppression-syntax", result.stderr)

    def test_json_report_shape(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "report.json"
            self.run_cli("--strict", "--json", str(out),
                         str(FIXTURES / "fire_unordered.cpp"))
            report = json.loads(out.read_text())
        self.assertEqual(sorted(report), ["checked_files", "findings", "strict"])
        self.assertEqual(report["checked_files"], 1)
        self.assertTrue(report["strict"])
        for finding in report["findings"]:
            self.assertEqual(sorted(finding),
                             ["check", "file", "line", "message"])
            self.assertEqual(finding["check"], "no-unordered-in-deterministic")

    def test_list_checks_names_every_check(self):
        result = self.run_cli("--list-checks")
        self.assertEqual(result.returncode, 0)
        for name in dsn_slint.CHECKS:
            self.assertIn(name, result.stdout)

    def test_unknown_path_is_usage_error(self):
        self.assertEqual(self.run_cli("/no/such/dir").returncode, 2)

    def test_repo_tree_is_clean(self):
        # The gate CI enforces: src/ and tools/ hold zero findings.
        result = self.run_cli("--strict", "--root", str(REPO_ROOT),
                              str(REPO_ROOT / "src"), str(REPO_ROOT / "tools"))
        self.assertEqual(result.returncode, 0,
                         f"tree not slint-clean:\n{result.stderr}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
