#!/usr/bin/env python3
"""Self-test for the shared committed-bench gate plumbing (bench_gate.py)
and the four gates built on it. Stdlib-only; wired into ctest as
bench_gate.selftest alongside slint.selftest.

Covers the BenchGate framework (shape gating, check-field verdicts, hook
dispatch, smoke-vs-committed modes, exit codes, output contract) against a
toy gate, then runs each real gate against its committed repository-root
baseline and against synthetic violations of its headline invariants.
"""
import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

from bench_gate import BenchGate  # noqa: E402
import check_bench_flow  # noqa: E402
import check_bench_graph  # noqa: E402
import check_bench_opt  # noqa: E402
import check_bench_sim  # noqa: E402


def toy_gate(**overrides):
    committed_calls = []

    def check_committed(gate, path, rows):
        committed_calls.append(len(rows))
        if len(rows) < 2:
            gate.fail(f"{path}: need >= 2 rows")

    def check_row(gate, path, row):
        if row["value"] <= 0:
            gate.fail(f"{path}: row {gate.row_name(row)} non-positive")

    kwargs = dict(name="toy", bench="micro_toy", unit="widgets_per_sec",
                  top_keys={"bench", "unit", "results"},
                  row_keys={"name", "value"},
                  row_name=lambda row: f"(name={row.get('name')})",
                  check_row=check_row, check_committed=check_committed)
    kwargs.update(overrides)
    gate = BenchGate(**kwargs)
    gate.committed_calls = committed_calls
    return gate


def good_report():
    return {"bench": "micro_toy", "unit": "widgets_per_sec",
            "results": [{"name": "a", "value": 1},
                        {"name": "b", "value": 2, "check": "ok"}]}


def run_gate(gate, report, *args):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(report, f)
        path = f.name
    out, err = io.StringIO(), io.StringIO()
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = gate.run([path, *args])
    finally:
        os.unlink(path)
    return code, out.getvalue(), err.getvalue()


class BenchGateFrameworkTest(unittest.TestCase):
    def test_pass_committed(self):
        gate = toy_gate()
        code, out, err = run_gate(gate, good_report())
        self.assertEqual(code, 0, err)
        self.assertIn("toy-bench-gate: all checks passed (committed, 2 rows)",
                      out)
        self.assertEqual(gate.committed_calls, [2])

    def test_smoke_skips_committed_hook(self):
        gate = toy_gate()
        report = good_report()
        report["results"] = report["results"][:1]  # would fail committed
        code, out, _ = run_gate(gate, report, "--smoke")
        self.assertEqual(code, 0)
        self.assertIn("(smoke, 1 rows)", out)
        self.assertEqual(gate.committed_calls, [])

    def test_committed_hook_failure(self):
        gate = toy_gate()
        report = good_report()
        report["results"] = report["results"][:1]
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("need >= 2 rows", err)

    def test_top_key_mismatch_reports_and_stops(self):
        gate = toy_gate()
        report = good_report()
        report["extra"] = 1
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("top-level keys", err)
        self.assertEqual(gate.committed_calls, [])

    def test_wrong_bench_and_unit(self):
        gate = toy_gate()
        report = good_report()
        report["bench"] = "micro_other"
        report["unit"] = "other"
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("bench 'micro_other' != 'micro_toy'", err)
        self.assertIn("unit 'other' != 'widgets_per_sec'", err)

    def test_empty_results(self):
        gate = toy_gate()
        report = good_report()
        report["results"] = []
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("empty results array", err)

    def test_missing_row_keys_skip_row_hooks(self):
        gate = toy_gate()
        report = good_report()
        # Missing 'value' AND a failing check verdict: the row must report
        # the missing keys once, not crash inside check_row.
        report["results"][0] = {"name": "a", "check": "bad"}
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("missing keys ['value']", err)
        self.assertNotIn("check='bad'", err)

    def test_check_verdict_gated_in_smoke_mode(self):
        gate = toy_gate()
        report = good_report()
        report["results"][1]["check"] = "mismatch"
        code, _, err = run_gate(gate, report, "--smoke")
        self.assertEqual(code, 1)
        self.assertIn("check='mismatch'", err)

    def test_row_hook_failure(self):
        gate = toy_gate()
        report = good_report()
        report["results"][0]["value"] = 0
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("non-positive", err)

    def test_all_failures_listed(self):
        gate = toy_gate()
        report = good_report()
        report["results"][0]["value"] = 0
        report["results"][1]["check"] = "bad"
        code, _, err = run_gate(gate, report)
        self.assertEqual(code, 1)
        self.assertIn("2 check(s) failed", err)

    def test_unreadable_report(self):
        gate = toy_gate()
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = gate.run(["/nonexistent/bench.json"])
        self.assertEqual(code, 1)
        self.assertIn("cannot load JSON", err.getvalue())


class CommittedBaselineTest(unittest.TestCase):
    """Every real gate must pass on its committed repository-root baseline
    (the same invocation CI runs), except BENCH_opt.json which may not exist
    yet in a fresh checkout mid-PR — its gate is exercised synthetically
    below."""

    def run_real(self, module, baseline, *args):
        path = os.path.join(REPO_ROOT, baseline)
        if not os.path.exists(path):
            self.skipTest(f"{baseline} not committed")
        out, err = io.StringIO(), io.StringIO()
        module.GATE.errors = []
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = module.GATE.run([path, *args])
        self.assertEqual(code, 0, err.getvalue())
        self.assertIn("all checks passed", out.getvalue())

    def test_sim_baseline(self):
        self.run_real(check_bench_sim, "BENCH_sim.json")

    def test_flow_baseline(self):
        self.run_real(check_bench_flow, "BENCH_flow.json")

    def test_graph_baseline(self):
        self.run_real(check_bench_graph, "BENCH_graph.json")

    def test_opt_baseline(self):
        self.run_real(check_bench_opt, "BENCH_opt.json")


class OptGateInvariantTest(unittest.TestCase):
    """Synthetic violations of the opt gate's front invariants."""

    def make_report(self):
        def point(cable, aspl):
            return {"cable_m": cable, "aspl": aspl,
                    "max_normalized_load": 1.0, "throughput_bound": 1.0,
                    "pass": 0, "iteration": 0}

        def row(family, n, check=None):
            r = {"topology": f"{family}-{n}", "family": family, "n": n,
                 "links": 10, "shortcuts": 4, "degree_min": 2,
                 "degree_max": 4, "degree_avg": 3.0, "sample_sources": 16,
                 "seed_point": point(100.0, 5.0),
                 "front": [point(90.0, 5.0), point(95.0, 4.5)],
                 "archive_size": 2, "proposals": 10, "accepted": 5,
                 "invalid": 0, "resweeps": 1, "full_sweeps": 4,
                 "beats_seed": True, "best_cable_m_at_seed_aspl": 90.0,
                 "cable_saved_pct": 10.0, "best_aspl": 4.5, "wall_ms": 1.0,
                 "proposals_per_sec": 10000.0}
            if check is not None:
                r["check"] = check
            return r

        return {"bench": "micro_opt", "unit": "proposals_per_sec",
                "passes": 1, "iterations": 10, "plateau": 5, "seed": 1,
                "results": [row("dsn", 1024, check="ok"),
                            row("dln", 65536)]}

    def run_opt(self, report, *args):
        check_bench_opt.GATE.errors = []
        gate = copy.copy(check_bench_opt.GATE)
        gate.errors = []
        return run_gate(gate, report, *args)

    def test_synthetic_committed_pass(self):
        code, _, err = self.run_opt(self.make_report())
        self.assertEqual(code, 0, err)

    def test_non_monotone_front(self):
        report = self.make_report()
        report["results"][0]["front"][1]["aspl"] = 5.0  # not descending
        code, _, err = self.run_opt(report)
        self.assertEqual(code, 1)
        self.assertIn("not a strict staircase", err)

    def test_front_worse_than_seed(self):
        report = self.make_report()
        for row in report["results"]:
            row["front"] = [{"cable_m": 101.0, "aspl": 4.9,
                             "max_normalized_load": 1.0,
                             "throughput_bound": 1.0, "pass": 0,
                             "iteration": 0}]
            row["best_cable_m_at_seed_aspl"] = 100.0
        code, _, err = self.run_opt(report)
        self.assertEqual(code, 1)
        self.assertIn("no point covering the seed", err)

    def test_empty_front(self):
        report = self.make_report()
        report["results"][0]["front"] = []
        code, _, err = self.run_opt(report)
        self.assertEqual(code, 1)
        self.assertIn("empty Pareto front", err)

    def test_missing_scale_row(self):
        report = self.make_report()
        report["results"][1]["n"] = 4096
        report["results"][1]["topology"] = "dln-4096"
        code, _, err = self.run_opt(report)
        self.assertEqual(code, 1)
        self.assertIn("no n >= 65536 row", err)
        # ... but a smoke run does not gate sweep extents.
        code, _, err = self.run_opt(report, "--smoke")
        self.assertEqual(code, 0, err)


if __name__ == "__main__":
    unittest.main()
