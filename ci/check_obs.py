#!/usr/bin/env python3
"""CI shape gate for the dsn::obs observability surface.

Checks machine-readable outputs against the committed ci/obs_schema.json:

  * `dsn-lint stats --json` (--stats): top-level key set, stage names and
    order, required metric names and kinds, counters monotone across stage
    snapshots, no violations.
  * `micro_msbfs --json` (--msbfs): report header/row key sets, the MS-BFS
    batch width, and the real worker count in the header
    (--expect-threads pins it when the run passed --threads N).
  * Chrome traces (--trace, repeatable; --drill-trace additionally requires
    the fault-drill span names): valid JSON, per-tid balanced B/E pairs,
    known phase letters, counter samples numeric, pool workers named.

Exits 1 listing every failed check — never just the first — so a CI log
shows the whole shape drift at once.
"""
import argparse
import collections
import json
import sys

errors = []


def fail(msg):
    errors.append(msg)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot load JSON: {e}")
        return None


def check_stats(path, schema):
    report = load(path)
    if report is None:
        return
    if sorted(report) != sorted(schema["top_keys"]):
        fail(f"{path}: top-level keys {sorted(report)} != {sorted(schema['top_keys'])}")
        return
    if report["obs_enabled"] is not True:
        fail(f"{path}: obs_enabled is {report['obs_enabled']}, expected true")
    if report["violations"]:
        fail(f"{path}: dsn-lint reported violations: {report['violations']}")

    stage_names = [s["stage"] for s in report["stages"]]
    if stage_names != schema["stages"]:
        fail(f"{path}: stages {stage_names} != {schema['stages']}")

    final = {m["name"]: m for m in report["metrics"]}
    for name, kind in schema["required_metrics"].items():
        if name not in final:
            fail(f"{path}: required metric {name} missing from final snapshot")
        elif final[name]["kind"] != kind:
            fail(f"{path}: metric {name} has kind {final[name]['kind']}, expected {kind}")

    # Counters must be non-decreasing from stage to stage: a drop means a
    # snapshot raced a reset or the shard merge lost a shard.
    monotone = set(schema["monotone_kinds"])
    previous = {}
    for stage in report["stages"]:
        for m in stage["metrics"]:
            if m["kind"] not in monotone:
                continue
            before = previous.get(m["name"], 0)
            if m["value"] < before:
                fail(f"{path}: counter {m['name']} fell {before} -> {m['value']} "
                     f"entering stage {stage['stage']}")
            previous[m["name"]] = m["value"]


def check_msbfs(path, schema, expect_threads):
    report = load(path)
    if report is None:
        return
    if sorted(report) != sorted(schema["top_keys"]):
        fail(f"{path}: top-level keys {sorted(report)} != {sorted(schema['top_keys'])}")
        return
    if report["batch"] != schema["batch"]:
        fail(f"{path}: batch {report['batch']} != {schema['batch']}")
    threads = report["threads"]
    if not isinstance(threads, int) or threads < 1:
        fail(f"{path}: threads header {threads!r} is not a positive integer")
    if expect_threads is not None and threads != expect_threads:
        fail(f"{path}: threads header {threads} != --threads {expect_threads} "
             "the bench was invoked with")
    if not report["results"]:
        fail(f"{path}: empty results array")
    for row in report["results"]:
        missing = [k for k in schema["row_keys"] if k not in row]
        if missing:
            fail(f"{path}: result row for {row.get('topology')} missing {missing}")
        if row.get("check") != "ok":
            fail(f"{path}: row {row.get('topology')} check={row.get('check')!r}")


def check_trace(path, schema, required_spans):
    doc = load(path)
    if doc is None:
        return
    events = doc.get("traceEvents")
    if not events:
        fail(f"{path}: no traceEvents")
        return

    known = set(schema["phases"])
    depth = collections.defaultdict(int)
    span_names = set()
    thread_names = []
    for e in events:
        ph = e.get("ph")
        if ph not in known:
            fail(f"{path}: unknown phase {ph!r} in event {e.get('name')!r}")
        if ph in ("B", "X"):
            span_names.add(e["name"])
        if ph == "B":
            depth[e["tid"]] += 1
        elif ph == "E":
            depth[e["tid"]] -= 1
            if depth[e["tid"]] < 0:
                fail(f"{path}: E without matching B on tid {e['tid']} "
                     f"({e.get('name')!r})")
                depth[e["tid"]] = 0
        elif ph == "C" and not isinstance(e.get("args", {}).get("value"), (int, float)):
            fail(f"{path}: counter sample {e.get('name')!r} has no numeric args.value")
        elif ph == "M" and e.get("name") == "thread_name":
            thread_names.append(e.get("args", {}).get("name", ""))

    for tid, d in sorted(depth.items()):
        if d != 0:
            fail(f"{path}: {d} unclosed span(s) on tid {tid}")
    for name in required_spans:
        if name not in span_names:
            fail(f"{path}: required span {name!r} never emitted "
                 f"(saw {sorted(span_names)})")
    prefix = schema["required_thread_name_prefix"]
    if not any(n.startswith(prefix) for n in thread_names):
        fail(f"{path}: no thread named {prefix}* (saw {thread_names})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", required=True)
    parser.add_argument("--stats", help="dsn-lint stats --json output")
    parser.add_argument("--msbfs", help="micro_msbfs --json output")
    parser.add_argument("--expect-threads", type=int,
                        help="worker count the msbfs bench was pinned to")
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace to balance-check (repeatable)")
    parser.add_argument("--drill-trace", action="append", default=[],
                        help="fault-drill Chrome trace (also requires drill spans)")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    if args.stats:
        check_stats(args.stats, schema["stats"])
    if args.msbfs:
        check_msbfs(args.msbfs, schema["msbfs"], args.expect_threads)
    for path in args.trace:
        check_trace(path, schema["trace"], [])
    for path in args.drill_trace:
        check_trace(path, schema["trace"], schema["trace"]["required_drill_spans"])

    if errors:
        print(f"obs-gate: {len(errors)} check(s) failed", file=sys.stderr)
        for e in errors:
            print(f"  FAIL {e}", file=sys.stderr)
        return 1
    print("obs-gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
