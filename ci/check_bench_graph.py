#!/usr/bin/env python3
"""CI gate for the committed graph-kernel benchmark (BENCH_graph.json).

Validates a micro_msbfs JSON report. Two modes:

  * committed (default): the report is the repository-root BENCH_graph.json —
    the MS-BFS speedup trajectory over the legacy per-source sweep. Beyond
    the shape, this asserts the structural claims: the sweep covers the dsn,
    dln AND ring families (ring is the regression canary — a long-diameter
    graph where the 64-lane frontier has the least slack, so a bit-parallel
    regression shows there first), ring runs at >= 3 sizes up to at least
    n = 16384, every row's exactness check passed, ring never falls below
    parity with the legacy sweep, and the small-world families keep a >= 5x
    speedup somewhere in the sweep.
  * --smoke: the report came from a fresh small-n CI run used as a
    correctness + JSON-shape smoke; only the shape and exactness checks are
    gated — never timings or sweep extents, which depend on the runner.

Exits 1 listing every failed check — never just the first.
"""
import sys

from bench_gate import BenchGate

TOP_KEYS = {"bench", "unit", "batch", "threads", "results"}
ROW_KEYS = {"topology", "family", "n", "links", "aspl", "diameter",
            "csr_build_ms", "path_stats_ms", "legacy_path_stats_ms",
            "eccentricities_ms", "speedup"}

REQUIRED_FAMILIES = {"dsn", "dln", "ring"}
RING_MIN_SIZES = 3
RING_SCALE_N = 16384
RING_SPEEDUP_FLOOR = 1.0
SMALL_WORLD_SPEEDUP_FLOOR = 5.0


def row_name(row):
    return f"(topology={row.get('topology')}, n={row.get('n')})"


def check_row(gate, path, row):
    if row["path_stats_ms"] <= 0 or row["speedup"] <= 0:
        gate.fail(f"{path}: row {row_name(row)} has non-positive timing")


def check_committed(gate, path, rows):
    families = {row["family"] for row in rows}
    missing = sorted(REQUIRED_FAMILIES - families)
    if missing:
        gate.fail(f"{path}: families {sorted(families)} missing {missing}")

    ring = [row for row in rows if row["family"] == "ring"]
    ring_ns = {row["n"] for row in ring}
    if len(ring_ns) < RING_MIN_SIZES:
        gate.fail(f"{path}: ring runs at {len(ring_ns)} size(s) "
                  f"{sorted(ring_ns)}; the regression canary needs >= "
                  f"{RING_MIN_SIZES}")
    if ring and max(ring_ns) < RING_SCALE_N:
        gate.fail(f"{path}: largest ring size {max(ring_ns)} < "
                  f"{RING_SCALE_N}")
    for row in ring:
        if row["speedup"] < RING_SPEEDUP_FLOOR:
            gate.fail(f"{path}: ring row {row_name(row)} speedup "
                      f"{row['speedup']:.2f}x fell below parity "
                      f"({RING_SPEEDUP_FLOOR:.0f}x) with the legacy sweep")

    for family in sorted(REQUIRED_FAMILIES - {"ring"}):
        fam = [row for row in rows if row["family"] == family]
        if fam and max(row["speedup"] for row in fam) < SMALL_WORLD_SPEEDUP_FLOOR:
            best = max(fam, key=lambda row: row["speedup"])
            gate.fail(f"{path}: best {family} speedup is "
                      f"{best['speedup']:.2f}x {row_name(best)}; the 64-lane "
                      f"sweep promises >= {SMALL_WORLD_SPEEDUP_FLOOR:.0f}x on "
                      "small-world graphs")


GATE = BenchGate(name="graph", bench="micro_msbfs", unit="ms",
                 top_keys=TOP_KEYS, row_keys=ROW_KEYS, row_name=row_name,
                 check_row=check_row, check_committed=check_committed,
                 doc=__doc__,
                 smoke_help="fresh CI run: gate shape + exactness checks "
                            "only, no timing or sweep-extent gates")

if __name__ == "__main__":
    sys.exit(GATE.run())
