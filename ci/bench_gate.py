#!/usr/bin/env python3
"""Shared plumbing for the committed-bench CI gates (check_bench_*.py).

Every bench gate validates one micro_* JSON report against the shape its
committed BENCH_*.json baseline promised, in two modes:

  * committed (default): the report is the repository-root baseline; beyond
    the shape, bench-specific committed-mode checks assert the structural
    headline claims future PRs must not regress (sweep extents, scale rows,
    speedup floors) — never absolute timings.
  * --smoke: the report came from a fresh small-n CI run; only the shape and
    the per-row correctness checks are gated, which are runner-independent.

A gate never stops at the first failure: every violation is collected and
listed, so a red CI run shows the whole picture at once. Exit 0 prints
"NAME-bench-gate: all checks passed (MODE, N rows)"; anything else exits 1.

Usage from a gate script:

    GATE = BenchGate(name="sim", bench="micro_sim", unit="cycles_per_sec",
                     top_keys=TOP_KEYS, row_keys=ROW_KEYS, row_name=row_name,
                     check_row=check_row, check_committed=check_committed,
                     doc=__doc__)
    sys.exit(GATE.run())

check_row(gate, path, row) runs in both modes on rows that have all required
keys; check_committed(gate, path, rows) runs only in committed mode. Both
report violations through gate.fail(msg). Rows carrying a "check" field are
gated on it equaling "ok" in both modes — that field is always a correctness
verdict computed by the bench binary itself.
"""
import argparse
import json
import sys


class BenchGate:
    def __init__(self, *, name, bench, unit, top_keys, row_keys, row_name,
                 check_row=None, check_committed=None, doc=None,
                 smoke_help="fresh CI run: gate shape + per-row correctness "
                            "checks only, no timing or sweep-extent gates"):
        self.name = name
        self.bench = bench
        self.unit = unit
        self.top_keys = set(top_keys)
        self.row_keys = set(row_keys)
        self.row_name = row_name
        self.check_row = check_row
        self.check_committed = check_committed
        self.doc = doc
        self.smoke_help = smoke_help
        self.errors = []

    def fail(self, msg):
        self.errors.append(msg)

    def check_shape(self, path, report):
        """Validate top-level and per-row shape; returns the rows list."""
        if set(report) != self.top_keys:
            self.fail(f"{path}: top-level keys {sorted(report)} != "
                      f"{sorted(self.top_keys)}")
            return []
        if report["bench"] != self.bench:
            self.fail(f"{path}: bench {report['bench']!r} != {self.bench!r}")
        if report["unit"] != self.unit:
            self.fail(f"{path}: unit {report['unit']!r} != {self.unit!r}")
        rows = report["results"]
        if not rows:
            self.fail(f"{path}: empty results array")
            return []
        for row in rows:
            missing = sorted(self.row_keys - set(row))
            if missing:
                self.fail(f"{path}: row {self.row_name(row)} missing keys "
                          f"{missing}")
                continue
            if self.check_row:
                self.check_row(self, path, row)
            # 'check' is a correctness verdict computed by the bench binary
            # (invariant verification, exact cross-checks). Any value but
            # "ok" is a failure in every mode.
            if "check" in row and row["check"] != "ok":
                self.fail(f"{path}: row {self.row_name(row)} "
                          f"check={row['check']!r}")
        return rows

    def run(self, argv=None):
        parser = argparse.ArgumentParser(description=self.doc)
        parser.add_argument("report",
                            help=f"{self.bench} JSON report to validate")
        parser.add_argument("--smoke", action="store_true",
                            help=self.smoke_help)
        args = parser.parse_args(argv)
        self.errors = []

        try:
            with open(args.report) as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{self.name}-bench-gate: FAIL {args.report}: "
                  f"cannot load JSON: {e}", file=sys.stderr)
            return 1

        rows = self.check_shape(args.report, report)
        if rows and not args.smoke and self.check_committed:
            self.check_committed(self, args.report, rows)

        if self.errors:
            print(f"{self.name}-bench-gate: {len(self.errors)} check(s) "
                  f"failed", file=sys.stderr)
            for e in self.errors:
                print(f"  FAIL {e}", file=sys.stderr)
            return 1
        mode = "smoke" if args.smoke else "committed"
        print(f"{self.name}-bench-gate: all checks passed "
              f"({mode}, {len(rows)} rows)")
        return 0
