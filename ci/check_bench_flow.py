#!/usr/bin/env python3
"""CI shape gate for the committed flow-tier benchmark (BENCH_flow.json).

Validates a micro_flow JSON report. Two modes:

  * committed (default): the report is the repository-root BENCH_flow.json —
    the scale trajectory the flow tier promised. Beyond the shape, this
    asserts the headline claims future PRs must not regress structurally:
    every run converged, the sweep covers multiple topology families, sizes
    and workloads, at least one row simulates >= 1,000,000 hosts (the scale
    point the flit simulator cannot reach), at least one row carries a
    passing max-min invariant check, and no water-filling solve needed more
    than ROUNDS_CEILING rounds (the progressive water-filling bound is one
    saturated resource per round; a blow-up here means the solver's freeze
    cascade regressed).
  * --smoke: the report came from a fresh small-n CI run used as a
    correctness + JSON-shape smoke; only the shape, convergence and the
    invariant checks are gated — never timings or sweep extents, which
    depend on the runner.

Exits 1 listing every failed check — never just the first.
"""
import sys

from bench_gate import BenchGate

TOP_KEYS = {"bench", "unit", "clients", "shuffle_clients", "units",
            "unit_flits", "window", "min_epoch_cycles", "results"}
ROW_KEYS = {"topology", "n", "hosts", "workload", "flows", "flits", "epochs",
            "waterfill_rounds_max", "waterfill_rounds_total", "converged",
            "makespan_cycles", "per_host_flits_per_cycle", "wall_ms",
            "flows_per_sec"}

SCALE_HOSTS = 1_000_000
ROUNDS_CEILING = 4096


def row_name(row):
    return (f"(topology={row.get('topology')}, n={row.get('n')}, "
            f"workload={row.get('workload')})")


def check_row(gate, path, row):
    if row["flows"] <= 0 or row["flits"] <= 0 or row["flows_per_sec"] <= 0:
        gate.fail(f"{path}: row {row_name(row)} has non-positive volume")
    if row["converged"] is not True:
        gate.fail(f"{path}: row {row_name(row)} did not converge")
    if row["waterfill_rounds_max"] > ROUNDS_CEILING:
        gate.fail(f"{path}: row {row_name(row)} needed "
                  f"{row['waterfill_rounds_max']} water-filling rounds in one "
                  f"solve; ceiling is {ROUNDS_CEILING}")
    # The 'check' field (gated by bench_gate) is the per-solve max-min
    # invariant verification on rows up to --verify-max-n.


def check_committed(gate, path, rows):
    topologies = {row["topology"] for row in rows}
    ns = {row["n"] for row in rows}
    workloads = {row["workload"] for row in rows}
    if len(topologies) < 2:
        gate.fail(f"{path}: sweep covers a single topology "
                  f"{sorted(topologies)}; need >= 2 families")
    if len(ns) < 2:
        gate.fail(f"{path}: sweep covers a single size {sorted(ns)}; need >= 2")
    if len(workloads) < 2:
        gate.fail(f"{path}: sweep covers a single workload "
                  f"{sorted(workloads)}; need >= 2")
    if not any(row["hosts"] >= SCALE_HOSTS for row in rows):
        gate.fail(f"{path}: no hosts >= {SCALE_HOSTS} row — the million-host "
                  "scale target is gone")
    if not any(row.get("check") == "ok" for row in rows):
        gate.fail(f"{path}: no row carries a passing max-min invariant check")


GATE = BenchGate(name="flow", bench="micro_flow", unit="flows_per_sec",
                 top_keys=TOP_KEYS, row_keys=ROW_KEYS, row_name=row_name,
                 check_row=check_row, check_committed=check_committed,
                 doc=__doc__,
                 smoke_help="fresh CI run: gate shape + convergence + "
                            "invariant checks only, no sweep-extent gates")

if __name__ == "__main__":
    sys.exit(GATE.run())
