#!/usr/bin/env python3
"""CI shape gate for the committed flow-tier benchmark (BENCH_flow.json).

Validates a micro_flow JSON report. Two modes:

  * committed (default): the report is the repository-root BENCH_flow.json —
    the scale trajectory the flow tier promised. Beyond the shape, this
    asserts the headline claims future PRs must not regress structurally:
    every run converged, the sweep covers multiple topology families, sizes
    and workloads, at least one row simulates >= 1,000,000 hosts (the scale
    point the flit simulator cannot reach), at least one row carries a
    passing max-min invariant check, and no water-filling solve needed more
    than ROUNDS_CEILING rounds (the progressive water-filling bound is one
    saturated resource per round; a blow-up here means the solver's freeze
    cascade regressed).
  * --smoke: the report came from a fresh small-n CI run used as a
    correctness + JSON-shape smoke; only the shape, convergence and the
    invariant checks are gated — never timings or sweep extents, which
    depend on the runner.

Exits 1 listing every failed check — never just the first.
"""
import argparse
import json
import sys

TOP_KEYS = {"bench", "unit", "clients", "shuffle_clients", "units",
            "unit_flits", "window", "min_epoch_cycles", "results"}
ROW_KEYS = {"topology", "n", "hosts", "workload", "flows", "flits", "epochs",
            "waterfill_rounds_max", "waterfill_rounds_total", "converged",
            "makespan_cycles", "per_host_flits_per_cycle", "wall_ms",
            "flows_per_sec"}

SCALE_HOSTS = 1_000_000
ROUNDS_CEILING = 4096

errors = []


def fail(msg):
    errors.append(msg)


def row_name(row):
    return (f"(topology={row.get('topology')}, n={row.get('n')}, "
            f"workload={row.get('workload')})")


def check_shape(path, report):
    if set(report) != TOP_KEYS:
        fail(f"{path}: top-level keys {sorted(report)} != {sorted(TOP_KEYS)}")
        return []
    if report["bench"] != "micro_flow":
        fail(f"{path}: bench {report['bench']!r} != 'micro_flow'")
    if report["unit"] != "flows_per_sec":
        fail(f"{path}: unit {report['unit']!r} != 'flows_per_sec'")
    rows = report["results"]
    if not rows:
        fail(f"{path}: empty results array")
        return []
    for row in rows:
        missing = sorted(ROW_KEYS - set(row))
        if missing:
            fail(f"{path}: row {row_name(row)} missing keys {missing}")
            continue
        if row["flows"] <= 0 or row["flits"] <= 0 or row["flows_per_sec"] <= 0:
            fail(f"{path}: row {row_name(row)} has non-positive volume")
        if row["converged"] is not True:
            fail(f"{path}: row {row_name(row)} did not converge")
        if row["waterfill_rounds_max"] > ROUNDS_CEILING:
            fail(f"{path}: row {row_name(row)} needed "
                 f"{row['waterfill_rounds_max']} water-filling rounds in one "
                 f"solve; ceiling is {ROUNDS_CEILING}")
        # 'check' is the per-solve max-min invariant verification (rows up to
        # --verify-max-n). Any value but "ok" is a correctness failure.
        if "check" in row and row["check"] != "ok":
            fail(f"{path}: row {row_name(row)} check={row['check']!r}")
    return rows


def check_committed(path, rows):
    topologies = {row["topology"] for row in rows}
    ns = {row["n"] for row in rows}
    workloads = {row["workload"] for row in rows}
    if len(topologies) < 2:
        fail(f"{path}: sweep covers a single topology {sorted(topologies)}; "
             "need >= 2 families")
    if len(ns) < 2:
        fail(f"{path}: sweep covers a single size {sorted(ns)}; need >= 2")
    if len(workloads) < 2:
        fail(f"{path}: sweep covers a single workload {sorted(workloads)}; "
             "need >= 2")
    if not any(row["hosts"] >= SCALE_HOSTS for row in rows):
        fail(f"{path}: no hosts >= {SCALE_HOSTS} row — the million-host "
             "scale target is gone")
    if not any(row.get("check") == "ok" for row in rows):
        fail(f"{path}: no row carries a passing max-min invariant check")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="micro_flow JSON report to validate")
    parser.add_argument("--smoke", action="store_true",
                        help="fresh CI run: gate shape + convergence + "
                             "invariant checks only, no sweep-extent gates")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"flow-bench-gate: FAIL {args.report}: cannot load JSON: {e}",
              file=sys.stderr)
        return 1

    rows = check_shape(args.report, report)
    if rows and not args.smoke:
        check_committed(args.report, rows)

    if errors:
        print(f"flow-bench-gate: {len(errors)} check(s) failed",
              file=sys.stderr)
        for e in errors:
            print(f"  FAIL {e}", file=sys.stderr)
        return 1
    mode = "smoke" if args.smoke else "committed"
    print(f"flow-bench-gate: all checks passed ({mode}, {len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
