#!/usr/bin/env python3
"""Self-tests for tools/dsn-tidy/run_dsn_tidy.py, run as a ctest
(`dsn_tidy.runner_selftest`) and in the static-analysis CI job.

The real plugin needs a pinned clang toolchain (CI builds and runs it); this
file pins everything that does NOT need clang:

  * diagnostic parsing, dedup, SARIF shape;
  * the fixture-pairing contract (every check has a fire/ok twin);
  * the gate semantics of `fixtures` and `scan`, driven through a fake
    clang-tidy — including the negative control: a plugin whose checks go
    dead MUST fail the gate;
  * the two-tier comparison the suite exists for: the dsn-tidy fire fixtures
    for semantic checks are invisible to the token-level dsn-slint lexer.
"""
import importlib.util
import json
import os
import re
import stat
import subprocess
import sys
import tempfile
import textwrap
import unittest
from pathlib import Path

CI_DIR = Path(__file__).resolve().parent
REPO_ROOT = CI_DIR.parent
TIDY_DIR = REPO_ROOT / "tools" / "dsn-tidy"
FIXTURES = TIDY_DIR / "fixtures"

sys.path.insert(0, str(CI_DIR))
import dsn_slint  # noqa: E402

# tools/dsn-tidy has a dash, so import the runner by path.
_spec = importlib.util.spec_from_file_location(
    "run_dsn_tidy", TIDY_DIR / "run_dsn_tidy.py")
run_dsn_tidy = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_dsn_tidy)

EXPECTED_CHECKS = [
    "dsn-deterministic-container",
    "dsn-guarded-member",
    "dsn-index-narrowing",
    "dsn-lock-scope-purity",
    "dsn-unseeded-rng",
]

# A stand-in clang-tidy that honours the argv contract the runner uses
# (--load=, --checks=-*,<check>, sources, `--`, compile flags) and fires on
# fire_* sources exactly like a healthy plugin would. FAKE_TIDY_DEAD
# simulates a plugin whose matchers silently stopped matching;
# FAKE_TIDY_NOISY one that flags clean code; FAKE_TIDY_BROKEN a fixture that
# no longer parses.
FAKE_CLANG_TIDY = textwrap.dedent("""\
    #!/usr/bin/env python3
    import os, re, sys

    args = sys.argv[1:]
    if "--" in args:
        args = args[:args.index("--")]
    enabled = ""
    sources = []
    for a in args:
        if a.startswith("--checks="):
            enabled = a.split(",", 1)[1] if "," in a else ""
        elif not a.startswith("-"):
            sources.append(a)
    for src in sources:
        stem = os.path.splitext(os.path.basename(src))[0]
        check = "dsn-" + re.sub(r"^(fire|ok)_", "", stem).replace("_", "-")
        if os.environ.get("FAKE_TIDY_BROKEN"):
            print(f"{src}:1:1: error: expected ';' after top level declarator")
            continue
        fires = stem.startswith("fire_") or (
            stem.startswith("ok_") and os.environ.get("FAKE_TIDY_NOISY"))
        if os.environ.get("FAKE_TIDY_DEAD"):
            fires = False
        wanted = enabled in ("dsn-*", check)
        if fires and wanted:
            print(f"{src}:3:5: warning: synthetic finding [{check}]")
            print(f"{src}:3:5: warning: synthetic finding [{check}]")
    sys.exit(0)
    """)


def make_fake_clang_tidy(tmpdir):
    fake = Path(tmpdir) / "fake-clang-tidy"
    fake.write_text(FAKE_CLANG_TIDY)
    fake.chmod(fake.stat().st_mode | stat.S_IXUSR)
    return fake


def run_runner(argv, env_extra=None):
    env = dict(os.environ)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, str(TIDY_DIR / "run_dsn_tidy.py"), *argv],
        capture_output=True, text=True, env=env)


class DiagnosticParseTest(unittest.TestCase):
    def test_parses_and_dedups(self):
        text = ("/a/b.cpp:12:5: warning: msg one [dsn-unseeded-rng]\n"
                "/a/b.cpp:12:5: warning: msg one [dsn-unseeded-rng]\n"
                "note: expanded from here\n"
                "/a/b.cpp:20:1: warning: msg two [dsn-guarded-member]\n")
        findings = run_dsn_tidy.parse_diagnostics(text)
        self.assertEqual(
            [(f.check, f.line) for f in findings],
            [("dsn-unseeded-rng", 12), ("dsn-guarded-member", 20)])

    def test_bare_error_becomes_pseudo_check(self):
        findings = run_dsn_tidy.parse_diagnostics(
            "/a/b.cpp:1:1: error: expected ';'\n")
        self.assertEqual(findings[0].check, "clang-diagnostic-error")
        self.assertEqual(findings[0].level, "error")

    def test_prose_lines_ignored(self):
        text = ("Suppressed 12 warnings.\n"
                "Use -header-filter=.* to display errors.\n")
        self.assertEqual(run_dsn_tidy.parse_diagnostics(text), [])

    def test_comma_joined_checks_split(self):
        findings = run_dsn_tidy.parse_diagnostics(
            "/a/b.cpp:4:2: warning: m [dsn-index-narrowing,dsn-unseeded-rng]\n")
        self.assertEqual(sorted(f.check for f in findings),
                         ["dsn-index-narrowing", "dsn-unseeded-rng"])


class SarifTest(unittest.TestCase):
    def test_shape(self):
        findings = run_dsn_tidy.parse_diagnostics(
            "/a/b.cpp:12:5: warning: msg [dsn-unseeded-rng]\n")
        doc = run_dsn_tidy.to_sarif(findings)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "dsn-tidy")
        self.assertEqual(run["tool"]["driver"]["rules"],
                         [{"id": "dsn-unseeded-rng"}])
        result = run["results"][0]
        self.assertEqual(result["ruleId"], "dsn-unseeded-rng")
        loc = result["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"], "/a/b.cpp")
        self.assertEqual(loc["region"], {"startLine": 12, "startColumn": 5})

    def test_empty_run_serializes(self):
        doc = run_dsn_tidy.to_sarif([])
        self.assertEqual(doc["runs"][0]["results"], [])
        json.dumps(doc)  # must be serializable


class FixtureContractTest(unittest.TestCase):
    def test_every_check_has_fire_and_ok_twin(self):
        pairs = run_dsn_tidy.fixture_pairs(FIXTURES)
        self.assertEqual([check for check, _, _ in pairs], EXPECTED_CHECKS)

    def test_unpaired_fixture_is_fatal(self):
        with tempfile.TemporaryDirectory() as tmp:
            (Path(tmp) / "fire_orphan.cpp").write_text("int x;\n")
            with self.assertRaises(SystemExit):
                run_dsn_tidy.fixture_pairs(tmp)

    def test_name_mapping(self):
        self.assertEqual(
            run_dsn_tidy.check_name_for_fixture(
                Path("fire_lock_scope_purity.cpp")),
            "dsn-lock-scope-purity")
        self.assertEqual(
            run_dsn_tidy.check_name_for_fixture(Path("ok_unseeded_rng.cpp")),
            "dsn-unseeded-rng")

    def test_index_narrowing_fixtures_live_in_scoped_dir(self):
        # The check is dir-scoped; its fixtures must sit under sim/ or the
        # real plugin would never visit them.
        pairs = dict((c, (f, o)) for c, f, o in
                     run_dsn_tidy.fixture_pairs(FIXTURES))
        fire, ok = pairs["dsn-index-narrowing"]
        self.assertEqual(fire.parent.name, "sim")
        self.assertEqual(ok.parent.name, "sim")


class FixturesGateTest(unittest.TestCase):
    """Gate semantics through the fake clang-tidy."""

    def gate(self, env_extra=None):
        with tempfile.TemporaryDirectory() as tmp:
            fake = make_fake_clang_tidy(tmp)
            return run_runner(
                ["fixtures", "--clang-tidy", str(fake),
                 "--plugin", "/nonexistent/libdsn_tidy.so",
                 "--fixture-dir", str(FIXTURES)],
                env_extra)

    def test_healthy_plugin_passes(self):
        proc = self.gate()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("dsn-tidy fixtures: PASS", proc.stdout)

    def test_dead_check_fails_gate(self):
        proc = self.gate({"FAKE_TIDY_DEAD": "1"})
        self.assertEqual(proc.returncode, 1)
        self.assertIn("gone dead", proc.stderr)

    def test_noisy_check_fails_gate(self):
        proc = self.gate({"FAKE_TIDY_NOISY": "1"})
        self.assertEqual(proc.returncode, 1)
        self.assertIn("fired on its ok fixture", proc.stderr)

    def test_unparseable_fixture_fails_gate(self):
        proc = self.gate({"FAKE_TIDY_BROKEN": "1"})
        self.assertEqual(proc.returncode, 1)
        self.assertIn("does not parse", proc.stderr)


class ScanGateTest(unittest.TestCase):
    def test_findings_fail_and_emit_sarif(self):
        with tempfile.TemporaryDirectory() as tmp:
            fake = make_fake_clang_tidy(tmp)
            sarif = Path(tmp) / "out.sarif"
            proc = run_runner(
                ["scan", "--clang-tidy", str(fake), "--plugin", "p.so",
                 "--sarif", str(sarif),
                 str(FIXTURES / "fire_unseeded_rng.cpp")])
            self.assertEqual(proc.returncode, 1)
            self.assertIn("dsn-tidy scan: FAIL", proc.stdout)
            doc = json.loads(sarif.read_text())
            self.assertEqual(doc["runs"][0]["results"][0]["ruleId"],
                             "dsn-unseeded-rng")

    def test_clean_tree_passes_with_empty_sarif(self):
        with tempfile.TemporaryDirectory() as tmp:
            fake = make_fake_clang_tidy(tmp)
            sarif = Path(tmp) / "out.sarif"
            proc = run_runner(
                ["scan", "--clang-tidy", str(fake), "--plugin", "p.so",
                 "--sarif", str(sarif),
                 str(FIXTURES / "ok_unseeded_rng.cpp")])
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertIn("dsn-tidy scan: PASS", proc.stdout)
            self.assertEqual(
                json.loads(sarif.read_text())["runs"][0]["results"], [])

    def test_directory_argument_recurses(self):
        sources = run_dsn_tidy.collect_sources([FIXTURES])
        names = {p.name for p in sources}
        self.assertIn("fire_index_narrowing.cpp", names)  # nested in sim/
        self.assertIn("fire_unseeded_rng.cpp", names)

    def test_missing_path_is_fatal(self):
        with self.assertRaises(SystemExit):
            run_dsn_tidy.collect_sources(["/nonexistent/nowhere"])


class LexerBlindSpotTest(unittest.TestCase):
    """The committed comparison the two-tier design rests on: these fire
    fixtures are real violations the AST checks catch, yet the token-level
    dsn-slint scanner reports NOTHING on them — aliased/auto-deduced
    unordered containers and narrowing via template instantiation have no
    token for a lexer to see."""

    def slint(self, rel):
        path = FIXTURES / rel
        findings, errors = dsn_slint.check_file(
            path, f"tools/dsn-tidy/fixtures/{rel}", path.read_text())
        return findings, errors

    def test_aliased_containers_invisible_to_slint(self):
        # fire_deterministic_container.cpp carries the deterministic marker
        # and four unordered-container uses — through an alias, an alias
        # template, `auto`, and a return type. No literal "unordered" token
        # appears, so slint's no-unordered-in-deterministic check is blind.
        text = (FIXTURES / "fire_deterministic_container.cpp").read_text()
        self.assertIn("dsn-slint: deterministic", text)
        # No "unordered" token in actual code — only in comments, which the
        # lexer strips, so there is nothing for slint to see.
        self.assertNotIn(
            "unordered", dsn_slint.strip_comments_and_strings(text))
        findings, errors = self.slint("fire_deterministic_container.cpp")
        self.assertEqual(findings, [], [f.render() for f in findings])
        self.assertEqual(errors, [])

    def test_template_narrowing_invisible_to_slint(self):
        findings, errors = self.slint("sim/fire_index_narrowing.cpp")
        self.assertEqual(findings, [], [f.render() for f in findings])
        self.assertEqual(errors, [])

    def test_spelled_out_token_IS_visible_to_slint(self):
        # Control for the control: when the token is literally spelled in a
        # marked file, slint does fire — the blind spot above is about
        # spelling, not a broken scanner.
        text = ("// dsn-slint: deterministic\n"
                "#include <unordered_map>\n"
                "std::unordered_map<int, int> index;\n")
        findings, _ = dsn_slint.check_file(
            Path("probe.cpp"), "probe.cpp", text)
        self.assertIn("no-unordered-in-deterministic",
                      {f.check for f in findings})


class PluginSourceSanityTest(unittest.TestCase):
    """Cheap structural pins on the C++ sources so a rename can't silently
    desync the module registry, the fixtures, and the docs."""

    def test_module_registers_every_check(self):
        module = (TIDY_DIR / "DsnTidyModule.cpp").read_text()
        for check in EXPECTED_CHECKS:
            self.assertIn(f'"{check}"', module, check)

    def test_cmake_is_gated_and_link_free(self):
        cmake = (TIDY_DIR / "CMakeLists.txt").read_text()
        self.assertIn("DSN_TIDY_PLUGIN", cmake)
        # The plugin must NOT link LLVM/clang libs: symbols resolve from the
        # hosting clang-tidy binary at --load time. Linking them in would
        # duplicate command-line registries and abort at runtime. (The name
        # may appear in comments; an actual call may not.)
        self.assertIsNone(
            re.search(r"^\s*target_link_libraries\s*\(", cmake, re.M))


if __name__ == "__main__":
    unittest.main(verbosity=2)
