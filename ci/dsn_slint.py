#!/usr/bin/env python3
"""dsn-slint: project-specific static lint suite for the dsn tree.

Encodes house invariants that generic tooling cannot know, as named,
individually suppressible checks over the C++ sources (comment- and
string-stripped, so tokens in prose never fire):

  no-unordered-in-deterministic
      Files marked `// dsn-slint: deterministic` feed byte-identical replay
      or shard-order merges (JSON reports, golden sim dumps, snapshot
      merges). Unordered associative containers are banned there outright:
      their iteration order is a function of hash seeding and load factor,
      and a container that exists will eventually be iterated.

  seeded-rng-only
      All randomness flows through dsn::Rng / dsn::SplitMix64 (explicit
      64-bit seeds, exact reproducibility). rand()/srand(), std::random_device,
      std::mt19937* and std::default_random_engine are flagged everywhere
      except the Rng implementation itself: one ambient-seeded generator in a
      topology builder silently unpins every downstream experiment.

  annotated-mutex-only
      Lock-owning code uses dsn::Mutex / dsn::LockGuard / dsn::CondVar
      (dsn/common/mutex.hpp), which carry Clang Thread Safety Analysis
      capability attributes. A naked std::mutex (or lock_guard, scoped_lock,
      unique_lock, condition_variable) is invisible to -Wthread-safety, so
      every field it guards silently drops out of the analysis.

  obs-args-pure
      Arguments of DSN_OBS_ADD / DSN_OBS_GAUGE_SET / DSN_OBS_OBSERVE /
      DSN_OBS_TIMER / DSN_OBS_SPAN vanish unevaluated when the tree is built
      with -DDSN_OBS=0, so they must be side-effect free: `++`, `--` and
      assignment inside the macro argument list make behaviour differ
      between instrumented and stripped builds. (DSN_OBS_ONLY is exempt —
      holding instrumentation-only statements is its documented purpose.)

  header-hygiene
      Every header carries `#pragma once`; `using namespace` never appears
      in a header (it leaks into every includer, at any scope a header can
      reasonably put it).

  include-cycle
      No cyclic #include chain among scanned project files. #pragma once
      makes a cycle "work" by silently dropping one edge, so whichever
      header happens to be opened first sees a half-declared world — the
      classic source of works-in-this-TU-only breakage.

  include-layering
      Quoted includes must respect the module DAG rooted at src/dsn/:
      common ← obs ← graph ← topology ← {layout, routing}; sim ← routing;
      analysis ← {sim, layout}; check ← analysis (each module may also use
      everything beneath its dependencies). dsn::obs is deliberately
      cross-cutting: ANY module may include dsn/obs/* (instrumentation call
      sites are macro-gated), while obs itself may only depend on common.

Suppression syntax (a reason is mandatory; `reason`-less suppressions are
reported as `suppression-syntax` findings, which are never suppressible):

  // dsn-slint-ignore(<check>[,<check>...]): <reason>      same or next line
  // dsn-slint-ignore-file(<check>[,<check>...]): <reason> whole file

File marker opting a file into determinism checks:

  // dsn-slint: deterministic

Exit codes: 0 = clean (or findings without --strict), 1 = findings under
--strict (or any suppression-syntax error), 2 = usage error. Like
check_obs.py, every finding is listed — never just the first — so one CI log
shows the whole drift.
"""
import argparse
import json
import re
import sys
from pathlib import Path

CHECKS = {
    "no-unordered-in-deterministic":
        "unordered container in a deterministic-marked file",
    "seeded-rng-only":
        "ambient/unseeded RNG outside dsn::Rng",
    "annotated-mutex-only":
        "naked std lock primitive outside dsn/common/mutex.hpp",
    "obs-args-pure":
        "side effect inside a DSN_OBS_* macro argument",
    "header-hygiene":
        "header missing #pragma once or polluting with using-namespace",
    "include-cycle":
        "cyclic #include chain among project files",
    "include-layering":
        "quoted include that violates the src/dsn module layering DAG",
}

# Direct module dependencies (src/dsn/<module>/). The check uses the
# transitive closure, plus `obs` from everywhere (cross-cutting
# instrumentation). Grow this table deliberately — every new edge is a
# public architectural commitment.
LAYER_DEPS = {
    "common": set(),
    "obs": {"common"},
    "graph": {"common", "obs"},
    "topology": {"graph"},
    "layout": {"topology"},
    "routing": {"topology"},
    "sim": {"routing"},
    "opt": {"layout"},
    "analysis": {"sim", "layout"},
    "flow": {"analysis"},
    "check": {"analysis"},
}

# The annotated-wrapper implementation is the single place allowed to touch
# the std primitives; the Rng implementation is the single seeded entry point.
MUTEX_WRAPPER = "src/dsn/common/mutex.hpp"
RNG_IMPL = "src/dsn/common/rng.hpp"

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
HEADER_SUFFIXES = {".hpp", ".hh", ".h"}

DETERMINISTIC_MARKER = re.compile(r"//\s*dsn-slint:\s*deterministic\b")
IGNORE_LINE = re.compile(
    r"//\s*dsn-slint-ignore\(([^)]*)\)(:?)\s*(.*)")
IGNORE_FILE = re.compile(
    r"//\s*dsn-slint-ignore-file\(([^)]*)\)(:?)\s*(.*)")

UNORDERED_TOKEN = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b"
    r"|#\s*include\s*<unordered_(?:map|set)>")
RNG_TOKEN = re.compile(
    r"\bstd\s*::\s*(?:random_device|mt19937(?:_64)?|default_random_engine"
    r"|minstd_rand0?|knuth_b)\b"
    r"|(?<![\w:])s?rand\s*\("
    r"|\bdrand48\s*\(|\blrand48\s*\(")
MUTEX_TOKEN = re.compile(
    r"\bstd\s*::\s*(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|scoped_lock|unique_lock"
    r"|shared_lock|condition_variable(?:_any)?)\b")
USING_NAMESPACE = re.compile(r"\busing\s+namespace\b")
PRAGMA_ONCE = re.compile(r"#\s*pragma\s+once\b")
OBS_MACRO = re.compile(
    r"\b(DSN_OBS_(?:ADD|GAUGE_SET|OBSERVE|TIMER|SPAN))\s*\(")
# ++/-- anywhere, or `=` that is not part of ==, !=, <=, >=, <=>.
SIDE_EFFECT = re.compile(r"\+\+|--|(?<![=!<>])=(?![=])")


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self):
        return {"check": self.check, "file": str(self.path),
                "line": self.line, "message": self.message}

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments_and_strings(text):
    """Replace comment and string/char-literal contents with spaces.

    Newlines are preserved so offsets and line numbers keep meaning. Handles
    //, /* */, "...", '...' (with escapes) and raw strings R"delim(...)delim".
    Deliberately a character scanner, not a regex: nested quote/comment
    combinations are exactly where regexes silently mis-strip.
    """
    out = []
    i, n = 0, len(text)

    def blank(segment):
        out.append("".join(c if c == "\n" else " " for c in segment))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            blank(text[i:end])
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end == -1 else end
            blank(text[i:end + 2])
            i = end + 2
        elif c in "\"'" and not _raw_string_start(text, i):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote)
            blank(text[i + 1:j])
            out.append(quote if j < n else "")
            i = j + 1
        elif _raw_string_start(text, i):
            # R"delim( ... )delim"  — i points at the opening quote.
            m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
            if m is None:  # malformed; treat as plain string
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = n - len(closer) if end == -1 else end
            out.append('"')
            blank(text[i + 1:end + len(closer) - 1])
            out.append('"')
            i = end + len(closer)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _raw_string_start(text, i):
    return (text[i] == '"' and i >= 1 and text[i - 1] == "R"
            and (i < 2 or not (text[i - 2].isalnum() or text[i - 2] == "_")))


class Suppressions:
    """Parsed dsn-slint-ignore / ignore-file comments for one file."""

    def __init__(self, path, raw_lines):
        self.file_checks = set()
        self.line_checks = {}  # line number -> set of check names
        self.errors = []       # Finding list (suppression-syntax)
        for lineno, line in enumerate(raw_lines, 1):
            for pattern, file_wide in ((IGNORE_FILE, True), (IGNORE_LINE, False)):
                m = pattern.search(line)
                if m is None:
                    continue
                names = {x.strip() for x in m.group(1).split(",") if x.strip()}
                unknown = names - CHECKS.keys()
                if unknown:
                    self.errors.append(Finding(
                        "suppression-syntax", path, lineno,
                        f"unknown check(s) {sorted(unknown)}; "
                        f"known: {sorted(CHECKS)}"))
                if m.group(2) != ":" or not m.group(3).strip():
                    self.errors.append(Finding(
                        "suppression-syntax", path, lineno,
                        "suppression needs a reason: "
                        "// dsn-slint-ignore(<check>): <why>"))
                    continue
                names &= CHECKS.keys()
                if file_wide:
                    self.file_checks |= names
                else:
                    # A suppression covers its own line and the next one, so
                    # it can ride on the offending line or sit just above it.
                    for covered in (lineno, lineno + 1):
                        self.line_checks.setdefault(covered, set()).update(names)
                break  # ignore-file also matches IGNORE_LINE; first wins

    def active(self, check, lineno):
        return (check in self.file_checks
                or check in self.line_checks.get(lineno, ()))


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def check_file(path, rel, text):
    """Run every check over one file; returns (findings, suppression errors)."""
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    sup = Suppressions(rel, raw_lines)
    findings = []

    def emit(check, lineno, message):
        if not sup.active(check, lineno):
            findings.append(Finding(check, rel, lineno, message))

    rel_posix = Path(rel).as_posix()

    if DETERMINISTIC_MARKER.search(text):
        for m in UNORDERED_TOKEN.finditer(stripped):
            emit("no-unordered-in-deterministic", line_of(stripped, m.start()),
                 f"`{m.group().strip()}` in a deterministic-marked file: "
                 "iteration order follows the hash seed, not the data; "
                 "use std::map/std::set or a sorted vector")

    if not rel_posix.endswith(RNG_IMPL):
        for m in RNG_TOKEN.finditer(stripped):
            emit("seeded-rng-only", line_of(stripped, m.start()),
                 f"`{m.group().strip()}` bypasses the seeded dsn::Rng entry "
                 "points; ambient entropy unpins experiment reproducibility")

    if not rel_posix.endswith(MUTEX_WRAPPER):
        for m in MUTEX_TOKEN.finditer(stripped):
            emit("annotated-mutex-only", line_of(stripped, m.start()),
                 f"`{m.group().strip()}` is invisible to Clang Thread Safety "
                 "Analysis; use dsn::Mutex/LockGuard/CondVar "
                 "(dsn/common/mutex.hpp)")

    for macro, args, offset in obs_macro_args(stripped):
        bad = SIDE_EFFECT.search(args)
        if bad is not None:
            emit("obs-args-pure", line_of(stripped, offset),
                 f"`{bad.group()}` inside {macro}(...): the argument is "
                 "discarded unevaluated under -DDSN_OBS=0, so side effects "
                 "make stripped and instrumented builds diverge")

    if Path(rel).suffix in HEADER_SUFFIXES:
        if not PRAGMA_ONCE.search(stripped):
            emit("header-hygiene", 1, "header lacks #pragma once")
        for m in USING_NAMESPACE.finditer(stripped):
            emit("header-hygiene", line_of(stripped, m.start()),
                 "`using namespace` in a header leaks into every includer")

    return findings, sup.errors


def obs_macro_args(stripped):
    """Yield (macro_name, argument_text, offset) for each DSN_OBS_* call,
    with balanced-parenthesis extraction (arguments may span lines)."""
    for m in OBS_MACRO.finditer(stripped):
        # Skip the macro definitions themselves (#define DSN_OBS_ADD(...)).
        line_start = stripped.rfind("\n", 0, m.start()) + 1
        if stripped[line_start:m.start()].lstrip().startswith("#"):
            continue
        depth, i = 1, m.end()
        while i < len(stripped) and depth > 0:
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
            i += 1
        yield m.group(1), stripped[m.end():i - 1], m.start()


QUOTED_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')
MODULE_PATH = re.compile(r"(?:^|/)src/dsn/([^/]+)/")


def module_of(rel_posix):
    """src/dsn/<module>/... -> <module>; None for everything else
    (tools, tests, the dsn.hpp umbrella, fixtures)."""
    m = MODULE_PATH.search(rel_posix)
    return m.group(1) if m is not None and m.group(1) in LAYER_DEPS else None


def allowed_modules(module):
    """Transitive closure of LAYER_DEPS plus the cross-cutting obs sink."""
    seen, stack = set(), [module]
    while stack:
        for dep in LAYER_DEPS.get(stack.pop(), ()):
            if dep not in seen:
                seen.add(dep)
                stack.append(dep)
    seen.add("obs")
    seen.discard(module)
    return seen


def _posix_normpath(path):
    parts = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == ".." and parts and parts[-1] != "..":
            parts.pop()
        else:
            parts.append(part)
    return "/".join(parts)


def resolve_include(includer, target, files):
    """Map one quoted include to a scanned file's rel path, or None.

    `dsn/...` spellings resolve against src/ (the -Isrc convention);
    anything else resolves relative to the including file. Unresolved
    includes (system headers, files outside the scan set) produce no edge.
    """
    if target.startswith("dsn/"):
        candidate = "src/" + target
        if candidate in files:
            return candidate
    base = includer.rsplit("/", 1)[0] if "/" in includer else ""
    candidate = _posix_normpath(f"{base}/{target}" if base else target)
    return candidate if candidate in files else None


def check_include_graph(files):
    """Cross-file pass: include-cycle and include-layering findings.

    `files` maps rel posix path -> raw text for every scanned file. Returns
    findings only; suppression-syntax errors are already reported by the
    per-file pass.
    """
    findings = []
    sups = {}

    def emit(check, rel, lineno, message):
        if rel not in sups:
            sups[rel] = Suppressions(rel, files[rel].splitlines())
        if not sups[rel].active(check, lineno):
            findings.append(Finding(check, rel, lineno, message))

    # includes[rel] = [(lineno, written target, resolved rel-or-None)].
    # The stripper blanks string contents (the include target itself), so
    # match on the raw text and use the offset-preserving stripped text only
    # to reject directives sitting inside comments.
    includes = {}
    for rel, text in files.items():
        stripped = strip_comments_and_strings(text)
        entries = []
        for m in QUOTED_INCLUDE.finditer(text):
            if m.start() < len(stripped) and stripped[m.start()] != "#":
                continue  # commented-out include
            target = m.group(1)
            entries.append((line_of(text, m.start()), target,
                            resolve_include(rel, target, files)))
        includes[rel] = entries

    # Layering: judged on the written `dsn/<module>/` spelling so it works
    # even when the target file is outside the scanned subset.
    for rel, entries in sorted(includes.items()):
        src_module = module_of(rel)
        if src_module is None:
            continue
        legal = allowed_modules(src_module)
        for lineno, target, resolved in entries:
            dst_module = (module_of("src/" + target)
                          if target.startswith("dsn/")
                          else module_of(resolved or ""))
            if (dst_module is None or dst_module == src_module
                    or dst_module in legal):
                continue
            emit("include-layering", rel, lineno,
                 f"`{target}`: module `{src_module}` may not depend on "
                 f"`{dst_module}` (allowed: {sorted(legal)}); move the "
                 "shared piece down the DAG or grow LAYER_DEPS deliberately")

    # Cycles: iterative DFS over resolved edges; a back edge to a file on
    # the active stack closes a cycle. Each cycle is reported once, at the
    # closing include of its lexicographically-smallest member.
    edges = {rel: [(lineno, resolved)
                   for lineno, _, resolved in entries if resolved is not None]
             for rel, entries in includes.items()}
    WHITE, GREY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in edges}
    reported = set()

    def walk(root):
        stack = [(root, iter(edges[root]))]
        color[root] = GREY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for lineno, dst in it:
                if color[dst] == GREY:
                    cycle = tuple(path[path.index(dst):])
                    anchor = min(cycle)
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        idx = cycle.index(anchor)
                        ordered = cycle[idx:] + cycle[:idx]
                        successor = ordered[1] if len(ordered) > 1 else anchor
                        anchor_line = next(
                            (ln for ln, d in edges[anchor] if d == successor),
                            lineno)
                        chain = " -> ".join(ordered + (ordered[0],))
                        emit("include-cycle", anchor, anchor_line,
                             f"#include cycle: {chain}; break the loop with "
                             "a forward declaration or by splitting the "
                             "shared types out")
                elif color[dst] == WHITE:
                    color[dst] = GREY
                    path.append(dst)
                    stack.append((dst, iter(edges[dst])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()

    for rel in sorted(edges):
        if color[rel] == WHITE:
            walk(rel)

    return findings


def iter_source_files(roots):
    for root in roots:
        if root.is_file():
            yield root
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/ and tools/ beside ci/)")
    parser.add_argument("--root", type=Path,
                        help="repo root paths are reported relative to "
                             "(default: inferred from this script's location)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any finding survives suppression")
    parser.add_argument("--json", metavar="PATH",
                        help="write a machine-readable report (use '-' for stdout)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check catalog and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name, summary in CHECKS.items():
            print(f"{name:32} {summary}")
        return 0

    root = (args.root or Path(__file__).resolve().parent.parent).resolve()
    if args.paths:
        roots = [Path(p).resolve() for p in args.paths]
    else:
        roots = [root / "src", root / "tools"]
    missing = [r for r in roots if not r.exists()]
    if missing:
        print(f"dsn-slint: no such path: {missing}", file=sys.stderr)
        return 2

    findings, errors, checked = [], [], 0
    graph_files = {}
    for path in iter_source_files(roots):
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"dsn-slint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        file_findings, file_errors = check_file(path, rel, text)
        findings.extend(file_findings)
        errors.extend(file_errors)
        graph_files[Path(rel).as_posix()] = text
        checked += 1

    # Cross-file pass (cycles + layering) over everything just scanned.
    findings.extend(check_include_graph(graph_files))

    findings.sort(key=lambda f: (str(f.path), f.line, f.check))
    all_reported = errors + findings

    if args.json:
        report = {
            "checked_files": checked,
            "strict": args.strict,
            "findings": [f.as_dict() for f in all_reported],
        }
        payload = json.dumps(report, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload)

    for f in all_reported:
        print(f.render(), file=sys.stderr)

    verdict_fail = bool(errors) or (args.strict and bool(findings))
    label = "FAIL" if verdict_fail else "PASS"
    print(f"dsn-slint: {label} ({checked} files, {len(findings)} finding(s), "
          f"{len(errors)} suppression error(s))")
    return 1 if verdict_fail else 0


if __name__ == "__main__":
    sys.exit(main())
