// Fixture: unordered container in a file WITHOUT the deterministic marker —
// out of the check's scope, must not fire.
#include <unordered_set>

bool seen(int id) {
  static std::unordered_set<int> ids;
  return !ids.insert(id).second;
}
