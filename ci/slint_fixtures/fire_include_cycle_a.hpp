// FIRE fixture for include-cycle (with fire_include_cycle_b.hpp): the two
// headers include each other. #pragma once makes this "work" by dropping
// whichever edge is reached second, so each TU sees a different half of the
// declarations.
#pragma once

#include "fire_include_cycle_b.hpp"

struct CycleA {
  int payload;
};
