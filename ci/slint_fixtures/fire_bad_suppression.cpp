// Fixture: malformed suppressions — a reason is mandatory and check names
// must exist. Both lines below are suppression-syntax findings.
#include <mutex>

// dsn-slint-ignore(annotated-mutex-only)
std::mutex no_reason_mutex;

// dsn-slint-ignore(no-such-check): the check name is misspelled
std::mutex unknown_check_mutex;
