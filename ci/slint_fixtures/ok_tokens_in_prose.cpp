// Fixture: every banned token appears only in comments or string literals,
// so nothing may fire. std::mutex, rand(), std::random_device,
// std::unordered_map — all prose.
// dsn-slint: deterministic
#include <string>

/* Block comment mentioning std::lock_guard<std::mutex> and srand(42). */
std::string banner() {
  return "std::unordered_map<int,int> and std::condition_variable and rand()";
}

const char* raw = R"(std::mutex rand( std::random_device)";
