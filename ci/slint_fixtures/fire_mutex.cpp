// Fixture: naked std lock primitives instead of dsn::Mutex/LockGuard.
#include <mutex>

int counter = 0;
std::mutex counter_mutex;

void bump() {
  std::lock_guard<std::mutex> lock(counter_mutex);
  ++counter;
}
