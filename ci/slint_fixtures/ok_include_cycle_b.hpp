// Leaf of the include-cycle OK fixture.
#pragma once

struct AcyclicB {
  int payload;
};
