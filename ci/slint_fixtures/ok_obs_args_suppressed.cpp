// Fixture: a side-effecting DSN_OBS_* argument, silenced with a reason.
struct Id {};
void fake_sink(Id, long);
#define DSN_OBS_ADD(id, delta) fake_sink(id, delta)

long packets = 0;

void record(Id id) {
  // dsn-slint-ignore(obs-args-pure): counter is itself obs-only state
  DSN_OBS_ADD(id, ++packets);
}
