// Second half of the include-cycle FIRE fixture.
#pragma once

#include "fire_include_cycle_a.hpp"

struct CycleB {
  int payload;
};
