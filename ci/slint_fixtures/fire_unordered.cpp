// Fixture: deterministic-marked file holding an unordered container.
// dsn-slint: deterministic
#include <string>
#include <unordered_map>

int count_names(const std::unordered_map<int, std::string>& names) {
  int total = 0;
  for (const auto& [id, name] : names) total += id;
  return total;
}
