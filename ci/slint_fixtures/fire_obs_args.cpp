// Fixture: side effects inside DSN_OBS_* macro arguments. Under -DDSN_OBS=0
// the arguments are discarded unevaluated, so the increments disappear.
struct Id {};
void fake_sink(Id, long);
#define DSN_OBS_ADD(id, delta) fake_sink(id, delta)
#define DSN_OBS_GAUGE_SET(id, value) fake_sink(id, value)

long packets = 0;

void record(Id id) {
  DSN_OBS_ADD(id, ++packets);
  DSN_OBS_GAUGE_SET(id, packets = 7);
}
