// Fixture: ambient randomness outside the seeded dsn::Rng entry points.
#include <cstdlib>
#include <random>

int noisy_pick(int bound) {
  std::random_device entropy;
  std::mt19937 gen(entropy());
  return static_cast<int>(gen() % bound) + rand() % 2;
}
