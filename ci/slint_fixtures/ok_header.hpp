// Fixture: a hygienic header — #pragma once present, no using-namespace
// (mentioning `using namespace std;` in a comment or "using namespace" in a
// string must not fire).
#pragma once

#include <string>

inline std::string describe() { return "using namespace is banned here"; }
