// Fixture: ambient randomness, acknowledged with per-line suppressions.
#include <random>

unsigned hardware_entropy() {
  // dsn-slint-ignore(seeded-rng-only): one-shot seed for an interactive demo
  std::random_device entropy;
  return entropy();
}
