// Fixture: pure DSN_OBS_* arguments — comparisons and casts are fine, and
// arguments may span lines; `==`, `!=`, `<=`, `>=` must not be mistaken for
// assignment.
struct Id {};
void fake_sink(Id, long);
#define DSN_OBS_ADD(id, delta) fake_sink(id, delta)

long packets = 0;

void record(Id id, long budget) {
  DSN_OBS_ADD(id, static_cast<long>(packets >= budget ? 0 : 1));
  DSN_OBS_ADD(id,
              packets == budget ? 2L
                                : 3L);
}
