// OK fixture for include-cycle: a plain DAG — a includes b, b includes
// nothing back. Must produce zero findings.
#pragma once

#include "ok_include_cycle_b.hpp"

struct AcyclicA {
  AcyclicB dependency;
};
