// Fixture: naked std lock silenced file-wide (e.g. interop with an external
// API that hands us a std::unique_lock).
// dsn-slint-ignore-file(annotated-mutex-only): exercises third-party lock interop
#include <mutex>

std::mutex handoff_mutex;

std::unique_lock<std::mutex> acquire_for_caller() {
  return std::unique_lock<std::mutex>(handoff_mutex);
}
