// Fixture: header without #pragma once and with a header-scope using-namespace.
#include <string>

using namespace std;

inline string greet() { return "hi"; }
