// Fixture: the same unordered usage, silenced per line with a reason.
// dsn-slint: deterministic
#include <string>
// dsn-slint-ignore(no-unordered-in-deterministic): lookup only, never iterated
#include <unordered_map>

int lookup(int id) {
  // dsn-slint-ignore(no-unordered-in-deterministic): lookup only, never iterated
  static std::unordered_map<int, int> cache;
  const auto it = cache.find(id);
  return it == cache.end() ? -1 : it->second;
}
