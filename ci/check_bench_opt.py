#!/usr/bin/env python3
"""CI gate for the committed shortcut-optimizer benchmark (BENCH_opt.json).

Validates a micro_opt JSON report. Two modes:

  * committed (default): the report is the repository-root BENCH_opt.json —
    the Pareto-front trajectory the optimizer promised. Beyond the shape,
    this asserts the structural headline claims: the sweep covers multiple
    topology families and sizes, at least one n >= 65536 row ran (the
    DSN-x-n comparison scale in EXPERIMENTS.md), and at least one row
    carries a passing exact-mode estimator cross-check.
  * --smoke: the report came from a fresh small-n CI run used as a
    correctness + JSON-shape smoke; sweep extents are not gated.

In BOTH modes every row's Pareto front must be a strict staircase (cable
strictly ascending, ASPL strictly descending — the front_2d invariant) and
must never be worse than the seed placement: some front point has cable and
ASPL both <= the seed's. These are deterministic optimizer invariants, not
runner-dependent measurements, so a smoke run gates them too.

Exits 1 listing every failed check — never just the first.
"""
import sys

from bench_gate import BenchGate

TOP_KEYS = {"bench", "unit", "passes", "iterations", "plateau", "seed",
            "results"}
ROW_KEYS = {"topology", "family", "n", "links", "shortcuts", "degree_min",
            "degree_max", "degree_avg", "sample_sources", "seed_point",
            "front", "archive_size", "proposals", "accepted", "invalid",
            "resweeps", "full_sweeps", "beats_seed",
            "best_cable_m_at_seed_aspl", "cable_saved_pct", "best_aspl",
            "wall_ms", "proposals_per_sec"}
POINT_KEYS = {"cable_m", "aspl", "max_normalized_load", "throughput_bound",
              "pass", "iteration"}

SCALE_N = 65536


def row_name(row):
    return f"(topology={row.get('topology')}, n={row.get('n')})"


def check_row(gate, path, row):
    name = row_name(row)
    if row["proposals"] <= 0 or row["proposals_per_sec"] <= 0:
        gate.fail(f"{path}: row {name} has non-positive throughput")

    seed = row["seed_point"]
    front = row["front"]
    for point in [seed] + front:
        missing = sorted(POINT_KEYS - set(point))
        if missing:
            gate.fail(f"{path}: row {name} has a front/seed point missing "
                      f"keys {missing}")
            return
    if not front:
        gate.fail(f"{path}: row {name} has an empty Pareto front")
        return

    # front_2d invariant: a strict staircase. Equal-cable or equal-ASPL
    # neighbors mean the dominance filter regressed.
    for a, b in zip(front, front[1:]):
        if not (b["cable_m"] > a["cable_m"] and b["aspl"] < a["aspl"]):
            gate.fail(f"{path}: row {name} front is not a strict staircase "
                      f"at cable {a['cable_m']} -> {b['cable_m']}, "
                      f"aspl {a['aspl']} -> {b['aspl']}")
            break

    # Never worse than the seed: the archive seeds from the unmodified
    # placement, so its staircase must contain a point at least as good on
    # both axes (the seed itself when nothing dominated it).
    if not any(p["cable_m"] <= seed["cable_m"] and p["aspl"] <= seed["aspl"]
               for p in front):
        gate.fail(f"{path}: row {name} front has no point covering the seed "
                  f"(cable <= {seed['cable_m']}, aspl <= {seed['aspl']})")
    if row["best_cable_m_at_seed_aspl"] > seed["cable_m"]:
        gate.fail(f"{path}: row {name} best_cable_m_at_seed_aspl "
                  f"{row['best_cable_m_at_seed_aspl']} exceeds the seed's "
                  f"{seed['cable_m']}")


def check_committed(gate, path, rows):
    families = {row["family"] for row in rows}
    ns = {row["n"] for row in rows}
    if len(families) < 2:
        gate.fail(f"{path}: sweep covers a single family {sorted(families)}; "
                  "need >= 2")
    if len(ns) < 2:
        gate.fail(f"{path}: sweep covers a single size {sorted(ns)}; need >= 2")
    if not any(row["n"] >= SCALE_N for row in rows):
        gate.fail(f"{path}: no n >= {SCALE_N} row — the DSN-x-n comparison "
                  "scale is gone")
    if not any(row.get("check") == "ok" for row in rows):
        gate.fail(f"{path}: no row carries a passing exact-mode estimator "
                  "cross-check")


GATE = BenchGate(name="opt", bench="micro_opt", unit="proposals_per_sec",
                 top_keys=TOP_KEYS, row_keys=ROW_KEYS, row_name=row_name,
                 check_row=check_row, check_committed=check_committed,
                 doc=__doc__,
                 smoke_help="fresh CI run: gate shape + front invariants + "
                            "estimator cross-checks only, no sweep-extent "
                            "gates")

if __name__ == "__main__":
    sys.exit(GATE.run())
