// Google-benchmark microbenchmark: simulator throughput in simulated cycles
// per second at a moderate load on the paper's 64-switch configuration.
//
// Supplies its own main so `--trace out.json` can be peeled off before the
// remaining flags go to the google-benchmark runner; with it, the whole
// benchmark run is captured as a Chrome trace (sim.run spans, channel
// occupancy counter tracks — view at ui.perfetto.dev).
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace {

void BM_SimulatorCycles(benchmark::State& state) {
  const auto topo = dsn::make_topology_by_name("dsn", 64);
  dsn::SimRouting routing(topo);
  dsn::AdaptiveUpDownPolicy policy(routing, 4);
  dsn::UniformTraffic traffic(64 * 4);
  dsn::SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = static_cast<std::uint64_t>(state.range(0));
  cfg.drain_cycles = 20'000;
  cfg.offered_gbps_per_host = 4.0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto res = dsn::run_simulation(topo, policy, traffic, cfg);
    benchmark::DoNotOptimize(res.avg_latency_ns);
    cycles += res.cycles_run;
  }
  state.counters["sim_cycles_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorCycles)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off --trace <path> / --trace=<path> before google-benchmark sees the
  // argument list (it rejects flags it does not know).
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;

  if (!trace_path.empty()) {
#if DSN_OBS
    dsn::obs::set_metrics_enabled(true);
    dsn::obs::start_trace();
#else
    std::cerr << "micro_sim: --trace needs a DSN_OBS=1 build "
                 "(instrumentation is compiled out)\n";
    return 2;
#endif
  }

  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

#if DSN_OBS
  if (!trace_path.empty() && dsn::obs::stop_trace(trace_path))
    std::cerr << "wrote Chrome trace to " << trace_path
              << " (open at ui.perfetto.dev)\n";
#endif
  return 0;
}
