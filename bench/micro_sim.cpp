// Microbenchmark for the active-set simulator core (dsn/sim/active_core.cpp)
// against the legacy full-scan core: simulated cycles per wall-clock second
// across network size, offered load and shard count, on the paper's DSN
// topology driven by the table-free custom routing policy (the only policy
// whose state is algebraic, so n = 65536 switches needs no routing tables).
//
// Emits a JSON report (stdout, and --json <path>) whose shape is tracked in
// BENCH_sim.json at the repository root — the committed perf trajectory
// future PRs regress against (ci/check_bench_sim.py gates the shape, not
// the absolute timings). Run with no arguments to reproduce the committed
// configuration:
//
//   build/bench/micro_sim --json BENCH_sim.json
//
// --check replays every legacy-core row against the active core and fails
// (exit 1) unless the SimResult JSON dumps are byte-identical, so CI can use
// a small --n-list run as a correctness + JSON-shape smoke without timing
// gates. The legacy core is skipped above --legacy-max-n switches: its
// per-cycle full scan is exactly the cost this engine removes, and at 65536
// switches one legacy run would dominate the whole sweep.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dsn/common/cli.hpp"
#include "dsn/common/json.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct TimedRun {
  std::string dump;
  std::uint64_t cycles = 0;
  double wall_ms = 0.0;
};

TimedRun time_run(const dsn::Topology& topo, dsn::SimRoutingPolicy& policy,
                  const dsn::TrafficPattern& traffic, const dsn::SimConfig& cfg,
                  std::uint64_t repeat) {
  TimedRun best;
  for (std::uint64_t r = 0; r < repeat; ++r) {
    dsn::Simulator sim(topo, policy, traffic, cfg);
    const auto t0 = Clock::now();
    const dsn::SimResult res = sim.run();
    const double took = ms_since(t0);
    if (r == 0 || took < best.wall_ms) {
      best.wall_ms = took;
      best.cycles = res.cycles_run;
      best.dump = dsn::to_json(res).dump();
    }
  }
  return best;
}

double cycles_per_sec(const TimedRun& run) {
  return run.wall_ms > 0.0
             ? static_cast<double>(run.cycles) / (run.wall_ms / 1'000.0)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli(
      "Active-set simulator core microbenchmark (baseline: the legacy "
      "full-scan core; both cores produce byte-identical SimResult)");
  cli.add_flag("n-list", "64,1024,16384,65536", "comma-separated switch counts");
  // 0.5 is the low-load headline point; 2 is a busy-but-unsaturated network
  // (past the knee the drain phase dominates wall time at n = 65536 without
  // telling us anything new about either core).
  cli.add_flag("load-list", "0.5,2", "offered Gbps per host");
  cli.add_flag("threads-list", "1,4", "active-core shard counts (sim_threads)");
  cli.add_flag("pattern", "uniform", "traffic pattern (see make_traffic)");
  cli.add_flag("warmup", "200", "warmup cycles");
  cli.add_flag("measure", "1000", "measurement cycles");
  cli.add_flag("drain", "30000", "drain-cap cycles");
  cli.add_flag("repeat", "1", "timing repetitions (best-of)");
  cli.add_flag("legacy", "true", "also time the legacy core and report speedup");
  cli.add_flag("legacy-max-n", "16384",
               "skip the legacy core above this switch count");
  cli.add_flag("check", "true",
               "fail unless legacy and active SimResult dumps are byte-identical");
  cli.add_flag("json", "", "also write the JSON report to this path");
  cli.add_flag("trace", "",
               "write a Chrome-trace JSON of the run (sim.run spans; view at "
               "ui.perfetto.dev)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) {
#if DSN_OBS
    dsn::obs::set_metrics_enabled(true);
    dsn::obs::start_trace();
#else
    std::cerr << "micro_sim: --trace needs a DSN_OBS=1 build "
                 "(instrumentation is compiled out)\n";
    return 2;
#endif
  }

  const auto repeat = std::max<std::uint64_t>(1, cli.get_uint("repeat"));
  const bool run_legacy = cli.get_bool("legacy");
  const std::uint64_t legacy_max_n = cli.get_uint("legacy-max-n");
  const bool check = cli.get_bool("check");
  const std::string pattern = cli.get("pattern");

  dsn::SimConfig base_cfg;
  base_cfg.warmup_cycles = cli.get_uint("warmup");
  base_cfg.measure_cycles = cli.get_uint("measure");
  base_cfg.drain_cycles = cli.get_uint("drain");

  bool all_ok = true;
  dsn::Json results = dsn::Json::array();
  for (const std::uint64_t n : cli.get_uint_list("n-list")) {
    const dsn::Dsn dsn_topo(static_cast<std::uint32_t>(n),
                            dsn::dsn_default_x(static_cast<std::uint32_t>(n)));
    const dsn::Topology& topo = dsn_topo.topology();
    dsn::DsnCustomPolicy policy(dsn_topo, base_cfg.vcs);
    const std::uint32_t hosts =
        static_cast<std::uint32_t>(n) * base_cfg.hosts_per_switch;
    const auto traffic = dsn::make_traffic(pattern, hosts);

    for (const double load : cli.get_double_list("load-list")) {
      dsn::SimConfig cfg = base_cfg;
      cfg.offered_gbps_per_host = load;

      TimedRun legacy;
      const bool timed_legacy = run_legacy && n <= legacy_max_n;
      if (timed_legacy) {
        cfg.legacy_core = true;
        legacy = time_run(topo, policy, *traffic, cfg, repeat);
      }

      for (const std::uint64_t threads : cli.get_uint_list("threads-list")) {
        cfg.legacy_core = false;
        cfg.sim_threads = static_cast<std::uint32_t>(threads);
        const TimedRun active = time_run(topo, policy, *traffic, cfg, repeat);

        dsn::Json row = dsn::Json::object();
        row.set("topology", topo.name);
        row.set("n", n);
        row.set("hosts", static_cast<std::uint64_t>(hosts));
        row.set("load_gbps_per_host", load);
        row.set("sim_threads", threads);
        row.set("cycles", active.cycles);
        row.set("wall_ms", active.wall_ms);
        row.set("cycles_per_sec", cycles_per_sec(active));
        if (timed_legacy) {
          row.set("legacy_wall_ms", legacy.wall_ms);
          row.set("legacy_cycles_per_sec", cycles_per_sec(legacy));
          row.set("speedup",
                  active.wall_ms > 0.0 ? legacy.wall_ms / active.wall_ms : 0.0);
          if (check) {
            const bool ok = active.dump == legacy.dump;
            row.set("check", ok ? "ok" : "MISMATCH");
            if (!ok) all_ok = false;
          }
        }
        results.push_back(std::move(row));
        std::cerr << "done " << topo.name << " load=" << load
                  << " threads=" << threads << "\n";
      }
    }
  }

  dsn::Json report = dsn::Json::object();
  report.set("bench", "micro_sim");
  report.set("unit", "cycles_per_sec");
  report.set("pattern", pattern);
  report.set("warmup_cycles", base_cfg.warmup_cycles);
  report.set("measure_cycles", base_cfg.measure_cycles);
  report.set("drain_cycles", base_cfg.drain_cycles);
  report.set("results", std::move(results));

  const std::string text = report.dump(2);
  std::cout << text << "\n";
  if (const std::string path = cli.get("json"); !path.empty()) {
    std::ofstream out(path);
    out << text << "\n";
    if (!out) {
      std::cerr << "failed to write " << path << "\n";
      return 2;
    }
  }

#if DSN_OBS
  if (!trace_path.empty() && dsn::obs::stop_trace(trace_path))
    std::cerr << "wrote Chrome trace to " << trace_path
              << " (open at ui.perfetto.dev)\n";
#endif

  if (check && !all_ok) {
    std::cerr << "CHECK FAILED: legacy and active SimResult dumps differ\n";
    return 1;
  }
  return 0;
}
