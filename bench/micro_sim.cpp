// Google-benchmark microbenchmark: simulator throughput in simulated cycles
// per second at a moderate load on the paper's 64-switch configuration.
#include <benchmark/benchmark.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace {

void BM_SimulatorCycles(benchmark::State& state) {
  const auto topo = dsn::make_topology_by_name("dsn", 64);
  dsn::SimRouting routing(topo);
  dsn::AdaptiveUpDownPolicy policy(routing, 4);
  dsn::UniformTraffic traffic(64 * 4);
  dsn::SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = static_cast<std::uint64_t>(state.range(0));
  cfg.drain_cycles = 20'000;
  cfg.offered_gbps_per_host = 4.0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto res = dsn::run_simulation(topo, policy, traffic, cfg);
    benchmark::DoNotOptimize(res.avg_latency_ns);
    cycles += res.cycles_run;
  }
  state.counters["sim_cycles_per_s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorCycles)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace
