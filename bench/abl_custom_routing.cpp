// Ablation: §VII's closing remark — the DSN custom routing balances traffic
// better than plain up*/down*.
//
// Two views:
//  1. Analytic: count directed-link usages over all ordered (s, t) routes
//     (the expected link load under uniform traffic). Up*/down* concentrates
//     load near the tree root; the custom routing spreads it across the
//     shortcut hierarchy.
//  2. Simulated: run the cycle-accurate simulator under each scheme and
//     report measured link-flit balance plus latency/throughput.
#include <iostream>
#include <memory>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/routing/updown.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn.hpp"

namespace {

/// Directed-link usage counts over all ordered pairs, keyed 2*link + dir.
std::vector<std::uint64_t> count_usages(
    const dsn::Graph& g,
    const std::function<std::vector<dsn::NodeId>(dsn::NodeId, dsn::NodeId)>& path_fn) {
  std::vector<std::uint64_t> counts(g.num_links() * 2, 0);
  for (dsn::NodeId s = 0; s < g.num_nodes(); ++s) {
    for (dsn::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const auto path = path_fn(s, t);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const dsn::LinkId link = g.find_link(path[i], path[i + 1]);
        const auto [a, b] = g.link_endpoints(link);
        counts[2 * link + (path[i] == a ? 0 : 1)]++;
      }
    }
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: custom routing vs up*/down* traffic balance on DSN.");
  cli.add_flag("n", "64", "number of switches");
  cli.add_flag("load", "2.0", "offered load in Gbit/s per host");
  cli.add_flag("warmup", "10000", "warmup cycles");
  cli.add_flag("measure", "30000", "measurement cycles");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const double load = cli.get_double("load");

  dsn::SimConfig cfg;
  cfg.warmup_cycles = cli.get_uint("warmup");
  cfg.measure_cycles = cli.get_uint("measure");
  cfg.drain_cycles = 4 * cfg.measure_cycles;
  cfg.offered_gbps_per_host = load;

  const dsn::Dsn dsn_struct(n, dsn::dsn_default_x(n));
  const dsn::Topology& topo = dsn_struct.topology();
  dsn::SimRouting routing(topo);
  dsn::UniformTraffic traffic(n * cfg.hosts_per_switch);

  // ---- Analytic all-pairs link-usage balance (paper's balance claim). ----
  {
    dsn::Table table({"routing", "mean usage", "max usage", "max/mean", "CoV"});
    const auto report = [&](const char* label, const std::vector<std::uint64_t>& counts) {
      const auto s = dsn::summarize_link_loads(counts);
      table.row()
          .cell(label)
          .cell(s.mean_flits, 1)
          .cell(s.max_flits, 1)
          .cell(s.max_over_mean)
          .cell(s.coefficient_of_variation);
    };
    const dsn::UpDownRouting ud(topo.graph, 0);
    report("up*/down*", count_usages(topo.graph, [&](dsn::NodeId s, dsn::NodeId t) {
             return ud.route(s, t);
           }));
    const dsn::DsnRouter router(dsn_struct);
    report("DSN custom", count_usages(topo.graph, [&](dsn::NodeId s, dsn::NodeId t) {
             const dsn::Route r = router.route(s, t);
             std::vector<dsn::NodeId> path{r.src};
             for (const auto& h : r.hops) path.push_back(h.to);
             return path;
           }));
    table.print(std::cout,
                "Analytic link-usage balance over all ordered pairs (uniform demand)");
  }

  dsn::Table table({"routing", "accepted [Gb/s/host]", "latency [ns]", "avg hops",
                    "link max/mean", "link CoV", "status"});
  const auto run_one = [&](const char* label, dsn::SimRoutingPolicy& policy) {
    dsn::Simulator sim(topo, policy, traffic, cfg);
    const dsn::SimResult res = sim.run();
    const auto loads = dsn::summarize_link_loads(sim.link_flit_counts());
    table.row()
        .cell(label)
        .cell(res.accepted_gbps_per_host)
        .cell(res.avg_latency_ns, 1)
        .cell(res.avg_hops)
        .cell(loads.max_over_mean)
        .cell(loads.coefficient_of_variation)
        .cell(res.deadlock ? "DEADLOCK" : (res.drained ? "ok" : "saturated"));
  };

  {
    dsn::UpDownOnlyPolicy policy(routing, cfg.vcs);
    run_one("up*/down* only (4 VCs)", policy);
  }
  {
    dsn::AdaptiveUpDownPolicy policy(routing, cfg.vcs);
    run_one("adaptive + up*/down* escape (4 VCs)", policy);
  }
  {
    dsn::DsnCustomPolicy policy(dsn_struct, cfg.vcs);
    run_one("DSN custom (4 VCs, 1/class)", policy);
  }
  {
    // Give the custom scheme two VCs per channel class (8 VCs total) to show
    // where its throughput limit comes from: per-class HOL blocking, not the
    // path structure itself.
    dsn::SimConfig wide = cfg;
    wide.vcs = 8;
    dsn::DsnCustomPolicy policy(dsn_struct, wide.vcs);
    dsn::Simulator sim(topo, policy, traffic, wide);
    const dsn::SimResult res = sim.run();
    const auto loads = dsn::summarize_link_loads(sim.link_flit_counts());
    table.row()
        .cell("DSN custom (8 VCs, 2/class)")
        .cell(res.accepted_gbps_per_host)
        .cell(res.avg_latency_ns, 1)
        .cell(res.avg_hops)
        .cell(loads.max_over_mean)
        .cell(loads.coefficient_of_variation)
        .cell(res.deadlock ? "DEADLOCK" : (res.drained ? "ok" : "saturated"));
  }

  table.print(std::cout, "Custom routing traffic balance on DSN-" +
                             std::to_string(dsn::dsn_default_x(n)) + "-" +
                             std::to_string(n) + " @ " + std::to_string(load) +
                             " Gb/s/host uniform");
  return 0;
}
