// Ablation: path diversity of the compared topologies — average and minimum
// number of edge-disjoint paths over sampled pairs, and the length spread of
// the first k shortest paths. Diversity feeds both fault tolerance and the
// effectiveness of adaptive routing.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/paths.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: edge-disjoint path diversity and k-shortest path spread.");
  cli.add_flag("n", "128", "network size");
  cli.add_flag("pairs", "60", "sampled (s, t) pairs");
  cli.add_flag("k", "4", "k for k-shortest paths");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto pairs = cli.get_uint("pairs");
  const auto k = static_cast<std::size_t>(cli.get_uint("k"));
  const auto seed = cli.get_uint("seed");

  dsn::Table table({"topology", "avg disjoint", "min disjoint", "edge conn",
                    "avg k-th/1st len"});
  for (const std::string family : {"torus", "random", "dsn", "dsn-bidir", "ring"}) {
    const dsn::Topology topo = dsn::make_topology_by_name(family, n, seed);
    dsn::Rng rng(seed);
    double disjoint_sum = 0;
    std::uint32_t disjoint_min = 0xffffffffu;
    double spread_sum = 0;
    std::uint64_t spread_count = 0;
    for (std::uint64_t i = 0; i < pairs; ++i) {
      const auto s = static_cast<dsn::NodeId>(rng.next_below(n));
      auto t = static_cast<dsn::NodeId>(rng.next_below(n - 1));
      if (t >= s) ++t;
      const std::uint32_t dj = dsn::edge_disjoint_paths(topo.graph, s, t);
      disjoint_sum += dj;
      disjoint_min = std::min(disjoint_min, dj);
      const auto ksp = dsn::yen_k_shortest_paths(topo.graph, s, t, k);
      if (ksp.size() == k) {
        spread_sum += static_cast<double>(ksp.back().size() - 1) /
                      static_cast<double>(ksp.front().size() - 1);
        ++spread_count;
      }
    }
    table.row()
        .cell(family)
        .cell(disjoint_sum / static_cast<double>(pairs))
        .cell(static_cast<std::uint64_t>(disjoint_min))
        .cell(static_cast<std::uint64_t>(dsn::edge_connectivity(topo.graph)))
        .cell(spread_count ? spread_sum / static_cast<double>(spread_count) : 0.0);
  }
  table.print(std::cout, "Path diversity at n = " + std::to_string(n) + " (" +
                             std::to_string(pairs) + " sampled pairs, k = " +
                             std::to_string(k) + ")");
  return 0;
}
