// Ablation: sensitivity of the Figure 7-9 comparison to how "RANDOM"
// (DLN-2-2 [3]) is constructed. The paper's description admits two readings:
//  (a) exact-degree: ring + two superposed random perfect matchings
//      (every node gets exactly 2 shortcut endpoints, degree 4) — our default;
//  (b) random-endpoints: every node originates 2 shortcuts to uniform random
//      endpoints (average degree 6, spread of degrees).
// Plus the Jellyfish-style 4-regular random graph as a third reference.
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/generators.hpp"

namespace {

void add_row(dsn::Table& table, std::uint64_t n, const dsn::Topology& topo) {
  const auto deg = dsn::compute_degree_stats(topo.graph);
  const auto paths = dsn::compute_path_stats(topo.graph);
  const auto cable = dsn::compute_cable_report(topo);
  table.row()
      .cell(n)
      .cell(topo.name)
      .cell(deg.avg_degree)
      .cell(static_cast<std::uint64_t>(deg.max_degree))
      .cell(static_cast<std::uint64_t>(paths.diameter))
      .cell(paths.avg_shortest_path)
      .cell(cable.average_m);
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: RANDOM (DLN-2-2) construction sensitivity.");
  cli.add_flag("sizes", "128,512,2048", "comma-separated switch counts");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = cli.get_uint("seed");
  dsn::Table table({"N", "construction", "avg deg", "max deg", "diameter", "ASPL",
                    "avg cable [m]"});
  for (const auto size : cli.get_uint_list("sizes")) {
    const auto n = static_cast<std::uint32_t>(size);
    add_row(table, size, dsn::make_dln_random(n, 2, 2, seed));
    add_row(table, size, dsn::make_dln_random_endpoints(n, 2, 2, seed));
    add_row(table, size, dsn::make_random_regular(n, 4, seed));
    add_row(table, size, dsn::make_dsn(n, dsn::dsn_default_x(n)));
  }
  table.print(std::cout,
              "RANDOM construction sensitivity: matchings vs random endpoints vs "
              "4-regular, against DSN");
  std::cout << "Reading: every RANDOM realization beats DSN on hops but pays more\n"
               "cable; the Figure 7-9 orderings do not depend on the construction.\n";
  return 0;
}
