// Ablation: the shortcut-set size x (DESIGN.md design-choice sweep).
// DSN-x is defined for 1 <= x <= p-1; the paper's theorems require
// x > p - log p. This sweep shows how diameter, ASPL, routing diameter and
// cable length trade off as x shrinks.
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/math.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: shortcut-set size x for DSN-x-n.");
  cli.add_flag("n", "512", "network size");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const std::uint32_t p = dsn::ilog2_ceil(n);

  dsn::Table table({"x", "premise x>p-log p", "links", "avg deg", "diameter", "ASPL",
                    "route diam", "E[route]", "avg cable [m]"});
  for (std::uint32_t x = 1; x <= p - 1; ++x) {
    const dsn::Dsn d(n, x);
    const auto paths = dsn::compute_path_stats(d.topology().graph);
    const dsn::DsnRouter router(d);
    const auto scan = dsn::scan_all_pairs(router);
    const auto cable = dsn::compute_cable_report(d.topology());
    const bool premise = x > p - dsn::ilog2_ceil(p);
    table.row()
        .cell(static_cast<std::uint64_t>(x))
        .cell(premise ? "yes" : "no")
        .cell(static_cast<std::uint64_t>(d.topology().graph.num_links()))
        .cell(d.topology().graph.average_degree())
        .cell(static_cast<std::uint64_t>(paths.diameter))
        .cell(paths.avg_shortest_path)
        .cell(static_cast<std::uint64_t>(scan.max_hops))
        .cell(scan.avg_hops)
        .cell(cable.average_m);
  }
  table.print(std::cout, "Ablation: DSN-x-" + std::to_string(n) +
                             " over the shortcut-set size x (p = " + std::to_string(p) + ")");
  return 0;
}
