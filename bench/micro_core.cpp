// Google-benchmark microbenchmarks for the substrate: topology construction,
// BFS/APSP metrics, DSN custom routing and up*/down* table construction.
#include <benchmark/benchmark.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/updown.hpp"
#include "dsn/topology/dsn.hpp"

namespace {

void BM_BuildDsn(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    dsn::Dsn d(n, dsn::dsn_default_x(n));
    benchmark::DoNotOptimize(d.topology().graph.num_links());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildDsn)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_BuildRandom(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto t = dsn::make_topology_by_name("random", n, seed++);
    benchmark::DoNotOptimize(t.graph.num_links());
  }
}
BENCHMARK(BM_BuildRandom)->RangeMultiplier(4)->Range(64, 1024);

void BM_Bfs(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto topo = dsn::make_topology_by_name("dsn", n);
  for (auto _ : state) {
    auto d = dsn::bfs_distances(topo.graph, 0);
    benchmark::DoNotOptimize(d.back());
  }
}
BENCHMARK(BM_Bfs)->RangeMultiplier(4)->Range(64, 4096);

void BM_PathStats(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto topo = dsn::make_topology_by_name("dsn", n);
  for (auto _ : state) {
    auto s = dsn::compute_path_stats(topo.graph);
    benchmark::DoNotOptimize(s.diameter);
  }
}
BENCHMARK(BM_PathStats)->RangeMultiplier(4)->Range(64, 1024);

void BM_DsnRoute(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dsn::Dsn d(n, dsn::dsn_default_x(n));
  const dsn::DsnRouter router(d);
  dsn::NodeId s = 0, t = n / 2;
  for (auto _ : state) {
    auto r = router.route(s, t);
    benchmark::DoNotOptimize(r.length());
    s = (s + 7) % n;
    t = (t + 13) % n;
  }
}
BENCHMARK(BM_DsnRoute)->RangeMultiplier(4)->Range(64, 4096);

void BM_UpDownTables(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto topo = dsn::make_topology_by_name("dsn", n);
  for (auto _ : state) {
    dsn::UpDownRouting r(topo.graph, 0);
    benchmark::DoNotOptimize(r.legal_distance(0, n - 1));
  }
}
BENCHMARK(BM_UpDownTables)->RangeMultiplier(4)->Range(64, 512);

void BM_BuildDsnCdg(benchmark::State& state) {
  // All-ordered-pairs CDG construction on DSN-2-n, the low-x configuration
  // whose routes degenerate toward ring walks — the stress case for the
  // flat-hash channel index (total hops grow ~ n^2 * n/8 once the shortcut
  // premise x > p - log p fails). One iteration per size: at n = 4096 a
  // single build walks billions of hops, so this records wall time rather
  // than a statistically tight mean.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dsn::Dsn d(n, 2);
  for (auto _ : state) {
    auto cdg = dsn::build_dsn_cdg(d, /*extended=*/false);
    benchmark::DoNotOptimize(cdg.num_dependencies());
    state.counters["channels"] = static_cast<double>(cdg.num_channels());
  }
}
BENCHMARK(BM_BuildDsnCdg)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
