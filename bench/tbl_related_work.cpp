// §III related-work table: measured diameter-and-degree of the shuffle-based
// and hierarchical topologies the paper cites, next to DSN at comparable
// sizes. Paper quotes: De Bruijn 12-and-4 at 3,072 vertices, Kautz 11-and-4,
// CCC 23-and-3 (~4,608 vertices).
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/related.hpp"

namespace {

void add_row(dsn::Table& table, const dsn::Topology& topo) {
  const auto deg = dsn::compute_degree_stats(topo.graph);
  const auto paths = dsn::compute_path_stats(topo.graph);
  table.row()
      .cell(topo.name)
      .cell(static_cast<std::uint64_t>(topo.num_nodes()))
      .cell(static_cast<std::uint64_t>(paths.diameter))
      .cell(static_cast<std::uint64_t>(deg.max_degree))
      .cell(deg.avg_degree)
      .cell(paths.avg_shortest_path);
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli("Section III related-work topologies: measured diameter-and-degree.");
  if (!cli.parse(argc, argv)) return 0;

  dsn::Table table({"topology", "N", "diameter", "max deg", "avg deg", "ASPL"});
  add_row(table, dsn::make_generalized_de_bruijn(3072, 2));  // paper: 12-and-4
  add_row(table, dsn::make_generalized_kautz(3072, 2));      // paper: 11-and-4
  add_row(table, dsn::make_cube_connected_cycles(9));        // 4608 nodes; paper: 23-and-3
  add_row(table, dsn::make_dsn(3072, dsn::dsn_default_x(3072)));
  add_row(table, dsn::make_dsn(4608, dsn::dsn_default_x(4608)));
  table.print(std::cout,
              "Related low-degree topologies (paper Section III) vs DSN");
  std::cout << "Paper quotes: De Bruijn 12-and-4 @3072, Kautz 11-and-4, CCC 23-and-3.\n";
  return 0;
}
