// Ablation: layout optimization (the §III context of [11], "layout-conscious
// random topologies"). Simulated annealing re-places switches in cabinets to
// minimize total cable; even so, the random topology cannot close the gap to
// DSN's naturally linear placement.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/layout/optimize.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: simulated-annealing cabinet placement optimization.");
  cli.add_flag("n", "256", "network size");
  cli.add_flag("iters", "200000", "annealing iterations");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  dsn::PlacementOptimizerConfig opt;
  opt.iterations = cli.get_uint("iters");
  opt.seed = cli.get_uint("seed");
  const dsn::MachineRoomConfig room;

  dsn::Table table({"topology", "linear total [m]", "optimized total [m]",
                    "improvement", "opt avg [m]"});
  for (const std::string family : {"torus", "random", "dsn", "dsn-bidir"}) {
    const dsn::Topology topo = dsn::make_topology_by_name(family, n, opt.seed);
    const auto placed = dsn::optimize_placement(topo, room, opt);
    const auto report =
        dsn::compute_cable_report_with_slots(topo, room, placed.slot_of);
    table.row()
        .cell(family)
        .cell(placed.initial_total_m, 0)
        .cell(placed.optimized_total_m, 0)
        .cell(std::to_string(static_cast<int>(
                  100.0 * (1.0 - placed.optimized_total_m /
                                     std::max(1.0, placed.initial_total_m)) +
                  0.5)) +
              "%")
        .cell(report.average_m);
  }
  table.print(std::cout, "Cabinet placement optimization at n = " + std::to_string(n) +
                             " (" + std::to_string(opt.iterations) + " SA iterations)");
  std::cout << "Note: the 'linear total' column uses slot-index placement, which for\n"
               "tori differs from the natural 2-D tiling used in Figure 9.\n";
  return 0;
}
