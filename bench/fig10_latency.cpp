// Figure 10: latency vs accepted traffic for DSN, torus and RANDOM (degree 4)
// under (a) uniform, (b) bit-reversal and (c) neighboring traffic.
//
// Paper setup (§VII-A): 64 switches x 4 hosts, virtual cut-through, 4 VCs,
// >100 ns per-hop header latency, 20 ns injection+link delay, 33-flit
// packets, 256-bit flits, 96 Gbps links, topology-agnostic adaptive routing
// with up*/down* escape paths.
#include <fstream>
#include <iostream>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Figure 10 reproduction: latency vs accepted traffic.");
  cli.add_flag("n", "64", "number of switches");
  cli.add_flag("loads", "1,2,3,4,5,6,7,8,9,10,11,12",
               "offered loads in Gbit/s per host");
  cli.add_flag("traffics", "uniform,bit-reversal,neighboring",
               "traffic patterns to sweep");
  cli.add_flag("seed", "1", "seed for the random topology and traffic");
  cli.add_flag("warmup", "10000", "warmup cycles");
  cli.add_flag("measure", "30000", "measurement cycles");
  cli.add_flag("drain", "80000", "drain cycle cap");
  cli.add_flag("quick", "false", "short run (fewer cycles) for CI/smoke use");
  cli.add_flag("seeds", "1", "independent replications per point (mean +/- sd)");
  cli.add_flag("policy", "adaptive-updown",
               "adaptive-updown | updown-only | dsn-custom");
  cli.add_flag("csv", "", "also write each traffic's table to <csv>.<traffic>.csv");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto loads = cli.get_double_list("loads");
  const auto seed = cli.get_uint("seed");

  dsn::SimConfig sim;
  sim.seed = seed;
  if (cli.get_bool("quick")) {
    sim.warmup_cycles = 4'000;
    sim.measure_cycles = 10'000;
    sim.drain_cycles = 40'000;
  } else {
    sim.warmup_cycles = cli.get_uint("warmup");
    sim.measure_cycles = cli.get_uint("measure");
    sim.drain_cycles = cli.get_uint("drain");
  }

  std::string traffics_flag = cli.get("traffics");
  std::vector<std::string> traffics;
  for (std::size_t pos = 0; pos != std::string::npos;) {
    const auto next = traffics_flag.find(',', pos);
    traffics.push_back(traffics_flag.substr(pos, next - pos));
    pos = next == std::string::npos ? next : next + 1;
  }

  const auto replicas = static_cast<std::uint32_t>(cli.get_uint("seeds"));
  for (const auto& traffic : traffics) {
    dsn::Table table({"topology", "offered [Gb/s/host]", "accepted [Gb/s/host]",
                      "latency [ns]", "+/- sd", "p99 [ns]", "avg hops", "status"});
    for (const auto& family : dsn::paper_topology_trio()) {
      const dsn::Topology topo = dsn::make_topology_by_name(family, n, seed);
      dsn::LatencySweepConfig sweep;
      sweep.traffic = traffic;
      sweep.offered_gbps = loads;
      sweep.sim = sim;
      sweep.replicas = replicas;
      sweep.policy = cli.get("policy");
      const auto points = dsn::run_latency_sweep(topo, sweep);
      for (const auto& pt : points) {
        table.row()
            .cell(family)
            .cell(pt.offered_gbps)
            .cell(pt.accepted_gbps)
            .cell(pt.avg_latency_ns, 1)
            .cell(pt.latency_stddev_ns, 1)
            .cell(pt.p99_latency_ns, 1)
            .cell(pt.avg_hops)
            .cell(pt.deadlock ? "DEADLOCK" : (pt.drained ? "ok" : "saturated"));
      }
    }
    table.print(std::cout, "Figure 10: latency vs accepted traffic — " + traffic +
                               " traffic, " + std::to_string(n) + " switches");
    if (!cli.get("csv").empty()) {
      const std::string path = cli.get("csv") + "." + traffic + ".csv";
      std::ofstream(path) << table.to_csv();
      std::cout << "wrote " << path << "\n";
    }
  }
  return 0;
}
