// Ablation: estimated bisection width of the compared topologies — the
// throughput-scalability axis that complements the latency results of the
// paper (cf. Jellyfish's random-graph argument).
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/bisection.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: estimated bisection width (KL-refined upper bound).");
  cli.add_flag("sizes", "64,128,256,512", "comma-separated switch counts");
  cli.add_flag("seed", "1", "seed");
  cli.add_flag("starts", "4", "random KL starts per estimate");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = cli.get_uint("seed");
  const auto starts = static_cast<int>(cli.get_uint("starts"));

  dsn::Table table({"N", "topology", "bisection links", "links/node-pair",
                    "per-node"});
  for (const auto size : cli.get_uint_list("sizes")) {
    const auto n = static_cast<std::uint32_t>(size);
    for (const std::string family : {"torus", "random", "dsn", "dsn-bidir", "ring"}) {
      const dsn::Topology topo = dsn::make_topology_by_name(family, n, seed);
      const auto r = dsn::estimate_bisection(topo.graph, seed, starts);
      table.row()
          .cell(size)
          .cell(family)
          .cell(r.cut_links)
          .cell(static_cast<double>(r.cut_links) /
                    static_cast<double>(topo.graph.num_links()),
                3)
          .cell(r.per_node(), 3);
    }
  }
  table.print(std::cout, "Estimated bisection width (upper bound via Kernighan-Lin)");
  return 0;
}
