// Microbenchmark for the flow-level simulation tier (dsn/flow): wall time
// and simulated flows per second for datacenter workloads across topology
// families and sizes, up to the million-host scale point the flit simulator
// cannot reach (262144 switches x 4 hosts = 1048576 hosts).
//
// Emits a JSON report (stdout, and --json <path>) whose shape is tracked in
// BENCH_flow.json at the repository root — the committed scale trajectory
// future PRs regress against (ci/check_bench_flow.py gates the shape, the
// million-host row, convergence and the water-filling round ceiling, not the
// absolute timings). Run with no arguments to reproduce the committed
// configuration:
//
//   build/bench/micro_flow --json BENCH_flow.json
//
// Rows with n <= --verify-max-n run with the per-solve max-min invariant
// check enabled and carry a "check" field; any violation fails the bench
// (exit 1), so CI can use a small --n-list run as a correctness + JSON-shape
// smoke without timing gates.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/json.hpp"
#include "dsn/flow/flow_sim.hpp"
#include "dsn/flow/workload.hpp"
#include "dsn/topology/topology.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

struct TimedRun {
  dsn::flow::FlowResult res;
  double wall_ms = 0.0;
};

TimedRun time_run(const dsn::Topology& topo, const dsn::flow::FlowConfig& cfg,
                  const std::string& workload, const dsn::flow::WorkloadParams& params,
                  std::uint64_t repeat) {
  TimedRun best;
  for (std::uint64_t r = 0; r < repeat; ++r) {
    dsn::flow::FlowSimulator sim(topo, cfg);
    const std::unique_ptr<dsn::flow::WorkloadDriver> driver =
        dsn::flow::make_workload(workload, params);
    const auto t0 = Clock::now();
    dsn::flow::FlowResult res = sim.run(*driver);
    const double took = ms_since(t0);
    if (r == 0 || took < best.wall_ms) {
      best.wall_ms = took;
      best.res = std::move(res);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli(
      "Flow-tier scale microbenchmark: datacenter workloads on the fluid "
      "max-min simulator across topology families up to a million hosts");
  cli.add_flag("topology-list", "dsn,dln,random-regular",
               "comma-separated factory names (see make_topology_by_name)");
  // 4096 switches is the cross-checkable small end; 262144 x 4 hosts/switch
  // is the million-host scale headline the flit simulator cannot reach.
  cli.add_flag("n-list", "4096,262144", "comma-separated switch counts");
  cli.add_flag("workload-list", "hdfs-write,shuffle",
               "comma-separated workload names (see workload_names)");
  cli.add_flag("clients", "1024", "workload participants");
  // Shuffle emits clients^2 fetches, so it gets its own participant count:
  // 1024 mappers x 1024 reducers is a million flows per cell, which at the
  // 262144-switch scale point is tens of minutes of water-filling for the
  // same flows-per-second figure 256^2 measures in under a minute.
  cli.add_flag("shuffle-clients", "256", "workload participants for shuffle");
  cli.add_flag("units", "8", "work units per participant");
  cli.add_flag("unit-flits", "512", "flits per work unit");
  cli.add_flag("window", "8", "concurrent flows per participant");
  cli.add_flag("rack-hosts", "32", "hosts per rack for replica placement");
  cli.add_flag("hosts-per-switch", "4", "hosts attached to each switch");
  // Event-exact stepping (min-epoch 1) solves once per completion — at a
  // million flows that is the entire wall time of the bench. 512 cycles
  // batches a congestion window per solve without moving the makespan.
  cli.add_flag("min-epoch", "512", "epoch floor in cycles");
  cli.add_flag("seed", "1", "placement / generator seed");
  cli.add_flag("shards", "0", "solver shard count (0 = auto; result-invariant)");
  cli.add_flag("verify-max-n", "65536",
               "run the max-min invariant check on rows up to this n");
  cli.add_flag("bfs-max-n", "16384",
               "skip cells whose route mode is per-pair BFS above this n "
               "(BFS frontiers dominate the sweep at 100k+ switches; the "
               "algebraic dsn/dln modes carry the scale rows)");
  cli.add_flag("repeat", "1", "timing repetitions (best-of)");
  cli.add_flag("json", "", "also write the JSON report to this path");
  if (!cli.parse(argc, argv)) return 0;

  const auto repeat = std::max<std::uint64_t>(1, cli.get_uint("repeat"));
  const std::uint64_t verify_max_n = cli.get_uint("verify-max-n");
  const std::uint64_t seed = cli.get_uint("seed");

  dsn::flow::FlowConfig base_cfg;
  base_cfg.hosts_per_switch =
      static_cast<std::uint32_t>(cli.get_uint("hosts-per-switch"));
  base_cfg.min_epoch_cycles = cli.get_uint("min-epoch");
  base_cfg.shards = static_cast<std::uint32_t>(cli.get_uint("shards"));

  bool all_ok = true;
  dsn::Json results = dsn::Json::array();
  for (const std::uint64_t n : cli.get_uint_list("n-list")) {
    for (const std::string& tname : split_list(cli.get("topology-list"))) {
      const dsn::Topology topo =
          dsn::make_topology_by_name(tname, static_cast<std::uint32_t>(n), seed);

      dsn::flow::WorkloadParams params;
      params.hosts = static_cast<std::uint32_t>(n) * base_cfg.hosts_per_switch;
      params.rack_hosts = static_cast<std::uint32_t>(cli.get_uint("rack-hosts"));
      params.clients = static_cast<std::uint32_t>(cli.get_uint("clients"));
      params.units = static_cast<std::uint32_t>(cli.get_uint("units"));
      params.unit_flits = cli.get_uint("unit-flits");
      params.window = static_cast<std::uint32_t>(cli.get_uint("window"));
      params.seed = seed;

      {
        const dsn::flow::FlowSimulator probe(topo, base_cfg);
        if (probe.routes().mode() == "bfs" && n > cli.get_uint("bfs-max-n")) {
          std::cerr << "skip " << topo.name
                    << ": per-pair BFS routes above --bfs-max-n\n";
          continue;
        }
      }

      for (const std::string& workload : split_list(cli.get("workload-list"))) {
        dsn::flow::FlowConfig cfg = base_cfg;
        cfg.verify = n <= verify_max_n;
        dsn::flow::WorkloadParams wl_params = params;
        if (workload == "shuffle") {
          wl_params.clients =
              static_cast<std::uint32_t>(cli.get_uint("shuffle-clients"));
        }
        const TimedRun run = time_run(topo, cfg, workload, wl_params, repeat);
        const dsn::flow::FlowResult& res = run.res;

        dsn::Json row = dsn::Json::object();
        row.set("topology", topo.name);
        row.set("n", n);
        row.set("hosts", res.hosts);
        row.set("workload", workload);
        row.set("flows", res.flows);
        row.set("flits", res.flits_total);
        row.set("epochs", res.epochs);
        row.set("waterfill_rounds_max", static_cast<std::uint64_t>(res.max_waterfill_rounds));
        row.set("waterfill_rounds_total", res.waterfill_rounds_total);
        row.set("converged", res.converged);
        row.set("makespan_cycles", res.makespan_cycles);
        row.set("per_host_flits_per_cycle", res.per_host_flits_per_cycle);
        row.set("wall_ms", run.wall_ms);
        row.set("flows_per_sec",
                run.wall_ms > 0.0
                    ? static_cast<double>(res.flows_completed) / (run.wall_ms / 1'000.0)
                    : 0.0);
        if (cfg.verify) {
          const bool ok = res.verify_violations == 0;
          row.set("check", ok ? "ok" : "max-min-violated");
          if (!ok) {
            all_ok = false;
            std::cerr << "max-min violated: " << res.verify_first << "\n";
          }
        }
        if (!res.converged) all_ok = false;
        results.push_back(std::move(row));
        std::cerr << "done " << topo.name << " workload=" << workload
                  << " wall_ms=" << run.wall_ms << "\n";
      }
    }
  }

  dsn::Json report = dsn::Json::object();
  report.set("bench", "micro_flow");
  report.set("unit", "flows_per_sec");
  report.set("clients", cli.get_uint("clients"));
  report.set("shuffle_clients", cli.get_uint("shuffle-clients"));
  report.set("units", cli.get_uint("units"));
  report.set("unit_flits", cli.get_uint("unit-flits"));
  report.set("window", cli.get_uint("window"));
  report.set("min_epoch_cycles", base_cfg.min_epoch_cycles);
  report.set("results", std::move(results));

  const std::string text = report.dump(2);
  std::cout << text << "\n";
  if (const std::string path = cli.get("json"); !path.empty()) {
    std::ofstream out(path);
    out << text << "\n";
    if (!out) {
      std::cerr << "failed to write " << path << "\n";
      return 2;
    }
  }

  if (!all_ok) {
    std::cerr << "CHECK FAILED: a run did not converge or violated max-min\n";
    return 1;
  }
  return 0;
}
