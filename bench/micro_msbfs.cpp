// Microbenchmark for the CSR + 64-way bit-parallel MS-BFS all-pairs engine
// (dsn/graph/csr.hpp, dsn/graph/msbfs.hpp) against the pre-CSR baseline: one
// adjacency-list BFS per source merged under a mutex, exactly as
// compute_path_stats shipped before the CSR rewrite.
//
// Emits a JSON report (stdout, and --json <path>) whose shape is tracked in
// BENCH_graph.json at the repository root — the committed perf trajectory
// future PRs regress against. Run with no arguments to reproduce the
// committed configuration:
//
//   build/bench/micro_msbfs --json BENCH_graph.json
//
// --check replays every configuration through both implementations and fails
// (exit 1) unless the PathStats agree field for field, so CI can use a small
// --n-list run as a correctness + JSON-shape smoke without timing gates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/json.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/csr.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/msbfs.hpp"
#include "dsn/obs/obs.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// The pre-CSR compute_path_stats, kept verbatim as the benchmark baseline:
/// one adjacency-list BFS per source, results merged under a single mutex.
dsn::PathStats legacy_path_stats(const dsn::Graph& g) {
  dsn::PathStats stats;
  const dsn::NodeId n = g.num_nodes();
  if (n == 0) return stats;

  std::mutex merge_mutex;
  bool all_reachable = true;
  std::uint32_t diameter = 0;
  __uint128_t total_hops = 0;
  std::uint64_t reachable_pairs = 0;
  std::vector<std::uint64_t> histogram;

  dsn::parallel_for(0, n, [&](std::size_t src) {
    const auto dist = dsn::bfs_distances(g, static_cast<dsn::NodeId>(src));
    std::uint32_t local_max = 0;
    std::uint64_t local_sum = 0;
    std::uint64_t local_pairs = 0;
    bool local_all = true;
    std::vector<std::uint64_t> local_hist;
    for (dsn::NodeId v = 0; v < n; ++v) {
      if (v == src) continue;
      if (dist[v] == dsn::kUnreachable) {
        local_all = false;
        continue;
      }
      local_max = std::max(local_max, dist[v]);
      local_sum += dist[v];
      ++local_pairs;
      if (dist[v] >= local_hist.size()) local_hist.resize(dist[v] + 1, 0);
      ++local_hist[dist[v]];
    }
    std::scoped_lock lock(merge_mutex);
    if (!local_all) all_reachable = false;
    diameter = std::max(diameter, local_max);
    total_hops += local_sum;
    reachable_pairs += local_pairs;
    if (local_hist.size() > histogram.size()) histogram.resize(local_hist.size(), 0);
    for (std::size_t h = 0; h < local_hist.size(); ++h) histogram[h] += local_hist[h];
  });

  stats.connected = n <= 1 || all_reachable;
  stats.diameter = diameter;
  stats.avg_shortest_path =
      reachable_pairs == 0 ? 0.0
                           : static_cast<double>(total_hops) / static_cast<double>(reachable_pairs);
  stats.hop_histogram = std::move(histogram);
  return stats;
}

bool same_stats(const dsn::PathStats& a, const dsn::PathStats& b) {
  return a.connected == b.connected && a.diameter == b.diameter &&
         a.avg_shortest_path == b.avg_shortest_path && a.hop_histogram == b.hop_histogram;
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli(
      "CSR + 64-way bit-parallel MS-BFS all-pairs microbenchmark "
      "(baseline: per-source adjacency-list BFS under a merge mutex)");
  cli.add_flag("topo-list", "dsn,dln,ring", "comma-separated topology families");
  cli.add_flag("n-list", "1024,4096,16384", "comma-separated network sizes");
  cli.add_flag("repeat", "1", "timing repetitions (best-of)");
  cli.add_flag("legacy", "true", "also time the pre-CSR baseline and report speedup");
  cli.add_flag("check", "true", "verify MS-BFS PathStats match the baseline exactly");
  cli.add_flag("json", "", "also write the JSON report to this path");
  cli.add_flag("seed", "1", "topology construction seed");
  cli.add_flag("threads", "0", "worker threads for the shared pool (0 = auto)");
  cli.add_flag("trace", "",
               "write a Chrome-trace JSON of the run (per-shard MS-BFS spans; "
               "view at ui.perfetto.dev)");
  if (!cli.parse(argc, argv)) return 0;

  // The shared pool is created on first use; pin its size before anything
  // below can touch it so the JSON header reports the worker count that
  // actually ran the sweep.
  if (const std::uint64_t threads = cli.get_uint("threads"); threads > 0)
    ::setenv("DSN_THREADS", std::to_string(threads).c_str(), /*overwrite=*/1);

  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) {
#if DSN_OBS
    dsn::obs::set_metrics_enabled(true);
    dsn::obs::start_trace();
#else
    std::cerr << "micro_msbfs: --trace needs a DSN_OBS=1 build "
                 "(instrumentation is compiled out)\n";
    return 2;
#endif
  }

  const auto repeat = std::max<std::uint64_t>(1, cli.get_uint("repeat"));
  const bool run_legacy = cli.get_bool("legacy");
  const bool check = cli.get_bool("check");
  const std::uint64_t seed = cli.get_uint("seed");

  std::vector<std::string> topos;
  {
    std::string list = cli.get("topo-list");
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = std::min(list.find(',', pos), list.size());
      if (comma > pos) topos.push_back(list.substr(pos, comma - pos));
      pos = comma + 1;
    }
  }

  bool all_ok = true;
  dsn::Json results = dsn::Json::array();
  for (const std::string& topo_name : topos) {
    for (const std::uint64_t n : cli.get_uint_list("n-list")) {
      const auto topo =
          dsn::make_topology_by_name(topo_name, static_cast<std::uint32_t>(n), seed);

      double build_ms = 0.0;
      double msbfs_ms = 0.0;
      double ecc_ms = 0.0;
      dsn::PathStats stats;
      for (std::uint64_t r = 0; r < repeat; ++r) {
        auto t0 = Clock::now();
        const dsn::CsrView csr(topo.graph);
        const double built = ms_since(t0);

        t0 = Clock::now();
        stats = dsn::compute_path_stats(csr);
        const double swept = ms_since(t0);

        t0 = Clock::now();
        const auto ecc = dsn::eccentricities(csr);
        const double ecced = ms_since(t0);

        if (r == 0 || built + swept < build_ms + msbfs_ms) {
          build_ms = built;
          msbfs_ms = swept;
        }
        ecc_ms = r == 0 ? ecced : std::min(ecc_ms, ecced);
      }

      dsn::Json row = dsn::Json::object();
      row.set("topology", topo.name);
      row.set("family", topo_name);
      row.set("n", n);
      row.set("links", static_cast<std::uint64_t>(topo.graph.num_links()));
      row.set("diameter", static_cast<std::uint64_t>(stats.diameter));
      row.set("aspl", stats.avg_shortest_path);
      row.set("csr_build_ms", build_ms);
      row.set("path_stats_ms", msbfs_ms);
      row.set("eccentricities_ms", ecc_ms);

      if (run_legacy) {
        double legacy_ms = 0.0;
        dsn::PathStats legacy;
        for (std::uint64_t r = 0; r < repeat; ++r) {
          const auto t0 = Clock::now();
          legacy = legacy_path_stats(topo.graph);
          const double took = ms_since(t0);
          legacy_ms = r == 0 ? took : std::min(legacy_ms, took);
        }
        row.set("legacy_path_stats_ms", legacy_ms);
        row.set("speedup", msbfs_ms > 0.0 ? legacy_ms / msbfs_ms : 0.0);
        if (check) {
          const bool ok = same_stats(stats, legacy);
          row.set("check", ok ? "ok" : "MISMATCH");
          if (!ok) all_ok = false;
        }
      }
      results.push_back(std::move(row));
      std::cerr << "done " << topo.name << " n=" << n << "\n";
    }
  }

  dsn::Json report = dsn::Json::object();
  report.set("bench", "micro_msbfs");
  report.set("unit", "ms");
  report.set("batch", static_cast<std::uint64_t>(dsn::kMsBfsBatch));
  report.set("threads", static_cast<std::uint64_t>(dsn::ThreadPool::global().size()));
  report.set("results", std::move(results));

  const std::string text = report.dump(2);
  std::cout << text << "\n";
  if (const std::string path = cli.get("json"); !path.empty()) {
    std::ofstream out(path);
    out << text << "\n";
    if (!out) {
      std::cerr << "failed to write " << path << "\n";
      return 2;
    }
  }
#if DSN_OBS
  if (!trace_path.empty() && dsn::obs::stop_trace(trace_path))
    std::cerr << "wrote Chrome trace to " << trace_path
              << " (open at ui.perfetto.dev)\n";
#endif
  if (!all_ok) {
    std::cerr << "PathStats mismatch between MS-BFS and the baseline\n";
    return 1;
  }
  return 0;
}
