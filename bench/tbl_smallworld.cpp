// Small-world analysis (§II): clustering coefficient vs average shortest
// path length for the compared topologies, and the routing-stretch comparison
// that motivates DSN's custom routing — Kleinberg's greedy routing pays a
// quadratic factor over the optimum while the DSN custom routing stays within
// a small constant.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/math.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/greedy.hpp"
#include "dsn/topology/generators.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Small-world metrics and routing stretch (Section II context).");
  cli.add_flag("n", "1024", "network size (square number recommended)");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto seed = cli.get_uint("seed");

  {
    dsn::Table table({"topology", "clustering", "ASPL", "diameter"});
    const auto add = [&](const std::string& label, const dsn::Topology& topo) {
      const auto stats = dsn::compute_path_stats(topo.graph);
      table.row()
          .cell(label)
          .cell(dsn::clustering_coefficient(topo.graph), 4)
          .cell(stats.avg_shortest_path)
          .cell(static_cast<std::uint64_t>(stats.diameter));
    };
    for (const std::string family : {"ring", "torus", "kleinberg", "random", "dsn"}) {
      try {
        add(family, dsn::make_topology_by_name(family, n, seed));
      } catch (const dsn::PreconditionError&) {
        continue;
      }
    }
    // The Watts-Strogatz sweep [20]: lattice -> small-world regime -> random.
    for (const double beta : {0.0, 0.1, 1.0}) {
      add("watts-strogatz b=" + std::to_string(beta).substr(0, 3),
          dsn::make_watts_strogatz(n, 2, beta, seed));
    }
    table.print(std::cout, "Small-world metrics at n = " + std::to_string(n));
  }

  {
    dsn::Table table({"routing", "avg hops", "optimal ASPL", "stretch", "max hops"});
    // Kleinberg grid with greedy routing.
    const auto side = static_cast<std::uint32_t>(dsn::isqrt(n));
    if (side * side == n) {
      const dsn::Topology kb = dsn::make_kleinberg(side, 1, 2.0, seed);
      const auto greedy = dsn::scan_greedy_grid(kb);
      const auto opt = dsn::compute_path_stats(kb.graph);
      table.row()
          .cell("Kleinberg greedy")
          .cell(greedy.avg_hops)
          .cell(opt.avg_shortest_path)
          .cell(greedy.avg_hops / opt.avg_shortest_path)
          .cell(static_cast<std::uint64_t>(greedy.max_hops));
    }
    // DSN custom routing.
    const dsn::Dsn d(n, dsn::dsn_default_x(n));
    const auto scan = dsn::scan_all_pairs(dsn::DsnRouter(d));
    const auto opt = dsn::compute_path_stats(d.topology().graph);
    table.row()
        .cell("DSN custom (Fig. 2)")
        .cell(scan.avg_hops)
        .cell(opt.avg_shortest_path)
        .cell(scan.avg_hops / opt.avg_shortest_path)
        .cell(static_cast<std::uint64_t>(scan.max_hops));
    table.print(std::cout,
                "Routing stretch: greedy on Kleinberg vs DSN custom routing");
  }
  return 0;
}
