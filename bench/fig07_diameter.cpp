// Figure 7: diameter vs network size for DSN, 2-D torus and RANDOM (DLN-2-2).
#include <fstream>
#include <iostream>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Figure 7 reproduction: diameter vs network size (hops).");
  cli.add_flag("sizes", "32,64,128,256,512,1024,2048", "comma-separated switch counts");
  cli.add_flag("seed", "1", "seed for the random topology");
  cli.add_flag("csv", "", "also write the table as CSV to this path");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_uint_list("sizes");
  const auto seed = cli.get_uint("seed");

  dsn::Table table({"log2(N)", "N", "2-D Torus", "RANDOM", "DSN"});
  std::vector<std::vector<dsn::GraphSweepPoint>> sweeps;
  for (const auto& family : dsn::paper_topology_trio()) {
    sweeps.push_back(dsn::run_graph_sweep(family, sizes, seed));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::uint32_t log2n = 0;
    while ((1ull << (log2n + 1)) <= sizes[i]) ++log2n;
    table.row()
        .cell(static_cast<std::uint64_t>(log2n))
        .cell(sizes[i])
        .cell(static_cast<std::uint64_t>(sweeps[0][i].diameter))
        .cell(static_cast<std::uint64_t>(sweeps[1][i].diameter))
        .cell(static_cast<std::uint64_t>(sweeps[2][i].diameter));
  }
  table.print(std::cout, "Figure 7: Diameter vs network size (hops)");
  if (!cli.get("csv").empty()) {
    std::ofstream(cli.get("csv")) << table.to_csv();
    std::cout << "wrote " << cli.get("csv") << "\n";
  }
  return 0;
}
