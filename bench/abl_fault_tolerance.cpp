// Ablation: fault tolerance. The paper motivates low-degree topologies with
// simple fault management (§I); here we quantify how DSN, torus and RANDOM
// degrade under random link and switch failures.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/faults.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: connectivity/ASPL degradation under random failures.");
  cli.add_flag("n", "256", "network size");
  cli.add_flag("trials", "20", "trials per point");
  cli.add_flag("fractions", "0.01,0.02,0.05,0.1", "failure fractions to sweep");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto trials = static_cast<std::uint32_t>(cli.get_uint("trials"));
  const auto fractions = cli.get_double_list("fractions");
  const auto seed = cli.get_uint("seed");

  for (const bool switch_faults : {false, true}) {
    dsn::Table table({"topology", "failed", "connected rate", "avg diameter",
                      "avg ASPL"});
    for (const auto& family : dsn::paper_topology_trio()) {
      const dsn::Topology topo = dsn::make_topology_by_name(family, n, seed);
      for (const double f : fractions) {
        const dsn::FaultTrialResult r =
            switch_faults ? dsn::evaluate_switch_faults(topo, f, trials, seed)
                          : dsn::evaluate_link_faults(topo, f, trials, seed);
        table.row()
            .cell(family)
            .cell(f * 100.0, 0)
            .cell(r.connected_rate, 2)
            .cell(r.connected_trials ? r.avg_diameter : 0.0, 1)
            .cell(r.connected_trials ? r.avg_aspl : 0.0);
      }
    }
    table.print(std::cout, std::string("Fault tolerance under random ") +
                               (switch_faults ? "switch" : "link") + " failures (% of " +
                               (switch_faults ? "switches" : "links") + " failed), n = " +
                               std::to_string(n));
  }
  return 0;
}
