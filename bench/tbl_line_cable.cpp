// Theorem 2b: the 1-D line cable model. Nodes evenly spaced at distance 1 on
// a line; DSN's average shortcut length is <= n/p while DLN-2-2's is ~n/3, so
// DSN saves a ~p/3 factor in shortcut cabling.
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/generators.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Theorem 2b reproduction: shortcut lengths in the 1-D line model.");
  cli.add_flag("sizes", "64,128,256,512,1024,2048", "comma-separated node counts");
  cli.add_flag("seed", "1", "seed for DLN-2-2");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_uint_list("sizes");
  const auto seed = cli.get_uint("seed");

  dsn::Table table({"N", "p", "DSN span", "~n/p bound", "DSN line", "DLN-2-2 line",
                    "n/3 ref", "saving factor", "p/3 ref"});
  for (const auto size : sizes) {
    const auto n = static_cast<std::uint32_t>(size);
    const dsn::Dsn d(n, dsn::dsn_default_x(n));
    const auto dsn_stats = dsn::compute_line_cable_stats(d.topology());
    const auto rnd = dsn::make_dln_random(n, 2, 2, seed);
    const auto rnd_stats = dsn::compute_line_cable_stats(rnd);
    table.row()
        .cell(size)
        .cell(static_cast<std::uint64_t>(d.p()))
        .cell(dsn_stats.avg_shortcut_span, 1)
        .cell(static_cast<double>(n) / d.p(), 1)
        .cell(dsn_stats.avg_shortcut_length, 1)
        .cell(rnd_stats.avg_shortcut_length, 1)
        .cell(static_cast<double>(n) / 3.0, 1)
        .cell(rnd_stats.avg_shortcut_length / dsn_stats.avg_shortcut_length, 2)
        .cell(static_cast<double>(d.p()) / 3.0, 2);
  }
  table.print(std::cout,
              "Theorem 2b: shortcut cable lengths, 1-D line model (span = designed "
              "ring distance; line = |u-v| on the physical line)");
  return 0;
}
