// Figure 9: average cable length vs network size for DSN, 2-D torus and
// RANDOM (DLN-2-2), under the §VI-B machine-room layout model (cabinets on a
// 2-D grid, 0.6 m x 2.1 m, 16 switches/cabinet, Manhattan distances, 2 m
// intra-cabinet cables, 2 m inter-cabinet wiring overhead).
#include <fstream>
#include <iostream>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Figure 9 reproduction: average cable length vs network size.");
  cli.add_flag("sizes", "32,64,128,256,512,1024,2048", "comma-separated switch counts");
  cli.add_flag("seed", "1", "seed for the random topology");
  cli.add_flag("totals", "false", "also print aggregate cable length per topology");
  cli.add_flag("csv", "", "also write the table as CSV to this path");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_uint_list("sizes");
  const auto seed = cli.get_uint("seed");

  std::vector<std::vector<dsn::GraphSweepPoint>> sweeps;
  for (const auto& family : dsn::paper_topology_trio()) {
    sweeps.push_back(dsn::run_graph_sweep(family, sizes, seed));
  }

  dsn::Table table({"log2(N)", "N", "2-D Torus [m]", "RANDOM [m]", "DSN [m]",
                    "DSN vs RANDOM"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::uint32_t log2n = 0;
    while ((1ull << (log2n + 1)) <= sizes[i]) ++log2n;
    const double reduction =
        100.0 * (1.0 - sweeps[2][i].avg_cable_m / sweeps[1][i].avg_cable_m);
    table.row()
        .cell(static_cast<std::uint64_t>(log2n))
        .cell(sizes[i])
        .cell(sweeps[0][i].avg_cable_m)
        .cell(sweeps[1][i].avg_cable_m)
        .cell(sweeps[2][i].avg_cable_m)
        .cell(std::string("-")
                  .append(std::to_string(static_cast<int>(reduction + 0.5)))
                  .append("%"));
  }
  table.print(std::cout, "Figure 9: Average cable length vs network size");
  if (!cli.get("csv").empty()) {
    std::ofstream(cli.get("csv")) << table.to_csv();
    std::cout << "wrote " << cli.get("csv") << "\n";
  }

  if (cli.get_bool("totals")) {
    dsn::Table totals({"N", "2-D Torus total [m]", "RANDOM total [m]", "DSN total [m]"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      totals.row()
          .cell(sizes[i])
          .cell(sweeps[0][i].total_cable_m, 0)
          .cell(sweeps[1][i].total_cable_m, 0)
          .cell(sweeps[2][i].total_cable_m, 0);
    }
    totals.print(std::cout, "Aggregate cable length");
  }
  return 0;
}
