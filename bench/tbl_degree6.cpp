// §VI-B remark: "our DSN with degree 6 surprisingly has shorter average
// cable length than 3-D torus in conventional floor layout". We realize the
// degree-6 DSN as the bidirectional-shortcut variant and compare it to the
// near-cubic 3-D torus across network sizes.
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/generators.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Degree-6 DSN vs 3-D torus: cable length and path metrics (Section VI-B remark).");
  cli.add_flag("sizes", "64,128,256,512,1024,2048", "comma-separated switch counts");
  if (!cli.parse(argc, argv)) return 0;

  dsn::Table table({"N", "topology", "avg deg", "diameter", "ASPL", "avg cable [m]",
                    "total cable [m]"});
  for (const auto size : cli.get_uint_list("sizes")) {
    const auto n = static_cast<std::uint32_t>(size);
    for (int which = 0; which < 2; ++which) {
      dsn::Topology topo;
      try {
        topo = which == 0 ? dsn::make_torus_3d_near_cube(n) : dsn::make_dsn_bidir(n);
      } catch (const dsn::PreconditionError&) {
        continue;  // no 3-D factorization for this n
      }
      const auto deg = dsn::compute_degree_stats(topo.graph);
      const auto paths = dsn::compute_path_stats(topo.graph);
      const auto cable = dsn::compute_cable_report(topo);
      table.row()
          .cell(size)
          .cell(topo.name)
          .cell(deg.avg_degree)
          .cell(static_cast<std::uint64_t>(paths.diameter))
          .cell(paths.avg_shortest_path)
          .cell(cable.average_m)
          .cell(cable.total_m, 0);
    }
  }
  table.print(std::cout, "Degree-6 DSN (bidirectional shortcuts) vs 3-D torus");
  return 0;
}
