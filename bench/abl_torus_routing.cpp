// Ablation: routing scheme on the torus. The paper runs the topology-agnostic
// adaptive scheme (up*/down* escape) on *all* topologies, including the torus
// — which penalizes the torus relative to its native dimension-order router.
// This bench quantifies that penalty (latency and saturation throughput).
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: adaptive+up*/down* vs native dateline DOR on the torus.");
  cli.add_flag("n", "64", "number of switches (must factor into a 2-D torus)");
  cli.add_flag("loads", "1,3,5,7,9,11", "offered loads in Gbit/s per host");
  cli.add_flag("warmup", "8000", "warmup cycles");
  cli.add_flag("measure", "20000", "measurement cycles");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto loads = cli.get_double_list("loads");

  dsn::SimConfig cfg;
  cfg.warmup_cycles = cli.get_uint("warmup");
  cfg.measure_cycles = cli.get_uint("measure");
  cfg.drain_cycles = 4 * cfg.measure_cycles;

  const dsn::Topology topo = dsn::make_topology_by_name("torus", n);
  dsn::SimRouting routing(topo);
  dsn::UniformTraffic traffic(n * cfg.hosts_per_switch);

  dsn::Table table({"routing", "offered [Gb/s/host]", "accepted [Gb/s/host]",
                    "latency [ns]", "avg hops", "status"});
  for (const double load : loads) {
    dsn::SimConfig point = cfg;
    point.offered_gbps_per_host = load;
    for (int which = 0; which < 2; ++which) {
      std::unique_ptr<dsn::SimRoutingPolicy> policy;
      if (which == 0) {
        policy = std::make_unique<dsn::AdaptiveUpDownPolicy>(routing, point.vcs);
      } else {
        policy = std::make_unique<dsn::TorusDorPolicy>(topo, point.vcs);
      }
      const dsn::SimResult res = dsn::run_simulation(topo, *policy, traffic, point);
      table.row()
          .cell(policy->name())
          .cell(res.offered_gbps_per_host)
          .cell(res.accepted_gbps_per_host)
          .cell(res.avg_latency_ns, 1)
          .cell(res.avg_hops)
          .cell(res.deadlock ? "DEADLOCK" : (res.drained ? "ok" : "saturated"));
    }
  }
  table.print(std::cout, "Torus routing ablation on " + topo.name + ", uniform traffic");
  return 0;
}
