// Ablation: what each piece of the fault-recovery stack buys.
//
// A shortcut link of DSN-E dies mid-run (optionally healing later). Four
// arms toggle the two recovery mechanisms independently:
//
//   none          no routing rebuild, no retry — packets aimed at the dead
//                 link are stranded until the TTL converts them into drops
//   retry only    damaged packets requeue at their NIC with exponential
//                 backoff, but routing still points across the dead link
//   rebuild only  up*/down* re-derives over the alive subgraph, but damaged
//                 in-flight packets are dropped instead of retried
//   full          rebuild + retry (the simulator default)
//
// Reported per arm: delivered fraction, drops (fault vs TTL), retries,
// time-to-reconnect after the failure, and p99 latency. A second table shows
// the full arm's degradation curve (per-epoch injected/delivered/dropped) —
// the same data `dsn-lint drill --json` emits.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace {

/// First non-ring link — the interesting victim, since ring hops always have
/// a parallel partner in DSN-E while a shortcut's loss forces a reroute.
dsn::LinkId first_shortcut_link(const dsn::Topology& topo) {
  const dsn::Graph& g = topo.graph;
  const dsn::NodeId n = g.num_nodes();
  for (dsn::LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    const dsn::NodeId gap = u < v ? v - u : u - v;
    if (gap != 1 && gap != n - 1) return l;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: recovery mechanisms under a mid-run link failure on DSN-E.");
  cli.add_flag("n", "48", "number of switches");
  cli.add_flag("load", "1.0", "offered load in Gbit/s per host");
  cli.add_flag("measure", "3000", "measurement cycles (failure lands inside)");
  cli.add_flag("fail-at", "500", "cycle of the link-down event");
  cli.add_flag("heal-at", "0", "cycle of the link repair (0 = never heals)");
  cli.add_flag("ttl", "5000",
               "packet time-to-live [cycles]; bounds how long the no-recovery "
               "arms strand packets");
  cli.add_flag("epoch", "500", "degradation-curve bucket width [cycles]");
  cli.add_flag("seed", "1", "traffic seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const dsn::Topology topo = dsn::make_topology_by_name("dsn-e", n);
  const dsn::LinkId victim = first_shortcut_link(topo);

  dsn::SimConfig base;
  base.warmup_cycles = 0;
  base.measure_cycles = cli.get_uint("measure");
  base.drain_cycles = 20 * base.measure_cycles;
  base.offered_gbps_per_host = cli.get_double("load");
  base.seed = cli.get_uint("seed");
  base.packet_ttl_cycles = cli.get_uint("ttl");
  base.epoch_cycles = cli.get_uint("epoch");

  dsn::FaultSchedule schedule;
  schedule.link_down(cli.get_uint("fail-at"), victim);
  if (cli.get_uint("heal-at") != 0) schedule.link_up(cli.get_uint("heal-at"), victim);

  dsn::SimRouting routing(topo);
  dsn::AdaptiveUpDownPolicy policy(routing, base.vcs);
  dsn::UniformTraffic traffic(n * base.hosts_per_switch);

  dsn::Table table({"recovery", "delivered", "dropped (ttl)", "retried",
                    "reconnect [cyc]", "p99 [ns]", "status"});
  dsn::SimResult full_result;
  const auto run_arm = [&](const char* label, bool rebuild, bool retry) {
    dsn::SimConfig cfg = base;
    cfg.rebuild_routing_on_fault = rebuild;
    cfg.retry_on_fault = retry;
    dsn::Simulator sim(topo, policy, traffic, cfg);
    sim.set_fault_schedule(schedule);
    const dsn::SimResult res = sim.run();

    const double frac =
        res.packets_generated_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(res.packets_delivered_total) /
                  static_cast<double>(res.packets_generated_total);
    std::string reconnect = "-";
    if (!res.fault_log.empty() && res.fault_log[0].reconnected)
      reconnect = std::to_string(res.fault_log[0].reconnect_cycles);
    table.row()
        .cell(label)
        .cell([&] {
          std::ostringstream os;
          os << res.packets_delivered_total << "/" << res.packets_generated_total
             << " (" << std::fixed << std::setprecision(1) << frac << "%)";
          return os.str();
        }())
        .cell(std::to_string(res.packets_dropped) + " (" +
              std::to_string(res.packets_dropped_ttl) + ")")
        .cell(res.packets_retried)
        .cell(reconnect)
        .cell(res.p99_latency_ns, 1)
        .cell(res.deadlock ? "DEADLOCK"
                           : (res.conservation_ok ? (res.drained ? "ok" : "not drained")
                                                  : "LEAK"));
    if (rebuild && retry) full_result = res;
  };

  run_arm("none", false, false);
  run_arm("retry only", false, true);
  run_arm("rebuild only", true, false);
  run_arm("full (rebuild + retry)", true, true);

  table.print(std::cout, "Recovery ablation on DSN-E-" + std::to_string(n) +
                             ": shortcut link " + std::to_string(victim) +
                             " down @" + std::to_string(cli.get_uint("fail-at")) +
                             (cli.get_uint("heal-at") != 0
                                  ? ", healed @" + std::to_string(cli.get_uint("heal-at"))
                                  : ", never healed"));

  dsn::Table curve({"epoch start", "injected", "delivered", "dropped", "retried"});
  for (const dsn::EpochStats& e : full_result.epochs) {
    curve.row()
        .cell(e.start_cycle)
        .cell(e.injected)
        .cell(e.delivered)
        .cell(e.dropped)
        .cell(e.retried);
  }
  curve.print(std::cout, "Degradation curve, full-recovery arm (bucket " +
                             std::to_string(base.epoch_cycles) + " cycles)");
  return 0;
}
