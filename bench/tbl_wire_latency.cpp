// Zero-load wire-latency synthesis (§I context): combine switch delay
// (~100 ns/hop) and cable propagation (~5 ns/m on the machine-room floor)
// into one end-to-end estimate per topology. Quantifies the paper's argument
// that random topologies' shorter hop counts are not free — their long cables
// add wire delay — while DSN gets the hop savings at torus-like wire cost.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/wire_latency.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Zero-load latency estimate: router hops + cable propagation.");
  cli.add_flag("sizes", "64,256,1024,2048", "comma-separated switch counts");
  cli.add_flag("router_ns", "100", "per-switch-traversal delay [ns]");
  cli.add_flag("cable_ns_per_m", "5", "cable propagation delay [ns/m]");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  dsn::WireLatencyConfig cfg;
  cfg.router_ns = cli.get_double("router_ns");
  cfg.cable_ns_per_m = cli.get_double("cable_ns_per_m");
  const auto seed = cli.get_uint("seed");

  dsn::Table table({"N", "topology", "avg hops", "avg path cable [m]",
                    "avg latency [ns]", "max [ns]", "wire share"});
  for (const auto size : cli.get_uint_list("sizes")) {
    const auto n = static_cast<std::uint32_t>(size);
    for (const auto& family : dsn::paper_topology_trio()) {
      const dsn::Topology topo = dsn::make_topology_by_name(family, n, seed);
      const auto stats = dsn::estimate_wire_latency(topo, cfg);
      table.row()
          .cell(size)
          .cell(family)
          .cell(stats.avg_hops)
          .cell(stats.avg_cable_m, 1)
          .cell(stats.avg_latency_ns, 1)
          .cell(stats.max_latency_ns, 1)
          .cell(stats.wire_fraction * 100.0, 1);
    }
  }
  table.print(std::cout,
              "Zero-load end-to-end latency estimate (router " +
                  std::to_string(static_cast<int>(cfg.router_ns)) + " ns/hop, cable " +
                  std::to_string(static_cast<int>(cfg.cable_ns_per_m)) + " ns/m)");
  return 0;
}
