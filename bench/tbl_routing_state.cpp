// §VIII claim: "it is possible to exploit the structure of our DSN topologies
// to create a custom routing algorithm with a natural routing logic... the
// routing logic at each switch is expected to be simple and small."
//
// We quantify per-switch routing state:
//  - DSN custom routing: constants (n, p, x) + the node's own shortcut target
//    and level — O(1) words per switch regardless of network size;
//  - up*/down* (what random topologies must use): two next-hop tables indexed
//    by destination — O(n) entries per switch;
//  - fully adaptive minimal: next-hop sets per destination — O(n * degree).
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Per-switch routing state: DSN custom vs table-based schemes.");
  cli.add_flag("sizes", "64,256,1024,2048", "comma-separated switch counts");
  if (!cli.parse(argc, argv)) return 0;

  dsn::Table table({"N", "scheme", "state/switch [bytes]", "total [KiB]", "growth"});
  for (const auto size : cli.get_uint_list("sizes")) {
    const auto n = static_cast<std::uint32_t>(size);
    // DSN custom: n, p, x (constants shared) + per-switch level (1 byte) and
    // shortcut target (4 bytes) — the algorithm recomputes everything else.
    const double custom_per_switch = 3 * 4 + 1 + 4;
    // up*/down*: per destination, a next hop for each of the two phases
    // (4 bytes each).
    const double updown_per_switch = 2.0 * 4.0 * n;
    // Fully adaptive minimal: per destination, the set of minimal next hops;
    // average degree ~4 bounded by one 4-byte entry per (dest, candidate)
    // plus a 4-byte offset per destination.
    const dsn::Topology topo = dsn::make_dsn(n, dsn::dsn_default_x(n));
    const dsn::SimRouting routing(topo);
    std::size_t adaptive_entries = 0;
    for (dsn::NodeId t = 0; t < n; ++t) adaptive_entries += routing.minimal_next_hops(0, t).size();
    const double adaptive_per_switch =
        4.0 * static_cast<double>(adaptive_entries) + 4.0 * n;

    const auto add = [&](const char* scheme, double per_switch, const char* growth) {
      table.row()
          .cell(size)
          .cell(scheme)
          .cell(per_switch, 0)
          .cell(per_switch * n / 1024.0, 1)
          .cell(growth);
    };
    add("DSN custom (Fig. 2)", custom_per_switch, "O(1)");
    add("up*/down* tables", updown_per_switch, "O(N)");
    add("minimal adaptive tables", adaptive_per_switch, "O(N*deg)");
  }
  table.print(std::cout,
              "Per-switch routing state (Section VIII 'simple and small' claim)");
  return 0;
}
