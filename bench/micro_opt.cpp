// Microbenchmark for the shortcut-placement optimizer (dsn/opt): annealing
// throughput (proposals per second) and the cable-vs-ASPL Pareto front per
// topology family and size, up to the n = 65536 scale point of the paper's
// DSN-x-n comparison.
//
// Emits a JSON report (stdout, and --json <path>) whose shape is tracked in
// BENCH_opt.json at the repository root — the committed front trajectory
// future PRs regress against (ci/check_bench_opt.py gates the sweep extents,
// the 65536 row, front monotonicity and the never-worse-than-seed invariant,
// not the absolute timings). Run with no arguments to reproduce the
// committed configuration:
//
//   build/bench/micro_opt --json BENCH_opt.json
//
// Rows with n <= --verify-max-n cross-check the estimator against the exact
// whole-graph sweep (compute_path_stats over all sources) and carry a
// "check" field; any mismatch fails the bench (exit 1), so CI can use a
// small --n-list run as a correctness + JSON-shape smoke without timing
// gates. The front itself is seed-deterministic for any thread count
// (pinned separately by ctest -L determinism).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/json.hpp"
#include "dsn/graph/estimator.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/opt/optimizer.hpp"
#include "dsn/topology/topology.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli(
      "Shortcut-placement optimizer microbenchmark: annealing throughput and "
      "the cable-vs-ASPL Pareto front across topology families and sizes");
  cli.add_flag("topology-list", "dsn,dln",
               "comma-separated factory names (see make_topology_by_name)");
  // 1024 is the exact-estimator cross-check point (sample = all sources);
  // 65536 is the DSN-x-n comparison scale the EXPERIMENTS entry reports.
  cli.add_flag("n-list", "1024,4096,16384,65536", "comma-separated node counts");
  cli.add_flag("passes", "3", "annealing passes (restart + weight cycle)");
  cli.add_flag("iterations", "600", "proposals per pass");
  cli.add_flag("plateau", "100", "proposals per temperature step");
  cli.add_flag("sample-sources", "0", "estimator sources (0 = auto)");
  cli.add_flag("seed", "1", "generator / annealing seed");
  cli.add_flag("verify-max-n", "1024",
               "cross-check the estimator against the exact whole-graph "
               "sweep on rows up to this n (needs sample-sources = 0 auto "
               "so the sample covers every source)");
  cli.add_flag("json", "", "also write the JSON report to this path");
  if (!cli.parse(argc, argv)) return 0;

  const std::uint64_t seed = cli.get_uint("seed");
  const std::uint64_t verify_max_n = cli.get_uint("verify-max-n");

  dsn::opt::OptimizerConfig base_cfg;
  base_cfg.seed = seed;
  base_cfg.passes = static_cast<std::uint32_t>(cli.get_uint("passes"));
  base_cfg.iterations = static_cast<std::uint32_t>(cli.get_uint("iterations"));
  base_cfg.plateau = static_cast<std::uint32_t>(cli.get_uint("plateau"));
  base_cfg.estimator.sample_sources =
      static_cast<std::uint32_t>(cli.get_uint("sample-sources"));

  bool all_ok = true;
  dsn::Json results = dsn::Json::array();
  for (const std::uint64_t n : cli.get_uint_list("n-list")) {
    for (const std::string& tname : split_list(cli.get("topology-list"))) {
      const dsn::Topology topo =
          dsn::make_topology_by_name(tname, static_cast<std::uint32_t>(n), seed);

      const auto t0 = Clock::now();
      const dsn::opt::OptimizerResult res =
          dsn::opt::optimize_shortcuts(topo, base_cfg);
      const double wall_ms = ms_since(t0);

      dsn::Json row = dsn::opt::optimizer_result_to_json(res);
      row.set("family", tname);
      row.set("wall_ms", wall_ms);
      row.set("proposals_per_sec",
              wall_ms > 0.0
                  ? static_cast<double>(res.proposals) / (wall_ms / 1'000.0)
                  : 0.0);
      if (n <= verify_max_n && res.sample_sources == n) {
        // Exact mode: the sampled estimate covers every source, so the seed
        // ASPL must equal the whole-graph sweep bit-for-bit (both are the
        // same integer hop sum divided by the same pair count).
        const dsn::PathStats exact = dsn::compute_path_stats(topo.graph);
        const bool ok = res.seed_point.aspl == exact.avg_shortest_path;
        row.set("check", ok ? "ok" : "estimator-exact-mismatch");
        if (!ok) {
          all_ok = false;
          std::cerr << "estimator " << res.seed_point.aspl << " != exact "
                    << exact.avg_shortest_path << " on " << topo.name << "\n";
        }
      }
      results.push_back(std::move(row));
      std::cerr << "done " << topo.name << " wall_ms=" << wall_ms
                << " front=" << res.front.size()
                << " beats_seed=" << (res.beats_seed ? "yes" : "no") << "\n";
    }
  }

  dsn::Json report = dsn::Json::object();
  report.set("bench", "micro_opt");
  report.set("unit", "proposals_per_sec");
  report.set("passes", cli.get_uint("passes"));
  report.set("iterations", cli.get_uint("iterations"));
  report.set("plateau", cli.get_uint("plateau"));
  report.set("seed", seed);
  report.set("results", std::move(results));

  const std::string text = report.dump(2);
  std::cout << text << "\n";
  if (const std::string path = cli.get("json"); !path.empty()) {
    std::ofstream out(path);
    out << text << "\n";
    if (!out) {
      std::cerr << "failed to write " << path << "\n";
      return 2;
    }
  }

  if (!all_ok) {
    std::cerr << "CHECK FAILED: estimator disagreed with the exact sweep\n";
    return 1;
  }
  return 0;
}
