// Ablation: all six traffic patterns on the paper trio at one load point —
// extends Figure 10's three patterns with transpose, shuffle and hotspot.
#include <iostream>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: latency across all traffic patterns at one load.");
  cli.add_flag("n", "64", "number of switches");
  cli.add_flag("load", "4.0", "offered Gbit/s per host");
  cli.add_flag("measure", "16000", "measurement cycles");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));

  dsn::SimConfig sim;
  sim.seed = cli.get_uint("seed");
  sim.measure_cycles = cli.get_uint("measure");
  sim.warmup_cycles = sim.measure_cycles / 2;
  sim.drain_cycles = sim.measure_cycles * 4;

  dsn::Table table({"traffic", "topology", "accepted [Gb/s/host]", "latency [ns]",
                    "p99 [ns]", "avg hops", "status"});
  for (const std::string traffic :
       {"uniform", "bit-reversal", "neighboring", "transpose", "shuffle", "hotspot"}) {
    for (const auto& family : dsn::paper_topology_trio()) {
      const dsn::Topology topo = dsn::make_topology_by_name(family, n, sim.seed);
      dsn::LatencySweepConfig sweep;
      sweep.traffic = traffic;
      sweep.offered_gbps = {cli.get_double("load")};
      sweep.sim = sim;
      const auto pts = dsn::run_latency_sweep(topo, sweep);
      const auto& pt = pts[0];
      table.row()
          .cell(traffic)
          .cell(family)
          .cell(pt.accepted_gbps)
          .cell(pt.avg_latency_ns, 1)
          .cell(pt.p99_latency_ns, 1)
          .cell(pt.avg_hops)
          .cell(pt.deadlock ? "DEADLOCK" : (pt.drained ? "ok" : "saturated"));
    }
  }
  table.print(std::cout, "All traffic patterns at " + cli.get("load") +
                             " Gb/s/host, " + std::to_string(n) + " switches");
  return 0;
}
