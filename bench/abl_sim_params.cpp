// Ablation: simulator microarchitecture parameters on the paper's DSN-64
// configuration — virtual channel count, packet length, and input buffer
// depth. Shows which §VII-A constants the headline latency result is (and is
// not) sensitive to.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace {

dsn::SimResult run_point(const dsn::Topology& topo, const dsn::SimRouting& routing,
                         const dsn::SimConfig& cfg) {
  dsn::AdaptiveUpDownPolicy policy(routing, cfg.vcs);
  dsn::UniformTraffic traffic(topo.num_nodes() * cfg.hosts_per_switch);
  return dsn::run_simulation(topo, policy, traffic, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: VC count / packet length / buffer depth sensitivity.");
  cli.add_flag("n", "64", "number of switches");
  cli.add_flag("load", "6.0", "offered Gbit/s per host");
  cli.add_flag("measure", "16000", "measurement cycles");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const dsn::Topology topo = dsn::make_topology_by_name("dsn", n);
  dsn::SimRouting routing(topo);

  dsn::SimConfig base;
  base.offered_gbps_per_host = cli.get_double("load");
  base.measure_cycles = cli.get_uint("measure");
  base.warmup_cycles = base.measure_cycles / 2;
  base.drain_cycles = base.measure_cycles * 4;

  dsn::Table table({"knob", "value", "accepted [Gb/s/host]", "latency [ns]",
                    "p99 [ns]", "status"});
  const auto report = [&](const char* knob, const std::string& value,
                          const dsn::SimConfig& cfg) {
    const dsn::SimResult res = run_point(topo, routing, cfg);
    table.row()
        .cell(knob)
        .cell(value)
        .cell(res.accepted_gbps_per_host)
        .cell(res.avg_latency_ns, 1)
        .cell(res.p99_latency_ns, 1)
        .cell(res.deadlock ? "DEADLOCK" : (res.drained ? "ok" : "saturated"));
  };

  for (const std::uint32_t vcs : {2u, 4u, 8u}) {
    dsn::SimConfig cfg = base;
    cfg.vcs = vcs;
    report("virtual channels", std::to_string(vcs), cfg);
  }
  for (const std::uint32_t pkt : {9u, 17u, 33u, 65u}) {
    dsn::SimConfig cfg = base;
    cfg.packet_flits = pkt;
    cfg.buffer_flits = pkt;  // VCT buffers scale with the packet
    report("packet flits", std::to_string(pkt), cfg);
  }
  for (const std::uint32_t mult : {1u, 2u, 4u}) {
    dsn::SimConfig cfg = base;
    cfg.buffer_flits = base.packet_flits * mult;
    report("buffer depth (packets)", std::to_string(mult), cfg);
  }
  table.print(std::cout,
              "Simulator parameter sensitivity on dsn-64, uniform traffic @ " +
                  std::to_string(base.offered_gbps_per_host) + " Gb/s/host");
  return 0;
}
