// Ablation: analytic queueing model vs cycle-accurate simulation. Each
// directed link is modeled as an M/D/1 queue over the minimal-adaptive flow
// split; the table shows predicted vs simulated average latency and the
// hottest-link utilization per load for the paper trio.
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/queueing.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/sim/simulator.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: M/D/1 queueing model vs cycle-accurate simulation.");
  cli.add_flag("n", "64", "number of switches");
  cli.add_flag("loads", "2,6,10", "offered loads in Gbit/s per host");
  cli.add_flag("measure", "16000", "measurement cycles per sim point");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto loads = cli.get_double_list("loads");

  dsn::Table table({"topology", "offered [Gb/s/host]", "model [ns]", "sim [ns]",
                    "model/sim", "max link rho"});
  for (const auto& family : dsn::paper_topology_trio()) {
    const dsn::Topology topo = dsn::make_topology_by_name(family, n, 1);
    const dsn::SimRouting routing(topo);
    for (const double load : loads) {
      dsn::SimConfig cfg;
      cfg.offered_gbps_per_host = load;
      cfg.measure_cycles = cli.get_uint("measure");
      cfg.warmup_cycles = cfg.measure_cycles / 2;
      cfg.drain_cycles = cfg.measure_cycles * 4;

      const auto pred = dsn::predict_uniform_latency(topo, routing, cfg);
      dsn::AdaptiveUpDownPolicy policy(routing, cfg.vcs);
      dsn::UniformTraffic traffic(n * cfg.hosts_per_switch);
      const dsn::SimResult sim = dsn::run_simulation(topo, policy, traffic, cfg);

      table.row()
          .cell(family)
          .cell(load)
          .cell(pred.stable ? pred.avg_latency_ns : 0.0, 1)
          .cell(sim.avg_latency_ns, 1)
          .cell(pred.stable && sim.avg_latency_ns > 0
                    ? pred.avg_latency_ns / sim.avg_latency_ns
                    : 0.0)
          .cell(pred.max_link_utilization);
    }
  }
  table.print(std::cout, "M/D/1 model vs simulation, uniform traffic, " +
                             std::to_string(n) + " switches");
  return 0;
}
