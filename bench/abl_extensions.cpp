// Ablation: the §V topology extensions.
//  - DSN-D-x: express local links reduce the diameter toward 7/4 p and the
//    routing diameter toward 2p (§V-B);
//  - DSN-E: Up/Extra links enable deadlock-free custom routing (Theorem 3) —
//    we report the CDG sizes and acyclicity, with the unprotected basic
//    scheme as the negative control;
//  - flexible DSN (§V-C): minor nodes barely change diameter/ASPL.
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Ablation: DSN-D / DSN-E / flexible DSN extensions (Section V).");
  cli.add_flag("n", "512", "network size");
  cli.add_flag("cdg_n", "128", "network size for the CDG analysis (O(n^2) routes)");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto cdg_n = static_cast<std::uint32_t>(cli.get_uint("cdg_n"));

  {
    dsn::Table table({"topology", "links", "avg deg", "diameter", "ASPL",
                      "route diam", "E[route]"});
    const dsn::Dsn base(n, dsn::dsn_default_x(n));
    {
      const auto paths = dsn::compute_path_stats(base.topology().graph);
      const auto scan = dsn::scan_all_pairs(dsn::DsnRouter(base));
      table.row()
          .cell("DSN (basic)")
          .cell(static_cast<std::uint64_t>(base.topology().graph.num_links()))
          .cell(base.topology().graph.average_degree())
          .cell(static_cast<std::uint64_t>(paths.diameter))
          .cell(paths.avg_shortest_path)
          .cell(static_cast<std::uint64_t>(scan.max_hops))
          .cell(scan.avg_hops);
    }
    for (std::uint32_t xd = 1; xd <= 3; ++xd) {
      const dsn::DsnD dd(n, xd);
      const auto paths = dsn::compute_path_stats(dd.topology().graph);
      const auto scan = dsn::scan_all_pairs_fn(
          n, [&](dsn::NodeId s, dsn::NodeId t) { return dsn::route_dsn_d(dd, s, t); });
      table.row()
          .cell("DSN-D-" + std::to_string(xd) + " (q=" + std::to_string(dd.q()) + ")")
          .cell(static_cast<std::uint64_t>(dd.topology().graph.num_links()))
          .cell(dd.topology().graph.average_degree())
          .cell(static_cast<std::uint64_t>(paths.diameter))
          .cell(paths.avg_shortest_path)
          .cell(static_cast<std::uint64_t>(scan.max_hops))
          .cell(scan.avg_hops);
    }
    {
      const dsn::DsnE de(n);
      const auto paths = dsn::compute_path_stats(de.topology().graph);
      table.row()
          .cell("DSN-E")
          .cell(static_cast<std::uint64_t>(de.topology().graph.num_links()))
          .cell(de.topology().graph.average_degree())
          .cell(static_cast<std::uint64_t>(paths.diameter))
          .cell(paths.avg_shortest_path)
          .cell("-")
          .cell("-");
    }
    {
      // Flexible DSN: n majors plus 4 minors spliced in.
      const dsn::FlexDsn flex(n, dsn::dsn_default_x(n), {10, 20, 30, 40});
      const auto paths = dsn::compute_path_stats(flex.topology().graph);
      const auto scan = dsn::scan_all_pairs_fn(
          flex.num_total(),
          [&](dsn::NodeId s, dsn::NodeId t) { return dsn::route_dsn_flex(flex, s, t); });
      table.row()
          .cell("DSN-flex (+4 minors)")
          .cell(static_cast<std::uint64_t>(flex.topology().graph.num_links()))
          .cell(flex.topology().graph.average_degree())
          .cell(static_cast<std::uint64_t>(paths.diameter))
          .cell(paths.avg_shortest_path)
          .cell(static_cast<std::uint64_t>(scan.max_hops))
          .cell(scan.avg_hops);
    }
    table.print(std::cout, "Section V extensions at n = " + std::to_string(n));
  }

  {
    dsn::Table table({"routing scheme", "channels", "dependencies", "acyclic (deadlock-free)"});
    const dsn::Dsn d(cdg_n, dsn::dsn_default_x(cdg_n));
    const auto basic = dsn::build_dsn_cdg(d, /*extended=*/false);
    const auto extended = dsn::build_dsn_cdg(d, /*extended=*/true);
    table.row()
        .cell("basic (single channel class)")
        .cell(static_cast<std::uint64_t>(basic.num_channels()))
        .cell(static_cast<std::uint64_t>(basic.num_dependencies()))
        .cell(basic.is_acyclic() ? "yes" : "NO (cyclic)");
    table.row()
        .cell("extended (Up/Main/Finish/Extra, Thm 3)")
        .cell(static_cast<std::uint64_t>(extended.num_channels()))
        .cell(static_cast<std::uint64_t>(extended.num_dependencies()))
        .cell(extended.is_acyclic() ? "yes" : "NO (cyclic)");
    table.print(std::cout, "Theorem 3: channel-dependency analysis at n = " +
                               std::to_string(cdg_n));
  }
  return 0;
}
