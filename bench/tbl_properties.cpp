// Structural properties table: empirical verification of the paper's Facts
// and Theorems on the basic DSN across network sizes.
//
//   Fact 1    degrees in {2,3,4,5}, average <= 4, at most p degree-5 nodes
//   Theorem 1 diameter <= 2.5p + r, routing diameter <= 3p + r (x > p - log p)
//   Theorem 2 E[route length] <= 2p, E[shortest path] <= 1.5p
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Empirical verification of Facts 1-3 and Theorems 1-2 on basic DSN.");
  cli.add_flag("sizes", "32,64,128,256,512,1024,2048", "comma-separated switch counts");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_uint_list("sizes");
  dsn::Table table({"N", "p", "r", "max deg", "#deg5", "p bound", "diam",
                    "2.5p+r", "route diam", "3p+r", "E[route]", "2p bound",
                    "ASPL", "1.5p bound"});
  for (const auto size : sizes) {
    const auto n = static_cast<std::uint32_t>(size);
    const dsn::Dsn d(n, dsn::dsn_default_x(n));
    const auto deg = dsn::compute_degree_stats(d.topology().graph);
    const auto paths = dsn::compute_path_stats(d.topology().graph);
    const dsn::DsnRouter router(d);
    const auto scan = dsn::scan_all_pairs(router);

    const std::uint64_t deg5 = deg.histogram.size() > 5 ? deg.histogram[5] : 0;
    table.row()
        .cell(size)
        .cell(static_cast<std::uint64_t>(d.p()))
        .cell(static_cast<std::uint64_t>(d.r()))
        .cell(static_cast<std::uint64_t>(deg.max_degree))
        .cell(deg5)
        .cell(static_cast<std::uint64_t>(d.p()))
        .cell(static_cast<std::uint64_t>(paths.diameter))
        .cell(2.5 * d.p() + d.r(), 1)
        .cell(static_cast<std::uint64_t>(scan.max_hops))
        .cell(static_cast<std::uint64_t>(3 * d.p() + d.r()))
        .cell(scan.avg_hops)
        .cell(static_cast<std::uint64_t>(2 * d.p()))
        .cell(paths.avg_shortest_path)
        .cell(1.5 * d.p(), 1);
  }
  table.print(std::cout,
              "DSN structural properties vs paper bounds (Facts 1-3, Theorems 1-2)");
  return 0;
}
