// Property tests for the whole-network route analyzer (dsn::analyze):
// the Theorem 2 / Theorem 3 proofs on well-formed DSNs, refutation witnesses
// on injected routing defects, and the static channel-load accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/route_analysis.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn {
namespace {

using analyze::ChannelScheme;
using analyze::RouteAnalysis;
using analyze::RouteAnalysisOptions;
using analyze::RoutingFamily;

// --------------------------------------------------------------------------
// Proofs on well-formed networks.
// --------------------------------------------------------------------------

TEST(RouteAnalysis, BasicDsnRoutesProvenLoopFreeAndComplete) {
  for (const std::uint32_t n : {64u, 100u, 256u}) {
    const Dsn d(n, dsn_default_x(n));
    const RouteAnalysis ra = analyze::analyze_dsn_routes(d, ChannelScheme::kBasic);
    EXPECT_TRUE(ra.loop_free) << "n = " << n;
    EXPECT_TRUE(ra.all_reachable) << "n = " << n;
    EXPECT_TRUE(ra.routes_ok()) << "n = " << n;
    EXPECT_EQ(ra.pairs, static_cast<std::uint64_t>(n) * (n - 1));
    EXPECT_TRUE(ra.loop_witnesses.empty());
    EXPECT_TRUE(ra.endpoint_witnesses.empty());
  }
}

TEST(RouteAnalysis, HopBoundLawAppliesExactlyWhenPremiseHolds) {
  // x = p - 1 always satisfies x > p - log p for p >= 2, so the Fact 2 /
  // Theorem 2 bound 3p + r applies — and every route must respect it.
  const Dsn in_premise(256, dsn_default_x(256));
  const RouteAnalysis ra = analyze::analyze_dsn_routes(in_premise, ChannelScheme::kBasic);
  EXPECT_EQ(ra.hop_bound, 3 * in_premise.p() + in_premise.r());
  EXPECT_TRUE(ra.within_hop_bound);
  EXPECT_LE(ra.max_hops, ra.hop_bound);
  EXPECT_FALSE(ra.hop_bound_law.empty());

  // x = 2 at n = 256 (p = 8, log p = 3) fails the premise: no analytic bound,
  // the check passes vacuously, and max_hops is free to exceed 3p + r.
  const Dsn out_of_premise(256, 2);
  const RouteAnalysis rb = analyze::analyze_dsn_routes(out_of_premise, ChannelScheme::kBasic);
  EXPECT_EQ(rb.hop_bound, 0u);
  EXPECT_TRUE(rb.within_hop_bound);
}

TEST(RouteAnalysis, ExtendedSchemeProvenAcyclicBasicRefuted) {
  // Theorem 3: the Up/Main/Finish/Extra channel classes break every cycle.
  const Dsn d(128, dsn_default_x(128));
  const RouteAnalysis ext = analyze::analyze_dsn_routes(d, ChannelScheme::kExtended);
  EXPECT_TRUE(ext.cdg_acyclic);
  EXPECT_TRUE(ext.cdg_cycle.empty());
  EXPECT_GT(ext.cdg_channels, 0u);
  EXPECT_GT(ext.cdg_dependencies, 0u);

  // Negative control: one unprotected class on the same routes is cyclic.
  const RouteAnalysis basic = analyze::analyze_dsn_routes(Dsn(128, 2), ChannelScheme::kBasic);
  EXPECT_FALSE(basic.cdg_acyclic);
  ASSERT_GE(basic.cdg_cycle.size(), 2u);
}

TEST(RouteAnalysis, CycleWitnessIsARealCdgCycle) {
  // Every consecutive pair of the reported minimal cycle — including the
  // closing edge — must be a dependency of the independently built CDG.
  const Dsn d(128, 2);
  const RouteAnalysis ra = analyze::analyze_dsn_routes(d, ChannelScheme::kBasic);
  ASSERT_FALSE(ra.cdg_cycle.empty());
  const ChannelDependencyGraph cdg = build_dsn_cdg(d, /*extended=*/false);
  for (std::size_t i = 0; i < ra.cdg_cycle.size(); ++i) {
    const Channel& a = ra.cdg_cycle[i];
    const Channel& b = ra.cdg_cycle[(i + 1) % ra.cdg_cycle.size()];
    EXPECT_TRUE(cdg.has_dependency(a, b))
        << "missing dependency at cycle position " << i;
  }
}

TEST(RouteAnalysis, DsnDRoutesProvenAndAcyclic) {
  const DsnD dd(100, 2);
  const RouteAnalysis ra = analyze::analyze_dsn_d_routes(dd);
  EXPECT_TRUE(ra.routes_ok());
  EXPECT_TRUE(ra.cdg_acyclic);
  EXPECT_EQ(ra.family, RoutingFamily::kDsnD);
}

TEST(RouteAnalysis, TopologyEntryPointsCoverEveryFamily) {
  const struct {
    const char* name;
    std::uint32_t n;
  } cases[] = {{"dsn-e", 64}, {"dsn-bidir", 64}, {"torus", 64}, {"kleinberg", 64}};
  for (const auto& c : cases) {
    const Topology topo = make_topology_by_name(c.name, c.n, 7);
    const RoutingFamily family = analyze::default_family(topo.kind);
    const RouteAnalysis ra = analyze::analyze_topology_routes(topo, family);
    EXPECT_TRUE(ra.loop_free) << c.name;
    EXPECT_TRUE(ra.all_reachable) << c.name;
    EXPECT_EQ(ra.n, c.n) << c.name;
  }
  // up*/down* applies to anything connected.
  const Topology rnd = make_topology_by_name("random-regular", 48, 3);
  const RouteAnalysis ud = analyze::analyze_topology_routes(rnd, RoutingFamily::kUpDown);
  EXPECT_TRUE(ud.loop_free);
  EXPECT_TRUE(ud.cdg_acyclic);  // classic up*/down* result
}

// --------------------------------------------------------------------------
// Refutation witnesses on injected defects.
// --------------------------------------------------------------------------

Route make_route(NodeId s, NodeId t, const std::vector<NodeId>& path) {
  Route r;
  r.src = s;
  r.dst = t;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    r.hops.push_back({path[i], path[i + 1], RoutePhase::kMain, HopKind::kSucc});
  }
  return r;
}

std::vector<Channel> one_class(const Route& r) { return dsn_route_channels_basic(r); }

TEST(RouteAnalysis, LoopingRouteRefutedWithWitness) {
  // 4-node network where the (0, 2) route bounces 0 -> 1 -> 0 -> ... -> 2.
  const auto route_fn = [](NodeId s, NodeId t) {
    if (s == 0 && t == 2) return make_route(s, t, {0, 1, 0, 1, 2});
    return make_route(s, t, {s, t});
  };
  const RouteAnalysis ra = analyze::analyze_route_function(4, route_fn, one_class);
  EXPECT_FALSE(ra.loop_free);
  EXPECT_FALSE(ra.routes_ok());
  ASSERT_FALSE(ra.loop_witnesses.empty());
  const analyze::RouteWitness& w = ra.loop_witnesses.front();
  EXPECT_EQ(w.src, 0u);
  EXPECT_EQ(w.dst, 2u);
  // The witness path must actually contain a repeated node.
  std::vector<NodeId> sorted = w.path;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_FALSE(w.reason.empty());
}

TEST(RouteAnalysis, WrongEndpointRefutedWithWitness) {
  const auto route_fn = [](NodeId s, NodeId t) {
    if (s == 1 && t == 3) return make_route(s, t, {1, 2});  // stops short
    return make_route(s, t, {s, t});
  };
  const RouteAnalysis ra = analyze::analyze_route_function(4, route_fn, one_class);
  EXPECT_FALSE(ra.all_reachable);
  ASSERT_FALSE(ra.endpoint_witnesses.empty());
  EXPECT_EQ(ra.endpoint_witnesses.front().src, 1u);
  EXPECT_EQ(ra.endpoint_witnesses.front().dst, 3u);
}

TEST(RouteAnalysis, HopBoundViolationRefutedOnlyUnderStrictBound) {
  // Direct routes except (0, 3), which takes a 3-hop detour.
  const auto route_fn = [](NodeId s, NodeId t) {
    if (s == 0 && t == 3) return make_route(s, t, {0, 1, 2, 3});
    return make_route(s, t, {s, t});
  };
  const RouteAnalysis tight =
      analyze::analyze_route_function(4, route_fn, one_class, 2, "test bound");
  EXPECT_FALSE(tight.within_hop_bound);
  ASSERT_FALSE(tight.bound_witnesses.empty());
  EXPECT_EQ(tight.bound_witnesses.front().path.size(), 4u);

  const RouteAnalysis loose =
      analyze::analyze_route_function(4, route_fn, one_class, 3, "test bound");
  EXPECT_TRUE(loose.within_hop_bound);
}

TEST(RouteAnalysis, WitnessCountIsCapped) {
  // Every route of this 8-node network loops once; only max_witnesses are kept.
  const auto route_fn = [](NodeId s, NodeId t) {
    return make_route(s, t, {s, t, s, t});
  };
  RouteAnalysisOptions options;
  options.max_witnesses = 2;
  const RouteAnalysis ra =
      analyze::analyze_route_function(8, route_fn, one_class, 0, {}, options);
  EXPECT_FALSE(ra.loop_free);
  EXPECT_EQ(ra.loop_witnesses.size(), 2u);
}

// --------------------------------------------------------------------------
// Static channel load.
// --------------------------------------------------------------------------

TEST(RouteAnalysis, LoadStatisticsMatchIndependentCdgUseCounts) {
  const Dsn d(100, dsn_default_x(100));
  const RouteAnalysis ra = analyze::analyze_dsn_routes(d, ChannelScheme::kExtended);
  const ChannelDependencyGraph cdg = build_dsn_cdg(d, /*extended=*/true);

  const auto& counts = cdg.use_counts();
  ASSERT_EQ(ra.load.channels, counts.size());
  const std::uint64_t total = std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  const std::uint64_t max_load = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(ra.load.total, total);
  EXPECT_EQ(ra.load.max_load, max_load);
  EXPECT_NEAR(ra.load.mean_load, static_cast<double>(total) / counts.size(), 1e-9);
  EXPECT_NEAR(ra.load.max_normalized, static_cast<double>(max_load) / (d.n() - 1), 1e-12);
  EXPECT_NEAR(ra.load.throughput_bound, 1.0 / ra.load.max_normalized, 1e-12);
  EXPECT_GE(ra.load.gini, 0.0);
  EXPECT_LT(ra.load.gini, 1.0);
  // Total load over all channels is exactly the total hop count.
  EXPECT_NEAR(ra.avg_hops, static_cast<double>(total) / ra.pairs, 1e-9);
}

TEST(RouteAnalysis, UniformRingLoadHasZeroGini) {
  // Unidirectional ring: every route walks clockwise, so by symmetry every
  // ring channel carries an identical load and the Gini index is exactly 0.
  const auto route_fn = [](NodeId s, NodeId t) {
    std::vector<NodeId> path{s};
    for (NodeId u = s; u != t; u = (u + 1) % 16) path.push_back((u + 1) % 16);
    return make_route(s, t, path);
  };
  const RouteAnalysis ra = analyze::analyze_route_function(16, route_fn, one_class);
  EXPECT_EQ(ra.load.channels, 16u);
  EXPECT_NEAR(ra.load.gini, 0.0, 1e-12);
  EXPECT_EQ(ra.load.max_load, ra.load.total / 16);
}

// --------------------------------------------------------------------------
// Determinism and rendering.
// --------------------------------------------------------------------------

TEST(RouteAnalysis, AnalysisIsDeterministicAcrossRuns) {
  const Dsn d(128, 2);
  const RouteAnalysis a = analyze::analyze_dsn_routes(d, ChannelScheme::kBasic);
  const RouteAnalysis b = analyze::analyze_dsn_routes(d, ChannelScheme::kBasic);
  EXPECT_EQ(analyze::to_json(a).dump(), analyze::to_json(b).dump());
}

TEST(RouteAnalysis, RenderedWitnessNamesNodesClassesAndLinks) {
  const Dsn d(64, 2);
  const RouteAnalysis ra = analyze::analyze_dsn_routes(d, ChannelScheme::kBasic);
  ASSERT_FALSE(ra.cdg_cycle.empty());
  const std::string text =
      analyze::render_cycle_witness(d.topology(), ra.cdg_cycle, ChannelScheme::kBasic);
  // Every cycle channel appears with its endpoints and a link reference.
  for (const Channel& c : ra.cdg_cycle) {
    const std::string arrow = std::to_string(c.from) + "->" + std::to_string(c.to);
    EXPECT_NE(text.find(arrow), std::string::npos) << text;
  }
  EXPECT_NE(text.find("link#"), std::string::npos) << text;
}

TEST(RouteAnalysis, JsonReportRoundTripsAndExposesProperties) {
  const Dsn d(64, dsn_default_x(64));
  const RouteAnalysis ra = analyze::analyze_dsn_routes(d, ChannelScheme::kExtended);
  const Json doc = analyze::to_json(ra);
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(doc.dump(), reparsed.dump());
  EXPECT_TRUE(doc.at("properties").at("loop_free").as_bool());
  EXPECT_TRUE(doc.at("properties").at("cdg_acyclic").as_bool());
  EXPECT_EQ(doc.at("n").as_int(), 64);
}

}  // namespace
}  // namespace dsn
