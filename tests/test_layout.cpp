// Tests for the machine-room layout and cable-length model (§VI-B).
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(FloorLayout, LinearCabinetGridShape) {
  // 64 switches at 16/cabinet: m = 4 cabinets, q = ceil(sqrt 4) = 2 rows.
  const Topology topo = make_ring(64);
  const FloorLayout layout(topo, {}, PlacementStrategy::kLinear);
  EXPECT_EQ(layout.num_cabinets(), 4u);
  EXPECT_EQ(layout.rows(), 2u);
  EXPECT_EQ(layout.cols(), 2u);
}

TEST(FloorLayout, PaperGridFormula) {
  // m cabinets: rows q = ceil(sqrt m), cols = ceil(m / q).
  const Topology topo = make_ring(37 * 16);  // 37 cabinets
  const FloorLayout layout(topo, {}, PlacementStrategy::kLinear);
  EXPECT_EQ(layout.num_cabinets(), 37u);
  EXPECT_EQ(layout.rows(), 7u);
  EXPECT_EQ(layout.cols(), 6u);
}

TEST(FloorLayout, LinearFillsConsecutively) {
  const Topology topo = make_ring(64);
  const FloorLayout layout(topo, {}, PlacementStrategy::kLinear);
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(layout.cabinet_of(v), (std::pair<std::uint32_t, std::uint32_t>{0, 0}));
  }
  EXPECT_EQ(layout.cabinet_of(16), (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(layout.cabinet_of(32), (std::pair<std::uint32_t, std::uint32_t>{1, 0}));
}

TEST(FloorLayout, IntraCabinetCableIsConstant) {
  const Topology topo = make_ring(64);
  const FloorLayout layout(topo, {}, PlacementStrategy::kLinear);
  EXPECT_DOUBLE_EQ(layout.cable_length_m(0, 15), 2.0);
  EXPECT_DOUBLE_EQ(layout.cable_length_m(3, 3), 2.0);
}

TEST(FloorLayout, InterCabinetManhattanPlusOverhead) {
  const Topology topo = make_ring(64);
  const FloorLayout layout(topo, {}, PlacementStrategy::kLinear);
  // Cabinet (0,0) -> (0,1): one column apart = 0.6 + 2.0 overhead.
  EXPECT_DOUBLE_EQ(layout.cable_length_m(0, 16), 2.6);
  // Cabinet (0,0) -> (1,0): one row apart = 2.1 + 2.0.
  EXPECT_DOUBLE_EQ(layout.cable_length_m(0, 32), 4.1);
  // Cabinet (0,0) -> (1,1): 0.6 + 2.1 + 2.0.
  EXPECT_DOUBLE_EQ(layout.cable_length_m(0, 48), 4.7);
}

TEST(FloorLayout, Grid2dTilesTorus) {
  const Topology topo = make_torus_2d(8, 8);
  const FloorLayout layout(topo, {}, PlacementStrategy::kGrid2D);
  // 8x8 torus tiled by 4x4 cabinets -> 2x2 cabinet grid.
  EXPECT_EQ(layout.rows(), 2u);
  EXPECT_EQ(layout.cols(), 2u);
  EXPECT_EQ(layout.cabinet_of(0), (std::pair<std::uint32_t, std::uint32_t>{0, 0}));
  EXPECT_EQ(layout.cabinet_of(7), (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(layout.cabinet_of(7 * 8), (std::pair<std::uint32_t, std::uint32_t>{1, 0}));
}

TEST(FloorLayout, Grid2dRequiresRank2) {
  const Topology ring = make_ring(64);
  EXPECT_THROW(FloorLayout(ring, {}, PlacementStrategy::kGrid2D), PreconditionError);
}

TEST(CableReport, CountsAndTotals) {
  const Topology topo = make_ring(32);  // 2 cabinets of 16
  const FloorLayout layout(topo, {}, PlacementStrategy::kLinear);
  const CableReport report = compute_cable_report(topo, layout);
  EXPECT_EQ(report.per_link_m.size(), 32u);
  // Ring links within a cabinet: 15 + 15; crossing: (15,16) and (31,0) -> 2.
  EXPECT_EQ(report.intra_cabinet_links, 30u);
  EXPECT_EQ(report.inter_cabinet_links, 2u);
  // Two cabinets stack in q = ceil(sqrt 2) = 2 rows of one: the crossing
  // cables span one row (2.1 m) plus the 2 m overhead.
  const double expected_total = 30 * 2.0 + 2 * 4.1;
  EXPECT_NEAR(report.total_m, expected_total, 1e-9);
  EXPECT_NEAR(report.average_m, expected_total / 32, 1e-9);
  EXPECT_NEAR(report.max_m, 4.1, 1e-9);
}

TEST(CableReport, TorusUniformLinkLengthsUnderTiling) {
  // In the tiled 2-D layout, torus mesh links connect adjacent or same
  // cabinets; only wrap links span the room.
  const Topology topo = make_torus_2d(16, 16);
  const FloorLayout layout(topo, {}, PlacementStrategy::kGrid2D);
  const CableReport report = compute_cable_report(topo, layout);
  double max_mesh = 0, max_wrap = 0;
  for (LinkId l = 0; l < topo.graph.num_links(); ++l) {
    if (topo.link_roles[l] == LinkRole::kWrap) {
      max_wrap = std::max(max_wrap, report.per_link_m[l]);
    } else {
      max_mesh = std::max(max_mesh, report.per_link_m[l]);
    }
  }
  EXPECT_LT(max_mesh, max_wrap);
}

TEST(CableReport, DefaultPlacementPicksGridForTorus) {
  const Topology torus = make_torus_2d(8, 8);
  const Topology ring = make_ring(64);
  EXPECT_NO_THROW(compute_cable_report(torus));
  EXPECT_NO_THROW(compute_cable_report(ring));
}

// --------------------------------------------------------------------------
// Figure 9's headline relations.
// --------------------------------------------------------------------------

class CableComparisonTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CableComparisonTest, DsnCableShorterThanRandom) {
  const std::uint32_t n = GetParam();
  const auto dsn_cable = compute_cable_report(make_topology_by_name("dsn", n));
  const auto rnd_cable = compute_cable_report(make_topology_by_name("random", n, 1));
  EXPECT_LT(dsn_cable.average_m, rnd_cable.average_m) << "n = " << n;
}

TEST_P(CableComparisonTest, DsnCableWithinTwiceTorus) {
  // "similar average cable length to the same-degree torus": allow slack but
  // pin the order of magnitude.
  const std::uint32_t n = GetParam();
  const auto dsn_cable = compute_cable_report(make_topology_by_name("dsn", n));
  const auto torus_cable = compute_cable_report(make_topology_by_name("torus", n));
  EXPECT_LT(dsn_cable.average_m, 2.0 * torus_cable.average_m) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CableComparisonTest,
                         ::testing::Values(256u, 512u, 1024u, 2048u));

TEST(LineCable, RingOnlyHasNoShortcuts) {
  const auto stats = compute_line_cable_stats(make_ring(64));
  EXPECT_EQ(stats.shortcut_links, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_shortcut_length, 0.0);
  // Ring on a line: 63 unit links plus the wrap link of length 63.
  EXPECT_DOUBLE_EQ(stats.total_length, 63.0 + 63.0);
}

TEST(LineCable, DsnShortcutSpanNearTheoremBound) {
  // Theorem 2b: average designed span ~ n/p (we check <= n/(p-1) + p slack,
  // the exact constant depends on the x = p-1 shortcut census).
  const Dsn d(1024, dsn_default_x(1024));
  const auto stats = compute_line_cable_stats(d.topology());
  EXPECT_GT(stats.shortcut_links, 0u);
  EXPECT_LE(stats.avg_shortcut_span,
            1024.0 / (d.p() - 1) + d.p());
}

TEST(LineCable, DsnBeatsDln22ByRoughlyPOver3) {
  const Dsn d(2048, dsn_default_x(2048));
  const auto dsn_stats = compute_line_cable_stats(d.topology());
  const auto rnd_stats = compute_line_cable_stats(make_dln_random(2048, 2, 2, 1));
  const double factor = rnd_stats.avg_shortcut_length / dsn_stats.avg_shortcut_length;
  // Paper: ~p/3 = 3.67 at n = 2048; line-wrap inflation costs some of it.
  EXPECT_GT(factor, 2.0);
}

}  // namespace
}  // namespace dsn
