// Tests for the Watts-Strogatz small-world model — the landmark reference
// [20] of the paper — including the signature "small-world regime": a small
// rewiring probability collapses path lengths while clustering stays high.
#include <gtest/gtest.h>

#include "dsn/graph/metrics.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(WattsStrogatz, BetaZeroIsTheLattice) {
  const Topology t = make_watts_strogatz(64, 2, 0.0, 1);
  // Ring lattice with k = 2: exactly 2k * n / 2 links, degree 4 everywhere.
  EXPECT_EQ(t.graph.num_links(), 128u);
  for (NodeId v = 0; v < 64; ++v) EXPECT_EQ(t.graph.degree(v), 4u);
  EXPECT_TRUE(t.graph.has_link(0, 1));
  EXPECT_TRUE(t.graph.has_link(0, 2));
  EXPECT_FALSE(t.graph.has_link(0, 3));
  // Lattice clustering for k = 2 is 0.5 (3 closed of 6 neighbor pairs).
  EXPECT_NEAR(clustering_coefficient(t.graph), 0.5, 1e-9);
}

TEST(WattsStrogatz, LinkCountPreservedUnderRewiring) {
  for (const double beta : {0.0, 0.1, 0.5, 1.0}) {
    const Topology t = make_watts_strogatz(128, 3, beta, 7);
    EXPECT_EQ(t.graph.num_links(), 128u * 3u) << beta;
  }
}

TEST(WattsStrogatz, SmallWorldRegime) {
  // The Watts-Strogatz signature: at beta ~ 0.1 the ASPL collapses toward
  // the random graph's while clustering stays well above it.
  const Topology lattice = make_watts_strogatz(512, 3, 0.0, 3);
  const Topology small_world = make_watts_strogatz(512, 3, 0.1, 3);
  const Topology random = make_watts_strogatz(512, 3, 1.0, 3);
  ASSERT_TRUE(is_connected(lattice.graph));
  ASSERT_TRUE(is_connected(small_world.graph));
  ASSERT_TRUE(is_connected(random.graph));

  const auto l = compute_path_stats(lattice.graph);
  const auto s = compute_path_stats(small_world.graph);
  const auto r = compute_path_stats(random.graph);
  // Path length: lattice >> small-world ~ random.
  EXPECT_GT(l.avg_shortest_path, 3.0 * s.avg_shortest_path);
  EXPECT_LT(s.avg_shortest_path, 2.0 * r.avg_shortest_path);
  // Clustering: small-world stays a large fraction of the lattice's,
  // far above the random graph's.
  const double cl = clustering_coefficient(lattice.graph);
  const double cs = clustering_coefficient(small_world.graph);
  const double cr = clustering_coefficient(random.graph);
  EXPECT_GT(cs, 0.5 * cl);
  EXPECT_GT(cs, 4.0 * cr);
}

TEST(WattsStrogatz, DeterministicForSeed) {
  const Topology a = make_watts_strogatz(64, 2, 0.3, 11);
  const Topology b = make_watts_strogatz(64, 2, 0.3, 11);
  ASSERT_EQ(a.graph.num_links(), b.graph.num_links());
  for (LinkId l = 0; l < a.graph.num_links(); ++l) {
    EXPECT_EQ(a.graph.link_endpoints(l), b.graph.link_endpoints(l));
  }
}

TEST(WattsStrogatz, RejectsBadParams) {
  EXPECT_THROW(make_watts_strogatz(3, 1, 0.1, 1), PreconditionError);
  EXPECT_THROW(make_watts_strogatz(64, 32, 0.1, 1), PreconditionError);
  EXPECT_THROW(make_watts_strogatz(64, 2, 1.5, 1), PreconditionError);
}

}  // namespace
}  // namespace dsn
