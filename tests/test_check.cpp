// Property tests for the dsn::check invariant battery: every built-in
// generator must validate clean across an n sweep, and injected corruptions
// (dropped shortcuts, broken symmetry, miswired link ids, ...) must each be
// caught with the exact Violation kind.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/check/validator.hpp"
#include "dsn/common/error.hpp"
#include "dsn/common/math.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/generators.hpp"
#include "dsn/topology/hooks.hpp"
#include "dsn/topology/io.hpp"

// Install the validating generation hook for the whole test binary: running
// any suite with DSN_VALIDATE=1 (as ctest does) structurally revalidates
// every topology every test generates, turning the entire test corpus into
// checker input. The hook is inert when the variable is unset.
[[maybe_unused]] const dsn::TopologyGeneratedHook g_previous_hook =
    dsn::check::install_generation_hook();

namespace {

using dsn::LinkId;
using dsn::LinkRole;
using dsn::NodeId;
using dsn::Topology;
using dsn::check::ValidationReport;
using dsn::check::ViolationKind;

/// Rebuild `src` with link `id` either dropped (new_v == kInvalidNode) or
/// rewired to (u, new_v). The public Graph API cannot mutate links in place,
/// so corruption means replaying the insertion sequence with one edit —
/// which also preserves insertion order, the owner convention, and roles.
Topology rebuild_with_edit(const Topology& src, LinkId edit_id, NodeId new_v) {
  Topology out;
  out.name = src.name;
  out.kind = src.kind;
  out.dims = src.dims;
  out.graph = dsn::Graph(src.num_nodes());
  for (LinkId id = 0; id < src.graph.num_links(); ++id) {
    auto [u, v] = src.graph.link_endpoints(id);
    if (id == edit_id) {
      if (new_v == dsn::kInvalidNode) continue;  // drop the link entirely
      v = new_v;
    }
    out.graph.add_link(u, v);
    out.link_roles.push_back(src.link_roles[id]);
  }
  return out;
}

/// First shortcut link that did not collapse onto the ring.
LinkId find_real_shortcut(const Topology& topo) {
  const NodeId n = topo.num_nodes();
  for (LinkId id = 0; id < topo.graph.num_links(); ++id) {
    if (topo.link_roles[id] != LinkRole::kShortcut) continue;
    const auto [u, v] = topo.graph.link_endpoints(id);
    const NodeId cw = (u + 1) % n;
    const NodeId ccw = (u + n - 1) % n;
    if (v != cw && v != ccw) return id;
  }
  return dsn::kInvalidLink;
}

TEST(CheckClean, AllGeneratorsAcrossSizes) {
  // Includes non-power-of-two sizes; families that cannot realize a size
  // (kleinberg needs square n) throw PreconditionError and are skipped.
  const std::vector<std::string> names = {
      "ring", "torus",  "torus3d", "dln",   "random", "kleinberg",
      "random-regular", "dsn",     "dsn-d", "dsn-e",  "dsn-bidir"};
  for (const std::uint32_t n : {48u, 64u, 81u, 100u, 128u}) {
    for (const std::string& name : names) {
      Topology topo;
      try {
        topo = dsn::make_topology_by_name(name, n, /*seed=*/7);
      } catch (const dsn::PreconditionError&) {
        continue;
      }
      const ValidationReport report = dsn::check::validate_topology(topo);
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

TEST(CheckClean, DsnFullXSweep) {
  for (const std::uint32_t n : {48u, 96u}) {
    const std::uint32_t p = dsn::ilog2_ceil(n);
    for (std::uint32_t x = 1; x + 1 <= p; ++x) {
      const dsn::Dsn dsn_topo(n, x);
      const ValidationReport report = dsn::check::validate_topology(dsn_topo.topology());
      EXPECT_TRUE(report.ok()) << "x=" << x << "\n" << report.summary();
    }
  }
}

TEST(CheckClean, WattsStrogatzAndFlex) {
  const ValidationReport ws =
      dsn::check::validate_topology(dsn::make_watts_strogatz(100, 4, 0.1, 3));
  EXPECT_TRUE(ws.ok()) << ws.summary();
  const dsn::FlexDsn flex(64, 3, {0, 10, 20});
  const ValidationReport fr = dsn::check::validate_topology(flex.topology());
  EXPECT_TRUE(fr.ok()) << fr.summary();
}

TEST(CheckCorruption, DroppedShortcutIsCaught) {
  const Topology topo = dsn::make_dsn(64, 5);
  const LinkId victim = find_real_shortcut(topo);
  ASSERT_NE(victim, dsn::kInvalidLink);
  const Topology bad = rebuild_with_edit(topo, victim, dsn::kInvalidNode);
  const ValidationReport report =
      dsn::check::validate_topology(bad, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kShortcutMissing)) << report.summary();
}

TEST(CheckCorruption, MiswiredShortcutTargetIsCaught) {
  const Topology topo = dsn::make_dsn(64, 5);
  const LinkId victim = find_real_shortcut(topo);
  ASSERT_NE(victim, dsn::kInvalidLink);
  const auto [u, v] = topo.graph.link_endpoints(victim);
  // Shift the target one node clockwise: still a plausible-looking long link,
  // but it violates the nearest-lawful-target rule.
  NodeId wrong = (v + 1) % topo.num_nodes();
  if (wrong == u) wrong = (wrong + 1) % topo.num_nodes();
  const Topology bad = rebuild_with_edit(topo, victim, wrong);
  const ValidationReport report =
      dsn::check::validate_topology(bad, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kShortcutWrongTarget)) << report.summary();
}

TEST(CheckCorruption, ShortcutOnHighLevelNodeIsUnexpected) {
  Topology topo = dsn::make_dsn(64, 2);  // levels 3..p own no shortcuts
  const std::uint32_t p = dsn::ilog2_ceil(64);
  // Find a node of level > x and give it an illegal shortcut.
  NodeId owner = dsn::kInvalidNode;
  for (NodeId i = 0; i < topo.num_nodes(); ++i) {
    if (i % p + 1 > 2) {
      owner = i;
      break;
    }
  }
  ASSERT_NE(owner, dsn::kInvalidNode);
  const NodeId target = (owner + 17) % topo.num_nodes();
  topo.graph.add_link(owner, target);
  topo.link_roles.push_back(LinkRole::kShortcut);
  const ValidationReport report =
      dsn::check::validate_topology(topo, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kShortcutUnexpected)) << report.summary();
}

TEST(CheckCorruption, BrokenRingIsCaught) {
  const Topology topo = dsn::make_dsn(64, 5);
  LinkId ring_link = dsn::kInvalidLink;
  for (LinkId id = 0; id < topo.graph.num_links(); ++id) {
    if (topo.link_roles[id] == LinkRole::kRing) {
      ring_link = id;
      break;
    }
  }
  ASSERT_NE(ring_link, dsn::kInvalidLink);
  const Topology bad = rebuild_with_edit(topo, ring_link, dsn::kInvalidNode);
  const ValidationReport report =
      dsn::check::validate_topology(bad, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kRingIncomplete)) << report.summary();
}

TEST(CheckCorruption, DisconnectedGraphIsCaught) {
  // A bare ring with two cuts falls into two components.
  Topology ring = dsn::make_ring(16);
  Topology bad = rebuild_with_edit(ring, 3, dsn::kInvalidNode);
  // Link ids shifted down by one past the dropped link; drop what was link 10.
  bad = rebuild_with_edit(bad, 9, dsn::kInvalidNode);
  const ValidationReport report =
      dsn::check::validate_topology(bad, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kDisconnected)) << report.summary();
  EXPECT_TRUE(report.has(ViolationKind::kRingIncomplete)) << report.summary();
}

TEST(CheckCorruption, RoleCountMismatchIsCaught) {
  Topology topo = dsn::make_dsn(32, 3);
  topo.link_roles.pop_back();
  const ValidationReport report =
      dsn::check::validate_topology(topo, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kLinkRoleCount)) << report.summary();
}

TEST(CheckCorruption, IllegalRoleForKindIsCaught) {
  Topology ring = dsn::make_ring(12);
  ring.link_roles[4] = LinkRole::kDLocal;  // DSN-D-only role on a plain ring
  const ValidationReport report =
      dsn::check::validate_topology(ring, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kLinkRoleInvalid)) << report.summary();
}

TEST(CheckCorruption, DegreeBoundViolationIsCaught) {
  // A chord on a plain ring pushes two nodes to degree 3 (rings are exactly 2).
  Topology ring = dsn::make_ring(12);
  ring.graph.add_link(0, 6);
  ring.link_roles.push_back(LinkRole::kRing);
  const ValidationReport report =
      dsn::check::validate_topology(ring, dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kDegreeBound)) << report.summary();
}

TEST(CheckCorruption, EdgeListTamperingIsCaught) {
  // Same dropped-shortcut defect, but injected through the io layer the way a
  // hand-edited interchange file would arrive.
  const Topology topo = dsn::make_dsn(64, 5);
  const LinkId victim = find_real_shortcut(topo);
  ASSERT_NE(victim, dsn::kInvalidLink);
  const auto [u, v] = topo.graph.link_endpoints(victim);
  const std::string needle =
      std::to_string(u) + " " + std::to_string(v) + " shortcut";
  std::istringstream in(dsn::to_edge_list(topo));
  std::string text, line;
  bool removed = false;
  while (std::getline(in, line)) {
    if (!removed && line == needle) {
      removed = true;
      continue;
    }
    text += line;
    text += '\n';
  }
  ASSERT_TRUE(removed) << "edge-list line not found: " << needle;
  const ValidationReport report = dsn::check::validate_topology(
      dsn::parse_edge_list(text), dsn::check::structural_options());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kShortcutMissing)) << report.summary();
}

// --- Raw-representation corruptions (unreachable through the Graph API) ---

TEST(CheckRaw, AsymmetricAdjacencyIsCaught) {
  std::vector<std::pair<NodeId, NodeId>> links = {{0, 1}, {1, 2}};
  std::vector<std::vector<dsn::AdjHalf>> adjacency(3);
  adjacency[0] = {{1, 0}};
  adjacency[1] = {{0, 0}, {2, 1}};
  // Node 2's half of link 1 is missing: adjacency is asymmetric.
  ValidationReport report;
  dsn::check::check_raw_graph(3, links, adjacency, report);
  EXPECT_TRUE(report.has(ViolationKind::kAdjacencySymmetry)) << report.summary();
}

TEST(CheckRaw, MiswiredLinkIdIsCaught) {
  std::vector<std::pair<NodeId, NodeId>> links = {{0, 1}, {1, 2}};
  std::vector<std::vector<dsn::AdjHalf>> adjacency(3);
  adjacency[0] = {{1, 0}};
  adjacency[1] = {{0, 0}, {2, 1}};
  adjacency[2] = {{1, 0}};  // wrong link id: 0 instead of 1
  ValidationReport report;
  dsn::check::check_raw_graph(3, links, adjacency, report);
  EXPECT_TRUE(report.has(ViolationKind::kLinkIdBijection)) << report.summary();
}

TEST(CheckRaw, SelfLoopAndRangeAreCaught) {
  std::vector<std::pair<NodeId, NodeId>> links = {{0, 0}, {1, 9}};
  std::vector<std::vector<dsn::AdjHalf>> adjacency(3);
  ValidationReport report;
  dsn::check::check_raw_graph(3, links, adjacency, report);
  EXPECT_TRUE(report.has(ViolationKind::kSelfLoop)) << report.summary();
  EXPECT_TRUE(report.has(ViolationKind::kNodeIdRange)) << report.summary();
}

TEST(CheckRaw, CleanGraphHasNoViolations) {
  dsn::Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 0);
  std::vector<std::pair<NodeId, NodeId>> links;
  for (LinkId id = 0; id < g.num_links(); ++id) links.push_back(g.link_endpoints(id));
  std::vector<std::vector<dsn::AdjHalf>> adjacency(4);
  for (NodeId u = 0; u < 4; ++u) {
    const auto span = g.neighbors(u);
    adjacency[u].assign(span.begin(), span.end());
  }
  ValidationReport report;
  dsn::check::check_raw_graph(4, links, adjacency, report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// --- DSN_VALIDATE generation hook ---

TEST(CheckHook, ValidatesGeneratedTopologiesWhenEnabled) {
  const auto previous = dsn::check::install_generation_hook();
  ::setenv("DSN_VALIDATE", "1", 1);
  // Every generator fires the hook; correct topologies must pass silently.
  EXPECT_NO_THROW(dsn::make_dsn(48, 3));
  EXPECT_NO_THROW(dsn::make_topology_by_name("dsn-e", 64));
  EXPECT_NO_THROW(dsn::make_topology_by_name("torus", 36));
  ::setenv("DSN_VALIDATE", "0", 1);
  EXPECT_NO_THROW(dsn::make_ring(8));
  ::unsetenv("DSN_VALIDATE");
  dsn::set_topology_generated_hook(previous);
}

// --- opt-in whole-network route/load analysis (check_load) ---

TEST(CheckLoad, CleanDsnPassesAndReportsLoadNote) {
  dsn::check::ValidatorOptions options;
  options.check_load = true;
  const ValidationReport report =
      dsn::check::validate_topology(dsn::make_topology_by_name("dsn-e", 64), options);
  EXPECT_TRUE(report.ok()) << report.summary();
  // The load statistics ride along as a note even when nothing is violated.
  bool saw_load_note = false;
  for (const std::string& note : report.notes) {
    if (note.find("static channel load") != std::string::npos) saw_load_note = true;
  }
  EXPECT_TRUE(saw_load_note) << report.summary();
}

TEST(CheckLoad, OverloadThresholdFlagsChannelOverload) {
  dsn::check::ValidatorOptions options;
  options.check_load = true;
  options.max_normalized_load = 1e-6;  // absurdly tight: everything overloads
  const ValidationReport report =
      dsn::check::validate_topology(dsn::make_topology_by_name("dsn-e", 64), options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::kChannelOverload)) << report.summary();
}

TEST(CheckLoad, DisabledByDefault) {
  const ValidationReport report =
      dsn::check::validate_topology(dsn::make_topology_by_name("dsn", 64));
  for (const std::string& note : report.notes) {
    EXPECT_EQ(note.find("static channel load"), std::string::npos) << note;
  }
}

// --- routing-pair sampling ---

TEST(CheckSampling, ExhaustiveBelowThreshold) {
  const auto pairs = dsn::check::sampled_routing_pairs(6, /*exhaustive=*/10);
  EXPECT_EQ(pairs.size(), 6u * 5u);
}

TEST(CheckSampling, SampleAlwaysContainsExtremePair) {
  // The regression this guards: the old strided sample could miss node n-1
  // entirely, so the worst-case pair (0, n-1) — the longest FINISH walk —
  // was never exercised.
  for (const NodeId n : {321u, 1000u, 4096u}) {
    const auto pairs = dsn::check::sampled_routing_pairs(n, /*exhaustive=*/320);
    ASSERT_LT(pairs.size(), static_cast<std::size_t>(n) * (n - 1));
    bool extreme = false, reverse = false;
    for (const auto& [s, t] : pairs) {
      if (s == 0 && t == n - 1) extreme = true;
      if (s == n - 1 && t == 0) reverse = true;
      ASSERT_LT(s, n);
      ASSERT_LT(t, n);
      ASSERT_NE(s, t);
    }
    EXPECT_TRUE(extreme) << "n = " << n;
    EXPECT_TRUE(reverse) << "n = " << n;
  }
}

TEST(CheckSampling, ExtraNodesAreIncludedAndOutOfRangeIgnored) {
  const std::vector<NodeId> extras = {7, 13, 9999};  // 9999 out of range
  const auto pairs =
      dsn::check::sampled_routing_pairs(1000, /*exhaustive=*/320, extras);
  bool extra_as_src = false, extra_as_dst = false;
  for (const auto& [s, t] : pairs) {
    ASSERT_LT(s, 1000u);
    ASSERT_LT(t, 1000u);
    if (s == 7 && t == 13) extra_as_src = true;
    if (s == 13 && t == 7) extra_as_dst = true;
  }
  EXPECT_TRUE(extra_as_src);
  EXPECT_TRUE(extra_as_dst);
}

TEST(CheckSampling, PairsAreSortedAndUnique) {
  const auto pairs = dsn::check::sampled_routing_pairs(2048, /*exhaustive=*/320);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i - 1], pairs[i]);
  }
  // Ring-neighbor pairs of every sampled node are present (FINISH coverage).
  bool wrap_succ = false;
  for (const auto& [s, t] : pairs) {
    if (s == 2047 && t == 0) wrap_succ = true;
  }
  EXPECT_TRUE(wrap_succ);
}

TEST(CheckHook, InstallReturnsPreviousHook) {
  const auto before = dsn::topology_generated_hook();
  const auto previous = dsn::check::install_generation_hook();
  EXPECT_EQ(previous, before);
  EXPECT_NE(dsn::topology_generated_hook(), nullptr);
  dsn::set_topology_generated_hook(previous);
  EXPECT_EQ(dsn::topology_generated_hook(), before);
}

}  // namespace
