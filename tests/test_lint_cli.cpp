// End-to-end contract tests for the dsn-lint CLI: these spawn the real
// binary (path injected by CMake as DSN_LINT_PATH) and pin down the exit-code
// contract of the analyzer subcommands (0 = proven clean, 1 = violations,
// 2 = usage error), the --json report schema, and the deadlock-cycle witness.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dsn/common/json.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;
};

/// Run dsn-lint with the given arguments, capturing stdout (stderr is routed
/// to stdout so usage errors are observable too). `env_prefix` lets callers
/// pin environment variables, e.g. "DSN_THREADS=4".
CliResult run_lint(const std::string& args, const std::string& env_prefix = {}) {
  const std::string cmd = (env_prefix.empty() ? "" : env_prefix + " ") +
                          std::string(DSN_LINT_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  CliResult result;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) result.output.append(buf, got);
  const int status = pclose(pipe);
  result.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return result;
}

// --------------------------------------------------------------------------
// Exit-code contract.
// --------------------------------------------------------------------------

TEST(LintCli, ProvenCleanExitsZero) {
  const CliResult r = run_lint("routes --topology dsn-e --n 64 --strict");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("PASS"), std::string::npos) << r.output;
}

TEST(LintCli, RefutedPropertyExitsOne) {
  // The basic single-class channel scheme is the paper's negative control:
  // its CDG is cyclic, so `cdg` must fail with exit code 1 (not 2).
  const CliResult r = run_lint("cdg --topology dsn --x 2 --n 64");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("VIOLATION cdg-cyclic"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(LintCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("routes --topology no-such-topology --n 64").exit_code, 2);
  EXPECT_EQ(run_lint("routes --topology torus --family dsn --n 64").exit_code, 2)
      << "family/topology mismatch must be a usage error";
  EXPECT_EQ(run_lint("load --topology dsn --n 1").exit_code, 2)
      << "degenerate n must be a usage error, not a crash";
}

TEST(LintCli, LegacyModeContractIsUntouched) {
  // The pre-subcommand interface still exits with the number of failing
  // topologies, 0 when clean.
  const CliResult r = run_lint("--topology dsn --n-list 64");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --------------------------------------------------------------------------
// JSON reports.
// --------------------------------------------------------------------------

TEST(LintCli, JsonReportParsesAndRoundTrips) {
  const CliResult r = run_lint("routes --topology dsn-v --n 64 --strict --json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const Json doc = Json::parse(r.output);
  EXPECT_EQ(doc.at("command").as_string(), "routes");
  EXPECT_TRUE(doc.at("strict").as_bool());
  EXPECT_TRUE(doc.at("violations").is_array());
  EXPECT_EQ(doc.at("violations").size(), 0u);
  const Json& analysis = doc.at("analysis");
  EXPECT_TRUE(analysis.at("properties").at("loop_free").as_bool());
  EXPECT_EQ(analysis.at("n").as_int(), 64);
  EXPECT_EQ(analysis.at("pairs").as_int(), 64 * 63);
  // The serializer/parser pair is a fixed point: re-dumping the parsed
  // document reproduces it byte for byte (member order preserved).
  EXPECT_EQ(doc.dump(), Json::parse(doc.dump()).dump());
  EXPECT_EQ(doc.dump(2), Json::parse(doc.dump(2)).dump(2));
}

TEST(LintCli, JsonViolationListMatchesExitCode) {
  const CliResult r = run_lint("cdg --topology dsn --x 2 --n 64 --json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const Json doc = Json::parse(r.output);
  ASSERT_GE(doc.at("violations").size(), 1u);
  EXPECT_EQ(doc.at("violations").at(0).at("kind").as_string(), "cdg-cyclic");
  EXPECT_FALSE(doc.at("analysis").at("cdg").at("acyclic").as_bool());
}

// --------------------------------------------------------------------------
// Deadlock-cycle witness.
// --------------------------------------------------------------------------

TEST(LintCli, CycleWitnessNamesARealCdgCycle) {
  // Extract the cycle the CLI reports for the basic DSN-2-64 scheme and
  // confirm, against an independently built in-process CDG, that every
  // consecutive pair (including the closing edge) is a recorded dependency.
  const CliResult r = run_lint("cdg --topology dsn --x 2 --n 64 --json");
  ASSERT_EQ(r.exit_code, 1) << r.output;
  const Json doc = Json::parse(r.output);
  const Json& cycle = doc.at("analysis").at("cdg").at("cycle");
  ASSERT_GE(cycle.size(), 2u);

  const ChannelDependencyGraph cdg = build_dsn_cdg(Dsn(64, 2), /*extended=*/false);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const Json& a = cycle.at(i);
    const Json& b = cycle.at((i + 1) % cycle.size());
    const Channel ca{static_cast<NodeId>(a.at("from").as_int()),
                     static_cast<NodeId>(a.at("to").as_int()),
                     static_cast<std::uint8_t>(a.at("cls").as_int())};
    const Channel cb{static_cast<NodeId>(b.at("from").as_int()),
                     static_cast<NodeId>(b.at("to").as_int()),
                     static_cast<std::uint8_t>(b.at("cls").as_int())};
    EXPECT_TRUE(cdg.has_dependency(ca, cb))
        << "cycle edge " << i << " is not a CDG dependency";
  }
}

TEST(LintCli, HumanWitnessRendersChannelChain) {
  const CliResult r = run_lint("cdg --topology dsn --x 2 --n 64");
  ASSERT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("channel-cycle witness"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("closes the cycle"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("link#"), std::string::npos) << r.output;
}

// --------------------------------------------------------------------------
// load subcommand.
// --------------------------------------------------------------------------

// --------------------------------------------------------------------------
// stats determinism across thread counts (part of `ctest -L determinism`).
// --------------------------------------------------------------------------

/// Canonical projection of a `stats --json` report: stage order plus, sorted
/// by metric name, the (name, kind) schema of the final snapshot and the
/// values of every thread-count-invariant metric. Wall-clock counters (*_ns)
/// and pool/shard accounting legitimately vary with the worker count and the
/// scheduler; everything else — topology, analyzer, simulator, MS-BFS batch
/// counts — must not.
std::string stats_determinism_projection(const Json& doc) {
  std::string out = "stages:";
  const Json& stages = doc.at("stages");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out += " " + stages.at(i).at("stage").as_string();
  }
  out += "\n";
  const auto invariant = [](const std::string& name) {
    if (name.find("_ns") != std::string::npos) return false;
    if (name.rfind("dsn.pool.", 0) == 0) return false;
    if (name.find("shard") != std::string::npos) return false;
    return true;
  };
  std::vector<std::string> lines;
  const Json& metrics = doc.at("metrics");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Json& m = metrics.at(i);
    const std::string name = m.at("name").as_string();
    const std::string kind = m.at("kind").as_string();
    std::string line = name + " " + kind;
    if (invariant(name)) {
      if (kind == "counter") {
        line += " value=" + std::to_string(m.at("value").as_int());
      } else if (kind == "gauge") {
        line += " max=" + std::to_string(m.at("max").as_int());
      } else if (kind == "histogram") {
        line += " count=" + std::to_string(m.at("count").as_int()) +
                " sum=" + std::to_string(m.at("sum").as_int());
      }
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

TEST(LintCliDeterminism, StatsJsonInvariantAcrossThreadCounts) {
  // The same mini-workload pinned to 1, 4 and 8 pool workers must report a
  // byte-identical projection: the shard-order-merge discipline means thread
  // count may change timings, never schemas, stage order or logical totals.
  std::vector<std::string> projections;
  for (const char* threads : {"1", "4", "8"}) {
    const CliResult r = run_lint(std::string("stats --n 64 --json"),
                                 std::string("DSN_THREADS=") + threads);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    projections.push_back(stats_determinism_projection(Json::parse(r.output)));
  }
  EXPECT_EQ(projections[0], projections[1]);
  EXPECT_EQ(projections[0], projections[2]);
  // Sanity: the projection actually pins values, not just names.
  EXPECT_NE(projections[0].find("dsn.topology.generated counter value="),
            std::string::npos)
      << projections[0];
}

TEST(LintCli, LoadReportsThroughputBoundAndThreshold) {
  const CliResult ok = run_lint("load --topology dsn-e --n 64 --json");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  const Json doc = Json::parse(ok.output);
  const Json& load = doc.at("analysis").at("load");
  EXPECT_GT(load.at("max").as_int(), 0);
  EXPECT_GT(load.at("throughput_bound").as_double(), 0.0);
  EXPECT_NEAR(load.at("throughput_bound").as_double(),
              1.0 / load.at("max_normalized").as_double(), 1e-9);

  // An absurdly low threshold turns the same clean run into a violation.
  const CliResult over = run_lint("load --topology dsn-e --n 64 --max-normalized-load 0.001");
  EXPECT_EQ(over.exit_code, 1) << over.output;
  EXPECT_NE(over.output.find("channel-overload"), std::string::npos) << over.output;
}

}  // namespace
}  // namespace dsn
