// Property tests for the flow tier's max-min fair-share solver: on fuzzed
// abstract problems and on real topologies, every converged allocation must
// satisfy the max-min invariant (feasible, every flow bottlenecked at a
// saturated resource where it holds a maximal rate), and the solution must be
// invariant under flow-id permutation and bitwise invariant under shard
// count. All randomness is seeded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/flow/fair_share.hpp"
#include "dsn/flow/flow_sim.hpp"
#include "dsn/flow/workload.hpp"

namespace dsn::flow {
namespace {

struct Problem {
  std::vector<double> capacity;
  std::vector<std::uint32_t> pool;
  std::vector<std::uint64_t> begin;
};

/// Fuzz a fair-share problem: `resources` capacities drawn from a few
/// magnitudes, `flows` routes of 1..5 distinct resources each.
Problem fuzz_problem(std::uint32_t resources, std::uint32_t flows, Rng& rng) {
  Problem p;
  p.capacity.resize(resources);
  for (double& c : p.capacity) c = 0.25 * static_cast<double>(1 + rng.next_below(16));
  p.begin.push_back(0);
  std::vector<std::uint32_t> route;
  for (std::uint32_t f = 0; f < flows; ++f) {
    route.clear();
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.next_below(std::min(5u, resources)));
    while (route.size() < len) {
      const std::uint32_t c = rng.next_below(resources);
      if (std::find(route.begin(), route.end(), c) == route.end()) route.push_back(c);
    }
    p.pool.insert(p.pool.end(), route.begin(), route.end());
    p.begin.push_back(p.pool.size());
  }
  return p;
}

TEST(FlowFairness, FuzzedProblemsSatisfyMaxMinInvariant) {
  Rng rng(0xF10F109);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t resources = 2 + rng.next_below(40);
    const std::uint32_t flows = 1 + rng.next_below(120);
    const Problem p = fuzz_problem(resources, flows, rng);
    const FairShareResult r = max_min_fair_rates(p.capacity, p.pool, p.begin);
    ASSERT_TRUE(r.converged) << "trial " << trial;
    ASSERT_LE(r.rounds, resources) << "trial " << trial;
    const std::vector<std::string> violations =
        check_max_min(p.capacity, p.pool, p.begin, r);
    EXPECT_TRUE(violations.empty())
        << "trial " << trial << ": " << violations.front();
    for (std::uint32_t f = 0; f < flows; ++f) {
      EXPECT_NE(r.bottleneck[f], kNoBottleneck) << "trial " << trial << " flow " << f;
      EXPECT_GT(r.rate[f], 0.0) << "trial " << trial << " flow " << f;
    }
  }
}

TEST(FlowFairness, RatesInvariantUnderFlowPermutation) {
  Rng rng(0xBADC0DE);
  for (int trial = 0; trial < 50; ++trial) {
    const Problem p = fuzz_problem(2 + rng.next_below(20), 2 + rng.next_below(60), rng);
    const std::size_t flows = p.begin.size() - 1;

    std::vector<std::uint32_t> perm(flows);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = flows - 1; i > 0; --i)
      std::swap(perm[i], perm[rng.next_below(static_cast<std::uint32_t>(i + 1))]);

    Problem q;
    q.capacity = p.capacity;
    q.begin.push_back(0);
    for (const std::uint32_t f : perm) {
      q.pool.insert(q.pool.end(), p.pool.begin() + p.begin[f],
                    p.pool.begin() + p.begin[f + 1]);
      q.begin.push_back(q.pool.size());
    }

    const FairShareResult a = max_min_fair_rates(p.capacity, p.pool, p.begin);
    const FairShareResult b = max_min_fair_rates(q.capacity, q.pool, q.begin);
    ASSERT_TRUE(a.converged && b.converged);
    for (std::size_t i = 0; i < flows; ++i)
      EXPECT_EQ(a.rate[perm[i]], b.rate[i]) << "trial " << trial << " pos " << i;
  }
}

TEST(FlowFairness, SolverBitwiseInvariantUnderShardCount) {
  Rng rng(0x5A4D5);
  for (int trial = 0; trial < 20; ++trial) {
    const Problem p = fuzz_problem(4 + rng.next_below(60), 8 + rng.next_below(300), rng);
    const FairShareResult base =
        max_min_fair_rates(p.capacity, p.pool, p.begin, 256, /*shards=*/1);
    for (const std::uint32_t shards : {2u, 3u, 8u, 13u}) {
      const FairShareResult r =
          max_min_fair_rates(p.capacity, p.pool, p.begin, 256, shards);
      ASSERT_EQ(base.rate.size(), r.rate.size());
      for (std::size_t i = 0; i < base.rate.size(); ++i) {
        // Bitwise, not approximate: determinism gates replay these bytes.
        EXPECT_EQ(base.rate[i], r.rate[i]) << "shards=" << shards;
        EXPECT_EQ(base.bottleneck[i], r.bottleneck[i]) << "shards=" << shards;
      }
    }
  }
}

TEST(FlowFairness, SingleLinkSharedEqually) {
  // Three flows over one unit resource: each gets exactly 1/3.
  const std::vector<double> capacity = {1.0};
  const std::vector<std::uint32_t> pool = {0, 0, 0};
  const std::vector<std::uint64_t> begin = {0, 1, 2, 3};
  const FairShareResult r = max_min_fair_rates(capacity, pool, begin);
  ASSERT_TRUE(r.converged);
  for (const double rate : r.rate) EXPECT_DOUBLE_EQ(rate, 1.0 / 3.0);
}

TEST(FlowFairness, WaterFillingFavorsShortFlow) {
  // Classic two-resource example: flow 0 crosses both links, flows 1 and 2
  // cross one each. Max-min gives the long flow 0.5 and each short flow 0.5
  // on the shared link — but if link 1 is bigger, the short flow there grows
  // past the frozen level.
  const std::vector<double> capacity = {1.0, 2.0};
  const std::vector<std::uint32_t> pool = {0, 1, 0, 1};
  const std::vector<std::uint64_t> begin = {0, 2, 3, 4};
  const FairShareResult r = max_min_fair_rates(capacity, pool, begin);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.rate[0], 0.5);  // frozen at link 0
  EXPECT_DOUBLE_EQ(r.rate[1], 0.5);
  EXPECT_DOUBLE_EQ(r.rate[2], 1.5);  // takes link 1's slack
  EXPECT_TRUE(check_max_min(capacity, pool, begin, r).empty());
}

TEST(FlowFairness, SimulatorVerifiesOnFuzzedTopologies) {
  Rng rng(0x70F0F);
  const std::vector<std::string> families = {"dsn", "random-regular", "torus", "dln"};
  for (const std::string& family : families) {
    const Topology topo = make_topology_by_name(family, 64);
    FlowConfig cfg;
    cfg.verify = true;
    FlowSimulator sim(topo, cfg);

    std::vector<Demand> demands;
    for (int i = 0; i < 300; ++i) {
      const HostId src = rng.next_below(sim.num_hosts());
      const HostId dst = rng.next_below(sim.num_hosts());
      demands.push_back({src, dst, 1 + rng.next_below(512)});
    }
    const FlowResult res = sim.run(demands);
    EXPECT_TRUE(res.converged) << family;
    EXPECT_EQ(res.verify_violations, 0u) << family << ": " << res.verify_first;
    EXPECT_EQ(res.flows_completed, demands.size()) << family;
    EXPECT_NEAR(res.flits_delivered, static_cast<double>(res.flits_total),
                1e-6 * static_cast<double>(res.flits_total))
        << family;
    EXPECT_GT(res.makespan_cycles, 0.0) << family;
  }
}

TEST(FlowFairness, WorkloadDriversRunToCompletion) {
  const Topology topo = make_topology_by_name("dsn", 64);
  WorkloadParams params;
  params.rack_hosts = 16;
  params.clients = 12;
  params.units = 4;
  params.unit_flits = 128;
  params.seed = 7;
  for (const std::string& name : workload_names()) {
    FlowConfig cfg;
    cfg.verify = true;
    FlowSimulator sim(topo, cfg);
    params.hosts = sim.num_hosts();
    const std::unique_ptr<WorkloadDriver> driver = make_workload(name, params);
    const FlowResult res = sim.run(*driver);
    EXPECT_TRUE(res.converged) << name;
    EXPECT_EQ(res.verify_violations, 0u) << name << ": " << res.verify_first;
    EXPECT_EQ(res.flows, res.flows_completed) << name;
    EXPECT_GT(res.flows, 0u) << name;
  }
}

}  // namespace
}  // namespace dsn::flow
