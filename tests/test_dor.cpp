// Tests for dimension-order routing on tori: minimality, dimension ordering,
// wrap-direction choice, and next-hop consistency with the full path.
#include <gtest/gtest.h>

#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dor.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(Dor, PathsAreMinimalOn2dTorus) {
  const Topology t = make_torus_2d(6, 6);
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    const auto bfs = bfs_distances(t.graph, s);
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      const auto path = route_torus_dor(t, s, dst);
      EXPECT_EQ(path.size() - 1, bfs[dst]) << s << "->" << dst;
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), dst);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(t.graph.has_link(path[i], path[i + 1]));
      }
    }
  }
}

TEST(Dor, PathsAreMinimalOn3dTorus) {
  const Topology t = make_torus_3d(3, 4, 2);
  for (NodeId s = 0; s < t.num_nodes(); s += 3) {
    const auto bfs = bfs_distances(t.graph, s);
    for (NodeId dst = 0; dst < t.num_nodes(); ++dst) {
      const auto path = route_torus_dor(t, s, dst);
      EXPECT_EQ(path.size() - 1, bfs[dst]) << s << "->" << dst;
    }
  }
}

TEST(Dor, ResolvesXBeforeY) {
  const Topology t = make_torus_2d(8, 8);
  // From (0,0) to (3,3): the first three hops move along x.
  const auto path = route_torus_dor(t, 0, 3 * 8 + 3);
  ASSERT_EQ(path.size(), 7u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
  EXPECT_EQ(path[3], 3u);
  EXPECT_EQ(path[4], 8u + 3u);
}

TEST(Dor, TakesShorterWrapDirection) {
  const Topology t = make_torus_2d(8, 8);
  // From x=0 to x=6 the wrap direction (0 -> 7 -> 6) is shorter.
  const auto path = route_torus_dor(t, 0, 6);
  EXPECT_EQ(path.size() - 1, 2u);
  EXPECT_EQ(path[1], 7u);
}

TEST(Dor, NextHopMatchesPath) {
  const Topology t = make_torus_2d(5, 5);
  for (NodeId s = 0; s < 25; ++s) {
    for (NodeId dst = 0; dst < 25; ++dst) {
      if (s == dst) {
        EXPECT_EQ(torus_dor_next_hop(t, s, dst), kInvalidNode);
        continue;
      }
      const auto path = route_torus_dor(t, s, dst);
      EXPECT_EQ(torus_dor_next_hop(t, s, dst), path[1]);
    }
  }
}

TEST(Dor, ScanMatchesTorusDiameter) {
  const Topology t = make_torus_2d(8, 8);
  const auto scan = scan_torus_dor(t);
  EXPECT_EQ(scan.max_hops, 8u);  // 4 + 4
  const auto stats = compute_path_stats(t.graph);
  EXPECT_NEAR(scan.avg_hops, stats.avg_shortest_path, 1e-9);
}

TEST(Dor, RejectsNonTorus) {
  const Topology ring = make_ring(8);
  EXPECT_THROW(route_torus_dor(ring, 0, 3), PreconditionError);
}

}  // namespace
}  // namespace dsn
