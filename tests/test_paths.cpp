// Tests for shortest paths, Yen's k-shortest paths and edge connectivity.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/paths.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(ShortestPath, OnRing) {
  const Topology ring = make_ring(10);
  const auto p = shortest_path(ring.graph, 0, 3);
  EXPECT_EQ(p, (std::vector<NodeId>{0, 1, 2, 3}));
  const auto q = shortest_path(ring.graph, 0, 8);
  EXPECT_EQ(q, (std::vector<NodeId>{0, 9, 8}));
}

TEST(ShortestPath, UnreachableIsEmpty) {
  Graph g(4);
  g.add_link(0, 1);
  EXPECT_TRUE(shortest_path(g, 0, 3).empty());
}

TEST(ShortestPath, SelfIsSingleton) {
  const Topology ring = make_ring(6);
  EXPECT_EQ(shortest_path(ring.graph, 2, 2), (std::vector<NodeId>{2}));
}

TEST(Yen, RingHasExactlyTwoSimplePathsBetweenAntipodes) {
  const Topology ring = make_ring(8);
  const auto paths = yen_k_shortest_paths(ring.graph, 0, 4, 5);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].size(), 5u);  // both directions are 4 hops
  EXPECT_EQ(paths[1].size(), 5u);
  EXPECT_NE(paths[0], paths[1]);
}

TEST(Yen, PathsAreLooplessOrderedAndDistinct) {
  const Topology t = make_topology_by_name("dsn", 64);
  const auto paths = yen_k_shortest_paths(t.graph, 3, 40, 6);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // Loopless.
    std::set<NodeId> uniq(paths[i].begin(), paths[i].end());
    EXPECT_EQ(uniq.size(), paths[i].size());
    // Valid.
    EXPECT_EQ(paths[i].front(), 3u);
    EXPECT_EQ(paths[i].back(), 40u);
    for (std::size_t j = 0; j + 1 < paths[i].size(); ++j) {
      EXPECT_TRUE(t.graph.has_link(paths[i][j], paths[i][j + 1]));
    }
    // Ordered by length; all distinct.
    if (i > 0) {
      EXPECT_GE(paths[i].size(), paths[i - 1].size());
      EXPECT_NE(paths[i], paths[i - 1]);
    }
  }
  // First is the true shortest.
  const auto bfs = bfs_distances(t.graph, 3);
  EXPECT_EQ(paths[0].size() - 1, bfs[40]);
}

TEST(Yen, DeterministicAcrossCalls) {
  const Topology t = make_topology_by_name("random", 32, 9);
  const auto a = yen_k_shortest_paths(t.graph, 1, 20, 4);
  const auto b = yen_k_shortest_paths(t.graph, 1, 20, 4);
  EXPECT_EQ(a, b);
}

TEST(EdgeDisjoint, RingIsTwo) {
  const Topology ring = make_ring(12);
  EXPECT_EQ(edge_disjoint_paths(ring.graph, 0, 6), 2u);
  EXPECT_EQ(edge_disjoint_paths(ring.graph, 0, 1), 2u);
}

TEST(EdgeDisjoint, TorusIsFour) {
  const Topology torus = make_torus_2d(5, 5);
  EXPECT_EQ(edge_disjoint_paths(torus.graph, 0, 12), 4u);
}

TEST(EdgeDisjoint, BridgeLimitsToOne) {
  // Two triangles joined by one bridge.
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 0);
  g.add_link(3, 4);
  g.add_link(4, 5);
  g.add_link(5, 3);
  g.add_link(2, 3);  // bridge
  EXPECT_EQ(edge_disjoint_paths(g, 0, 5), 1u);
}

TEST(EdgeDisjoint, ParallelLinksCountSeparately) {
  Graph g(2);
  g.add_link(0, 1);
  g.add_link(0, 1);
  g.add_link(0, 1);
  EXPECT_EQ(edge_disjoint_paths(g, 0, 1), 3u);
}

TEST(EdgeConnectivity, KnownValues) {
  EXPECT_EQ(edge_connectivity(make_ring(10).graph), 2u);
  EXPECT_EQ(edge_connectivity(make_torus_2d(4, 4).graph), 4u);
  Graph disconnected(4);
  disconnected.add_link(0, 1);
  disconnected.add_link(2, 3);
  EXPECT_EQ(edge_connectivity(disconnected), 0u);
}

TEST(EdgeConnectivity, DsnAtLeastTwo) {
  // The ring alone provides two disjoint paths everywhere.
  const Topology t = make_topology_by_name("dsn", 64);
  EXPECT_GE(edge_connectivity(t.graph), 2u);
}

TEST(EdgeConnectivity, RandomRegularIsDegree) {
  // Random 4-regular graphs are a.a.s. 4-edge-connected.
  const Topology t = make_random_regular(64, 4, 3);
  EXPECT_EQ(edge_connectivity(t.graph), 4u);
}

}  // namespace
}  // namespace dsn
