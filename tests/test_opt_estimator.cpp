// Correctness gates for the sampled incremental path/load estimator
// (dsn/graph/estimator) and determinism gates for the shortcut-placement
// optimizer built on it (dsn/opt). The estimator's contract is exactness:
// in exact mode (sample = every source) it must equal the whole-graph
// sweep bit-for-bit, and after any sequence of incremental swap
// evaluations its committed state must be byte-identical to a fresh
// rebuild — including when the affected-source classifier took the
// single-source re-sweep path rather than the full-sweep drift fallback.
// The OptDeterminism suite is registered under `ctest -L determinism` via
// the determinism.opt entry.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/load_bound.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/graph/csr.hpp"
#include "dsn/graph/estimator.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/opt/optimizer.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(OptEstimator, ExactModeMatchesWholeGraphSweep) {
  // n <= 1024 with auto sampling puts every source in the sample, so the
  // estimate IS the exact sweep: same integer hop sums, same division.
  const std::vector<std::string> names = {"dsn", "dln", "random-regular"};
  std::vector<Topology> topos;
  for (const std::string& name : names) topos.push_back(make_topology_by_name(name, 256, 3));
  topos.push_back(make_watts_strogatz(256, 4, 0.3, 5));
  for (const Topology& topo : topos) {
    const CsrView csr(topo.graph);
    const SampledPathEstimator est(csr, EstimatorConfig{});
    ASSERT_EQ(est.sources().size(), topo.graph.num_nodes()) << topo.name;

    const PathStats exact = compute_path_stats(csr);
    EXPECT_EQ(est.current().aspl, exact.avg_shortest_path) << topo.name;

    const analyze::TreeLoadBound bound = analyze::compute_tree_load_bound(csr);
    EXPECT_EQ(est.current().max_link_load, bound.max_load) << topo.name;
    EXPECT_EQ(est.current().max_normalized_load, bound.max_normalized) << topo.name;
    EXPECT_EQ(est.current().throughput_bound, bound.throughput_bound) << topo.name;
  }
}

TEST(OptEstimator, SampledEstimateConverges) {
  const Topology topo = make_topology_by_name("dsn", 1024, 1);
  const CsrView csr(topo.graph);
  const PathStats exact = compute_path_stats(csr);

  double prev_err = 1e9;
  for (const std::uint32_t samples : {128u, 256u, 1024u}) {
    EstimatorConfig cfg;
    cfg.sample_sources = samples;
    const SampledPathEstimator est(csr, cfg);
    const double err =
        std::abs(est.current().aspl - exact.avg_shortest_path) / exact.avg_shortest_path;
    // Source means concentrate tightly (every source averages over all n-1
    // destinations), so even an eighth of the sources lands close.
    EXPECT_LT(err, 0.05) << "samples=" << samples;
    EXPECT_LE(err, prev_err + 1e-12) << "samples=" << samples;
    prev_err = err;
  }
  EXPECT_EQ(prev_err, 0.0);  // the full sample is the exact sweep
}

/// Ring of n nodes plus `chords` long chords — a large-diameter graph whose
/// chord swaps still leave most trees intact relative to a DSN graph. Even
/// here a useful chord parents Theta(n) trees, so the test pins
/// max_affected_fraction = 1.0 to force the per-source re-sweep path (the
/// machinery under test); the drift fallback has its own gate below.
std::vector<std::pair<NodeId, NodeId>> ring_with_chords(NodeId n, NodeId chords) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  for (NodeId c = 0; c < chords; ++c) {
    const NodeId u = static_cast<NodeId>((c * n) / chords);
    edges.emplace_back(u, static_cast<NodeId>((u + n / 2 - 3 * c) % n));
  }
  return edges;
}

bool has_edge(const std::vector<std::pair<NodeId, NodeId>>& edges, NodeId a, NodeId b) {
  for (const auto& [u, v] : edges)
    if ((u == a && v == b) || (u == b && v == a)) return true;
  return false;
}

TEST(OptEstimator, IncrementalMatchesFreshAfterSwaps) {
  constexpr NodeId kN = 400;
  constexpr NodeId kChords = 8;
  std::vector<std::pair<NodeId, NodeId>> edges = ring_with_chords(kN, kChords);
  CsrView cur(kN, edges);
  EstimatorConfig cfg;  // exact mode: every mismatch is a real bug
  cfg.max_affected_fraction = 1.0;  // never drift: exercise incremental re-sweeps
  SampledPathEstimator est(cur, cfg);

  Rng rng(17);
  int accepted = 0;
  for (int step = 0; step < 60; ++step) {
    // Swap the far endpoints of two distinct chords (ring links stay put, so
    // the graph stays connected and link ids keep their layout).
    const std::size_t c1 = kN + rng.next_below(kChords);
    std::size_t c2 = kN + rng.next_below(kChords - 1);
    if (c2 >= c1) ++c2;
    std::vector<std::pair<NodeId, NodeId>> next_edges = edges;
    std::swap(next_edges[c1].second, next_edges[c2].second);
    const auto& n1 = next_edges[c1];
    const auto& n2 = next_edges[c2];
    if (n1.first == n1.second || n2.first == n2.second) continue;
    if (has_edge(edges, n1.first, n1.second) || has_edge(edges, n2.first, n2.second))
      continue;

    const std::array<std::pair<NodeId, NodeId>, 2> removed{edges[c1], edges[c2]};
    const std::array<std::pair<NodeId, NodeId>, 2> added{n1, n2};
    CsrView next(kN, next_edges);
    est.count_affected(cur, removed, added);
    est.evaluate(cur, next);
    if (rng.next() & 1) {
      est.discard();
      continue;
    }
    est.commit();
    edges = std::move(next_edges);
    cur = std::move(next);
    ++accepted;

    // The committed incremental state must be byte-identical to a fresh
    // rebuild of the same graph: estimates, per-link loads, distance rows.
    const SampledPathEstimator fresh(cur, cfg);
    ASSERT_EQ(est.current().sum_hops, fresh.current().sum_hops) << "step " << step;
    ASSERT_EQ(est.current().reachable_pairs, fresh.current().reachable_pairs);
    ASSERT_EQ(est.current().aspl, fresh.current().aspl) << "step " << step;
    ASSERT_EQ(est.current().max_link_load, fresh.current().max_link_load)
        << "step " << step;
    ASSERT_EQ(est.link_loads(), fresh.link_loads()) << "step " << step;
    for (const std::size_t src : {std::size_t{0}, std::size_t{kN / 2}, std::size_t{kN - 1}}) {
      const auto mine = est.distance_row(src);
      const auto theirs = fresh.distance_row(src);
      ASSERT_TRUE(std::equal(mine.begin(), mine.end(), theirs.begin()))
          << "step " << step << " src " << src;
    }
  }
  EXPECT_GT(accepted, 10);
  // The point of the large-diameter fixture: the incremental path must have
  // actually run (not just the drift fallback), or this test is vacuous.
  EXPECT_GT(est.resweeps(), 0u);
}

TEST(OptEstimator, DriftFallbackMatchesFreshOnSmallWorld) {
  // Production-shaped case: random global swaps on a DSN graph affect most
  // sampled trees, so evaluate() takes the full-sweep fallback. Its
  // committed state must be just as exact.
  const Topology topo = make_topology_by_name("dsn", 256, 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (LinkId l = 0; l < topo.graph.num_links(); ++l)
    edges.push_back(topo.graph.link_endpoints(l));
  CsrView cur(static_cast<NodeId>(topo.graph.num_nodes()), edges);
  SampledPathEstimator est(cur, EstimatorConfig{});

  Rng rng(23);
  const std::size_t num_links = edges.size();
  int accepted = 0;
  for (int step = 0; step < 30 && accepted < 10; ++step) {
    const std::size_t c1 = rng.next_below(num_links);
    std::size_t c2 = rng.next_below(num_links - 1);
    if (c2 >= c1) ++c2;
    std::vector<std::pair<NodeId, NodeId>> next_edges = edges;
    std::swap(next_edges[c1].second, next_edges[c2].second);
    const auto& n1 = next_edges[c1];
    const auto& n2 = next_edges[c2];
    if (n1.first == n1.second || n2.first == n2.second) continue;
    if (has_edge(edges, n1.first, n1.second) || has_edge(edges, n2.first, n2.second))
      continue;
    CsrView next(static_cast<NodeId>(topo.graph.num_nodes()), next_edges);
    const std::array<std::pair<NodeId, NodeId>, 2> removed{edges[c1], edges[c2]};
    const std::array<std::pair<NodeId, NodeId>, 2> added{n1, n2};
    est.count_affected(cur, removed, added);
    const EstimateView& cand = est.evaluate(cur, next);
    if (!cand.sample_connected) {  // endpoint swaps can disconnect a DSN graph
      est.discard();
      continue;
    }
    est.commit();
    edges = std::move(next_edges);
    cur = std::move(next);
    ++accepted;

    const SampledPathEstimator fresh(cur, EstimatorConfig{});
    ASSERT_EQ(est.current().aspl, fresh.current().aspl) << "step " << step;
    ASSERT_EQ(est.link_loads(), fresh.link_loads()) << "step " << step;
  }
  EXPECT_GE(accepted, 10);
  EXPECT_GT(est.full_sweeps(), 1u);  // 1 from the constructor's initial sweep
}

TEST(OptDeterminism, RepeatedRunsAreIdentical) {
  opt::OptimizerConfig cfg;
  cfg.seed = 7;
  cfg.passes = 2;
  cfg.iterations = 60;
  cfg.plateau = 20;
  const Topology topo = make_topology_by_name("dsn", 192, 1);
  const opt::OptimizerResult a = opt::optimize_shortcuts(topo, cfg);
  const opt::OptimizerResult b = opt::optimize_shortcuts(topo, cfg);
  EXPECT_EQ(opt::optimizer_result_to_json(a).dump(), opt::optimizer_result_to_json(b).dump());
  EXPECT_EQ(a.best_shortcuts, b.best_shortcuts);
}

/// Run the real dsn-lint binary (path injected by CMake as DSN_LINT_PATH)
/// with an environment prefix, capturing stdout.
std::string run_lint(const std::string& env_prefix, const std::string& args,
                     int& exit_code) {
  const std::string cmd =
      env_prefix + " " + std::string(DSN_LINT_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) output.append(buf, got);
  const int status = pclose(pipe);
  exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return output;
}

TEST(OptDeterminism, LintOptimizeBytesInvariantUnderDsnThreads) {
  // The committed BENCH_opt.json front must not depend on the runner's core
  // count: the full --json projection (front, counters, every float) is
  // compared as bytes across thread-pool widths.
  const std::string args =
      "optimize --topology dsn --n 192 --passes 2 --iterations 80 --plateau 20 --json";
  int base_code = -1;
  const std::string base = run_lint("DSN_THREADS=1", args, base_code);
  ASSERT_EQ(base_code, 0) << base;
  for (const char* threads : {"4", "8"}) {
    int code = -1;
    const std::string out =
        run_lint(std::string("DSN_THREADS=") + threads, args, code);
    EXPECT_EQ(code, 0) << out;
    EXPECT_EQ(base, out) << "DSN_THREADS=" << threads;
  }
}

}  // namespace
}  // namespace dsn
