// Tests for the fault-tolerance analysis: graph surgery helpers and the
// degradation evaluators.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/faults.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(FaultSurgery, RemoveLinks) {
  const Topology ring = make_ring(8);
  const Graph g = remove_links(ring.graph, {0, 3});
  EXPECT_EQ(g.num_links(), 6u);
  EXPECT_FALSE(g.has_link(0, 1));
  EXPECT_FALSE(g.has_link(3, 4));
  EXPECT_TRUE(g.has_link(1, 2));
}

TEST(FaultSurgery, RemoveNodes) {
  const Topology ring = make_ring(8);
  const Graph g = remove_nodes(ring.graph, {3});
  EXPECT_EQ(g.num_links(), 6u);  // both links of node 3 gone
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_link(4, 5));
}

TEST(FaultSurgery, RejectsOutOfRange) {
  const Topology ring = make_ring(8);
  EXPECT_THROW(remove_links(ring.graph, {99}), PreconditionError);
  EXPECT_THROW(remove_nodes(ring.graph, {99}), PreconditionError);
}

TEST(Faults, ZeroFractionIsBaseline) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const auto r = evaluate_link_faults(topo, 0.0, 3, 1);
  EXPECT_DOUBLE_EQ(r.connected_rate, 1.0);
  EXPECT_EQ(r.connected_trials, 3u);
  const auto base = compute_path_stats(topo.graph);
  EXPECT_DOUBLE_EQ(r.avg_diameter, base.diameter);
  EXPECT_NEAR(r.avg_aspl, base.avg_shortest_path, 1e-9);
}

TEST(Faults, RingDisconnectsEasily) {
  // Removing 10% of a ring's links (>= 2 links) always disconnects it.
  const Topology ring = make_ring(64);
  const auto r = evaluate_link_faults(ring, 0.1, 5, 2);
  EXPECT_DOUBLE_EQ(r.connected_rate, 0.0);
}

TEST(Faults, DsnSurvivesModerateLinkFailures) {
  // The shortcut hierarchy provides alternative paths around ring failures.
  const Topology topo = make_topology_by_name("dsn", 128);
  const auto r = evaluate_link_faults(topo, 0.02, 10, 3);
  EXPECT_GT(r.connected_rate, 0.5);
}

TEST(Faults, AsplGrowsWithFailures) {
  const Topology topo = make_topology_by_name("random", 128, 1);
  const auto r0 = evaluate_link_faults(topo, 0.0, 1, 1);
  const auto r1 = evaluate_link_faults(topo, 0.05, 10, 1);
  ASSERT_GT(r1.connected_trials, 0u);
  EXPECT_GE(r1.avg_aspl, r0.avg_aspl);
}

TEST(Faults, SwitchFaultsEvaluateSurvivors) {
  const Topology topo = make_topology_by_name("random", 64, 5);
  const auto r = evaluate_switch_faults(topo, 0.05, 8, 4);
  EXPECT_EQ(r.trials, 8u);
  // Random degree-4 graphs are robust to a few node losses.
  EXPECT_GT(r.connected_rate, 0.3);
}

TEST(Faults, DeterministicForSeed) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const auto a = evaluate_link_faults(topo, 0.05, 5, 42);
  const auto b = evaluate_link_faults(topo, 0.05, 5, 42);
  EXPECT_EQ(a.connected_trials, b.connected_trials);
  EXPECT_DOUBLE_EQ(a.avg_aspl, b.avg_aspl);
}

TEST(Faults, RejectsBadFraction) {
  const Topology topo = make_topology_by_name("dsn", 64);
  EXPECT_THROW(evaluate_link_faults(topo, 1.0, 1, 1), PreconditionError);
  EXPECT_THROW(evaluate_switch_faults(topo, -0.1, 1, 1), PreconditionError);
}

// --------------------------------------------------------------------------
// subset_path_stats: the MS-BFS/CSR rewrite must agree with a brute-force
// per-source BFS on every input class (node faults, non-multiple-of-64 sizes,
// disconnected survivors).
// --------------------------------------------------------------------------

SubsetPathStats brute_force_stats(const Graph& g, const std::vector<std::uint8_t>& alive) {
  SubsetPathStats out;
  std::uint64_t alive_count = 0;
  for (const auto a : alive) alive_count += a;
  if (alive_count <= 1) {
    out.connected = true;
    return out;
  }
  std::uint64_t pairs = 0, total = 0;
  std::uint32_t diameter = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!alive[s]) continue;
    const auto dist = bfs_distances(g, s);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (!alive[t] || t == s) continue;
      if (dist[t] == kUnreachable) return out;
      total += dist[t];
      diameter = std::max(diameter, dist[t]);
      ++pairs;
    }
  }
  out.connected = true;
  out.diameter = diameter;
  out.aspl = static_cast<double>(total) / static_cast<double>(pairs);
  return out;
}

TEST(SubsetPathStats, MatchesBruteForceWithNodeFaults) {
  // 100 nodes: exercises the partial last MS-BFS batch (100 % 64 != 0).
  const Topology topo = make_topology_by_name("random", 100, 7);
  std::vector<std::uint8_t> alive(100, 1);
  alive[3] = alive[41] = alive[99] = 0;
  const auto fast = subset_path_stats(topo.graph, alive);
  const auto slow = brute_force_stats(topo.graph, alive);
  EXPECT_EQ(fast.connected, slow.connected);
  EXPECT_EQ(fast.diameter, slow.diameter);
  EXPECT_NEAR(fast.aspl, slow.aspl, 1e-12);
}

TEST(SubsetPathStats, DisconnectedReportsZeros) {
  const Topology ring = make_ring(16);
  const Graph cut = remove_links(ring.graph, {0, 8});  // splits the cycle
  const std::vector<std::uint8_t> alive(16, 1);
  const auto s = subset_path_stats(cut, alive);
  EXPECT_FALSE(s.connected);
  EXPECT_EQ(s.diameter, 0u);
  EXPECT_DOUBLE_EQ(s.aspl, 0.0);
}

TEST(SubsetPathStats, SingleSurvivorIsTriviallyConnected) {
  const Topology ring = make_ring(8);
  std::vector<std::uint8_t> alive(8, 0);
  alive[5] = 1;
  const auto s = subset_path_stats(ring.graph, alive);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 0u);
}

TEST(Faults, SwitchFaultsDeterministicForSeed) {
  const Topology topo = make_topology_by_name("random", 96, 5);
  const auto a = evaluate_switch_faults(topo, 0.05, 6, 42);
  const auto b = evaluate_switch_faults(topo, 0.05, 6, 42);
  EXPECT_EQ(a.connected_trials, b.connected_trials);
  EXPECT_DOUBLE_EQ(a.avg_aspl, b.avg_aspl);
  EXPECT_DOUBLE_EQ(a.avg_diameter, b.avg_diameter);
}

TEST(Faults, DifferentSeedsSampleDifferentFaultSets) {
  // Statistical, not strict: across ten fractions at least one must differ.
  const Topology topo = make_topology_by_name("dsn", 128);
  bool any_diff = false;
  for (std::uint64_t s = 0; s < 10 && !any_diff; ++s) {
    const auto a = evaluate_link_faults(topo, 0.06, 4, s);
    const auto b = evaluate_link_faults(topo, 0.06, 4, s + 1000);
    any_diff = a.avg_aspl != b.avg_aspl || a.connected_trials != b.connected_trials;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace dsn
