// Tests for the fault-tolerance analysis: graph surgery helpers and the
// degradation evaluators.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/faults.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(FaultSurgery, RemoveLinks) {
  const Topology ring = make_ring(8);
  const Graph g = remove_links(ring.graph, {0, 3});
  EXPECT_EQ(g.num_links(), 6u);
  EXPECT_FALSE(g.has_link(0, 1));
  EXPECT_FALSE(g.has_link(3, 4));
  EXPECT_TRUE(g.has_link(1, 2));
}

TEST(FaultSurgery, RemoveNodes) {
  const Topology ring = make_ring(8);
  const Graph g = remove_nodes(ring.graph, {3});
  EXPECT_EQ(g.num_links(), 6u);  // both links of node 3 gone
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_link(4, 5));
}

TEST(FaultSurgery, RejectsOutOfRange) {
  const Topology ring = make_ring(8);
  EXPECT_THROW(remove_links(ring.graph, {99}), PreconditionError);
  EXPECT_THROW(remove_nodes(ring.graph, {99}), PreconditionError);
}

TEST(Faults, ZeroFractionIsBaseline) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const auto r = evaluate_link_faults(topo, 0.0, 3, 1);
  EXPECT_DOUBLE_EQ(r.connected_rate, 1.0);
  EXPECT_EQ(r.connected_trials, 3u);
  const auto base = compute_path_stats(topo.graph);
  EXPECT_DOUBLE_EQ(r.avg_diameter, base.diameter);
  EXPECT_NEAR(r.avg_aspl, base.avg_shortest_path, 1e-9);
}

TEST(Faults, RingDisconnectsEasily) {
  // Removing 10% of a ring's links (>= 2 links) always disconnects it.
  const Topology ring = make_ring(64);
  const auto r = evaluate_link_faults(ring, 0.1, 5, 2);
  EXPECT_DOUBLE_EQ(r.connected_rate, 0.0);
}

TEST(Faults, DsnSurvivesModerateLinkFailures) {
  // The shortcut hierarchy provides alternative paths around ring failures.
  const Topology topo = make_topology_by_name("dsn", 128);
  const auto r = evaluate_link_faults(topo, 0.02, 10, 3);
  EXPECT_GT(r.connected_rate, 0.5);
}

TEST(Faults, AsplGrowsWithFailures) {
  const Topology topo = make_topology_by_name("random", 128, 1);
  const auto r0 = evaluate_link_faults(topo, 0.0, 1, 1);
  const auto r1 = evaluate_link_faults(topo, 0.05, 10, 1);
  ASSERT_GT(r1.connected_trials, 0u);
  EXPECT_GE(r1.avg_aspl, r0.avg_aspl);
}

TEST(Faults, SwitchFaultsEvaluateSurvivors) {
  const Topology topo = make_topology_by_name("random", 64, 5);
  const auto r = evaluate_switch_faults(topo, 0.05, 8, 4);
  EXPECT_EQ(r.trials, 8u);
  // Random degree-4 graphs are robust to a few node losses.
  EXPECT_GT(r.connected_rate, 0.3);
}

TEST(Faults, DeterministicForSeed) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const auto a = evaluate_link_faults(topo, 0.05, 5, 42);
  const auto b = evaluate_link_faults(topo, 0.05, 5, 42);
  EXPECT_EQ(a.connected_trials, b.connected_trials);
  EXPECT_DOUBLE_EQ(a.avg_aspl, b.avg_aspl);
}

TEST(Faults, RejectsBadFraction) {
  const Topology topo = make_topology_by_name("dsn", 64);
  EXPECT_THROW(evaluate_link_faults(topo, 1.0, 1, 1), PreconditionError);
  EXPECT_THROW(evaluate_switch_faults(topo, -0.1, 1, 1), PreconditionError);
}

}  // namespace
}  // namespace dsn
