// Structural tests of the basic DSN topology (§IV-B) including the paper's
// Fact 1 (degrees) and Theorem 1b (diameter bound), parameterized over the
// network sizes of the evaluation plus adversarial non-power-of-two sizes.
#include <gtest/gtest.h>

#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {
namespace {

TEST(Dsn, ParameterValidation) {
  EXPECT_THROW(Dsn(4, 1), PreconditionError);    // too small
  EXPECT_THROW(Dsn(64, 0), PreconditionError);   // x < 1
  EXPECT_THROW(Dsn(64, 6), PreconditionError);   // x > p-1 = 5
  EXPECT_NO_THROW(Dsn(64, 5));
  EXPECT_NO_THROW(Dsn(64, 1));
}

TEST(Dsn, BasicParameters) {
  const Dsn d(64, 5);
  EXPECT_EQ(d.n(), 64u);
  EXPECT_EQ(d.p(), 6u);   // ceil(log2 64)
  EXPECT_EQ(d.r(), 4u);   // 64 mod 6
  EXPECT_EQ(d.x(), 5u);
  EXPECT_EQ(dsn_default_x(64), 5u);
}

TEST(Dsn, LevelAssignmentIsPeriodic) {
  const Dsn d(64, 5);
  for (NodeId i = 0; i < 64; ++i) {
    EXPECT_EQ(d.level(i), i % 6 + 1);
    EXPECT_EQ(d.height(i), 6 + 1 - d.level(i));
    EXPECT_EQ(d.super_node(i), i / 6);
  }
}

TEST(Dsn, PredSuccWrapAround) {
  const Dsn d(32, 4);
  EXPECT_EQ(d.pred(0), 31u);
  EXPECT_EQ(d.succ(31), 0u);
  EXPECT_EQ(d.pred(5), 4u);
  EXPECT_EQ(d.succ(5), 6u);
}

TEST(Dsn, ShortcutLevelsAndTargets) {
  const Dsn d(64, 5);
  for (NodeId i = 0; i < 64; ++i) {
    const std::uint32_t l = d.level(i);
    const NodeId j = d.shortcut_target(i);
    if (l > d.x()) {
      EXPECT_EQ(j, kInvalidNode) << "node " << i;
      continue;
    }
    ASSERT_NE(j, kInvalidNode) << "node " << i;
    // Target must have level l+1 and clockwise distance >= floor(n/2^l).
    EXPECT_EQ(d.level(j), l + 1) << "node " << i;
    const auto span = ring_cw_distance(i, j, 64);
    EXPECT_GE(span, d.shortcut_min_span(l)) << "node " << i;
    // Minimality: no closer level-(l+1) node at admissible distance.
    for (std::uint64_t s = d.shortcut_min_span(l); s < span; ++s) {
      const NodeId cand = static_cast<NodeId>((i + s) % 64);
      EXPECT_NE(d.level(cand), l + 1) << "node " << i << " closer candidate " << cand;
    }
  }
}

TEST(Dsn, IncomingShortcutsMatchOutgoing) {
  const Dsn d(100, 6);
  std::size_t outgoing = 0;
  for (NodeId i = 0; i < 100; ++i) {
    if (d.shortcut_target(i) != kInvalidNode) {
      ++outgoing;
      const auto& inc = d.incoming_shortcuts(d.shortcut_target(i));
      EXPECT_NE(std::find(inc.begin(), inc.end(), i), inc.end());
    }
  }
  std::size_t incoming = 0;
  for (NodeId i = 0; i < 100; ++i) incoming += d.incoming_shortcuts(i).size();
  EXPECT_EQ(incoming, outgoing);
}

TEST(Dsn, HighestLevelShortcutHalvesRing) {
  const Dsn d(64, 5);
  // Level-1 nodes (height p) jump at least n/2.
  for (NodeId i = 0; i < 64; i += 6) {
    ASSERT_EQ(d.level(i), 1u);
    const NodeId j = d.shortcut_target(i);
    EXPECT_GE(ring_cw_distance(i, j, 64), 32u);
  }
}

TEST(Dsn, SuperNodeCollapsesToDln) {
  // Fig. 1(c): each complete super node owns exactly one shortcut per level
  // 1..x.
  const Dsn d(64, 5);
  const std::uint32_t complete_supers = 64 / 6;
  for (std::uint32_t s = 0; s < complete_supers; ++s) {
    std::set<std::uint32_t> levels;
    for (std::uint32_t k = 0; k < 6; ++k) {
      const NodeId i = s * 6 + k;
      if (d.shortcut_target(i) != kInvalidNode) levels.insert(d.level(i));
    }
    EXPECT_EQ(levels.size(), d.x()) << "super node " << s;
  }
}

// --------------------------------------------------------------------------
// Fact 1 (degrees), parameterized over sizes incl. non-powers of two.
// --------------------------------------------------------------------------

class DsnFact1Test : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DsnFact1Test, DegreesMatchFact1) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto stats = compute_degree_stats(d.topology().graph);

  // Degrees lie in {2, 3, 4, 5} (degree 2 only possible when x < p-1; with
  // x = p-1 minimum is 3 except where a shortcut collapsed onto a ring link).
  EXPECT_GE(stats.min_degree, 2u);
  EXPECT_LE(stats.max_degree, 5u);

  // Average degree <= 4.
  EXPECT_LE(stats.avg_degree, 4.0 + 1e-9);

  // At most p vertices of degree 5.
  const std::uint64_t deg5 = stats.histogram.size() > 5 ? stats.histogram[5] : 0;
  EXPECT_LE(deg5, d.p());
}

TEST_P(DsnFact1Test, ConnectedAndLogDiameter) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto s = compute_path_stats(d.topology().graph);
  EXPECT_TRUE(s.connected);
  // Theorem 1b: diameter <= 2.5 p + r for x > p - log p.
  EXPECT_LE(s.diameter, 2.5 * d.p() + d.r()) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, DsnFact1Test,
                         ::testing::Values(32u, 64u, 100u, 128u, 200u, 256u, 300u,
                                           512u, 777u, 1024u, 2048u));

// Incoming shortcut count never exceeds 2 (the degree-5 analysis of Fact 1).
TEST_P(DsnFact1Test, AtMostTwoIncomingShortcuts) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_LE(d.incoming_shortcuts(i).size(), 2u) << "node " << i << ", n " << n;
  }
}

TEST(Dsn, MultipleOfPAvoidsDegree5) {
  // r = 0 removes the incomplete super node; Fact 1's degree-5 cases need
  // the wrap irregularity or the level pattern break, which are rarer here.
  const Dsn d(256, 7);  // p = 8, 256 = 32 * 8 -> r = 0
  EXPECT_EQ(d.r(), 0u);
  const auto stats = compute_degree_stats(d.topology().graph);
  const std::uint64_t deg5 = stats.histogram.size() > 5 ? stats.histogram[5] : 0;
  EXPECT_LE(deg5, d.p());
}

TEST(Dsn, TopologyNameAndKind) {
  const Dsn d(64, 5);
  EXPECT_EQ(d.topology().name, "dsn-5-64");
  EXPECT_EQ(d.topology().kind, TopologyKind::kDsn);
  EXPECT_EQ(d.topology().link_roles.size(), d.topology().graph.num_links());
}

TEST(Dsn, SmallerXMeansFewerLinks) {
  const Dsn d1(256, 2);
  const Dsn d2(256, 7);
  EXPECT_LT(d1.topology().graph.num_links(), d2.topology().graph.num_links());
}

TEST(Dsn, FactoryMatchesClass) {
  const Topology t = make_dsn(128, 6);
  const Dsn d(128, 6);
  EXPECT_EQ(t.graph.num_links(), d.topology().graph.num_links());
}

}  // namespace
}  // namespace dsn
