// Tests for the simulator routing tables (minimal adaptive + escape) and the
// three routing policies' candidate sets.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/policy.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {
namespace {

TEST(SimRouting, DistancesMatchBfs) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  for (NodeId s = 0; s < 64; s += 3) {
    const auto bfs = bfs_distances(topo.graph, s);
    for (NodeId t = 0; t < 64; ++t) {
      EXPECT_EQ(routing.distance(s, t), bfs[t]);
    }
  }
}

TEST(SimRouting, MinimalNextHopsAreExactlyCloserNeighbors) {
  const Topology topo = make_topology_by_name("random", 32, 3);
  const SimRouting routing(topo);
  for (NodeId u = 0; u < 32; ++u) {
    for (NodeId t = 0; t < 32; ++t) {
      const auto hops = routing.minimal_next_hops(u, t);
      if (u == t) {
        EXPECT_TRUE(hops.empty());
        continue;
      }
      ASSERT_FALSE(hops.empty()) << u << "->" << t;
      std::size_t closer = 0;
      for (const AdjHalf& h : topo.graph.neighbors(u)) {
        if (routing.distance(h.to, t) + 1 == routing.distance(u, t)) ++closer;
      }
      EXPECT_EQ(hops.size(), closer) << u << "->" << t;
      for (const NodeId v : hops) {
        EXPECT_EQ(routing.distance(v, t) + 1, routing.distance(u, t));
        EXPECT_TRUE(topo.graph.has_link(u, v));
      }
    }
  }
}

TEST(SimRouting, EscapeNextHopMatchesUpDown) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  for (NodeId u = 0; u < 64; u += 5) {
    for (NodeId t = 0; t < 64; t += 3) {
      if (u == t) continue;
      EXPECT_EQ(routing.escape_next_hop(u, t, false), routing.updown().next_hop(u, t, false));
    }
  }
}

// --------------------------------------------------------------------------
// Policies.
// --------------------------------------------------------------------------

TEST(AdaptivePolicy, CandidateStructure) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  const AdaptiveUpDownPolicy policy(routing, 4);
  std::vector<RouteCandidate> cands;
  for (NodeId u = 0; u < 64; u += 7) {
    for (NodeId t = 0; t < 64; t += 5) {
      if (u == t) continue;
      policy.candidates(u, t, 0, cands);
      ASSERT_FALSE(cands.empty());
      // Escape candidate is last and unique; adaptive ones use VCs 1..3.
      EXPECT_TRUE(cands.back().escape);
      EXPECT_EQ(cands.back().vc, 0u);
      for (std::size_t i = 0; i + 1 < cands.size(); ++i) {
        EXPECT_FALSE(cands[i].escape);
        EXPECT_GE(cands[i].vc, 1u);
        EXPECT_LE(cands[i].vc, 3u);
        // Adaptive candidates are minimal.
        EXPECT_EQ(routing.distance(cands[i].next, t) + 1, routing.distance(u, t));
      }
    }
  }
}

TEST(AdaptivePolicy, EscapeStateTracksDownHops) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  const AdaptiveUpDownPolicy policy(routing, 4);
  // An adaptive hop always resets the state to 0.
  const RouteCandidate adaptive{1, 2, false};
  EXPECT_EQ(policy.next_state(0, 1, adaptive, 1), 0);
  // An escape hop sets the state iff it is a down hop.
  std::vector<RouteCandidate> cands;
  policy.candidates(5, 40, 0, cands);
  const RouteCandidate esc = cands.back();
  const std::uint8_t st = policy.next_state(5, esc.next, esc, 0);
  EXPECT_EQ(st != 0, routing.escape_hop_is_down(5, esc.next));
}

TEST(AdaptivePolicy, RequiresTwoVcs) {
  const Topology topo = make_topology_by_name("ring", 8);
  const SimRouting routing(topo);
  EXPECT_THROW(AdaptiveUpDownPolicy(routing, 1), PreconditionError);
}

TEST(UpDownOnlyPolicy, SingleNextHopAllVcs) {
  const Topology topo = make_topology_by_name("random", 32, 3);
  const SimRouting routing(topo);
  const UpDownOnlyPolicy policy(routing, 4);
  std::vector<RouteCandidate> cands;
  policy.candidates(3, 20, 0, cands);
  ASSERT_EQ(cands.size(), 4u);
  for (const auto& c : cands) {
    EXPECT_EQ(c.next, cands[0].next);
    EXPECT_TRUE(c.escape);
  }
}

TEST(DsnCustomPolicy, FollowingDecisionsReachesEveryDestination) {
  const std::uint32_t n = 256;
  const Dsn d(n, dsn_default_x(n));
  const DsnCustomPolicy policy(d);
  const Graph& g = d.topology().graph;
  for (NodeId s = 0; s < n; s += 3) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      NodeId u = s;
      std::uint8_t phase = policy.initial_state();
      std::size_t hops = 0;
      while (u != t) {
        const auto dec = policy.decide(u, t, phase);
        ASSERT_TRUE(g.has_link(u, dec.candidate.next)) << s << "->" << t << " at " << u;
        // Phases only ever advance (Theorem 3 monotonicity).
        ASSERT_GE(dec.next_phase, phase) << s << "->" << t << " at " << u;
        phase = dec.next_phase;
        u = dec.candidate.next;
        ASSERT_LE(++hops, static_cast<std::size_t>(4 * d.p() + d.r()) + 8)
            << s << "->" << t;
      }
    }
  }
}

TEST(DsnCustomPolicy, VcClassesMatchPhases) {
  const std::uint32_t n = 128;
  const Dsn d(n, dsn_default_x(n));
  const DsnCustomPolicy policy(d);
  for (NodeId s = 0; s < n; s += 5) {
    for (NodeId t = 0; t < n; t += 3) {
      if (s == t) continue;
      NodeId u = s;
      std::uint8_t phase = policy.initial_state();
      while (u != t) {
        const auto dec = policy.decide(u, t, phase);
        const std::uint32_t vc = dec.candidate.vc;
        if (dec.next_phase == DsnCustomPolicy::kPhasePreWork) {
          EXPECT_EQ(vc, DsnCustomPolicy::kVcUp);
        } else if (dec.next_phase == DsnCustomPolicy::kPhaseMain) {
          EXPECT_EQ(vc, DsnCustomPolicy::kVcMain);
        } else {
          EXPECT_TRUE(vc == DsnCustomPolicy::kVcFinish ||
                      vc == DsnCustomPolicy::kVcExtra);
        }
        phase = dec.next_phase;
        u = dec.candidate.next;
      }
    }
  }
}

TEST(DsnCustomPolicy, ExtraClassOnlyNearZeroWithDestinationInRegion) {
  const std::uint32_t n = 128;
  const Dsn d(n, dsn_default_x(n));
  const DsnCustomPolicy policy(d);
  const std::uint32_t region = 2 * d.p();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      NodeId u = s;
      std::uint8_t phase = policy.initial_state();
      std::size_t hops = 0;
      while (u != t && hops < 100) {
        const auto dec = policy.decide(u, t, phase);
        if (dec.candidate.vc == DsnCustomPolicy::kVcExtra) {
          EXPECT_LT(t, region);
          EXPECT_LE(u, region);
          EXPECT_LE(dec.candidate.next, region);
        }
        phase = dec.next_phase;
        u = dec.candidate.next;
        ++hops;
      }
    }
  }
}

TEST(DsnCustomPolicy, MultiVcExpansion) {
  const Dsn d(64, dsn_default_x(64));
  const DsnCustomPolicy policy(d, 8);
  EXPECT_EQ(policy.vcs_per_class(), 2u);
  std::vector<RouteCandidate> cands;
  policy.candidates(10, 40, DsnCustomPolicy::kPhaseMain, cands);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].next, cands[1].next);
  EXPECT_EQ(cands[0].vc / 2, cands[1].vc / 2);  // same class
  EXPECT_NE(cands[0].vc, cands[1].vc);
}

TEST(DsnCustomPolicy, RejectsNonMultipleOf4Vcs) {
  const Dsn d(64, dsn_default_x(64));
  EXPECT_THROW(DsnCustomPolicy(d, 6), PreconditionError);
}

}  // namespace
}  // namespace dsn
