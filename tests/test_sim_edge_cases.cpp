// Simulator edge cases: degenerate packet sizes, single hosts, traffic to the
// injecting switch, tiny VC counts, zero load, and replica aggregation.
#include <gtest/gtest.h>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace dsn {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 4'000;
  cfg.drain_cycles = 30'000;
  cfg.offered_gbps_per_host = 1.0;
  return cfg;
}

TEST(SimEdge, SingleFlitPackets) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = tiny_config();
  cfg.packet_flits = 1;
  cfg.buffer_flits = 1;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  ASSERT_TRUE(res.drained);
  EXPECT_EQ(res.packets_delivered, res.packets_measured);
}

TEST(SimEdge, OneHostPerSwitch) {
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(16);
  SimConfig cfg = tiny_config();
  cfg.hosts_per_switch = 1;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  ASSERT_TRUE(res.drained);
}

TEST(SimEdge, ZeroLoadProducesNoPackets) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = tiny_config();
  cfg.offered_gbps_per_host = 0.0;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  EXPECT_EQ(res.packets_measured, 0u);
  EXPECT_TRUE(res.drained);
  EXPECT_DOUBLE_EQ(res.accepted_gbps_per_host, 0.0);
}

TEST(SimEdge, SameSwitchTrafficDeliversLocally) {
  // Transpose on a 2x2 host array per switch keeps some pairs on the same
  // switch; simpler: hotspot where the hot host shares the switch. Use a
  // custom pattern: everyone sends to host 0.
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  HotspotTraffic traffic(16 * 4, 0, 1.0);  // all packets to host 0
  SimConfig cfg = tiny_config();
  cfg.offered_gbps_per_host = 0.2;  // the hot ejection port is the bottleneck
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  ASSERT_FALSE(res.deadlock);
  // Hosts 1..3 share switch 0 with the destination: zero-hop deliveries work.
  ASSERT_TRUE(res.drained);
}

TEST(SimEdge, TwoVcsStillDeadlockFree) {
  const Topology topo = make_topology_by_name("random", 32, 5);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 2);  // 1 adaptive + 1 escape
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = tiny_config();
  cfg.vcs = 2;
  cfg.offered_gbps_per_host = 4.0;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.drained);
}

TEST(SimEdge, BufferLargerThanPacketPipelines) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig deep = tiny_config();
  deep.buffer_flits = 3 * deep.packet_flits;
  deep.offered_gbps_per_host = 8.0;
  SimConfig shallow = tiny_config();
  shallow.offered_gbps_per_host = 8.0;
  const SimResult rd = run_simulation(topo, policy, traffic, deep);
  const SimResult rs = run_simulation(topo, policy, traffic, shallow);
  ASSERT_FALSE(rd.deadlock);
  // Deeper buffers can only help accepted throughput at high load.
  EXPECT_GE(rd.accepted_gbps_per_host, rs.accepted_gbps_per_host - 0.3);
}

TEST(SimEdge, RejectsBufferSmallerThanPacket) {
  SimConfig cfg = tiny_config();
  cfg.buffer_flits = 8;  // < 33-flit packets: VCT impossible
  EXPECT_THROW(cfg.validate(), PreconditionError);
}

TEST(SimEdge, ConfigUnitConversions) {
  SimConfig cfg;
  EXPECT_NEAR(cfg.cycle_ns(), 256.0 / 96.0, 1e-12);
  EXPECT_EQ(cfg.router_delay_cycles(), 38u);  // ceil(100 / 2.667)
  EXPECT_EQ(cfg.link_delay_cycles(), 8u);     // ceil(20 / 2.667)
  cfg.offered_gbps_per_host = 96.0;
  EXPECT_NEAR(cfg.injection_rate_flits_per_cycle(), 1.0, 1e-12);
  EXPECT_NEAR(cfg.flits_per_cycle_to_gbps(0.5), 48.0, 1e-12);
}

TEST(SimEdge, ReplicatedSweepAggregates) {
  const Topology topo = make_topology_by_name("dsn", 32);
  LatencySweepConfig sweep;
  sweep.offered_gbps = {1.0};
  sweep.sim = tiny_config();
  sweep.replicas = 3;
  const auto pts = run_latency_sweep(topo, sweep);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].drained);
  EXPECT_GT(pts[0].avg_latency_ns, 0.0);
  EXPECT_GE(pts[0].latency_stddev_ns, 0.0);
  EXPECT_LT(pts[0].latency_stddev_ns, pts[0].avg_latency_ns * 0.2);
}

TEST(SimEdge, DsnCustomWithEightVcs) {
  const Topology topo = make_topology_by_name("dsn", 32);
  LatencySweepConfig sweep;
  sweep.offered_gbps = {0.5};
  sweep.sim = tiny_config();
  sweep.sim.vcs = 8;
  sweep.policy = "dsn-custom";
  const auto pts = run_latency_sweep(topo, sweep);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_FALSE(pts[0].deadlock);
  EXPECT_TRUE(pts[0].drained);
}

}  // namespace
}  // namespace dsn
