// Equivalence tests for the CSR snapshot and the 64-way bit-parallel MS-BFS:
// every distance, PathStats field and eccentricity produced by the new engine
// must match the adjacency-list BFS exactly — on Watts-Strogatz, DSN, DSN-E,
// ring and disconnected graphs, including batch tails (n % 64 != 0) and
// graphs smaller than one batch (n < 64).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dsn/graph/csr.hpp"
#include "dsn/graph/graph.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/msbfs.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations: the pre-CSR per-source adjacency-list BFS.
// ---------------------------------------------------------------------------

PathStats reference_path_stats(const Graph& g) {
  PathStats stats;
  const NodeId n = g.num_nodes();
  if (n == 0) return stats;
  bool all_reachable = true;
  __uint128_t total = 0;
  std::uint64_t pairs = 0;
  for (NodeId src = 0; src < n; ++src) {
    const auto dist = bfs_distances(g, src);
    for (NodeId v = 0; v < n; ++v) {
      if (v == src) continue;
      if (dist[v] == kUnreachable) {
        all_reachable = false;
        continue;
      }
      stats.diameter = std::max(stats.diameter, dist[v]);
      total += dist[v];
      ++pairs;
      if (dist[v] >= stats.hop_histogram.size()) stats.hop_histogram.resize(dist[v] + 1, 0);
      ++stats.hop_histogram[dist[v]];
    }
  }
  stats.connected = n <= 1 || all_reachable;
  stats.avg_shortest_path =
      pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(pairs);
  return stats;
}

std::vector<std::uint32_t> reference_eccentricities(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> ecc(n, 0);
  for (NodeId src = 0; src < n; ++src) {
    const auto dist = bfs_distances(g, src);
    std::uint32_t m = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] == kUnreachable) {
        m = kUnreachable;
        break;
      }
      m = std::max(m, dist[v]);
    }
    ecc[src] = m;
  }
  return ecc;
}

/// Assert that every kernel of the new engine agrees with the adjacency-list
/// reference on `g`, for every source, bit for bit.
void expect_engine_matches(const Graph& g, const std::string& label) {
  SCOPED_TRACE(label);
  const NodeId n = g.num_nodes();
  const CsrView csr(g);

  // CSR snapshot preserves node count, arcs, and adjacency order.
  ASSERT_EQ(csr.num_nodes(), n);
  ASSERT_EQ(csr.num_arcs(), 2 * g.num_links());
  for (NodeId u = 0; u < n; ++u) {
    const auto adj = g.neighbors(u);
    const auto nbrs = csr.neighbors(u);
    const auto links = csr.links(u);
    ASSERT_EQ(nbrs.size(), adj.size());
    ASSERT_EQ(links.size(), adj.size());
    ASSERT_EQ(csr.degree(u), adj.size());
    for (std::size_t k = 0; k < adj.size(); ++k) {
      EXPECT_EQ(nbrs[k], adj[k].to);
      EXPECT_EQ(links[k], adj[k].link);
    }
  }

  // MS-BFS distances: whole-range batches (exercising the n % 64 tail and the
  // single-source fallback when the tail is one node).
  std::vector<std::uint32_t> reference;
  std::vector<std::uint32_t> batch_dist(static_cast<std::size_t>(n) * kMsBfsBatch);
  MsBfsScratch scratch;
  for (NodeId lo = 0; lo < n; lo += kMsBfsBatch) {
    const NodeId hi = std::min<NodeId>(n, lo + kMsBfsBatch);
    std::vector<NodeId> sources(hi - lo);
    std::iota(sources.begin(), sources.end(), lo);
    msbfs_batch(csr, sources, batch_dist.data(), scratch);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      reference = bfs_distances(g, sources[i]);
      for (NodeId v = 0; v < n; ++v) {
        ASSERT_EQ(batch_dist[static_cast<std::size_t>(v) * kMsBfsBatch + i], reference[v])
            << "source " << sources[i] << " node " << v;
      }
    }
  }

  // Single-source CSR BFS agrees everywhere too.
  for (NodeId src = 0; src < n; ++src) {
    EXPECT_EQ(csr_bfs_distances(csr, src), bfs_distances(g, src));
  }

  // Aggregates: PathStats field for field, eccentricities, connectivity.
  const PathStats expected = reference_path_stats(g);
  const PathStats got = compute_path_stats(g);
  EXPECT_EQ(got.connected, expected.connected);
  EXPECT_EQ(got.diameter, expected.diameter);
  EXPECT_EQ(got.avg_shortest_path, expected.avg_shortest_path);
  EXPECT_EQ(got.hop_histogram, expected.hop_histogram);

  EXPECT_EQ(eccentricities(g), reference_eccentricities(g));
  EXPECT_EQ(is_connected(g), expected.connected || n <= 1);
}

Graph disconnected_graph(NodeId n) {
  // Two rings of floor(n/2) and ceil(n/2) nodes plus one isolated node when
  // n is odd and small rings degenerate: exercises unreachable lanes.
  Graph g(n);
  const NodeId half = n / 2;
  for (NodeId i = 0; i + 1 < half; ++i) g.add_link(i, i + 1);
  if (half > 2) g.add_link(half - 1, 0);
  for (NodeId i = half; i + 1 < n; ++i) g.add_link(i, i + 1);
  if (n - half > 2) g.add_link(n - 1, half);
  return g;
}

TEST(Csr, EmptyAndTrivialGraphs) {
  const Graph empty(0);
  const CsrView csr(empty);
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_arcs(), 0u);
  const PathStats stats = compute_path_stats(empty);
  EXPECT_FALSE(stats.connected);
  EXPECT_TRUE(stats.hop_histogram.empty());
  EXPECT_TRUE(eccentricities(empty).empty());

  expect_engine_matches(Graph(1), "single node");
  expect_engine_matches(Graph(3), "three isolated nodes");
}

TEST(Csr, MatchesBfsOnWattsStrogatz) {
  // 100 and 130 exercise n % 64 != 0 tails; beta spans lattice to random.
  for (const std::uint32_t n : {100u, 130u}) {
    for (const double beta : {0.0, 0.25, 1.0}) {
      const auto topo = make_watts_strogatz(n, 2, beta, /*seed=*/7);
      expect_engine_matches(topo.graph,
                            "watts-strogatz n=" + std::to_string(n) +
                                " beta=" + std::to_string(beta));
    }
  }
}

TEST(Csr, MatchesBfsOnDsn) {
  for (const std::uint32_t n : {60u, 128u, 200u}) {
    const Dsn d(n, dsn_default_x(n));
    expect_engine_matches(d.topology().graph, "dsn n=" + std::to_string(n));
  }
}

TEST(Csr, MatchesBfsOnDsnE) {
  // DSN-E adds physically parallel Up links: parallel-edge handling matters.
  for (const std::uint32_t n : {96u, 160u}) {
    const DsnE e(n);
    expect_engine_matches(e.topology().graph, "dsn-e n=" + std::to_string(n));
  }
}

TEST(Csr, MatchesBfsOnDisconnectedGraphs) {
  for (const NodeId n : {9u, 65u, 140u}) {
    expect_engine_matches(disconnected_graph(n),
                          "disconnected n=" + std::to_string(n));
  }
}

TEST(Csr, MatchesBfsBelowOneBatch) {
  for (const std::uint32_t n : {2u, 5u, 63u}) {
    const auto topo = make_ring(n >= 3 ? n : 3);
    expect_engine_matches(topo.graph, "ring n=" + std::to_string(topo.num_nodes()));
    if (n >= 4) {
      const auto rnd = make_dln_random(n, 2, 2, /*seed=*/3);
      expect_engine_matches(rnd.graph, "dln-2-2 n=" + std::to_string(n));
    }
  }
}

TEST(Csr, SortedNeighborsDeduplicateParallelLinks) {
  Graph g(4);
  g.add_link(0, 2);
  g.add_link(0, 1);
  g.add_link(0, 2);  // parallel
  g.add_link(0, 3);
  CsrView csr(g);
  csr.build_sorted_neighbors();
  const auto sorted = csr.sorted_neighbors(0);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], 1u);
  EXPECT_EQ(sorted[1], 2u);
  EXPECT_EQ(sorted[2], 3u);
  // Insertion-order view still has all four halves.
  EXPECT_EQ(csr.neighbors(0).size(), 4u);
}

TEST(Csr, ClusteringCoefficientMatchesHasLinkScan) {
  // Triangle plus a pendant: C = (1 + 1 + 1/3... ) computed by definition.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 2);
  g.add_link(2, 3);
  // Nodes 0,1: coefficient 1; node 2: 1/3; node 3: degree 1, skipped.
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), (1.0 + 1.0 + 1.0 / 3.0) / 3.0);

  const auto ws = make_watts_strogatz(120, 3, 0.1, /*seed=*/11);
  // Definition-level reference on the same graph.
  const Graph& wsg = ws.graph;
  double sum = 0.0;
  std::uint64_t counted = 0;
  for (NodeId u = 0; u < wsg.num_nodes(); ++u) {
    std::vector<NodeId> nbrs;
    for (const AdjHalf& h : wsg.neighbors(u)) {
      if (std::find(nbrs.begin(), nbrs.end(), h.to) == nbrs.end()) nbrs.push_back(h.to);
    }
    if (nbrs.size() < 2) continue;
    std::uint64_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (wsg.has_link(nbrs[i], nbrs[j])) ++closed;
      }
    }
    sum += static_cast<double>(closed) /
           static_cast<double>(nbrs.size() * (nbrs.size() - 1) / 2);
    ++counted;
  }
  const double expected = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
  EXPECT_NEAR(clustering_coefficient(wsg), expected, 1e-12);
}

TEST(Csr, MsBfsRejectsBadBatches) {
  const auto topo = make_ring(8);
  const CsrView csr(topo.graph);
  MsBfsScratch scratch;
  std::vector<std::uint32_t> dist(8 * kMsBfsBatch);
  const std::vector<NodeId> empty_sources;
  EXPECT_THROW(msbfs_batch(csr, empty_sources, dist.data(), scratch), PreconditionError);
  const std::vector<NodeId> out_of_range{9};
  EXPECT_THROW(msbfs_batch(csr, out_of_range, dist.data(), scratch), PreconditionError);
}

TEST(Csr, ScratchReuseAcrossGraphSizes) {
  // One scratch serving graphs of different sizes must not leak state.
  MsBfsScratch scratch;
  for (const std::uint32_t n : {66u, 10u, 129u}) {
    const auto topo = make_ring(n);
    const CsrView csr(topo.graph);
    std::vector<std::uint32_t> dist(static_cast<std::size_t>(n) * kMsBfsBatch);
    for (NodeId lo = 0; lo < n; lo += kMsBfsBatch) {
      const NodeId hi = std::min<NodeId>(n, lo + kMsBfsBatch);
      std::vector<NodeId> sources(hi - lo);
      std::iota(sources.begin(), sources.end(), lo);
      msbfs_batch(csr, sources, dist.data(), scratch);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        const auto expected = bfs_distances(topo.graph, sources[i]);
        for (NodeId v = 0; v < n; ++v) {
          ASSERT_EQ(dist[static_cast<std::size_t>(v) * kMsBfsBatch + i], expected[v]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dsn
