// Tests for topology import/export: DOT rendering, edge-list round trips.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/io.hpp"

namespace dsn {
namespace {

TEST(Dot, ContainsAllLinks) {
  const Topology t = make_topology_by_name("dsn", 32);
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph \"dsn-4-32\""), std::string::npos);
  // Count edge lines.
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = dot.find(" -- ", pos)) != std::string::npos; ++pos) {
    ++edges;
  }
  EXPECT_EQ(edges, t.graph.num_links());
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // shortcuts colored
}

class RoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripTest, EdgeListRoundTrip) {
  const Topology original = make_topology_by_name(GetParam(), 64, 7);
  const Topology parsed = parse_edge_list(to_edge_list(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.kind, original.kind);
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.dims, original.dims);
  ASSERT_EQ(parsed.graph.num_links(), original.graph.num_links());
  for (LinkId l = 0; l < original.graph.num_links(); ++l) {
    EXPECT_EQ(parsed.graph.link_endpoints(l), original.graph.link_endpoints(l));
    EXPECT_EQ(parsed.link_roles[l], original.link_roles[l]);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, RoundTripTest,
                         ::testing::Values("dsn", "torus", "random", "ring",
                                           "dsn-e", "dsn-bidir"));

TEST(EdgeList, RoundTripPreservesMetrics) {
  const Topology original = make_topology_by_name("dsn", 128);
  const Topology parsed = parse_edge_list(to_edge_list(original));
  const auto a = compute_path_stats(original.graph);
  const auto b = compute_path_stats(parsed.graph);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_DOUBLE_EQ(a.avg_shortest_path, b.avg_shortest_path);
}

TEST(EdgeList, RejectsGarbage) {
  EXPECT_THROW(parse_edge_list(""), PreconditionError);
  EXPECT_THROW(parse_edge_list("not a topology\n0 1 ring\n"), PreconditionError);
  EXPECT_THROW(parse_edge_list("# dsn-topology t dsn 4\n0 1 bogus-role\n"),
               PreconditionError);
}

TEST(EdgeList, HeaderCarriesDims) {
  const Topology t = make_topology_by_name("torus", 64);
  const std::string text = to_edge_list(t);
  EXPECT_NE(text.find("torus2d 64 8 8"), std::string::npos);
}

}  // namespace
}  // namespace dsn
