// Tests for greedy grid routing and the clustering-coefficient metric.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/greedy.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

// --------------------------------------------------------------------------
// clustering coefficient
// --------------------------------------------------------------------------

TEST(Clustering, CompleteGraphIsOne) {
  Graph g(4);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) g.add_link(u, v);
  Topology t{"k4", TopologyKind::kRing, std::move(g), {}, {}};
  EXPECT_DOUBLE_EQ(clustering_coefficient(t.graph), 1.0);
}

TEST(Clustering, TreeIsZero) {
  Graph g(7);
  for (NodeId u = 1; u < 7; ++u) g.add_link(u, (u - 1) / 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 0);
  g.add_link(2, 3);
  // Nodes 0,1: coefficient 1. Node 2: degree 3, one closed pair of three ->
  // 1/3. Node 3: degree 1, skipped. Average = (1 + 1 + 1/3) / 3.
  EXPECT_NEAR(clustering_coefficient(g), (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-12);
}

TEST(Clustering, RingIsZeroGridIsZero) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(make_ring(16).graph), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(make_torus_2d(5, 5).graph), 0.0);
}

// --------------------------------------------------------------------------
// greedy routing
// --------------------------------------------------------------------------

TEST(Greedy, PlainGridGreedyIsMinimal) {
  const Topology grid = make_kleinberg(8, 0, 2.0, 1);  // no shortcuts
  for (NodeId s = 0; s < grid.num_nodes(); s += 5) {
    const auto bfs = bfs_distances(grid.graph, s);
    for (NodeId t = 0; t < grid.num_nodes(); ++t) {
      const auto path = route_greedy_grid(grid, s, t);
      EXPECT_EQ(path.size() - 1, bfs[t]) << s << "->" << t;
    }
  }
}

TEST(Greedy, AllPairsReachDestination) {
  const Topology kb = make_kleinberg(10, 1, 2.0, 7);
  for (NodeId s = 0; s < kb.num_nodes(); s += 3) {
    for (NodeId t = 0; t < kb.num_nodes(); ++t) {
      const auto path = route_greedy_grid(kb, s, t);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(kb.graph.has_link(path[i], path[i + 1]));
      }
    }
  }
}

TEST(Greedy, ShortcutsHelpOnAverage) {
  const Topology grid = make_kleinberg(16, 0, 2.0, 1);
  const Topology kb = make_kleinberg(16, 1, 2.0, 1);
  const auto plain = scan_greedy_grid(grid);
  const auto with_shortcuts = scan_greedy_grid(kb);
  EXPECT_LT(with_shortcuts.avg_hops, plain.avg_hops);
}

TEST(Greedy, RejectsNonGrid) {
  const Topology ring = make_ring(16);
  EXPECT_THROW(route_greedy_grid(ring, 0, 5), PreconditionError);
}

TEST(Greedy, DsnCustomRoutingHasLowerStretchThanKleinbergGreedy) {
  // The paper's motivation (§II): greedy on Kleinberg's grid is far from
  // optimal, while DSN's custom routing stays within a small factor.
  const std::uint32_t n = 256;
  const Topology kb = make_kleinberg(16, 1, 2.0, 3);
  const auto greedy = scan_greedy_grid(kb);
  const auto kb_opt = compute_path_stats(kb.graph);
  const double greedy_stretch = greedy.avg_hops / kb_opt.avg_shortest_path;

  const Dsn d(n, dsn_default_x(n));
  const auto custom = scan_all_pairs(DsnRouter(d));
  const auto dsn_opt = compute_path_stats(d.topology().graph);
  const double custom_stretch = custom.avg_hops / dsn_opt.avg_shortest_path;

  EXPECT_GT(greedy_stretch, 1.0);
  EXPECT_LT(custom_stretch, 2.5);
}

}  // namespace
}  // namespace dsn
