// Packet-trace recording and arbitration fairness tests.
#include <gtest/gtest.h>

#include <map>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace dsn {
namespace {

TEST(PacketTraces, RecordsEveryMeasuredDelivery) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  cfg.drain_cycles = 40'000;
  cfg.offered_gbps_per_host = 1.5;
  cfg.record_packet_traces = true;

  Simulator sim(topo, policy, traffic, cfg);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.drained);
  const auto& traces = sim.packet_traces();
  EXPECT_EQ(traces.size(), res.packets_delivered);

  const std::uint32_t hosts = 32 * 4;
  for (const PacketTrace& t : traces) {
    EXPECT_LT(t.src_host, hosts);
    EXPECT_LT(t.dst_host, hosts);
    EXPECT_NE(t.src_host, t.dst_host);  // uniform traffic never self-sends
    EXPECT_GE(t.inject_cycle, t.gen_cycle);
    EXPECT_GT(t.eject_cycle, t.inject_cycle);
    // Generated inside the measurement window.
    EXPECT_GE(t.gen_cycle, cfg.warmup_cycles);
    EXPECT_LT(t.gen_cycle, cfg.warmup_cycles + cfg.measure_cycles);
  }
}

TEST(PacketTraces, DisabledByDefault) {
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 2'000;
  cfg.drain_cycles = 20'000;
  cfg.offered_gbps_per_host = 1.0;
  Simulator sim(topo, policy, traffic, cfg);
  sim.run();
  EXPECT_TRUE(sim.packet_traces().empty());
}

TEST(PacketTraces, TraceLimitRespected) {
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 5'000;
  cfg.drain_cycles = 30'000;
  cfg.offered_gbps_per_host = 2.0;
  cfg.record_packet_traces = true;
  cfg.trace_limit = 10;
  Simulator sim(topo, policy, traffic, cfg);
  const SimResult res = sim.run();
  ASSERT_GT(res.packets_delivered, 10u);
  EXPECT_EQ(sim.packet_traces().size(), 10u);
}

TEST(Fairness, HostsShareBandwidthRoughlyEvenly) {
  // All hosts offer identical uniform load near saturation; the round-robin
  // arbiters should give every source a comparable share of deliveries.
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 20'000;
  cfg.drain_cycles = 60'000;
  cfg.offered_gbps_per_host = 8.0;
  cfg.record_packet_traces = true;
  cfg.trace_limit = 1'000'000;
  Simulator sim(topo, policy, traffic, cfg);
  sim.run();

  std::map<HostId, std::uint64_t> delivered;
  for (const PacketTrace& t : sim.packet_traces()) ++delivered[t.src_host];
  ASSERT_GE(delivered.size(), 60u);  // nearly all 64 hosts delivered something
  std::uint64_t min_count = ~0ull, max_count = 0;
  for (const auto& [host, count] : delivered) {
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  // No starvation: the busiest source gets at most ~4x the quietest.
  EXPECT_LT(max_count, 4 * min_count + 16);
}

}  // namespace
}  // namespace dsn
