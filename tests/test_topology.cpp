// Tests for the non-DSN topology generators: structural invariants of rings,
// tori, DLN, DLN-x-y (RANDOM), Kleinberg grids and random regular graphs,
// with parameterized sweeps over sizes and seeds.
#include <gtest/gtest.h>

#include <set>

#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

// ---------------------------------------------------------------------------
// ring
// ---------------------------------------------------------------------------

TEST(Ring, Structure) {
  const Topology t = make_ring(10);
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.graph.num_links(), 10u);
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(t.graph.degree(i), 2u);
    EXPECT_TRUE(t.graph.has_link(i, (i + 1) % 10));
  }
  EXPECT_EQ(t.kind, TopologyKind::kRing);
}

TEST(Ring, RejectsTooSmall) { EXPECT_THROW(make_ring(2), PreconditionError); }

// ---------------------------------------------------------------------------
// torus
// ---------------------------------------------------------------------------

class Torus2dTest : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(Torus2dTest, StructureAndDiameter) {
  const auto [w, h] = GetParam();
  const Topology t = make_torus_2d(w, h);
  EXPECT_EQ(t.num_nodes(), w * h);
  // Degree: 4 everywhere except dimensions of size 2 contribute 1 not 2.
  const std::size_t expect_deg = (w > 2 ? 2 : 1) + (h > 2 ? 2 : 1);
  for (NodeId i = 0; i < t.num_nodes(); ++i) EXPECT_EQ(t.graph.degree(i), expect_deg);
  const auto s = compute_path_stats(t.graph);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, w / 2 + h / 2);
  ASSERT_EQ(t.dims.size(), 2u);
  EXPECT_EQ(t.dims[0], w);
  EXPECT_EQ(t.dims[1], h);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Torus2dTest,
                         ::testing::Values(std::pair{4u, 4u}, std::pair{8u, 8u},
                                           std::pair{4u, 8u}, std::pair{2u, 4u},
                                           std::pair{3u, 5u}, std::pair{16u, 16u}));

TEST(Torus2d, NearSquareFactorization) {
  const Topology t64 = make_torus_2d_near_square(64);
  EXPECT_EQ(t64.dims[0] * t64.dims[1], 64u);
  EXPECT_EQ(t64.dims[0], 8u);
  EXPECT_EQ(t64.dims[1], 8u);
  const Topology t32 = make_torus_2d_near_square(32);
  EXPECT_EQ(t32.dims[0] * t32.dims[1], 32u);
  EXPECT_EQ(t32.dims[1], 4u);  // 8x4
}

TEST(Torus2d, RejectsPrime) {
  EXPECT_THROW(make_torus_2d_near_square(13), PreconditionError);
}

TEST(Torus3d, StructureAndDiameter) {
  const Topology t = make_torus_3d(4, 4, 4);
  EXPECT_EQ(t.num_nodes(), 64u);
  for (NodeId i = 0; i < 64; ++i) EXPECT_EQ(t.graph.degree(i), 6u);
  const auto s = compute_path_stats(t.graph);
  EXPECT_EQ(s.diameter, 6u);  // 2+2+2
}

TEST(Torus3d, NearCube) {
  const Topology t = make_torus_3d_near_cube(64);
  EXPECT_EQ(t.dims[0] * t.dims[1] * t.dims[2], 64u);
  EXPECT_EQ(t.dims[2], 4u);
}

// ---------------------------------------------------------------------------
// DLN
// ---------------------------------------------------------------------------

TEST(Dln, Dln2IsRing) {
  const Topology t = make_dln(16, 2);
  EXPECT_EQ(t.graph.num_links(), 16u);
}

TEST(Dln, ShortcutSpans) {
  const std::uint32_t n = 64;
  const Topology t = make_dln(n, 5);  // shortcuts at spans 32, 16, 8
  EXPECT_TRUE(t.graph.has_link(0, 32));
  EXPECT_TRUE(t.graph.has_link(0, 16));
  EXPECT_TRUE(t.graph.has_link(0, 8));
  EXPECT_FALSE(t.graph.has_link(0, 4));
  EXPECT_TRUE(t.graph.has_link(5, (5 + 32) % n));
}

TEST(Dln, LogNDiameterIsLogarithmic) {
  const std::uint32_t n = 256;
  const Topology t = make_dln(n, ilog2_ceil(n));
  const auto s = compute_path_stats(t.graph);
  EXPECT_LE(s.diameter, 2 * ilog2_ceil(n));
}

class DlnRandomTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DlnRandomTest, ExactDegreeFour) {
  const std::uint32_t n = GetParam();
  const Topology t = make_dln_random(n, 2, 2, /*seed=*/123);
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_EQ(t.graph.degree(i), 4u) << "node " << i << " n " << n;
  }
  EXPECT_TRUE(is_connected(t.graph));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DlnRandomTest, ::testing::Values(32u, 64u, 128u, 256u, 512u));

TEST(DlnRandom, DifferentSeedsGiveDifferentGraphs) {
  const Topology a = make_dln_random(64, 2, 2, 1);
  const Topology b = make_dln_random(64, 2, 2, 2);
  bool differ = false;
  for (LinkId l = 0; l < a.graph.num_links() && !differ; ++l) {
    if (a.graph.link_endpoints(l) != b.graph.link_endpoints(l)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(DlnRandom, SameSeedReproduces) {
  const Topology a = make_dln_random(64, 2, 2, 9);
  const Topology b = make_dln_random(64, 2, 2, 9);
  ASSERT_EQ(a.graph.num_links(), b.graph.num_links());
  for (LinkId l = 0; l < a.graph.num_links(); ++l) {
    EXPECT_EQ(a.graph.link_endpoints(l), b.graph.link_endpoints(l));
  }
}

TEST(DlnRandom, LowDiameter) {
  const Topology t = make_dln_random(512, 2, 2, 5);
  const auto s = compute_path_stats(t.graph);
  EXPECT_LE(s.diameter, 10u);  // random degree-4 graphs are ~log n diameter
}

TEST(DlnRandomEndpoints, DegreeDistributionAndConnectivity) {
  // The alternative construction: every node originates y = 2 shortcuts, so
  // degree = 2 (ring) + 2 (out) + Binomial(in); average 6 exactly.
  const std::uint32_t n = 256;
  const Topology t = make_dln_random_endpoints(n, 2, 2, 3);
  const auto deg = compute_degree_stats(t.graph);
  EXPECT_DOUBLE_EQ(deg.avg_degree, 6.0);
  EXPECT_GE(deg.min_degree, 4u);  // ring + 2 outgoing minimum
  EXPECT_TRUE(is_connected(t.graph));
  // No duplicate links.
  for (NodeId u = 0; u < n; ++u) {
    std::set<NodeId> seen;
    for (const AdjHalf& h : t.graph.neighbors(u)) {
      EXPECT_TRUE(seen.insert(h.to).second) << "duplicate link at " << u;
    }
  }
}

TEST(DlnRandomEndpoints, LowDiameterLikeMatchingConstruction) {
  const auto a = compute_path_stats(make_dln_random(512, 2, 2, 5).graph);
  const auto b = compute_path_stats(make_dln_random_endpoints(512, 2, 2, 5).graph);
  // The denser endpoint construction can only do better or comparably.
  EXPECT_LE(b.diameter, a.diameter + 1);
}

// ---------------------------------------------------------------------------
// Kleinberg
// ---------------------------------------------------------------------------

TEST(Kleinberg, GridPlusShortcuts) {
  const Topology t = make_kleinberg(8, 1, 2.0, 7);
  EXPECT_EQ(t.num_nodes(), 64u);
  // Base grid: 2 * 8 * 7 = 112 links; plus up to 64 shortcuts (dedup possible).
  EXPECT_GE(t.graph.num_links(), 112u);
  EXPECT_LE(t.graph.num_links(), 112u + 64u);
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(Kleinberg, ShortcutsReduceDiameter) {
  const auto grid_only = make_kleinberg(12, 0, 2.0, 1);
  const auto with_shortcuts = make_kleinberg(12, 2, 2.0, 1);
  const auto s0 = compute_path_stats(grid_only.graph);
  const auto s1 = compute_path_stats(with_shortcuts.graph);
  EXPECT_EQ(s0.diameter, 22u);  // plain 12x12 grid
  EXPECT_LT(s1.diameter, s0.diameter);
}

// ---------------------------------------------------------------------------
// random regular
// ---------------------------------------------------------------------------

class RandomRegularTest : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(RandomRegularTest, ExactDegree) {
  const auto [n, d] = GetParam();
  const Topology t = make_random_regular(n, d, 99);
  for (NodeId i = 0; i < n; ++i) EXPECT_EQ(t.graph.degree(i), d);
  // Simple graph: no parallel links.
  for (LinkId l = 0; l < t.graph.num_links(); ++l) {
    const auto [u, v] = t.graph.link_endpoints(l);
    EXPECT_NE(u, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomRegularTest,
                         ::testing::Values(std::pair{16u, 3u}, std::pair{64u, 4u},
                                           std::pair{128u, 6u}, std::pair{33u, 4u}));

TEST(RandomRegular, RejectsOddProduct) {
  EXPECT_THROW(make_random_regular(15, 3, 1), PreconditionError);
}

TEST(RandomRegular, RejectsDegreeTooLarge) {
  EXPECT_THROW(make_random_regular(4, 4, 1), PreconditionError);
}

// ---------------------------------------------------------------------------
// link roles
// ---------------------------------------------------------------------------

TEST(LinkRoles, ParallelToLinks) {
  for (const Topology& t :
       {make_ring(8), make_torus_2d(4, 4), make_dln(32, 5), make_dln_random(32, 2, 2, 1)}) {
    EXPECT_EQ(t.link_roles.size(), t.graph.num_links()) << t.name;
  }
}

TEST(LinkRoles, TorusWrapLinksTagged) {
  const Topology t = make_torus_2d(4, 4);
  std::size_t wraps = 0;
  for (const auto role : t.link_roles) {
    if (role == LinkRole::kWrap) ++wraps;
  }
  EXPECT_EQ(wraps, 8u);  // 4 per dimension
}

TEST(LinkRoles, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(TopologyKind::kDsn), "dsn");
  EXPECT_STREQ(to_string(TopologyKind::kTorus2D), "torus2d");
  EXPECT_STREQ(to_string(LinkRole::kShortcut), "shortcut");
  EXPECT_STREQ(to_string(LinkRole::kUp), "up");
}

}  // namespace
}  // namespace dsn
