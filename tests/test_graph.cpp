// Unit tests for the graph substrate: multigraph storage, BFS, all-pairs
// statistics, degree statistics, connectivity.
#include <gtest/gtest.h>

#include "dsn/graph/graph.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

Graph path_graph(NodeId n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_link(i, i + 1);
  return g;
}

TEST(Graph, AddAndQueryLinks) {
  Graph g(4);
  const LinkId l0 = g.add_link(0, 1);
  const LinkId l1 = g.add_link(1, 2);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_TRUE(g.has_link(1, 0));
  EXPECT_FALSE(g.has_link(0, 2));
  EXPECT_EQ(g.find_link(1, 2), l1);
  EXPECT_EQ(g.find_link(0, 3), kInvalidLink);
  EXPECT_EQ(g.link_endpoints(l0), (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(g.link_other_end(l0, 0), 1u);
  EXPECT_EQ(g.link_other_end(l0, 1), 0u);
}

TEST(Graph, RejectsSelfLoops) {
  Graph g(3);
  EXPECT_THROW(g.add_link(1, 1), PreconditionError);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_link(0, 3), PreconditionError);
  EXPECT_THROW(g.degree(3), PreconditionError);
  EXPECT_THROW(g.neighbors(5), PreconditionError);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_link(0, 1);
  g.add_link(0, 1);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, AddLinkUniqueCollapses) {
  Graph g(3);
  const LinkId a = g.add_link_unique(0, 1);
  const LinkId b = g.add_link_unique(1, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(Graph, AverageDegree) {
  Graph g = path_graph(4);  // 3 links, 4 nodes
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
}

TEST(Graph, AdjacencyPreservesInsertionOrder) {
  Graph g(4);
  g.add_link(0, 2);
  g.add_link(0, 1);
  g.add_link(0, 3);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].to, 2u);
  EXPECT_EQ(nbrs[1].to, 1u);
  EXPECT_EQ(nbrs[2].to, 3u);
}

TEST(Metrics, BfsOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Metrics, BfsUnreachable) {
  Graph g(4);
  g.add_link(0, 1);
  // nodes 2, 3 disconnected
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Metrics, BfsTreeParents) {
  const Graph g = path_graph(4);
  const auto t = bfs_tree(g, 0);
  EXPECT_EQ(t.parent[0], kInvalidNode);
  EXPECT_EQ(t.parent[1], 0u);
  EXPECT_EQ(t.parent[2], 1u);
  EXPECT_EQ(t.parent[3], 2u);
}

TEST(Metrics, PathStatsOnRing) {
  const Topology ring = make_ring(8);
  const auto s = compute_path_stats(ring.graph);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 4u);
  // Ring of 8: distances from any node are 1,1,2,2,3,3,4 -> avg 16/7.
  EXPECT_NEAR(s.avg_shortest_path, 16.0 / 7.0, 1e-9);
}

TEST(Metrics, PathStatsHistogramSumsToPairs) {
  const Topology ring = make_ring(10);
  const auto s = compute_path_stats(ring.graph);
  std::uint64_t total = 0;
  for (const auto c : s.hop_histogram) total += c;
  EXPECT_EQ(total, 90u);  // 10 * 9 ordered pairs
  EXPECT_EQ(s.hop_histogram[0], 0u);
}

TEST(Metrics, PathStatsDisconnected) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  const auto s = compute_path_stats(g);
  EXPECT_FALSE(s.connected);
}

TEST(Metrics, EccentricitiesOnPath) {
  const Graph g = path_graph(5);
  const auto ecc = eccentricities(g);
  EXPECT_EQ(ecc[0], 4u);
  EXPECT_EQ(ecc[2], 2u);
  EXPECT_EQ(ecc[4], 4u);
}

TEST(Metrics, DiameterEqualsMaxEccentricity) {
  const Topology t = make_torus_2d(4, 5);
  const auto s = compute_path_stats(t.graph);
  const auto ecc = eccentricities(t.graph);
  std::uint32_t max_ecc = 0;
  for (const auto e : ecc) max_ecc = std::max(max_ecc, e);
  EXPECT_EQ(s.diameter, max_ecc);
}

TEST(Metrics, DegreeStats) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  const auto s = compute_degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.5);
  ASSERT_EQ(s.histogram.size(), 4u);
  EXPECT_EQ(s.histogram[1], 3u);
  EXPECT_EQ(s.histogram[3], 1u);
}

TEST(Metrics, Connectivity) {
  EXPECT_TRUE(is_connected(path_graph(6)));
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

// Property: BFS distance satisfies the triangle inequality via any edge.
TEST(Metrics, BfsTriangleInequalityProperty) {
  const Topology t = make_torus_2d(5, 5);
  for (NodeId src : {0u, 7u, 24u}) {
    const auto d = bfs_distances(t.graph, src);
    for (NodeId u = 0; u < t.num_nodes(); ++u) {
      for (const AdjHalf& h : t.graph.neighbors(u)) {
        EXPECT_LE(d[h.to], d[u] + 1);
        EXPECT_LE(d[u], d[h.to] + 1);
      }
    }
  }
}

}  // namespace
}  // namespace dsn
