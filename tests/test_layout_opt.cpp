// Tests for the simulated-annealing placement optimizer and the wormhole
// switching mode, including the ring-deadlock negative control.
#include <gtest/gtest.h>

#include <numeric>

#include "dsn/analysis/factory.hpp"
#include "dsn/layout/optimize.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace dsn {
namespace {

// --------------------------------------------------------------------------
// placement optimizer
// --------------------------------------------------------------------------

TEST(PlacementOpt, IdentitySlotsMatchLinearLayout) {
  const Topology topo = make_topology_by_name("dsn", 128);
  std::vector<std::uint32_t> identity(128);
  std::iota(identity.begin(), identity.end(), 0);
  const auto with_slots = compute_cable_report_with_slots(topo, {}, identity);
  FloorLayout linear(topo, {}, PlacementStrategy::kLinear);
  const auto direct = compute_cable_report(topo, linear);
  EXPECT_NEAR(with_slots.total_m, direct.total_m, 1e-9);
  EXPECT_EQ(with_slots.inter_cabinet_links, direct.inter_cabinet_links);
}

TEST(PlacementOpt, ResultIsAPermutation) {
  const Topology topo = make_topology_by_name("random", 64, 3);
  PlacementOptimizerConfig cfg;
  cfg.iterations = 20'000;
  const auto placed = optimize_placement(topo, {}, cfg);
  std::vector<std::uint8_t> seen(64, 0);
  for (const auto s : placed.slot_of) {
    ASSERT_LT(s, 64u);
    EXPECT_FALSE(seen[s]) << "slot " << s << " assigned twice";
    seen[s] = 1;
  }
}

TEST(PlacementOpt, NeverWorsensMeaningfully) {
  const Topology topo = make_topology_by_name("random", 64, 3);
  PlacementOptimizerConfig cfg;
  cfg.iterations = 50'000;
  const auto placed = optimize_placement(topo, {}, cfg);
  // Annealing ends cold, so the result should be at or below the start.
  EXPECT_LE(placed.optimized_total_m, placed.initial_total_m * 1.01);
}

TEST(PlacementOpt, ImprovesScrambledDsn) {
  // Scramble a DSN's natural placement by relabeling via a random topology
  // start: annealing must claw back a meaningful fraction on the random
  // topology, whose identity placement is far from optimal.
  const Topology topo = make_topology_by_name("random", 128, 5);
  PlacementOptimizerConfig cfg;
  cfg.iterations = 120'000;
  const auto placed = optimize_placement(topo, {}, cfg);
  EXPECT_LT(placed.optimized_total_m, placed.initial_total_m);
}

TEST(PlacementOpt, DeterministicForSeed) {
  const Topology topo = make_topology_by_name("random", 64, 3);
  PlacementOptimizerConfig cfg;
  cfg.iterations = 10'000;
  const auto a = optimize_placement(topo, {}, cfg);
  const auto b = optimize_placement(topo, {}, cfg);
  EXPECT_EQ(a.slot_of, b.slot_of);
}

// --------------------------------------------------------------------------
// wormhole switching
// --------------------------------------------------------------------------

SimConfig wormhole_config(double load) {
  SimConfig cfg;
  cfg.switching = SwitchingMode::kWormhole;
  cfg.buffer_flits = 8;  // less than a packet: flits stretch across switches
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  cfg.drain_cycles = 40'000;
  cfg.offered_gbps_per_host = load;
  return cfg;
}

TEST(Wormhole, SmallBuffersStillDeliverWithSafeRouting) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  const SimResult res = run_simulation(topo, policy, traffic, wormhole_config(1.5));
  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.drained);
}

TEST(Wormhole, VctRejectsSmallBuffersButWormholeAccepts) {
  SimConfig cfg = wormhole_config(1.0);
  EXPECT_NO_THROW(cfg.validate());
  cfg.switching = SwitchingMode::kVirtualCutThrough;
  EXPECT_THROW(cfg.validate(), PreconditionError);
}

TEST(Wormhole, UnsafeClockwiseRingDeadlocks) {
  // The negative control: single-VC clockwise routing on a ring has a cyclic
  // channel dependency graph; with wormhole switching and enough load the
  // network must wedge, and the watchdog must report it.
  const Topology ring = make_topology_by_name("ring", 8);
  RingClockwisePolicy policy(ring);
  UniformTraffic traffic(8 * 4);
  SimConfig cfg = wormhole_config(40.0);
  cfg.vcs = 1;
  cfg.drain_cycles = 60'000;
  const SimResult res = run_simulation(ring, policy, traffic, cfg);
  EXPECT_TRUE(res.deadlock);
}

TEST(Wormhole, SafeRoutingOnSameRingDoesNotDeadlock) {
  const Topology ring = make_topology_by_name("ring", 8);
  SimRouting routing(ring);
  UpDownOnlyPolicy policy(routing, 2);
  UniformTraffic traffic(8 * 4);
  SimConfig cfg = wormhole_config(40.0);
  cfg.vcs = 2;
  cfg.drain_cycles = 30'000;
  const SimResult res = run_simulation(ring, policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);
}

TEST(Wormhole, ClockwiseRingAtTrivialLoadStillWorks) {
  const Topology ring = make_topology_by_name("ring", 8);
  RingClockwisePolicy policy(ring);
  UniformTraffic traffic(8 * 4);
  SimConfig cfg = wormhole_config(0.2);
  cfg.vcs = 1;
  const SimResult res = run_simulation(ring, policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.drained);
}

}  // namespace
}  // namespace dsn
