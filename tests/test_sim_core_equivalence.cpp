// Golden byte-identical equivalence between the two simulator cores: the
// legacy full-scan core (SimConfig::legacy_core) is the behavioral baseline,
// and the active-set core must reproduce its SimResult — including latency
// percentiles, degradation curves, fault records, drop/retry accounting and
// the conservation recount — byte-for-byte at every shard count, for every
// traffic pattern, both switching modes, zero-delay pipelines, fuzzed fault
// schedules, and trace replay. Grouped under `ctest -L determinism` via the
// determinism.core_equivalence entry.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/sim/trace.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {
namespace {

struct RunOutput {
  std::string dump;
  std::vector<PacketTrace> traces;
};

RunOutput run_core(const Topology& topo, SimRoutingPolicy& policy,
                   const TrafficPattern& traffic, SimConfig cfg, bool legacy,
                   std::uint32_t sim_threads,
                   const FaultSchedule* faults = nullptr,
                   const std::vector<TraceEntry>* injections = nullptr) {
  cfg.legacy_core = legacy;
  cfg.sim_threads = sim_threads;
  Simulator sim(topo, policy, traffic, cfg);
  if (faults != nullptr) sim.set_fault_schedule(*faults);
  if (injections != nullptr) sim.set_injection_trace(*injections);
  const SimResult res = sim.run();
  return {to_json(res).dump(),
          {sim.packet_traces().begin(), sim.packet_traces().end()}};
}

/// Run the legacy baseline, then the active core at 1, 4 and 8 shards; every
/// active run must match the baseline byte-for-byte.
void expect_cores_identical(const Topology& topo, SimRoutingPolicy& policy,
                            const TrafficPattern& traffic, const SimConfig& cfg,
                            const FaultSchedule* faults = nullptr,
                            const std::vector<TraceEntry>* injections = nullptr) {
  const RunOutput baseline =
      run_core(topo, policy, traffic, cfg, /*legacy=*/true, 1, faults, injections);
  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    const RunOutput active = run_core(topo, policy, traffic, cfg,
                                      /*legacy=*/false, threads, faults, injections);
    EXPECT_EQ(baseline.dump, active.dump) << "sim_threads=" << threads;
    EXPECT_TRUE(baseline.traces == active.traces) << "sim_threads=" << threads;
  }
}

SimConfig equivalence_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 1'200;
  cfg.drain_cycles = 40'000;
  cfg.offered_gbps_per_host = 2.0;
  cfg.record_packet_traces = true;
  return cfg;
}

// A non-ring ("shortcut") link of the topology, or any link when none jumps.
LinkId find_shortcut_link(const Topology& topo) {
  const Graph& g = topo.graph;
  const NodeId n = g.num_nodes();
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    const NodeId gap = u < v ? v - u : u - v;
    if (gap != 1 && gap != n - 1) return l;
  }
  return 0;
}

TEST(CoreEquivalence, SixTrafficPatternsByteIdentical) {
  // 64 switches x 4 hosts = 256 hosts: a square, power-of-two count, so the
  // 2-D (neighboring/transpose) and bit-permutation patterns all apply.
  const Topology topo = make_topology_by_name("dsn", 64);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  const SimConfig cfg = equivalence_config();
  const std::uint32_t hosts = 64 * cfg.hosts_per_switch;
  for (const char* pattern : {"uniform", "bit-reversal", "neighboring",
                              "transpose", "shuffle", "hotspot"}) {
    SCOPED_TRACE(pattern);
    const auto traffic = make_traffic(pattern, hosts);
    expect_cores_identical(topo, policy, *traffic, cfg);
  }
}

TEST(CoreEquivalence, WormholeSwitchingByteIdentical) {
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  SimConfig cfg = equivalence_config();
  cfg.switching = SwitchingMode::kWormhole;
  cfg.buffer_flits = 8;  // packets span switches: credit stalls on every path
  const auto traffic = make_traffic("transpose", 16 * cfg.hosts_per_switch);
  expect_cores_identical(topo, policy, *traffic, cfg);
}

TEST(CoreEquivalence, ZeroDelayPipelineByteIdentical) {
  // router_delay = 0 makes head flits routable the cycle they arrive (the
  // active core appends to the in-flight calendar bucket mid-drain) and
  // link_delay = 0 exercises the next-cycle registration floor for pushes.
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  SimConfig cfg = equivalence_config();
  cfg.router_delay_ns = 0.0;
  cfg.link_delay_ns = 0.0;
  const auto traffic = make_traffic("uniform", 16 * cfg.hosts_per_switch);
  expect_cores_identical(topo, policy, *traffic, cfg);
}

TEST(CoreEquivalence, CustomPolicyHighLoadByteIdentical) {
  // The table-free custom policy at a load past saturation: persistent
  // credit stalls keep the allocation pending lists full, so the blocked
  // re-arbitration path (not just the fast path) is compared.
  const Dsn dsn(32, dsn_default_x(32));
  const Topology& topo = dsn.topology();
  DsnCustomPolicy policy(dsn, 4);
  SimConfig cfg = equivalence_config();
  cfg.offered_gbps_per_host = 24.0;
  cfg.measure_cycles = 800;
  const auto traffic = make_traffic("uniform", 32 * cfg.hosts_per_switch);
  expect_cores_identical(topo, policy, *traffic, cfg);
}

TEST(CoreEquivalence, FuzzedFaultScheduleByteIdentical) {
  // A seeded random link-flap storm plus a permanent switch death: purges,
  // retries with backoff, TTL expiries (strided NIC sweeps), routing
  // rebuilds, epoch curves and reconnect records all flow into the dump.
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  SimConfig cfg = equivalence_config();
  cfg.epoch_cycles = 500;
  cfg.packet_ttl_cycles = 3'000;
  cfg.retry_backoff_cycles = 32;

  for (const std::uint32_t fuzz_seed : {11u, 29u}) {
    SCOPED_TRACE(fuzz_seed);
    FaultSchedule schedule =
        make_link_flap_schedule(topo, 0.05, 200, 1'500, 12'000, fuzz_seed);
    schedule.switch_down(900, 7);
    const auto traffic = make_traffic("uniform", 32 * cfg.hosts_per_switch);
    expect_cores_identical(topo, policy, *traffic, cfg, &schedule);
  }
}

TEST(CoreEquivalence, TraceReplayWithFaultsByteIdentical) {
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  SimConfig cfg = equivalence_config();
  cfg.packet_ttl_cycles = 3'000;

  std::vector<TraceEntry> injections;
  for (std::uint64_t c = 0; c < 900; c += 3) {
    injections.push_back({c, static_cast<HostId>(c % 64),
                          static_cast<HostId>((c * 13 + 5) % 64)});
  }
  FaultSchedule schedule;
  schedule.link_down(250, find_shortcut_link(topo)).switch_down(650, 3);
  const auto traffic = make_traffic("uniform", 16 * cfg.hosts_per_switch);
  expect_cores_identical(topo, policy, *traffic, cfg, &schedule, &injections);
}

TEST(CoreEquivalence, TtlSweepStrideIsCoreInvariant) {
  // Different strides legitimately change when queued packets expire — but
  // for any fixed stride the two cores must still agree exactly.
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  SimConfig cfg = equivalence_config();
  cfg.packet_ttl_cycles = 2'000;
  FaultSchedule schedule;
  schedule.switch_down(400, 5);  // never revives: its traffic must age out
  const auto traffic = make_traffic("uniform", 16 * cfg.hosts_per_switch);
  for (const std::uint64_t stride : {1ull, 64ull, 1'000ull}) {
    SCOPED_TRACE(stride);
    cfg.ttl_sweep_stride = stride;
    expect_cores_identical(topo, policy, *traffic, cfg, &schedule);
  }
}

TEST(CoreEquivalence, ThreadCountExceedingSwitchesClamps) {
  // More shards than switches (and sim_threads = 0: global pool size) must
  // clamp rather than mispartition.
  const Topology topo = make_topology_by_name("ring", 4);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 2);
  SimConfig cfg = equivalence_config();
  cfg.vcs = 2;
  cfg.measure_cycles = 600;
  const auto traffic = make_traffic("uniform", 4 * cfg.hosts_per_switch);
  const RunOutput baseline =
      run_core(topo, policy, *traffic, cfg, /*legacy=*/true, 1);
  for (const std::uint32_t threads : {0u, 3u, 16u}) {
    const RunOutput active =
        run_core(topo, policy, *traffic, cfg, /*legacy=*/false, threads);
    EXPECT_EQ(baseline.dump, active.dump) << "sim_threads=" << threads;
    EXPECT_TRUE(baseline.traces == active.traces) << "sim_threads=" << threads;
  }
}

}  // namespace
}  // namespace dsn
