// Tests for the §V extensions: DSN-E (Up/Extra links), DSN-D-x (express
// links), flexible DSN (major/minor nodes).
#include <gtest/gtest.h>

#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn {
namespace {

// ---------------------------------------------------------------------------
// DSN-E
// ---------------------------------------------------------------------------

TEST(DsnE, UsesFullShortcutSet) {
  const DsnE e(64);
  EXPECT_EQ(e.base().x(), e.base().p() - 1);
}

TEST(DsnE, UpLinksParallelToRing) {
  const DsnE e(64);
  const Dsn& base = e.base();
  for (NodeId i = 0; i < 64; ++i) {
    const LinkId up = e.up_link(i);
    ASSERT_NE(up, kInvalidLink);
    const auto [a, b] = e.topology().graph.link_endpoints(up);
    EXPECT_TRUE((a == i && b == base.pred(i)) || (b == i && a == base.pred(i)));
    EXPECT_EQ(e.topology().link_roles[up], LinkRole::kUp);
  }
}

TEST(DsnE, ExtraLinksOnlyNearZero) {
  const DsnE e(64);
  const std::uint32_t p = e.base().p();
  EXPECT_EQ(e.extra_link(0), kInvalidLink);
  for (NodeId i = 1; i <= 2 * p; ++i) {
    const LinkId extra = e.extra_link(i);
    ASSERT_NE(extra, kInvalidLink) << i;
    const auto [a, b] = e.topology().graph.link_endpoints(extra);
    EXPECT_EQ(std::minmax(a, b), std::minmax(i, i - 1));
    EXPECT_EQ(e.topology().link_roles[extra], LinkRole::kExtra);
  }
  EXPECT_EQ(e.extra_link(2 * p + 1), kInvalidLink);
}

TEST(DsnE, LinkCountAccounting) {
  const DsnE e(64);
  const Dsn base(64, dsn_default_x(64));
  // Base links + n Up links + 2p Extra links.
  EXPECT_EQ(e.topology().graph.num_links(),
            base.topology().graph.num_links() + 64 + 2 * base.p());
}

TEST(DsnE, SameDiameterAsBase) {
  const DsnE e(128);
  const Dsn base(128, dsn_default_x(128));
  // Up/Extra links parallel existing ring links: hop-count metrics unchanged.
  const auto se = compute_path_stats(e.topology().graph);
  const auto sb = compute_path_stats(base.topology().graph);
  EXPECT_EQ(se.diameter, sb.diameter);
  EXPECT_DOUBLE_EQ(se.avg_shortest_path, sb.avg_shortest_path);
}

// ---------------------------------------------------------------------------
// DSN-D
// ---------------------------------------------------------------------------

class DsnDTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DsnDTest, ExpressSpanIsCeilPOverX) {
  const std::uint32_t xd = GetParam();
  const DsnD d(256, xd);
  EXPECT_EQ(d.q(), ceil_div(d.base().p(), xd));
  EXPECT_EQ(d.express_per_super_node(), xd);
}

TEST_P(DsnDTest, ExpressLinksConnectMultiplesOfQ) {
  const std::uint32_t xd = GetParam();
  const DsnD d(256, xd);
  const std::uint32_t q = d.q();
  for (LinkId l = 0; l < d.topology().graph.num_links(); ++l) {
    if (d.topology().link_roles[l] != LinkRole::kDLocal) continue;
    const auto [a, b] = d.topology().graph.link_endpoints(l);
    EXPECT_EQ(a % q, 0u);
    EXPECT_TRUE(b % q == 0 || b == 0) << a << "->" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Xd, DsnDTest, ::testing::Values(1u, 2u, 3u));

TEST(DsnD, BaseUsesReducedX) {
  const DsnD d(256, 2);
  const std::uint32_t p = d.base().p();  // 8
  EXPECT_EQ(d.base().x(), p - ilog2_ceil(p));  // 8 - 3 = 5
}

TEST(DsnD, ReducesDiameterVsBasicSameX) {
  // DSN-D-2 should not be worse than the plain DSN with the same reduced x.
  const DsnD d(512, 2);
  const Dsn plain(512, d.base().x());
  const auto sd = compute_path_stats(d.topology().graph);
  const auto sp = compute_path_stats(plain.topology().graph);
  EXPECT_LE(sd.diameter, sp.diameter);
  EXPECT_LT(sd.avg_shortest_path, sp.avg_shortest_path);
}

TEST(DsnD, RejectsBadParams) {
  EXPECT_THROW(DsnD(256, 0), PreconditionError);
  EXPECT_THROW(DsnD(256, 8), PreconditionError);  // xd >= p
}

// ---------------------------------------------------------------------------
// flexible DSN
// ---------------------------------------------------------------------------

TEST(FlexDsn, LayoutAndMapping) {
  const FlexDsn f(60, 5, {10, 20, 30, 40});
  EXPECT_EQ(f.num_major(), 60u);
  EXPECT_EQ(f.num_minor(), 4u);
  EXPECT_EQ(f.num_total(), 64u);
  // Majors keep their ring order; phys/major maps are inverse of each other.
  for (NodeId m = 0; m < 60; ++m) {
    EXPECT_EQ(f.major_of(f.phys_of(m)), m);
  }
  std::uint32_t minors = 0;
  for (NodeId ph = 0; ph < f.num_total(); ++ph) {
    if (!f.is_major(ph)) ++minors;
  }
  EXPECT_EQ(minors, 4u);
}

TEST(FlexDsn, MinorsSitAfterTheirMajors) {
  const FlexDsn f(60, 5, {10});
  const NodeId phys10 = f.phys_of(10);
  EXPECT_FALSE(f.is_major(phys10 + 1));
  EXPECT_EQ(f.preceding_major(phys10 + 1), phys10);
  EXPECT_EQ(f.preceding_major(phys10), phys10);
}

TEST(FlexDsn, MinorsHaveDegreeTwo) {
  const FlexDsn f(60, 5, {0, 30, 59});
  for (NodeId ph = 0; ph < f.num_total(); ++ph) {
    if (!f.is_major(ph)) {
      EXPECT_EQ(f.topology().graph.degree(ph), 2u) << "minor " << ph;
    }
  }
}

TEST(FlexDsn, ConnectedAndSmallDiameter) {
  const FlexDsn f(1020, 9, {10, 20, 30, 40});  // the paper's 1024 = 1020 + 4 example
  EXPECT_EQ(f.num_total(), 1024u);
  const auto s = compute_path_stats(f.topology().graph);
  EXPECT_TRUE(s.connected);
  const Dsn plain(1020, 9);
  const auto sp = compute_path_stats(plain.topology().graph);
  // Four minors can only stretch paths by a small constant.
  EXPECT_LE(s.diameter, sp.diameter + 4);
}

TEST(FlexDsn, RejectsBadInsertLists) {
  EXPECT_THROW(FlexDsn(60, 5, {10, 10}), PreconditionError);   // duplicate
  EXPECT_THROW(FlexDsn(60, 5, {20, 10}), PreconditionError);   // not sorted
  EXPECT_THROW(FlexDsn(60, 5, {60}), PreconditionError);       // out of range
  EXPECT_NO_THROW(FlexDsn(60, 5, {}));
}

}  // namespace
}  // namespace dsn
