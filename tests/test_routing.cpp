// Tests for the DSN custom routing algorithm (Fig. 2): correctness over all
// pairs, the Fact 2 / Fact 3 / Theorem 2a bounds, phase structure, the
// overshoot-avoiding and nearest-PRE-WORK variants, DSN-D and flexible
// routing.
#include <gtest/gtest.h>

#include <algorithm>

#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dsn_routing.hpp"

namespace dsn {
namespace {

// --------------------------------------------------------------------------
// Correctness over all pairs, parameterized on (n, x).
// --------------------------------------------------------------------------

struct RoutingCase {
  std::uint32_t n;
  std::uint32_t x;  // 0 = default (p-1)
};

class DsnRoutingAllPairs : public ::testing::TestWithParam<RoutingCase> {};

TEST_P(DsnRoutingAllPairs, EveryRouteIsValidAndNoFallback) {
  const auto [n, x_in] = GetParam();
  const std::uint32_t x = x_in == 0 ? dsn_default_x(n) : x_in;
  const Dsn d(n, x);
  const DsnRouter router(d);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      const Route r = router.route(s, t);
      ASSERT_NO_THROW(validate_route(d, r)) << s << "->" << t;
      EXPECT_FALSE(r.used_fallback) << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DsnRoutingAllPairs,
    ::testing::Values(RoutingCase{32, 0}, RoutingCase{64, 0}, RoutingCase{100, 0},
                      RoutingCase{128, 0}, RoutingCase{255, 0}, RoutingCase{256, 0},
                      RoutingCase{257, 0}, RoutingCase{64, 3}, RoutingCase{64, 1},
                      RoutingCase{128, 4}, RoutingCase{512, 0}));

// --------------------------------------------------------------------------
// Fact 2: routing diameter <= 3p + r for x > p - log p.
// --------------------------------------------------------------------------

class DsnRoutingBounds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DsnRoutingBounds, Fact2RoutingDiameter) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const DsnRouter router(d);
  const RoutingScan scan = scan_all_pairs(router);
  EXPECT_LE(scan.max_hops, 3 * d.p() + d.r()) << "n = " << n;
  EXPECT_EQ(scan.fallback_routes, 0u);
}

TEST_P(DsnRoutingBounds, Theorem2aExpectedRouteLength) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const DsnRouter router(d);
  const RoutingScan scan = scan_all_pairs(router);
  EXPECT_LE(scan.avg_hops, 2.0 * d.p()) << "n = " << n;
}

TEST_P(DsnRoutingBounds, Theorem2aExpectedShortestPath) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto stats = compute_path_stats(d.topology().graph);
  EXPECT_LE(stats.avg_shortest_path, 1.5 * d.p()) << "n = " << n;
}

TEST_P(DsnRoutingBounds, RouteNeverShorterThanShortestPath) {
  const std::uint32_t n = GetParam();
  if (n > 300) GTEST_SKIP() << "covered by smaller sizes; keeps runtime bounded";
  const Dsn d(n, dsn_default_x(n));
  const DsnRouter router(d);
  for (NodeId s = 0; s < n; s += 7) {
    const auto dist = bfs_distances(d.topology().graph, s);
    for (NodeId t = 0; t < n; ++t) {
      const Route r = router.route(s, t);
      EXPECT_GE(r.length(), dist[t]) << s << "->" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DsnRoutingBounds,
                         ::testing::Values(32u, 64u, 100u, 128u, 256u, 300u, 512u,
                                           1024u));

// --------------------------------------------------------------------------
// Phase structure.
// --------------------------------------------------------------------------

TEST(DsnRouting, PhasesHaveExpectedLinkKinds) {
  const Dsn d(256, 7);
  const DsnRouter router(d);
  for (NodeId s = 0; s < 256; s += 11) {
    for (NodeId t = 0; t < 256; t += 7) {
      const Route r = router.route(s, t);
      for (const RouteHop& h : r.hops) {
        switch (h.phase) {
          case RoutePhase::kPreWork:
            EXPECT_TRUE(h.kind == HopKind::kPred || h.kind == HopKind::kSucc);
            break;
          case RoutePhase::kMain:
            EXPECT_TRUE(h.kind == HopKind::kSucc || h.kind == HopKind::kShortcut);
            break;
          case RoutePhase::kFinish:
            EXPECT_TRUE(h.kind == HopKind::kPred || h.kind == HopKind::kSucc);
            break;
        }
      }
    }
  }
}

TEST(DsnRouting, PreWorkOnlyDefault) {
  // Without nearest_prework, PRE-WORK only walks pred links (Fig. 2 line 5).
  const Dsn d(128, 6);
  const DsnRouter router(d);
  for (NodeId s = 0; s < 128; ++s) {
    for (NodeId t = 0; t < 128; t += 5) {
      for (const RouteHop& h : router.route(s, t).hops) {
        if (h.phase == RoutePhase::kPreWork) {
          EXPECT_EQ(h.kind, HopKind::kPred);
        }
      }
    }
  }
}

TEST(DsnRouting, MainLevelsMonotonicallyIncrease) {
  // Within MAIN, the level of the current node never decreases (the
  // deadlock-freedom argument of Theorem 3 relies on this monotonicity).
  const Dsn d(256, 7);
  const DsnRouter router(d);
  for (NodeId s = 0; s < 256; s += 3) {
    for (NodeId t = 0; t < 256; t += 5) {
      const Route r = router.route(s, t);
      std::uint32_t prev_level = 0;
      for (const RouteHop& h : r.hops) {
        if (h.phase != RoutePhase::kMain) continue;
        const std::uint32_t from_level = d.level(h.from);
        if (prev_level != 0) {
          EXPECT_GE(from_level, prev_level)
              << s << "->" << t << " at " << h.from;
        }
        prev_level = from_level;
      }
    }
  }
}

TEST(DsnRouting, SelfRouteIsEmpty) {
  const Dsn d(64, 5);
  const DsnRouter router(d);
  const Route r = router.route(10, 10);
  EXPECT_EQ(r.length(), 0u);
  EXPECT_NO_THROW(validate_route(d, r));
}

TEST(DsnRouting, AdjacentNodesRouteDirectly) {
  const Dsn d(64, 5);
  const DsnRouter router(d);
  EXPECT_EQ(router.route(5, 6).length(), 1u);
  EXPECT_EQ(router.route(6, 5).length(), 1u);
  EXPECT_EQ(router.route(0, 63).length(), 1u);
  EXPECT_EQ(router.route(63, 0).length(), 1u);
}

TEST(DsnRouting, RejectsOutOfRange) {
  const Dsn d(64, 5);
  const DsnRouter router(d);
  EXPECT_THROW(router.route(64, 0), PreconditionError);
  EXPECT_THROW(router.route(0, 64), PreconditionError);
}

// --------------------------------------------------------------------------
// Variants.
// --------------------------------------------------------------------------

TEST(DsnRoutingVariants, AvoidOvershootNeverOvershoots) {
  const std::uint32_t n = 200;
  const Dsn d(n, dsn_default_x(n));
  DsnRoutingOptions opt;
  opt.avoid_overshoot = true;
  const DsnRouter router(d, opt);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      const Route r = router.route(s, t);
      ASSERT_NO_THROW(validate_route(d, r));
      // Nothing ever overshoots: once MAIN has run, FINISH never needs to
      // walk counterclockwise. (Routes that are pure short backward walks
      // never enter MAIN and legitimately use pred links.)
      const bool has_main = std::any_of(
          r.hops.begin(), r.hops.end(),
          [](const RouteHop& h) { return h.phase == RoutePhase::kMain; });
      if (!has_main) continue;
      for (const RouteHop& h : r.hops) {
        if (h.phase == RoutePhase::kFinish) {
          EXPECT_EQ(h.kind, HopKind::kSucc) << s << "->" << t;
        }
      }
    }
  }
}

TEST(DsnRoutingVariants, NearestPreworkWithinBounds) {
  const std::uint32_t n = 256;
  const Dsn d(n, dsn_default_x(n));
  DsnRoutingOptions opt;
  opt.nearest_prework = true;
  const DsnRouter router(d, opt);
  const RoutingScan scan = scan_all_pairs_fn(
      n, [&](NodeId s, NodeId t) { return router.route(s, t); });
  EXPECT_EQ(scan.fallback_routes, 0u);
  // Fact 3 argument: the nearest-direction PRE-WORK path stays within the
  // routing diameter bound.
  EXPECT_LE(scan.max_hops, 3 * d.p() + d.r());
}

TEST(DsnRoutingVariants, NearestPreworkNotWorseOnAverage) {
  const std::uint32_t n = 512;
  const Dsn d(n, dsn_default_x(n));
  const DsnRouter plain(d);
  DsnRoutingOptions opt;
  opt.nearest_prework = true;
  const DsnRouter nearest(d, opt);
  const auto scan_plain = scan_all_pairs(plain);
  const auto scan_near = scan_all_pairs(nearest);
  EXPECT_LE(scan_near.avg_hops, scan_plain.avg_hops + 1e-9);
}

// --------------------------------------------------------------------------
// DSN-D routing.
// --------------------------------------------------------------------------

TEST(DsnDRouting, AllPairsValidAndComplete) {
  const DsnD dd(256, 2);
  const Graph& g = dd.topology().graph;
  for (NodeId s = 0; s < 256; ++s) {
    for (NodeId t = 0; t < 256; ++t) {
      const Route r = route_dsn_d(dd, s, t);
      if (s == t) {
        EXPECT_EQ(r.length(), 0u);
        continue;
      }
      ASSERT_FALSE(r.hops.empty());
      EXPECT_EQ(r.hops.front().from, s);
      EXPECT_EQ(r.hops.back().to, t);
      for (const RouteHop& h : r.hops) {
        EXPECT_TRUE(g.has_link(h.from, h.to)) << s << "->" << t;
      }
      EXPECT_FALSE(r.used_fallback);
    }
  }
}

TEST(DsnDRouting, ImprovesRoutingDiameterTowards2p) {
  const std::uint32_t n = 512;
  const DsnD dd(n, 2);
  const Dsn plain(n, dd.base().x());
  const auto scan_d = scan_all_pairs_fn(
      n, [&](NodeId s, NodeId t) { return route_dsn_d(dd, s, t); });
  const auto scan_p = scan_all_pairs(DsnRouter(plain));
  EXPECT_LT(scan_d.max_hops, scan_p.max_hops);
  EXPECT_LT(scan_d.avg_hops, scan_p.avg_hops);
}

TEST(DsnDRouting, UsesExpressLinks) {
  const DsnD dd(256, 2);
  bool used_express = false;
  for (NodeId s = 0; s < 256 && !used_express; s += 3) {
    for (NodeId t = 0; t < 256 && !used_express; t += 5) {
      for (const RouteHop& h : route_dsn_d(dd, s, t).hops) {
        if (h.kind == HopKind::kExpress) {
          used_express = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(used_express);
}

// --------------------------------------------------------------------------
// Flexible DSN routing.
// --------------------------------------------------------------------------

TEST(FlexRouting, AllPairsValidAndComplete) {
  const FlexDsn f(60, 5, {10, 20, 30, 40});
  const Graph& g = f.topology().graph;
  const NodeId n = f.num_total();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      const Route r = route_dsn_flex(f, s, t);
      if (s == t) {
        EXPECT_EQ(r.length(), 0u);
        continue;
      }
      ASSERT_FALSE(r.hops.empty()) << s << "->" << t;
      EXPECT_EQ(r.hops.front().from, s);
      EXPECT_EQ(r.hops.back().to, t);
      for (std::size_t i = 0; i < r.hops.size(); ++i) {
        EXPECT_TRUE(g.has_link(r.hops[i].from, r.hops[i].to)) << s << "->" << t;
        if (i > 0) {
          EXPECT_EQ(r.hops[i - 1].to, r.hops[i].from);
        }
      }
    }
  }
}

TEST(FlexRouting, BoundedInflationOverBase) {
  const FlexDsn f(120, 6, {3, 50, 100});
  const Dsn base(120, 6);
  const auto scan_flex = scan_all_pairs_fn(
      f.num_total(), [&](NodeId s, NodeId t) { return route_dsn_flex(f, s, t); });
  const auto scan_base = scan_all_pairs(DsnRouter(base));
  // Each minor adds at most ~1 hop near its major plus the final walk.
  EXPECT_LE(scan_flex.max_hops, scan_base.max_hops + 2 * 3 + 2);
}

}  // namespace
}  // namespace dsn
