// Tests for up*/down* routing: legality of every produced path, completeness,
// shortest-legal-path optimality against a reference search, and the
// phase-consistency of the two next-hop tables.
#include <gtest/gtest.h>

#include <deque>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/updown.hpp"

namespace dsn {
namespace {

void expect_legal(const UpDownRouting& ud, const std::vector<NodeId>& path) {
  bool gone_down = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const bool up = ud.is_up(path[i], path[i + 1]);
    if (!up) gone_down = true;
    if (gone_down) {
      EXPECT_FALSE(up) << "up hop after down hop at position " << i;
    }
  }
}

class UpDownTest : public ::testing::TestWithParam<std::string> {};

TEST_P(UpDownTest, AllPairsLegalAndComplete) {
  const Topology topo = make_topology_by_name(GetParam(), 64, 3);
  const UpDownRouting ud(topo.graph, 0);
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId t = 0; t < 64; ++t) {
      if (s == t) continue;
      const auto path = ud.route(s, t);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(topo.graph.has_link(path[i], path[i + 1]));
      }
      expect_legal(ud, path);
      EXPECT_EQ(path.size() - 1, ud.legal_distance(s, t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, UpDownTest,
                         ::testing::Values("dsn", "torus", "random", "ring"));

TEST(UpDown, LegalDistanceAtLeastBfs) {
  const Topology topo = make_topology_by_name("dsn", 128);
  const UpDownRouting ud(topo.graph, 0);
  for (NodeId s = 0; s < 128; s += 5) {
    const auto bfs = bfs_distances(topo.graph, s);
    for (NodeId t = 0; t < 128; ++t) {
      if (s == t) continue;
      EXPECT_GE(ud.legal_distance(s, t), bfs[t]);
    }
  }
}

TEST(UpDown, LegalDistanceOptimalAgainstBruteForce) {
  // Brute-force shortest legal path via BFS over (node, phase) states in the
  // forward direction, independent of the production implementation.
  const Topology topo = make_topology_by_name("random", 32, 11);
  const Graph& g = topo.graph;
  const UpDownRouting ud(g, 0);
  const NodeId n = g.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    std::vector<std::uint32_t> dist(2 * n, kUnreachable);
    std::deque<std::uint32_t> q;
    dist[2 * s] = 0;
    q.push_back(2 * s);
    while (!q.empty()) {
      const auto state = q.front();
      q.pop_front();
      const NodeId u = state / 2;
      const bool down_only = state % 2;
      for (const AdjHalf& h : g.neighbors(u)) {
        const bool up = ud.is_up(u, h.to);
        if (down_only && up) continue;
        const std::uint32_t next_state = 2 * h.to + (up ? (down_only ? 1 : 0) : 1);
        if (dist[next_state] == kUnreachable) {
          dist[next_state] = dist[state] + 1;
          q.push_back(next_state);
        }
      }
    }
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const std::uint32_t expect = std::min(dist[2 * t], dist[2 * t + 1]);
      EXPECT_EQ(ud.legal_distance(s, t), expect) << s << "->" << t;
    }
  }
}

TEST(UpDown, RootHasLevelZero) {
  const Topology topo = make_topology_by_name("torus", 16);
  const UpDownRouting ud(topo.graph, 5);
  EXPECT_EQ(ud.root(), 5u);
  // Every hop away from the root on a tree path is a down hop.
  const auto path = ud.route(5, 0);
  EXPECT_FALSE(ud.is_up(path[0], path[1]));
}

TEST(UpDown, DownOnlyTableConsistent) {
  // Following next_hop with the phase threaded exactly as route() does must
  // terminate for every pair (no cycles between the two tables).
  const Topology topo = make_topology_by_name("dsn", 100);
  const UpDownRouting ud(topo.graph, 0);
  for (NodeId s = 0; s < 100; ++s) {
    for (NodeId t = 0; t < 100; ++t) {
      if (s == t) continue;
      NodeId u = s;
      bool down = false;
      std::size_t hops = 0;
      while (u != t) {
        const NodeId v = ud.next_hop(u, t, down);
        ASSERT_NE(v, kInvalidNode) << s << "->" << t << " stuck at " << u;
        if (!ud.is_up(u, v)) down = true;
        u = v;
        ASSERT_LE(++hops, 200u) << s << "->" << t;
      }
    }
  }
}

TEST(UpDown, ScanMatchesPairCount) {
  const Topology topo = make_topology_by_name("torus", 36);
  const UpDownRouting ud(topo.graph, 0);
  const auto scan = ud.scan_all_pairs();
  EXPECT_EQ(scan.pairs, 36u * 35u);
  EXPECT_GT(scan.avg_hops, 1.0);
  EXPECT_GE(scan.max_hops, scan.avg_hops);
}

TEST(UpDown, UpDownInflatesPathsOnTorus) {
  // Classic result: up*/down* cannot use all minimal paths; on a torus the
  // average legal path exceeds the average shortest path.
  const Topology topo = make_topology_by_name("torus", 64);
  const UpDownRouting ud(topo.graph, 0);
  const auto scan = ud.scan_all_pairs();
  const auto stats = compute_path_stats(topo.graph);
  EXPECT_GT(scan.avg_hops, stats.avg_shortest_path);
}

TEST(UpDown, RejectsDisconnected) {
  Graph g(4);
  g.add_link(0, 1);
  EXPECT_THROW(UpDownRouting(g, 0), PreconditionError);
}

TEST(UpDown, RejectsBadRoot) {
  const Topology topo = make_topology_by_name("ring", 8);
  EXPECT_THROW(UpDownRouting(topo.graph, 8), PreconditionError);
}

}  // namespace
}  // namespace dsn
