// Unit tests for the common substrate: integer math, RNG, table/CSV
// rendering, CLI parsing, thread pool, error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "dsn/common/cli.hpp"
#include "dsn/common/error.hpp"
#include "dsn/common/json.hpp"
#include "dsn/common/math.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/common/table.hpp"
#include "dsn/common/thread_pool.hpp"

namespace dsn {
namespace {

// ---------------------------------------------------------------------------
// math
// ---------------------------------------------------------------------------

TEST(Math, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0u);
  EXPECT_EQ(ilog2_floor(2), 1u);
  EXPECT_EQ(ilog2_floor(3), 1u);
  EXPECT_EQ(ilog2_floor(4), 2u);
  EXPECT_EQ(ilog2_floor(1023), 9u);
  EXPECT_EQ(ilog2_floor(1024), 10u);
  EXPECT_EQ(ilog2_floor(1025), 10u);
}

TEST(Math, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(2), 1u);
  EXPECT_EQ(ilog2_ceil(3), 2u);
  EXPECT_EQ(ilog2_ceil(4), 2u);
  EXPECT_EQ(ilog2_ceil(5), 3u);
  EXPECT_EQ(ilog2_ceil(1024), 10u);
  EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(Math, Ilog2ConsistencyProperty) {
  for (std::uint64_t v = 1; v < 5000; ++v) {
    const auto f = ilog2_floor(v);
    const auto c = ilog2_ceil(v);
    EXPECT_LE(1ull << f, v);
    EXPECT_GT(1ull << (f + 1), v);
    EXPECT_GE(1ull << c, v);
    if (v > 1) {
      EXPECT_LT(1ull << (c - 1), v);
    }
  }
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(17), 4u);
  for (std::uint64_t v = 0; v < 3000; ++v) {
    const auto r = isqrt(v);
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
}

TEST(Math, IsqrtCeil) {
  EXPECT_EQ(isqrt_ceil(16), 4u);
  EXPECT_EQ(isqrt_ceil(17), 5u);
  EXPECT_EQ(isqrt_ceil(0), 0u);
  EXPECT_EQ(isqrt_ceil(1), 1u);
}

TEST(Math, RingDistances) {
  EXPECT_EQ(ring_cw_distance(0, 5, 10), 5u);
  EXPECT_EQ(ring_cw_distance(5, 0, 10), 5u);
  EXPECT_EQ(ring_cw_distance(8, 2, 10), 4u);
  EXPECT_EQ(ring_cw_distance(3, 3, 10), 0u);
  EXPECT_EQ(ring_distance(0, 9, 10), 1u);
  EXPECT_EQ(ring_distance(9, 0, 10), 1u);
  EXPECT_EQ(ring_distance(0, 5, 10), 5u);
}

TEST(Math, RingDistanceSymmetryProperty) {
  const std::uint64_t n = 37;
  for (std::uint64_t a = 0; a < n; ++a) {
    for (std::uint64_t b = 0; b < n; ++b) {
      EXPECT_EQ(ring_distance(a, b, n), ring_distance(b, a, n));
      EXPECT_EQ(ring_cw_distance(a, b, n) + ring_cw_distance(b, a, n),
                a == b ? 0 : n);
      EXPECT_LE(ring_distance(a, b, n), n / 2);
    }
  }
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(5), b(5);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

TEST(Table, BasicRendering) {
  Table t({"a", "bb"});
  t.row().cell(1).cell(2.5);
  t.row().cell(10).cell("x");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"});
  t.row().cell(1).cell(2);
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell(1);
  EXPECT_THROW(t.cell(2), PreconditionError);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), PreconditionError);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table t({}), PreconditionError);
}

TEST(Table, PrintsTitle) {
  Table t({"h"});
  t.row().cell(1);
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_NE(os.str().find("My Title"), std::string::npos);
}

// ---------------------------------------------------------------------------
// cli
// ---------------------------------------------------------------------------

TEST(Cli, ParsesSeparateAndEqualsForms) {
  Cli cli("test");
  cli.add_flag("n", "64", "network size");
  cli.add_flag("rate", "1.5", "rate");
  const char* argv[] = {"prog", "--n", "128", "--rate=2.5"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_uint("n"), 128u);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.5);
  EXPECT_TRUE(cli.has("n"));
}

TEST(Cli, DefaultsApply) {
  Cli cli("test");
  cli.add_flag("n", "64", "network size");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_uint("n"), 64u);
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, BooleanFlagForms) {
  {
    Cli cli("test");
    cli.add_flag("quick", "false", "quick mode");
    const char* argv[] = {"prog", "--quick"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.get_bool("quick"));
  }
  {
    Cli cli("test");
    cli.add_flag("quick", "true", "quick mode");
    const char* argv[] = {"prog", "--quick", "false"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_FALSE(cli.get_bool("quick"));
  }
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("test");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--bogus", "3"};
  EXPECT_THROW(cli.parse(3, argv), PreconditionError);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  cli.add_flag("n", "1", "n");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, ParsesLists) {
  Cli cli("test");
  cli.add_flag("sizes", "1,2,3", "sizes");
  cli.add_flag("loads", "0.5,1.5", "loads");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_uint_list("sizes"), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(cli.get_double_list("loads"), (std::vector<double>{0.5, 1.5}));
}

TEST(Cli, DuplicateFlagRegistrationThrows) {
  Cli cli("test");
  cli.add_flag("n", "1", "n");
  EXPECT_THROW(cli.add_flag("n", "2", "again"), PreconditionError);
}

// ---------------------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SumReduction) {
  std::atomic<std::uint64_t> sum{0};
  parallel_for(1, 1001, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500'500u);
}

// ---------------------------------------------------------------------------
// error macros
// ---------------------------------------------------------------------------

TEST(Error, RequireThrowsWithContext) {
  try {
    DSN_REQUIRE(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(DSN_ASSERT(false, "invariant"), InternalError);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(DSN_REQUIRE(true, ""));
  EXPECT_NO_THROW(DSN_ASSERT(true, ""));
}

// --------------------------------------------------------------------------
// JSON (machine-readable dsn-lint reports).
// --------------------------------------------------------------------------

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  // Integral doubles in the safe range print without a fraction.
  EXPECT_EQ(Json(static_cast<std::uint64_t>(1) << 50).dump(), "1125899906842624");
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string raw = "line\nbreak \"quoted\" back\\slash \t tab";
  const Json parsed = Json::parse(Json(raw).dump());
  EXPECT_EQ(parsed.as_string(), raw);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Replacing a member keeps its original position.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(Json, DumpParseDumpIsAFixedPoint) {
  Json doc = Json::object();
  doc.set("name", "dsn-2-64");
  doc.set("ok", true);
  doc.set("bound", Json());
  Json arr = Json::array();
  for (int i = 0; i < 4; ++i) arr.push_back(i * 1.25);
  doc.set("loads", std::move(arr));
  Json nested = Json::object();
  nested.set("max", 18);
  nested.set("law", "3p + r");
  doc.set("inner", std::move(nested));

  const std::string compact = doc.dump();
  EXPECT_EQ(Json::parse(compact).dump(), compact);
  const std::string pretty = doc.dump(2);
  EXPECT_EQ(Json::parse(pretty).dump(2), pretty);
  // Pretty and compact forms parse to equal documents.
  EXPECT_TRUE(Json::parse(pretty) == Json::parse(compact));
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), PreconditionError);
  EXPECT_THROW(Json::parse("{"), PreconditionError);
  EXPECT_THROW(Json::parse("[1,]"), PreconditionError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), PreconditionError);
  EXPECT_THROW(Json::parse("\"unterminated"), PreconditionError);
  EXPECT_THROW(Json::parse("1 trailing"), PreconditionError);
  EXPECT_THROW(Json::parse("nul"), PreconditionError);
}

TEST(Json, AccessorsEnforceKinds) {
  const Json doc = Json::parse("{\"a\":[1,2],\"b\":\"s\"}");
  EXPECT_TRUE(doc.has("a"));
  EXPECT_FALSE(doc.has("zz"));
  EXPECT_EQ(doc.at("a").size(), 2u);
  EXPECT_EQ(doc.at("a").at(1).as_int(), 2);
  EXPECT_THROW(doc.at("zz"), PreconditionError);
  EXPECT_THROW(doc.at("b").as_int(), PreconditionError);
  EXPECT_THROW(doc.at("a").at(5), PreconditionError);
}

}  // namespace
}  // namespace dsn
