// Queueing-model tests: flow conservation of the link-rate computation and
// cross-validation of the analytic latency against the cycle-accurate
// simulator at low and moderate load.
#include <gtest/gtest.h>

#include <numeric>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/queueing.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/sim/simulator.hpp"

namespace dsn {
namespace {

TEST(Queueing, FlowConservation) {
  // Total flit-hops per cycle = injection rate * average hop count.
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  const double pkt_rate = 0.001;
  const auto rates = uniform_link_rates(topo, routing, pkt_rate, 4);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);

  // Expected: sum over ordered switch pairs of pair_rate * distance.
  const double num_hosts = 64.0 * 4.0;
  const double pair_rate = pkt_rate * 4.0 * 4.0 / (num_hosts - 1.0);
  double expected = 0.0;
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId t = 0; t < 64; ++t) {
      if (s != t) expected += pair_rate * routing.distance(s, t);
    }
  }
  EXPECT_NEAR(total, expected, expected * 1e-9);
}

TEST(Queueing, ZeroLoadMatchesFixedCosts) {
  const Topology topo = make_topology_by_name("torus", 64);
  const SimRouting routing(topo);
  SimConfig cfg;
  cfg.offered_gbps_per_host = 1e-6;  // essentially zero queueing
  const auto pred = predict_uniform_latency(topo, routing, cfg);
  ASSERT_TRUE(pred.stable);
  const auto stats = compute_path_stats(topo.graph);
  const double cyc = cfg.cycle_ns();
  const double expected =
      ((stats.avg_shortest_path + 1) * static_cast<double>(cfg.router_delay_cycles()) +
       (stats.avg_shortest_path + 2) * static_cast<double>(cfg.link_delay_cycles()) +
       cfg.packet_flits) *
      cyc;
  EXPECT_NEAR(pred.avg_latency_ns, expected, 1.0);
}

TEST(Queueing, DetectsSaturation) {
  const Topology topo = make_topology_by_name("ring", 16);
  const SimRouting routing(topo);
  SimConfig cfg;
  cfg.offered_gbps_per_host = 50.0;  // far beyond what a 16-ring can carry
  const auto pred = predict_uniform_latency(topo, routing, cfg);
  EXPECT_FALSE(pred.stable);
  EXPECT_GE(pred.max_link_utilization, 1.0);
}

class QueueingVsSimTest : public ::testing::TestWithParam<double> {};

TEST_P(QueueingVsSimTest, PredictionTracksSimulation) {
  const double load = GetParam();
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  SimConfig cfg;
  cfg.offered_gbps_per_host = load;
  cfg.warmup_cycles = 4'000;
  cfg.measure_cycles = 12'000;
  cfg.drain_cycles = 60'000;

  const auto pred = predict_uniform_latency(topo, routing, cfg);
  ASSERT_TRUE(pred.stable);

  AdaptiveUpDownPolicy policy(routing, cfg.vcs);
  UniformTraffic traffic(64 * 4);
  const SimResult sim = run_simulation(topo, policy, traffic, cfg);
  ASSERT_TRUE(sim.drained);

  // The model ignores VC/switch-allocation contention and VCT blocking, so
  // it under-predicts slightly; require agreement within 20%.
  EXPECT_NEAR(pred.avg_latency_ns / sim.avg_latency_ns, 1.0, 0.20)
      << "load " << load << ": model " << pred.avg_latency_ns << " vs sim "
      << sim.avg_latency_ns;
}

INSTANTIATE_TEST_SUITE_P(Loads, QueueingVsSimTest, ::testing::Values(1.0, 4.0, 8.0));

TEST(Queueing, UtilizationGrowsWithLoad) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const SimRouting routing(topo);
  SimConfig lo, hi;
  lo.offered_gbps_per_host = 2.0;
  hi.offered_gbps_per_host = 8.0;
  const auto a = predict_uniform_latency(topo, routing, lo);
  const auto b = predict_uniform_latency(topo, routing, hi);
  EXPECT_LT(a.max_link_utilization, b.max_link_utilization);
  EXPECT_LT(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_NEAR(b.max_link_utilization / a.max_link_utilization, 4.0, 0.01);
}

}  // namespace
}  // namespace dsn
