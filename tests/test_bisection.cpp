// Tests for the bisection estimator: exact values on structured graphs,
// KL refinement improvements, and the topology comparison the interconnect
// community cares about (random > dsn > torus > ring bisection).
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/bisection.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(Bisection, CountCutLinks) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 0);
  EXPECT_EQ(count_cut_links(g, {0, 0, 1, 1}), 2u);
  EXPECT_EQ(count_cut_links(g, {0, 1, 0, 1}), 4u);
  EXPECT_EQ(count_cut_links(g, {0, 0, 0, 0}), 0u);
}

TEST(Bisection, RingBisectionIsTwo) {
  const Topology ring = make_ring(32);
  const auto r = estimate_bisection(ring.graph);
  EXPECT_EQ(r.cut_links, 2u);
}

TEST(Bisection, BalancePreserved) {
  const Topology t = make_topology_by_name("dsn", 64);
  const auto r = estimate_bisection(t.graph);
  std::size_t ones = 0;
  for (const auto s : r.side) ones += s;
  EXPECT_EQ(ones, 32u);
  EXPECT_EQ(count_cut_links(t.graph, r.side), r.cut_links);
}

TEST(Bisection, TorusBisectionMatchesTheory) {
  // 8x8 torus: cutting along one dimension severs 2 * 8 = 16 links.
  const Topology t = make_torus_2d(8, 8);
  const auto r = estimate_bisection(t.graph, 1, 8);
  EXPECT_LE(r.cut_links, 16u);
  EXPECT_GE(r.cut_links, 8u);  // a trivial lower bound for a 4-regular torus
}

TEST(Bisection, KlRefinementNeverWorsens) {
  const Topology t = make_topology_by_name("random", 64, 3);
  std::vector<std::uint8_t> side(64, 0);
  for (NodeId u = 32; u < 64; ++u) side[u] = 1;
  const std::uint64_t before = count_cut_links(t.graph, side);
  const auto refined = kernighan_lin_refine(t.graph, side);
  EXPECT_LE(refined.cut_links, before);
}

TEST(Bisection, RandomBeatsTorusBeatsRing) {
  // Higher bisection = better throughput scalability: the random topology
  // has ~Theta(n) bisection, the 2-D torus ~Theta(sqrt n), the ring 2.
  const std::uint32_t n = 256;
  const auto ring = estimate_bisection(make_ring(n).graph);
  const auto torus = estimate_bisection(make_topology_by_name("torus", n).graph);
  const auto random = estimate_bisection(make_topology_by_name("random", n, 1).graph);
  EXPECT_LT(ring.cut_links, torus.cut_links);
  EXPECT_LT(torus.cut_links, random.cut_links);
}

TEST(Bisection, DsnBetweenTorusAndRandom) {
  const std::uint32_t n = 256;
  const auto torus = estimate_bisection(make_topology_by_name("torus", n).graph);
  const auto dsn = estimate_bisection(make_topology_by_name("dsn", n).graph);
  const auto random = estimate_bisection(make_topology_by_name("random", n, 1).graph);
  EXPECT_GE(dsn.cut_links, torus.cut_links / 2);
  EXPECT_LE(dsn.cut_links, random.cut_links * 2);
}

TEST(Bisection, RejectsOddN) {
  const Topology t = make_ring(7);
  EXPECT_THROW(estimate_bisection(t.graph), PreconditionError);
}

TEST(Bisection, PerNodeNormalization) {
  BisectionResult r;
  r.cut_links = 16;
  r.side.assign(64, 0);
  EXPECT_DOUBLE_EQ(r.per_node(), 0.5);
}

}  // namespace
}  // namespace dsn
