// Cross-validation of the flow-level tier against the flit-level simulator
// (the headline gate of the flow tier, `ctest -L crossval`).
//
// Both tiers consume the exact same demand batch — pattern_demands() for the
// six synthetic patterns, expand_all_demands() for the HDFS and shuffle
// workloads — on the same DSN topology with the same routing algorithm (the
// paper's three-phase DSN routing: DsnCustomPolicy on the flit side, the
// analyzer's kDsn binding on the flow side). The flit simulator runs the
// batch as an injection trace to completion (warmup 0, window covering every
// injection, generous drain; the run exits at the makespan), the flow tier
// runs it as a static batch, and the per-host delivered throughput of the
// two tiers must agree within the per-pattern ratio bounds recorded below.
//
// Methodology for the bounds: ratio = flow / flit throughput. The flow tier
// is a fluid relaxation of an ideal fabric — no packetization, no
// buffer/credit stalls, no head-of-line blocking, no adaptive-routing
// detours — so its makespan lower-bounds the flit sim's and the ratio sits
// well above 1: under saturation the flit sim delivers a pattern-dependent
// 1/9 .. 1/2.5 of the fluid bound (measured ratios 2.5-8.7 across sizes
// and patterns, drifting with n as the share of makespan spent on pipeline
// latency and buffer drain changes). The gate therefore pins the *ratio
// band* per pattern: bounds were measured at n in {64, 256, 1024} with the
// packet counts below and widened by ~35-40% margin; a ratio outside
// [lo, hi] means one tier's congestion model drifted (e.g. the flow tier
// stopped honoring a resource class, or the flit sim's VC scheduling
// regressed).
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dsn/flow/flow_sim.hpp"
#include "dsn/flow/workload.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/demand.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/sim/traffic.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn::flow {
namespace {

// Enough packets that the makespan is drain-dominated rather than
// latency-dominated, but few enough that the saturated flit run fits the
// ctest budget: the flit sim's saturation throughput falls with n, so the
// cycles to drain a fixed per-host backlog (and the single-core wall time
// per cycle) both grow with size.
std::uint32_t packets_per_host(std::uint32_t n) { return n <= 256 ? 16 : 4; }

/// Per-host delivered throughput (flits/cycle) of the flit simulator running
/// `demands` as an injection trace to completion.
double flit_throughput(const Dsn& d, const std::vector<Demand>& demands) {
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.offered_gbps_per_host = 0.0;  // trace is the only source
  const std::vector<TraceEntry> trace = to_injection_trace(demands, cfg.packet_flits);
  std::uint64_t last_cycle = 0;
  for (const TraceEntry& e : trace) last_cycle = std::max(last_cycle, e.cycle);
  cfg.measure_cycles = last_cycle + 1;  // every packet is measured
  cfg.drain_cycles = 2'000'000;

  DsnCustomPolicy policy(d);
  UniformTraffic unused(d.topology().num_nodes() * cfg.hosts_per_switch);
  Simulator sim(d.topology(), policy, unused, cfg);
  sim.set_injection_trace(trace);
  const SimResult res = sim.run();
  EXPECT_TRUE(res.drained);
  EXPECT_FALSE(res.deadlock);
  EXPECT_EQ(res.packets_delivered, demands.size());
  const double flits = static_cast<double>(res.packets_delivered) *
                       static_cast<double>(cfg.packet_flits);
  const double hosts = static_cast<double>(d.topology().num_nodes()) * cfg.hosts_per_switch;
  return flits / static_cast<double>(res.cycles_run) / hosts;
}

/// Per-host delivered throughput (flits/cycle) of the flow tier on the same
/// static batch.
double flow_throughput(const Dsn& d, const std::vector<Demand>& demands) {
  FlowConfig cfg;
  // Batch a few completions per water-filling solve: event-exact stepping
  // (the default) solves once per completion, which at n = 1024 is minutes
  // of wall time for an identical throughput figure.
  cfg.min_epoch_cycles = 32;
  FlowSimulator sim(d.topology(), cfg);
  const FlowResult res = sim.run(demands);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.flows_completed, demands.size());
  return res.per_host_flits_per_cycle;
}

double crossval_ratio(std::uint32_t n, const std::string& label,
                      const std::vector<Demand>& demands) {
  const Dsn d(n, dsn_default_x(n));
  const double flit = flit_throughput(d, demands);
  const double flow = flow_throughput(d, demands);
  EXPECT_GT(flit, 0.0) << label;
  EXPECT_GT(flow, 0.0) << label;
  const double ratio = flow / flit;
  std::cout << "[crossval] n=" << n << " " << label << ": flit=" << flit
            << " flow=" << flow << " ratio=" << ratio << "\n";
  return ratio;
}

std::unique_ptr<TrafficPattern> make_pattern(const std::string& name,
                                             std::uint32_t hosts) {
  if (name == "uniform") return std::make_unique<UniformTraffic>(hosts);
  if (name == "bit-reversal") return std::make_unique<BitReversalTraffic>(hosts);
  if (name == "neighboring") return std::make_unique<NeighboringTraffic>(hosts);
  if (name == "transpose") return std::make_unique<TransposeTraffic>(hosts);
  if (name == "shuffle") return std::make_unique<ShuffleTraffic>(hosts);
  return std::make_unique<HotspotTraffic>(hosts, 0, 0.1);
}

struct PatternBounds {
  const char* pattern;
  double lo;  ///< min allowed flow/flit throughput ratio
  double hi;  ///< max allowed flow/flit throughput ratio
};

// The recorded tolerance bounds (see the header comment for methodology).
// Measured flow/flit ratios at n = 64 / 256 / 1024:
//   uniform      3.49 / 4.59 / 4.16
//   bit-reversal 4.75 / 7.00 / 5.10
//   neighboring  6.02 / 4.79 / 3.91
//   transpose    4.15 / 8.67 / 5.81
//   shuffle      3.03 / 2.68 / 2.54
//   hotspot      4.35 / 3.23 / 2.95
constexpr PatternBounds kPatternBounds[] = {
    {"uniform", 2.4, 6.5},       {"bit-reversal", 3.2, 9.8},
    {"neighboring", 2.6, 8.5},   {"transpose", 2.8, 12.0},
    {"shuffle", 1.7, 4.4},       {"hotspot", 2.0, 6.2},
};

class FlowCrossval : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FlowCrossval, SyntheticPatternsTrackFlitSim) {
  const std::uint32_t n = GetParam();
  const std::uint32_t hosts = 4 * n;
  const SimConfig scfg;
  for (const PatternBounds& b : kPatternBounds) {
    const std::unique_ptr<TrafficPattern> pattern = make_pattern(b.pattern, hosts);
    const std::vector<Demand> demands = pattern_demands(
        *pattern, hosts, packets_per_host(n), scfg.packet_flits, /*seed=*/1);
    const double ratio = crossval_ratio(n, b.pattern, demands);
    EXPECT_GE(ratio, b.lo) << b.pattern << " n=" << n;
    EXPECT_LE(ratio, b.hi) << b.pattern << " n=" << n;
  }
}

TEST_P(FlowCrossval, WorkloadBatchesTrackFlitSim) {
  const std::uint32_t n = GetParam();
  const SimConfig scfg;
  WorkloadParams params;
  params.hosts = 4 * n;
  // Modest participant counts keep the saturated flit run inside the ctest
  // budget at n = 1024 (shuffle emits clients^2 fetches).
  params.clients = std::max(16u, n / 16);
  params.units = 8;
  params.unit_flits = scfg.packet_flits;  // one block = one flit-sim packet
  params.seed = 1;
  // Measured flow/flit ratios at n = 64 / 256 / 1024:
  //   hdfs-read 4.57 / 3.34 / 4.27, shuffle 3.17 / 3.38 / 4.09
  const struct {
    const char* workload;
    double lo, hi;
  } cases[] = {{"hdfs-read", 2.3, 6.5}, {"shuffle", 2.2, 5.8}};
  for (const auto& c : cases) {
    const std::unique_ptr<WorkloadDriver> driver = make_workload(c.workload, params);
    const std::vector<Demand> demands = expand_all_demands(*driver);
    const double ratio = crossval_ratio(n, c.workload, demands);
    EXPECT_GE(ratio, c.lo) << c.workload << " n=" << n;
    EXPECT_LE(ratio, c.hi) << c.workload << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowCrossval, ::testing::Values(64u, 256u, 1024u));

}  // namespace
}  // namespace dsn::flow
