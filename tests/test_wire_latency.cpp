// Tests for the zero-load wire-latency estimator.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/wire_latency.hpp"
#include "dsn/graph/metrics.hpp"

namespace dsn {
namespace {

TEST(WireLatency, HopsMatchAspl) {
  const Topology topo = make_topology_by_name("dsn", 128);
  const auto stats = estimate_wire_latency(topo);
  const auto paths = compute_path_stats(topo.graph);
  EXPECT_NEAR(stats.avg_hops, paths.avg_shortest_path, 1e-9);
}

TEST(WireLatency, RouterOnlyWhenCableFree) {
  WireLatencyConfig cfg;
  cfg.cable_ns_per_m = 0.0;
  const Topology topo = make_topology_by_name("torus", 64);
  const auto stats = estimate_wire_latency(topo, cfg);
  const auto paths = compute_path_stats(topo.graph);
  // Latency = (hops + 1) * 100ns averaged.
  EXPECT_NEAR(stats.avg_latency_ns, (paths.avg_shortest_path + 1) * 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(stats.wire_fraction, 0.0);
}

TEST(WireLatency, CableAccumulatesAlongPaths) {
  // On a 32-node ring in 2 cabinets every path's cable is path-dependent but
  // bounded by hops * max link length; sanity-check the relation.
  const Topology ring = make_topology_by_name("ring", 32);
  const auto stats = estimate_wire_latency(ring);
  EXPECT_GT(stats.avg_cable_m, stats.avg_hops * 1.9);  // >= ~2 m per hop
  EXPECT_LT(stats.avg_cable_m, stats.avg_hops * 4.2);  // <= max hop length
}

TEST(WireLatency, RandomPaysMoreWireThanDsn) {
  // The paper's qualitative claim quantified: RANDOM's per-path cable exceeds
  // DSN's at scale.
  const auto dsn_stats = estimate_wire_latency(make_topology_by_name("dsn", 1024));
  const auto rnd_stats =
      estimate_wire_latency(make_topology_by_name("random", 1024, 1));
  EXPECT_GT(rnd_stats.avg_cable_m / rnd_stats.avg_hops,
            dsn_stats.avg_cable_m / dsn_stats.avg_hops);
}

TEST(WireLatency, DsnBeatsTorusEndToEnd) {
  // With 100 ns routers, hop count dominates: DSN's total estimate must beat
  // the torus at scale despite similar cable.
  const auto dsn_stats = estimate_wire_latency(make_topology_by_name("dsn", 1024));
  const auto torus_stats = estimate_wire_latency(make_topology_by_name("torus", 1024));
  EXPECT_LT(dsn_stats.avg_latency_ns, torus_stats.avg_latency_ns);
}

}  // namespace
}  // namespace dsn
