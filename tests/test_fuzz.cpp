// Randomized property sweeps ("fuzz" tests): random (n, x, seed) combinations
// exercising construction invariants and routing correctness on sampled
// pairs, far beyond the hand-picked sizes of the targeted suites.
#include <gtest/gtest.h>

#include "dsn/common/math.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

TEST(Fuzz, RandomDsnParametersAlwaysValid) {
  Rng rng(0xDEAD);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<std::uint32_t>(16 + rng.next_below(2000));
    const std::uint32_t p = ilog2_ceil(n);
    const auto x = static_cast<std::uint32_t>(1 + rng.next_below(p - 1));
    const Dsn d(n, x);

    // Structural invariants that must hold for every parameterization.
    EXPECT_TRUE(is_connected(d.topology().graph)) << n << "," << x;
    const auto deg = compute_degree_stats(d.topology().graph);
    EXPECT_LE(deg.max_degree, 5u) << n << "," << x;
    EXPECT_LE(deg.avg_degree, 4.0 + 1e-9) << n << "," << x;
    for (NodeId i = 0; i < d.n(); ++i) {
      const NodeId sc = d.shortcut_target(i);
      if (d.level(i) <= x) {
        ASSERT_NE(sc, kInvalidNode);
        EXPECT_EQ(d.level(sc), d.level(i) + 1);
        EXPECT_GE(ring_cw_distance(i, sc, n), d.shortcut_min_span(d.level(i)));
      } else {
        EXPECT_EQ(sc, kInvalidNode);
      }
    }
  }
}

TEST(Fuzz, RandomPairsRouteCorrectly) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::uint32_t>(32 + rng.next_below(3000));
    const std::uint32_t p = ilog2_ceil(n);
    const auto x = static_cast<std::uint32_t>(1 + rng.next_below(p - 1));
    const Dsn d(n, x);
    DsnRoutingOptions opt;
    opt.avoid_overshoot = rng.bernoulli(0.5);
    opt.nearest_prework = rng.bernoulli(0.5);
    const DsnRouter router(d, opt);
    for (int pair = 0; pair < 50; ++pair) {
      const auto s = static_cast<NodeId>(rng.next_below(n));
      const auto t = static_cast<NodeId>(rng.next_below(n));
      const Route r = router.route(s, t);
      ASSERT_NO_THROW(validate_route(d, r))
          << "n=" << n << " x=" << x << " " << s << "->" << t;
      EXPECT_FALSE(r.used_fallback) << "n=" << n << " x=" << x << " " << s << "->" << t;
      // Universal sanity cap: every route is bounded by the FINISH worst
      // case for its x (n/2^x local walk) plus the phase bounds.
      const std::uint64_t finish_bound = (n >> x) + p + d.r() + 2;
      EXPECT_LE(r.length(), 2ull * p + finish_bound + p)
          << "n=" << n << " x=" << x << " " << s << "->" << t;
    }
  }
}

TEST(Fuzz, PremiseSizesMeetFact2Bound) {
  // For x > p - log p (sampled randomly), the 3p + r routing-diameter bound
  // must hold on sampled pairs.
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<std::uint32_t>(64 + rng.next_below(4000));
    const std::uint32_t p = ilog2_ceil(n);
    const std::uint32_t logp = ilog2_ceil(p);
    const std::uint32_t lo = p - logp + 1;  // smallest premise-satisfying x
    const auto x =
        static_cast<std::uint32_t>(lo + rng.next_below(p - lo));  // in [lo, p-1]
    const Dsn d(n, x);
    const DsnRouter router(d);
    for (int pair = 0; pair < 80; ++pair) {
      const auto s = static_cast<NodeId>(rng.next_below(n));
      const auto t = static_cast<NodeId>(rng.next_below(n));
      const Route r = router.route(s, t);
      EXPECT_LE(r.length(), 3 * p + d.r())
          << "n=" << n << " x=" << x << " " << s << "->" << t;
    }
  }
}

TEST(Fuzz, RandomMatchingTopologiesStayFourRegular) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 20; ++trial) {
    const auto half = 16 + rng.next_below(500);
    const auto n = static_cast<std::uint32_t>(2 * half);  // even
    const Topology t = make_dln_random(n, 2, 2, rng.next());
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(t.graph.degree(v), 4u) << "n=" << n << " node " << v;
    }
    EXPECT_TRUE(is_connected(t.graph)) << n;
  }
}

}  // namespace
}  // namespace dsn
