// Live fault injection & recovery: schedule mechanics, rerouting around dead
// links/switches, retry + drop accounting, epoch curves, JSON reports, and
// the golden determinism contract (same schedule + seed => byte-identical
// SimResult for any routing-rebuild worker count).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/sim/trace.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {
namespace {

// A non-ring ("shortcut") link of the topology, or any link when none jumps.
LinkId find_shortcut_link(const Topology& topo) {
  const Graph& g = topo.graph;
  const NodeId n = g.num_nodes();
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    const NodeId gap = u < v ? v - u : u - v;
    if (gap != 1 && gap != n - 1) return l;
  }
  return 0;
}

SimConfig drill_config() {
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2'000;
  cfg.drain_cycles = 60'000;
  cfg.offered_gbps_per_host = 1.0;
  return cfg;
}

// --------------------------------------------------------------------------
// FaultSchedule mechanics.
// --------------------------------------------------------------------------

TEST(FaultSchedule, KeepsEventsSortedAndStable) {
  FaultSchedule s;
  s.link_down(500, 1).switch_down(100, 2).link_up(500, 3).link_down(50, 4);
  ASSERT_EQ(s.size(), 4u);
  const auto ev = s.events();
  EXPECT_EQ(ev[0].cycle, 50u);
  EXPECT_EQ(ev[1].cycle, 100u);
  // Same-cycle events keep insertion order: link 1 down before link 3 up.
  EXPECT_EQ(ev[2].id, 1u);
  EXPECT_EQ(ev[3].id, 3u);
}

TEST(FaultSchedule, ValidateRejectsOutOfRangeIds) {
  const Topology ring = make_topology_by_name("ring", 8);
  FaultSchedule bad_link;
  bad_link.link_down(0, 99);
  EXPECT_THROW(bad_link.validate(ring), PreconditionError);
  FaultSchedule bad_switch;
  bad_switch.switch_down(0, 8);
  EXPECT_THROW(bad_switch.validate(ring), PreconditionError);
}

TEST(FaultSchedule, FlapModelIsSeedDeterministic) {
  const Topology topo = make_topology_by_name("dsn", 64);
  const auto a = make_link_flap_schedule(topo, 0.02, 500, 2'000, 20'000, 7);
  const auto b = make_link_flap_schedule(topo, 0.02, 500, 2'000, 20'000, 7);
  const auto c = make_link_flap_schedule(topo, 0.02, 500, 2'000, 20'000, 8);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  ASSERT_FALSE(a.empty());
  // Every down has a paired repair exactly repair_cycles later.
  std::size_t downs = 0, ups = 0;
  for (const FaultEvent& ev : a.events()) {
    if (ev.kind == FaultKind::kLinkDown) ++downs;
    if (ev.kind == FaultKind::kLinkUp) ++ups;
  }
  EXPECT_EQ(downs, ups);
}

TEST(FaultSchedule, TextRoundTrip) {
  FaultSchedule s;
  s.link_down(10, 3).switch_down(20, 1).link_up(2'010, 3).switch_up(5'000, 1);
  const std::string text = format_fault_schedule(s);
  const FaultSchedule parsed = parse_fault_schedule_text(text);
  EXPECT_TRUE(s == parsed);
  EXPECT_THROW(parse_fault_schedule_text("10 link-sideways 3\n"), PreconditionError);
  EXPECT_THROW(parse_fault_schedule_text("10 link-down\n"), PreconditionError);
}

// --------------------------------------------------------------------------
// Recovery behavior.
// --------------------------------------------------------------------------

TEST(FaultRecovery, ReroutesAroundDeadShortcut) {
  const Topology topo = make_topology_by_name("dsn", 64);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(64 * 4);
  SimConfig cfg = drill_config();

  FaultSchedule schedule;
  schedule.link_down(500, find_shortcut_link(topo));
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.drained);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_EQ(res.packets_delivered, res.packets_measured);
  ASSERT_EQ(res.fault_log.size(), 1u);
  EXPECT_TRUE(res.fault_log[0].rebuilt_routing);
  EXPECT_TRUE(res.fault_log[0].reconnected);
  EXPECT_EQ(res.routing_rebuilds, 1u);
}

TEST(FaultRecovery, DsnCustomPolicyRingFallbackSurvivesShortcutLoss) {
  const std::uint32_t n = 64;
  const Dsn d(n, dsn_default_x(n));
  const Topology& topo = d.topology();
  DsnCustomPolicy policy(d);
  UniformTraffic traffic(n * 4);
  SimConfig cfg = drill_config();
  cfg.offered_gbps_per_host = 0.5;

  FaultSchedule schedule;
  schedule.link_down(500, find_shortcut_link(topo));
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.drained);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_EQ(res.packets_delivered, res.packets_measured);
}

TEST(FaultRecovery, HealRestoresAndMeasuresReconnect) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();

  const LinkId victim = find_shortcut_link(topo);
  FaultSchedule schedule;
  // Both events land inside the 2'000-cycle generation window so the sim
  // cannot drain before the repair.
  schedule.link_down(400, victim).link_up(1'500, victim);
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  ASSERT_TRUE(res.drained);
  ASSERT_EQ(res.fault_log.size(), 2u);
  EXPECT_TRUE(res.fault_log[0].reconnected);
  EXPECT_GT(res.fault_log[0].reconnect_cycles, 0u);
  // Healing rebuilds again (back to the pristine tables).
  EXPECT_EQ(res.routing_rebuilds, 2u);
  EXPECT_TRUE(res.conservation_ok);
}

TEST(FaultRecovery, NoRecoveryNegativeControlDropsTraffic) {
  // With recovery disabled a halted switch turns its traffic into TTL drops;
  // the accounting must still balance exactly.
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  cfg.rebuild_routing_on_fault = false;
  cfg.retry_on_fault = false;
  cfg.packet_ttl_cycles = 3'000;

  FaultSchedule schedule;
  schedule.switch_down(300, 7);
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_GT(res.packets_dropped, 0u);
  EXPECT_EQ(res.packets_retried, 0u);
  EXPECT_TRUE(res.drained);
}

TEST(FaultRecovery, SwitchHaltWithRecoveryConservesPackets) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  // Destinations on the dead switch are unreachable until it revives; the
  // TTL guard accounts for packets that exhaust their patience first.
  cfg.packet_ttl_cycles = 4'000;

  FaultSchedule schedule;
  schedule.switch_down(500, 9).switch_up(6'000, 9);
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  EXPECT_FALSE(res.deadlock);
  EXPECT_TRUE(res.drained);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_EQ(res.packets_delivered_total + res.packets_dropped,
            res.packets_generated_total);
}

TEST(FaultRecovery, ExhaustedRetriesBecomeDrops) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  cfg.max_retries = 0;  // first damage is final

  FaultSchedule schedule;
  schedule.link_down(500, find_shortcut_link(topo));
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  EXPECT_TRUE(res.drained);
  EXPECT_TRUE(res.conservation_ok);
  EXPECT_EQ(res.packets_retried, 0u);
  ASSERT_EQ(res.fault_log.size(), 1u);
  EXPECT_EQ(res.fault_log[0].packets_requeued, 0u);
  EXPECT_EQ(res.fault_log[0].packets_dropped, res.packets_dropped);
}

TEST(FaultRecovery, RedundantEventsAreIgnored) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();

  const LinkId victim = find_shortcut_link(topo);
  FaultSchedule schedule;
  schedule.link_down(500, victim).link_down(600, victim).link_up(601, victim);
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  ASSERT_TRUE(res.drained);
  // The second down was a no-op: only one down + one up in the log.
  ASSERT_EQ(res.fault_log.size(), 2u);
  EXPECT_EQ(res.fault_log[1].event.kind, FaultKind::kLinkUp);
}

// --------------------------------------------------------------------------
// Epoch curves and JSON reports.
// --------------------------------------------------------------------------

TEST(FaultRecovery, EpochTotalsMatchGlobalCounters) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  cfg.epoch_cycles = 1'000;

  FaultSchedule schedule;
  schedule.link_down(700, find_shortcut_link(topo));
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  ASSERT_TRUE(res.drained);
  ASSERT_FALSE(res.epochs.empty());
  std::uint64_t injected = 0, delivered = 0, dropped = 0, retried = 0;
  for (const EpochStats& e : res.epochs) {
    injected += e.injected;
    delivered += e.delivered;
    dropped += e.dropped;
    retried += e.retried;
  }
  EXPECT_EQ(injected, res.packets_generated_total);
  EXPECT_EQ(delivered, res.packets_delivered_total);
  EXPECT_EQ(dropped, res.packets_dropped);
  EXPECT_EQ(retried, res.packets_retried);
  // Epoch buckets start on epoch boundaries.
  for (std::size_t i = 0; i < res.epochs.size(); ++i) {
    EXPECT_EQ(res.epochs[i].start_cycle, i * cfg.epoch_cycles);
  }
}

TEST(FaultRecovery, JsonReportsExposeTheDegradationCurve) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  cfg.epoch_cycles = 1'000;

  FaultSchedule schedule;
  schedule.link_down(700, find_shortcut_link(topo));
  Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const SimResult res = sim.run();

  const Json full = to_json(res);
  EXPECT_TRUE(full.has("conservation_ok"));
  EXPECT_TRUE(full.has("fault_log"));
  EXPECT_TRUE(full.has("epochs"));
  EXPECT_EQ(full.at("fault_log").size(), res.fault_log.size());
  EXPECT_EQ(full.at("epochs").size(), res.epochs.size());

  const Json curve = degradation_curve_json(res);
  EXPECT_TRUE(curve.has("faults"));
  ASSERT_EQ(curve.at("epochs").size(), res.epochs.size());
  // The dump parses back (shape sanity for consumers).
  const Json reparsed = Json::parse(curve.dump());
  EXPECT_EQ(reparsed.at("epochs").size(), res.epochs.size());
}

// --------------------------------------------------------------------------
// Golden determinism: identical schedule + seed => byte-identical results and
// traces, no matter how many workers rebuild the routing tables.
// --------------------------------------------------------------------------

TEST(FaultDeterminism, ByteIdenticalAcrossRebuildWorkerCounts) {
  const Topology topo = make_topology_by_name("dsn", 32);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  cfg.epoch_cycles = 1'000;
  cfg.record_packet_traces = true;
  // Switch 11 never revives: packets headed there must age out.
  cfg.packet_ttl_cycles = 3'000;

  const LinkId victim = find_shortcut_link(topo);
  FaultSchedule schedule;
  schedule.link_down(400, victim).link_up(4'000, victim).switch_down(1'500, 11);

  std::vector<std::string> dumps;
  std::vector<std::vector<PacketTrace>> traces;
  for (const std::size_t workers : {1u, 4u, 8u}) {
    ThreadPool pool(workers);
    SimRouting routing(topo, 0, &pool);
    AdaptiveUpDownPolicy policy(routing, 4, &pool);
    Simulator sim(topo, policy, traffic, cfg);
    sim.set_fault_schedule(schedule);
    const SimResult res = sim.run();
    dumps.push_back(to_json(res).dump());
    traces.emplace_back(sim.packet_traces().begin(), sim.packet_traces().end());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
}

TEST(FaultDeterminism, ShardedActiveCoreMatchesLegacyUnderFaults) {
  // The sharded active-set core under a live fault drill: purges, retries,
  // TTL expiries and routing rebuilds while shards exchange flits through
  // mailboxes. Lives in the faults binary so the TSan CI leg (-L faults)
  // races the epoch barriers; the byte-compare against the legacy core is
  // the determinism gate.
  const Topology topo = make_topology_by_name("dsn", 32);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = drill_config();
  cfg.epoch_cycles = 1'000;
  cfg.record_packet_traces = true;
  // Switch 11 never revives: packets headed there must age out.
  cfg.packet_ttl_cycles = 3'000;

  const LinkId victim = find_shortcut_link(topo);
  FaultSchedule schedule;
  schedule.link_down(400, victim).link_up(4'000, victim).switch_down(1'500, 11);

  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  const auto run_once = [&](bool legacy, std::uint32_t sim_threads) {
    SimConfig run_cfg = cfg;
    run_cfg.legacy_core = legacy;
    run_cfg.sim_threads = sim_threads;
    Simulator sim(topo, policy, traffic, run_cfg);
    sim.set_fault_schedule(schedule);
    const SimResult res = sim.run();
    return std::pair<std::string, std::vector<PacketTrace>>(
        to_json(res).dump(),
        {sim.packet_traces().begin(), sim.packet_traces().end()});
  };
  const auto baseline = run_once(/*legacy=*/true, 1);
  for (const std::uint32_t threads : {4u, 8u}) {
    const auto active = run_once(/*legacy=*/false, threads);
    EXPECT_EQ(baseline.first, active.first) << "sim_threads=" << threads;
    EXPECT_EQ(baseline.second, active.second) << "sim_threads=" << threads;
  }
}

TEST(FaultDeterminism, TraceReplayWithFaultsIsReproducible) {
  // Reuse the trace-replay machinery: a fixed injection schedule plus a fault
  // timeline must give identical per-packet traces on every run.
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1'000;
  cfg.drain_cycles = 40'000;
  cfg.record_packet_traces = true;
  // Switch 3 never revives: packets headed there must age out.
  cfg.packet_ttl_cycles = 3'000;

  std::vector<TraceEntry> injections;
  for (std::uint64_t c = 0; c < 800; c += 5) {
    injections.push_back({c, static_cast<HostId>(c % 64),
                          static_cast<HostId>((c * 13 + 5) % 64)});
  }
  FaultSchedule schedule;
  schedule.link_down(200, find_shortcut_link(topo)).switch_down(600, 3);

  const auto run_once = [&] {
    Simulator sim(topo, policy, unused, cfg);
    sim.set_injection_trace(injections);
    sim.set_fault_schedule(schedule);
    const SimResult res = sim.run();
    return std::pair<std::string, std::vector<PacketTrace>>(
        to_json(res).dump(),
        {sim.packet_traces().begin(), sim.packet_traces().end()});
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dsn
