// Concurrency stress tests for ThreadPool, written to run under TSan: many
// external submitters, nested parallel_for (which used to deadlock), and the
// "first exception wins" propagation contract from thread_pool.hpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dsn/common/error.hpp"
#include "dsn/common/thread_pool.hpp"

namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersThenWaitIdle) {
  dsn::ThreadPool pool(4);
  std::atomic<std::size_t> counter{0};

  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kTasksEach = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (std::size_t t = 0; t < kTasksEach; ++t) {
        pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& th : submitters) th.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);

  // The pool must stay usable after a wait_idle round.
  pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach + 1);
}

TEST(ThreadPoolStress, NestedParallelForRunsInline) {
  // A parallel_for issued from inside one of the pool's own tasks must run
  // inline instead of blocking the worker on chunks the saturated pool could
  // never schedule. With 2 workers and 8 outer items this deadlocked before
  // the reentrancy fix.
  dsn::ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 1000, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8u * 1000u);
}

TEST(ThreadPoolStress, NestedGlobalParallelForHelper) {
  std::atomic<std::size_t> total{0};
  dsn::parallel_for(0, 16, [&](std::size_t) {
    dsn::parallel_for(0, 64, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16u * 64u);
}

TEST(ThreadPoolStress, WaitIdleFromWorkerThrows) {
  dsn::ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.submit([&] {
    try {
      pool.wait_idle();
    } catch (const dsn::PreconditionError&) {
      threw.store(true);
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPoolStress, FirstExceptionWinsAndPoolSurvives) {
  dsn::ThreadPool pool(4);

  // Exactly one index throws; the exception must propagate out of
  // parallel_for with its message intact, and every non-throwing index must
  // still have run (chunks are independent).
  std::vector<std::atomic<int>> ran(256);
  bool caught = false;
  try {
    pool.parallel_for(0, 256, [&](std::size_t i) {
      if (i == 131) throw std::runtime_error("boom at 131");
      ran[i].fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "boom at 131");
  }
  EXPECT_TRUE(caught);

  // The pool must be fully usable after an exception round.
  std::atomic<std::size_t> after{0};
  pool.parallel_for(0, 512, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 512u);
}

TEST(ThreadPoolStress, ManyThrowersPropagateExactlyOne) {
  dsn::ThreadPool pool(4);
  std::atomic<int> caught{0};
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(0, 64, [&](std::size_t i) {
        throw std::runtime_error("thrower " + std::to_string(i));
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  // Each round surfaces exactly one of the competing exceptions.
  EXPECT_EQ(caught.load(), 20);
}

TEST(ThreadPoolStress, ConcurrentParallelForCallers) {
  // Several external threads drive parallel_for on the same pool at once;
  // each call's completion accounting must stay independent (per-call done
  // counters), and sums must come out exact.
  dsn::ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  std::vector<std::size_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      std::atomic<std::size_t> sum{0};
      pool.parallel_for(0, 2000, [&sum](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      sums[c] = sum.load();
    });
  }
  for (auto& th : callers) th.join();
  const std::size_t expected = 2000u * 1999u / 2u;
  for (std::size_t c = 0; c < kCallers; ++c) EXPECT_EQ(sums[c], expected);
}

TEST(ThreadPoolStress, ParallelForTinyAndEmptyRanges) {
  dsn::ThreadPool pool(3);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1u);
}

}  // namespace
