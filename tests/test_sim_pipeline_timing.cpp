// Cycle-exact pipeline regression test: one packet over one hop, with the
// full timing derivation. Any change to the router/link/credit model that
// shifts latency by even a cycle fails here, with the derivation below as
// the reference.
//
// Configuration: 4-switch ring, defaults (router_delay = 38 cycles,
// link_delay = 8 cycles, 33-flit packets), a single traced packet from
// host 0 (switch 0) to host 4 (switch 1).
//
//   cycle 0        packet enters the NIC source queue (gen_cycle = 0) and
//                  the NIC starts streaming (inject_cycle = 0); flit k is
//                  put on the injection wire at cycle k and arrives at the
//                  switch-0 input buffer at cycle k + 8.
//   cycle 8        head flit arrives; routable at 8 + 38 = 46.
//   cycle 46       VC allocation + switch allocation succeed (everything is
//                  idle); head traverses to the switch-1 wire, arriving at
//                  46 + 8 = 54. Body flits follow one per cycle.
//   cycle 54       head arrives at switch 1 (the destination); routable at
//                  54 + 38 = 92.
//   cycle 92       ejection port granted; flits eject one per cycle, so the
//                  tail (flit 32) ejects at 92 + 32 = 124 and completes at
//                  the host NIC at 124 + 8 = 132.
//
//   => end-to-end latency = 132 cycles = 352 ns at 2.667 ns/cycle.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace dsn {
namespace {

TEST(PipelineTiming, SingleHopIsCycleExact) {
  const Topology ring = make_topology_by_name("ring", 4);
  SimRouting routing(ring);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 5'000;
  cfg.record_packet_traces = true;
  ASSERT_EQ(cfg.router_delay_cycles(), 38u);
  ASSERT_EQ(cfg.link_delay_cycles(), 8u);

  Simulator sim(ring, policy, unused, cfg);
  sim.set_injection_trace({{0, 0, 4}});  // host 0 (switch 0) -> host 4 (switch 1)
  const SimResult res = sim.run();
  ASSERT_TRUE(res.drained);
  ASSERT_EQ(sim.packet_traces().size(), 1u);

  const PacketTrace& t = sim.packet_traces()[0];
  EXPECT_EQ(t.gen_cycle, 0u);
  EXPECT_EQ(t.inject_cycle, 0u);
  EXPECT_EQ(t.hops, 1u);
  EXPECT_EQ(t.eject_cycle - t.gen_cycle, 132u);  // derivation in file header
  EXPECT_NEAR(res.avg_latency_ns, 132.0 * cfg.cycle_ns(), 1e-6);
}

TEST(PipelineTiming, EachExtraHopAddsRouterPlusLink) {
  // Two hops: one more (router + link + 1 SA cycle... no — the body flits
  // pipeline behind the head, so an extra hop adds exactly
  // router_delay + link_delay = 46 cycles of head latency.
  const Topology ring = make_topology_by_name("ring", 8);
  SimRouting routing(ring);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(32);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 8'000;
  cfg.record_packet_traces = true;

  const auto latency_for = [&](HostId dst) {
    Simulator sim(ring, policy, unused, cfg);
    sim.set_injection_trace({{0, 0, dst}});
    const SimResult res = sim.run();
    EXPECT_TRUE(res.drained);
    return sim.packet_traces()[0].eject_cycle;
  };
  const std::uint64_t one_hop = latency_for(4);    // switch 1
  const std::uint64_t two_hops = latency_for(8);   // switch 2
  const std::uint64_t three_hops = latency_for(12);  // switch 3
  EXPECT_EQ(two_hops - one_hop, 38u + 8u);
  EXPECT_EQ(three_hops - two_hops, 38u + 8u);
}

TEST(PipelineTiming, ZeroHopDeliveryWithinSwitch) {
  // Destination host on the source switch: inject -> route to ejection port
  // -> eject. Latency = 8 (inject wire) + 38 (routing) + 32 (tail) + 8.
  const Topology ring = make_topology_by_name("ring", 4);
  SimRouting routing(ring);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 5'000;
  cfg.record_packet_traces = true;

  Simulator sim(ring, policy, unused, cfg);
  sim.set_injection_trace({{0, 0, 1}});  // host 0 -> host 1, both on switch 0
  const SimResult res = sim.run();
  ASSERT_TRUE(res.drained);
  const PacketTrace& t = sim.packet_traces()[0];
  EXPECT_EQ(t.hops, 0u);
  EXPECT_EQ(t.eject_cycle, 8u + 38u + 32u + 8u);
}

}  // namespace
}  // namespace dsn
