// Channel-dependency-graph tests: the Theorem 3 deadlock-freedom claim for
// the extended DSN routing (positive), the basic scheme as a negative
// control, acyclicity of up*/down*, and unit tests of the CDG container.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/updown.hpp"

namespace dsn {
namespace {

TEST(Cdg, EmptyIsAcyclic) {
  ChannelDependencyGraph cdg;
  EXPECT_TRUE(cdg.is_acyclic());
  EXPECT_EQ(cdg.num_channels(), 0u);
}

TEST(Cdg, SimpleChainIsAcyclic) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}, {2, 3, 0}});
  EXPECT_TRUE(cdg.is_acyclic());
  EXPECT_EQ(cdg.num_channels(), 3u);
  EXPECT_EQ(cdg.num_dependencies(), 2u);
}

TEST(Cdg, TriangleOfRoutesIsCyclic) {
  // Three two-hop routes around a 3-cycle create the classic deadlock cycle.
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{1, 2, 0}, {2, 0, 0}});
  cdg.add_route({{2, 0, 0}, {0, 1, 0}});
  EXPECT_FALSE(cdg.is_acyclic());
  const auto cycle = cdg.find_cycle();
  EXPECT_GE(cycle.size(), 3u);
}

TEST(Cdg, ChannelClassesSeparateDependencies) {
  // The same physical cycle split across two classes has no cycle.
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{1, 2, 0}, {2, 0, 1}});  // breaks into class 1
  cdg.add_route({{2, 0, 1}, {0, 1, 1}});
  EXPECT_TRUE(cdg.is_acyclic());
}

TEST(Cdg, DuplicateDependenciesCollapsed) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  EXPECT_EQ(cdg.num_dependencies(), 1u);
}

// --------------------------------------------------------------------------
// Theorem 3 and the negative control, across sizes.
// --------------------------------------------------------------------------

class DsnCdgTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DsnCdgTest, ExtendedSchemeIsDeadlockFree) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto cdg = build_dsn_cdg(d, /*extended=*/true);
  EXPECT_TRUE(cdg.is_acyclic()) << "n = " << n;
}

TEST_P(DsnCdgTest, BasicSchemeHasCycles) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto cdg = build_dsn_cdg(d, /*extended=*/false);
  EXPECT_FALSE(cdg.is_acyclic()) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, DsnCdgTest, ::testing::Values(32u, 64u, 100u, 128u));

TEST(DsnCdg, ExtendedDeadlockFreeWithNearestPrework) {
  // The Fact 3 PRE-WORK variant walks succ links in PRE-WORK as well; the
  // class separation must still hold.
  const Dsn d(64, dsn_default_x(64));
  const auto cdg = build_dsn_cdg(d, /*extended=*/true, /*nearest_prework=*/true);
  EXPECT_TRUE(cdg.is_acyclic());
}

TEST(DsnCdg, ChannelMappingUsesExpectedClasses) {
  const Dsn d(64, dsn_default_x(64));
  DsnRouter router(d);
  bool saw_up = false, saw_main = false, saw_finish = false, saw_extra = false;
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId t = 0; t < 64; ++t) {
      if (s == t) continue;
      for (const Channel& c : dsn_route_channels_extended(d, router.route(s, t))) {
        switch (c.cls) {
          case kClassUp: saw_up = true; break;
          case kClassMain: saw_main = true; break;
          case kClassFinish: saw_finish = true; break;
          case kClassExtra: saw_extra = true; break;
          default: FAIL() << "unknown class";
        }
      }
    }
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_finish);
  EXPECT_TRUE(saw_extra);
}

TEST(DsnCdg, DsnDExpressRoutingAlsoDeadlockFree) {
  // Extension result the paper defers to future work: the DSN-D express
  // routing, with express hops riding their phase's channel class, keeps the
  // CDG acyclic (express links only shorten the monotone local walks).
  for (const std::uint32_t n : {64u, 100u, 128u}) {
    const DsnD dd(n, 2);
    ChannelDependencyGraph cdg;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        cdg.add_route(dsn_route_channels_extended(dd.base(), route_dsn_d(dd, s, t)));
      }
    }
    EXPECT_TRUE(cdg.is_acyclic()) << "n = " << n;
  }
}

// --------------------------------------------------------------------------
// up*/down* escape layer.
// --------------------------------------------------------------------------

class UpDownCdgTest : public ::testing::TestWithParam<std::string> {};

TEST_P(UpDownCdgTest, UpDownIsDeadlockFree) {
  const Topology topo = make_topology_by_name(GetParam(), 64, 5);
  const UpDownRouting ud(topo.graph, 0);
  const auto cdg = build_updown_cdg(ud);
  EXPECT_TRUE(cdg.is_acyclic()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, UpDownCdgTest,
                         ::testing::Values("dsn", "torus", "random", "ring",
                                           "random-regular"));

}  // namespace
}  // namespace dsn
