// Channel-dependency-graph tests: the Theorem 3 deadlock-freedom claim for
// the extended DSN routing (positive), the basic scheme as a negative
// control, acyclicity of up*/down*, and unit tests of the CDG container.
#include <gtest/gtest.h>

#include <algorithm>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/cdg.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/updown.hpp"

namespace dsn {
namespace {

TEST(Cdg, EmptyIsAcyclic) {
  ChannelDependencyGraph cdg;
  EXPECT_TRUE(cdg.is_acyclic());
  EXPECT_EQ(cdg.num_channels(), 0u);
}

TEST(Cdg, SimpleChainIsAcyclic) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}, {2, 3, 0}});
  EXPECT_TRUE(cdg.is_acyclic());
  EXPECT_EQ(cdg.num_channels(), 3u);
  EXPECT_EQ(cdg.num_dependencies(), 2u);
}

TEST(Cdg, TriangleOfRoutesIsCyclic) {
  // Three two-hop routes around a 3-cycle create the classic deadlock cycle.
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{1, 2, 0}, {2, 0, 0}});
  cdg.add_route({{2, 0, 0}, {0, 1, 0}});
  EXPECT_FALSE(cdg.is_acyclic());
  const auto cycle = cdg.find_cycle();
  EXPECT_GE(cycle.size(), 3u);
}

TEST(Cdg, ChannelClassesSeparateDependencies) {
  // The same physical cycle split across two classes has no cycle.
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{1, 2, 0}, {2, 0, 1}});  // breaks into class 1
  cdg.add_route({{2, 0, 1}, {0, 1, 1}});
  EXPECT_TRUE(cdg.is_acyclic());
}

TEST(Cdg, DuplicateDependenciesCollapsed) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  EXPECT_EQ(cdg.num_dependencies(), 1u);
}

TEST(Cdg, UseCountsAccumulatePerTraversal) {
  // Dependencies dedupe, but use counts (the static channel load) must keep
  // counting every traversal.
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{1, 2, 0}, {2, 3, 0}});
  ASSERT_EQ(cdg.num_channels(), 3u);
  const auto& channels = cdg.channels();
  const auto& counts = cdg.use_counts();
  ASSERT_EQ(counts.size(), channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    std::uint64_t expected = 0;
    if (channels[i] == Channel{0, 1, 0}) expected = 2;
    if (channels[i] == Channel{1, 2, 0}) expected = 3;
    if (channels[i] == Channel{2, 3, 0}) expected = 1;
    EXPECT_EQ(counts[i], expected) << "channel " << channels[i].from << "->" << channels[i].to;
  }
}

TEST(Cdg, HasDependencyReflectsRecordedEdgesOnly) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}, {2, 3, 0}});
  EXPECT_TRUE(cdg.has_dependency({0, 1, 0}, {1, 2, 0}));
  EXPECT_TRUE(cdg.has_dependency({1, 2, 0}, {2, 3, 0}));
  EXPECT_FALSE(cdg.has_dependency({0, 1, 0}, {2, 3, 0}));  // not consecutive
  EXPECT_FALSE(cdg.has_dependency({1, 2, 0}, {0, 1, 0}));  // wrong direction
  EXPECT_FALSE(cdg.has_dependency({9, 8, 0}, {8, 7, 0}));  // unknown channels
  EXPECT_FALSE(cdg.has_dependency({0, 1, 1}, {1, 2, 1}));  // wrong class
}

TEST(Cdg, MergeReindexesDedupesAndAddsLoads) {
  // Two shards sharing a channel: the merge must re-index, collapse the
  // duplicate dependency, and sum the shared channel's load.
  ChannelDependencyGraph a;
  a.add_route({{0, 1, 0}, {1, 2, 0}});
  ChannelDependencyGraph b;
  b.add_route({{0, 1, 0}, {1, 2, 0}});  // duplicate of a's route
  b.add_route({{1, 2, 0}, {2, 3, 0}});  // new channel + dependency
  a.merge(b);
  EXPECT_EQ(a.num_channels(), 3u);
  EXPECT_EQ(a.num_dependencies(), 2u);
  EXPECT_TRUE(a.has_dependency({0, 1, 0}, {1, 2, 0}));
  EXPECT_TRUE(a.has_dependency({1, 2, 0}, {2, 3, 0}));
  std::uint64_t total = 0;
  for (const std::uint64_t c : a.use_counts()) total += c;
  EXPECT_EQ(total, 2u + 2u + 2u);  // 0->1 twice, 1->2 three times, 2->3 once
}

TEST(Cdg, MergeMatchesSingleGraphBuild) {
  // Sharded build + merge must agree with a monolithic build on every
  // observable: channel set, dependency count, per-channel loads, acyclicity.
  const Dsn d(96, 2);
  DsnRouter router(d);
  ChannelDependencyGraph mono, left, right;
  for (NodeId s = 0; s < d.n(); ++s) {
    for (NodeId t = 0; t < d.n(); ++t) {
      if (s == t) continue;
      const auto channels = dsn_route_channels_extended(d, router.route(s, t));
      mono.add_route(channels);
      (s < d.n() / 2 ? left : right).add_route(channels);
    }
  }
  left.merge(right);
  ASSERT_EQ(left.num_channels(), mono.num_channels());
  EXPECT_EQ(left.num_dependencies(), mono.num_dependencies());
  EXPECT_EQ(left.is_acyclic(), mono.is_acyclic());
  // Loads agree channel by channel (indices may differ between the builds).
  for (std::size_t i = 0; i < mono.channels().size(); ++i) {
    const Channel& c = mono.channels()[i];
    const auto& lc = left.channels();
    const auto it = std::find(lc.begin(), lc.end(), c);
    ASSERT_NE(it, lc.end());
    EXPECT_EQ(left.use_counts()[static_cast<std::size_t>(it - lc.begin())],
              mono.use_counts()[i]);
  }
}

TEST(Cdg, FindShortestCycleReturnsMinimalWitness) {
  // A 2-cycle buried alongside a long 5-cycle: the shortest-cycle search must
  // return the 2-cycle, and its edges must all be real dependencies.
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 0, 0}, {0, 1, 0}});  // 2-cycle a <-> b
  cdg.add_route({{2, 3, 0}, {3, 4, 0}});
  cdg.add_route({{3, 4, 0}, {4, 5, 0}});
  cdg.add_route({{4, 5, 0}, {5, 6, 0}});
  cdg.add_route({{5, 6, 0}, {6, 2, 0}});
  cdg.add_route({{6, 2, 0}, {2, 3, 0}});
  ASSERT_FALSE(cdg.is_acyclic());
  const auto cycle = cdg.find_shortest_cycle();
  ASSERT_EQ(cycle.size(), 2u);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_TRUE(cdg.has_dependency(cycle[i], cycle[(i + 1) % cycle.size()]));
  }
}

TEST(Cdg, FindShortestCycleWorkCapFallsBackToDfs) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.add_route({{1, 2, 0}, {2, 0, 0}});
  cdg.add_route({{2, 0, 0}, {0, 1, 0}});
  // Work cap 0 forces the DFS fallback; the witness must still be a cycle.
  const auto cycle = cdg.find_shortest_cycle(/*work_cap=*/0);
  ASSERT_GE(cycle.size(), 2u);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_TRUE(cdg.has_dependency(cycle[i], cycle[(i + 1) % cycle.size()]));
  }
}

TEST(Cdg, ReserveDoesNotDisturbContents) {
  ChannelDependencyGraph cdg;
  cdg.add_route({{0, 1, 0}, {1, 2, 0}});
  cdg.reserve(4096);
  cdg.add_route({{1, 2, 0}, {2, 0, 0}});
  EXPECT_EQ(cdg.num_channels(), 3u);
  EXPECT_TRUE(cdg.has_dependency({0, 1, 0}, {1, 2, 0}));
  EXPECT_TRUE(cdg.has_dependency({1, 2, 0}, {2, 0, 0}));
}

TEST(Cdg, IndexSurvivesRehashGrowth) {
  // Insert enough distinct channels to force several probe-table growths,
  // then verify every channel still resolves (lookups after rehash).
  ChannelDependencyGraph cdg;
  for (NodeId i = 0; i < 5000; ++i) {
    cdg.add_route({{i, i + 1, 0}, {i + 1, i + 2, 0}});
  }
  EXPECT_EQ(cdg.num_channels(), 5001u);
  EXPECT_TRUE(cdg.has_dependency({0, 1, 0}, {1, 2, 0}));
  EXPECT_TRUE(cdg.has_dependency({4999, 5000, 0}, {5000, 5001, 0}));
  EXPECT_FALSE(cdg.has_dependency({5000, 5001, 0}, {4999, 5000, 0}));
}

// --------------------------------------------------------------------------
// Theorem 3 and the negative control, across sizes.
// --------------------------------------------------------------------------

class DsnCdgTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DsnCdgTest, ExtendedSchemeIsDeadlockFree) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto cdg = build_dsn_cdg(d, /*extended=*/true);
  EXPECT_TRUE(cdg.is_acyclic()) << "n = " << n;
}

TEST_P(DsnCdgTest, BasicSchemeHasCycles) {
  const std::uint32_t n = GetParam();
  const Dsn d(n, dsn_default_x(n));
  const auto cdg = build_dsn_cdg(d, /*extended=*/false);
  EXPECT_FALSE(cdg.is_acyclic()) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, DsnCdgTest, ::testing::Values(32u, 64u, 100u, 128u));

TEST(DsnCdg, ExtendedDeadlockFreeWithNearestPrework) {
  // The Fact 3 PRE-WORK variant walks succ links in PRE-WORK as well; the
  // class separation must still hold.
  const Dsn d(64, dsn_default_x(64));
  const auto cdg = build_dsn_cdg(d, /*extended=*/true, /*nearest_prework=*/true);
  EXPECT_TRUE(cdg.is_acyclic());
}

TEST(DsnCdg, ChannelMappingUsesExpectedClasses) {
  const Dsn d(64, dsn_default_x(64));
  DsnRouter router(d);
  bool saw_up = false, saw_main = false, saw_finish = false, saw_extra = false;
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId t = 0; t < 64; ++t) {
      if (s == t) continue;
      for (const Channel& c : dsn_route_channels_extended(d, router.route(s, t))) {
        switch (c.cls) {
          case kClassUp: saw_up = true; break;
          case kClassMain: saw_main = true; break;
          case kClassFinish: saw_finish = true; break;
          case kClassExtra: saw_extra = true; break;
          default: FAIL() << "unknown class";
        }
      }
    }
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_finish);
  EXPECT_TRUE(saw_extra);
}

TEST(DsnCdg, DsnDExpressRoutingAlsoDeadlockFree) {
  // Extension result the paper defers to future work: the DSN-D express
  // routing, with express hops riding their phase's channel class, keeps the
  // CDG acyclic (express links only shorten the monotone local walks).
  for (const std::uint32_t n : {64u, 100u, 128u}) {
    const DsnD dd(n, 2);
    ChannelDependencyGraph cdg;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        if (s == t) continue;
        cdg.add_route(dsn_route_channels_extended(dd.base(), route_dsn_d(dd, s, t)));
      }
    }
    EXPECT_TRUE(cdg.is_acyclic()) << "n = " << n;
  }
}

// --------------------------------------------------------------------------
// up*/down* escape layer.
// --------------------------------------------------------------------------

class UpDownCdgTest : public ::testing::TestWithParam<std::string> {};

TEST_P(UpDownCdgTest, UpDownIsDeadlockFree) {
  const Topology topo = make_topology_by_name(GetParam(), 64, 5);
  const UpDownRouting ud(topo.graph, 0);
  const auto cdg = build_updown_cdg(ud);
  EXPECT_TRUE(cdg.is_acyclic()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, UpDownCdgTest,
                         ::testing::Values("dsn", "torus", "random", "ring",
                                           "random-regular"));

}  // namespace
}  // namespace dsn
