// Compiled with DSN_OBS=0 (see tests/CMakeLists.txt): proves the
// instrumentation macros strip to nothing in disabled builds — zero storage,
// zero registrations, zero side effects — while the dsn::obs library itself
// still links (call sites vary, types don't, so mixed builds stay ODR-clean).
#include <gtest/gtest.h>

#include <cstdint>

#include "dsn/obs/obs.hpp"

static_assert(DSN_OBS == 0, "this binary must be built with -DDSN_OBS=0");

namespace {

// Registration macros collapse to a constexpr invalid id.
static_assert(!(DSN_OBS_COUNTER("noop.counter")).valid());
static_assert(!(DSN_OBS_GAUGE("noop.gauge")).valid());
static_assert(!(DSN_OBS_HISTOGRAM("noop.hist", {1, 2, 3})).valid());

// DSN_OBS_ONLY strips its argument entirely: a struct whose only member is
// instrumentation state is empty in a disabled build.
struct InstrumentedOnly {
  DSN_OBS_ONLY(std::uint64_t per_level_count = 0;)
};
struct Payload {
  std::uint64_t hops = 0;
  DSN_OBS_ONLY(std::uint64_t hop_counter_cache = 0;)
};
static_assert(sizeof(InstrumentedOnly) == 1, "instrumentation-only struct must be empty");
static_assert(sizeof(Payload) == sizeof(std::uint64_t),
              "DSN_OBS_ONLY members must vanish from disabled builds");

TEST(ObsNoop, UpdateMacrosHaveNoObservableEffect) {
  auto& registry = dsn::obs::MetricsRegistry::global();
  const std::size_t metrics_before = registry.num_metrics();

  // [[maybe_unused]] because the update macros below discard their arguments
  // unevaluated in a disabled build — the ids really are dead.
  [[maybe_unused]] static const auto kCounter = DSN_OBS_COUNTER("noop.test.counter");
  [[maybe_unused]] static const auto kGauge = DSN_OBS_GAUGE("noop.test.gauge");
  [[maybe_unused]] static const auto kHist = DSN_OBS_HISTOGRAM("noop.test.hist", {16, 64});
  dsn::obs::set_metrics_enabled(true);
  DSN_OBS_ADD(kCounter, 17);
  DSN_OBS_GAUGE_SET(kGauge, 3);
  DSN_OBS_OBSERVE(kHist, 100);
  { DSN_OBS_SPAN("noop.span"); }
  { DSN_OBS_TIMER(kCounter); }

  // Nothing registered, nothing counted: the macros never touched the
  // registry, even with the runtime switch forced on.
  EXPECT_EQ(registry.num_metrics(), metrics_before);
  EXPECT_EQ(registry.snapshot().find("noop.test.counter"), nullptr);
}

TEST(ObsNoop, LibraryTypesStillLinkAndWork) {
  // The obs library is compiled unconditionally; only macro call sites are
  // stripped. Direct use keeps working so tools can opt in explicitly.
  dsn::obs::MetricsRegistry registry;
  const auto id = registry.counter("noop.direct");
  registry.add(id, 2);
  const auto snap = registry.snapshot();
  ASSERT_NE(snap.find("noop.direct"), nullptr);
  EXPECT_EQ(snap.find("noop.direct")->value, 2u);
}

}  // namespace
