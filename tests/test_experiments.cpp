// Integration tests asserting the paper's headline relations (Figures 7-9
// shapes) through the experiment-runner layer, plus factory coverage.
#include <gtest/gtest.h>

#include <cmath>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"

namespace dsn {
namespace {

TEST(Factory, AllFamiliesBuild) {
  for (const std::string name : {"dsn", "torus", "torus3d", "random", "ring", "dln",
                                 "random-regular", "dsn-d", "dsn-e"}) {
    const Topology t = make_topology_by_name(name, 64);
    EXPECT_EQ(t.num_nodes(), 64u) << name;
  }
  EXPECT_EQ(make_topology_by_name("kleinberg", 64).num_nodes(), 64u);
  EXPECT_THROW(make_topology_by_name("nope", 64), PreconditionError);
}

TEST(Factory, TrioOrder) {
  EXPECT_EQ(paper_topology_trio(),
            (std::vector<std::string>{"torus", "random", "dsn"}));
}

// --------------------------------------------------------------------------
// Figure 7/8: DSN vs torus vs RANDOM orderings at every evaluated size.
// --------------------------------------------------------------------------

class FigureShapeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FigureShapeTest, Fig7DiameterOrdering) {
  const std::uint32_t n = GetParam();
  const auto torus = evaluate_topology(make_topology_by_name("torus", n));
  const auto random = evaluate_topology(make_topology_by_name("random", n, 1));
  const auto dsn = evaluate_topology(make_topology_by_name("dsn", n));
  // RANDOM <= DSN < torus once the torus grid outgrows log n (n >= 128).
  EXPECT_LE(random.diameter, dsn.diameter) << n;
  if (n >= 128) {
    EXPECT_LT(dsn.diameter, torus.diameter) << n;
  }
}

TEST_P(FigureShapeTest, Fig8AsplOrdering) {
  const std::uint32_t n = GetParam();
  const auto torus = evaluate_topology(make_topology_by_name("torus", n));
  const auto random = evaluate_topology(make_topology_by_name("random", n, 1));
  const auto dsn = evaluate_topology(make_topology_by_name("dsn", n));
  EXPECT_LE(random.aspl, dsn.aspl) << n;
  if (n >= 128) {
    EXPECT_LT(dsn.aspl, torus.aspl) << n;
  }
}

TEST_P(FigureShapeTest, Fig9CableOrdering) {
  const std::uint32_t n = GetParam();
  const auto random = evaluate_topology(make_topology_by_name("random", n, 1));
  const auto dsn = evaluate_topology(make_topology_by_name("dsn", n));
  EXPECT_LT(dsn.avg_cable_m, random.avg_cable_m) << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FigureShapeTest,
                         ::testing::Values(64u, 128u, 256u, 512u, 1024u));

TEST(FigureShape, Fig7TorusImprovementUpTo67Percent) {
  // Paper: DSN improves diameter over torus by up to 67% across the sweep.
  double best = 0;
  for (const std::uint32_t n : {512u, 1024u, 2048u}) {
    const auto torus = evaluate_topology(make_topology_by_name("torus", n));
    const auto dsn = evaluate_topology(make_topology_by_name("dsn", n));
    best = std::max(best, 1.0 - static_cast<double>(dsn.diameter) / torus.diameter);
  }
  EXPECT_GT(best, 0.6);
}

TEST(FigureShape, Fig8AsplImprovementUpTo55Percent) {
  double best = 0;
  for (const std::uint32_t n : {512u, 1024u, 2048u}) {
    const auto torus = evaluate_topology(make_topology_by_name("torus", n));
    const auto dsn = evaluate_topology(make_topology_by_name("dsn", n));
    best = std::max(best, 1.0 - dsn.aspl / torus.aspl);
  }
  EXPECT_GT(best, 0.5);
}

TEST(FigureShape, Fig9RandomCableGrowsFasterThanDsn) {
  // The RANDOM/DSN cable ratio must increase with n (RANDOM pays ~diameter
  // of the floor, DSN pays ~torus-like lengths).
  const auto at = [](std::uint32_t n) {
    const auto random = evaluate_topology(make_topology_by_name("random", n, 1));
    const auto dsn = evaluate_topology(make_topology_by_name("dsn", n));
    return random.avg_cable_m / dsn.avg_cable_m;
  };
  EXPECT_GT(at(2048), at(128));
}

TEST(FigureShape, Fig9DsnReductionVsRandomReaches25Percent) {
  // Paper reports up to 38% shorter cable than RANDOM; require a robust
  // fraction of that at the largest size (exact value depends on seeds).
  const auto random = evaluate_topology(make_topology_by_name("random", 2048, 1));
  const auto dsn = evaluate_topology(make_topology_by_name("dsn", 2048));
  EXPECT_GT(1.0 - dsn.avg_cable_m / random.avg_cable_m, 0.25);
}

TEST(GraphSweep, RunsAllSizes) {
  const auto points = run_graph_sweep("dsn", {32, 64, 128});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].n, 32u);
  EXPECT_EQ(points[2].n, 128u);
  EXPECT_LE(points[0].diameter, points[2].diameter);
}

TEST(LinkLoadStats, Formulae) {
  const auto s = summarize_link_loads({2, 4, 6});
  EXPECT_DOUBLE_EQ(s.mean_flits, 4.0);
  EXPECT_DOUBLE_EQ(s.max_flits, 6.0);
  EXPECT_DOUBLE_EQ(s.max_over_mean, 1.5);
  EXPECT_NEAR(s.coefficient_of_variation, std::sqrt(8.0 / 3.0) / 4.0, 1e-12);
  const auto empty = summarize_link_loads({});
  EXPECT_DOUBLE_EQ(empty.mean_flits, 0.0);
}

// --------------------------------------------------------------------------
// Figure 10 (small-scale): at low load DSN's latency sits between RANDOM's
// and the torus's, tracking average shortest path length.
// --------------------------------------------------------------------------

TEST(Fig10Shape, LatencyOrderingAtLowLoad) {
  SimConfig sim;
  sim.warmup_cycles = 2'000;
  sim.measure_cycles = 6'000;
  sim.drain_cycles = 40'000;

  LatencySweepConfig sweep;
  sweep.offered_gbps = {2.0};
  sweep.sim = sim;

  const auto run = [&](const std::string& family) {
    const Topology topo = make_topology_by_name(family, 64, 1);
    const auto pts = run_latency_sweep(topo, sweep);
    EXPECT_TRUE(pts[0].drained) << family;
    EXPECT_FALSE(pts[0].deadlock) << family;
    return pts[0].avg_latency_ns;
  };

  const double torus = run("torus");
  const double random = run("random");
  const double dsn = run("dsn");
  EXPECT_LT(dsn, torus);           // the paper's headline: DSN beats torus
  EXPECT_LT(random, 1.15 * dsn);   // and sits near RANDOM
  EXPECT_GT(dsn, 0.8 * random);
}

}  // namespace
}  // namespace dsn
