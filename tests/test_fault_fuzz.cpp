// Randomized fault drills: sweep (n, schedule, seed) combinations and assert
// the two properties the recovery layer guarantees for every schedule —
// packet conservation (injected == delivered + dropped + in-flight at drain)
// and no deadlock/livelock. Single-link failures on DSN-E must additionally
// always reconnect (the parallel Up/Down ring links keep the graph
// connected), so every measured packet is eventually delivered.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn {
namespace {

SimConfig fuzz_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1'000;
  cfg.drain_cycles = 50'000;
  cfg.offered_gbps_per_host = 1.0;
  cfg.seed = seed;
  return cfg;
}

void expect_conserved(const SimResult& res, const char* what) {
  EXPECT_FALSE(res.deadlock) << what;
  EXPECT_TRUE(res.conservation_ok) << what;
  EXPECT_EQ(res.packets_generated_total,
            res.packets_delivered_total + res.packets_dropped +
                res.packets_in_flight_at_end)
      << what;
}

TEST(FaultFuzz, SingleLinkFailuresOnDsnEAlwaysReconnect) {
  // Any one link of DSN-E leaves the graph connected, so a drill that downs a
  // random link (sometimes healing it later) must always fully drain with
  // zero unaccounted packets.
  for (const std::uint32_t n : {24u, 48u}) {
    const Topology topo = make_topology_by_name("dsn-e", n);
    SimRouting routing(topo);
    AdaptiveUpDownPolicy policy(routing, 4);
    UniformTraffic traffic(n * 4);

    for (std::uint64_t trial = 0; trial < 6; ++trial) {
      Rng rng(0xfa017 + trial * 131 + n);
      const LinkId victim =
          static_cast<LinkId>(rng.next_below(topo.graph.num_links()));
      // Keep the failure inside the generation window so it always applies
      // while traffic is flowing.
      const std::uint64_t down_at = 100 + rng.next_below(800);
      FaultSchedule schedule;
      schedule.link_down(down_at, victim);
      if (rng.bernoulli(0.5)) schedule.link_up(down_at + 500, victim);

      Simulator sim(topo, policy, traffic, fuzz_config(trial + 1));
      sim.set_fault_schedule(schedule);
      const SimResult res = sim.run();

      expect_conserved(res, "dsn-e single link");
      EXPECT_TRUE(res.drained) << "n=" << n << " trial=" << trial;
      EXPECT_EQ(res.packets_delivered, res.packets_measured)
          << "n=" << n << " trial=" << trial << " link=" << victim;
      ASSERT_FALSE(res.fault_log.empty());
      EXPECT_TRUE(res.fault_log[0].reconnected)
          << "n=" << n << " trial=" << trial << " link=" << victim;
      EXPECT_EQ(res.packets_in_flight_at_end, 0u);
    }
  }
}

TEST(FaultFuzz, RandomFlapSchedulesConservePackets) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const FaultSchedule schedule =
        make_link_flap_schedule(topo, 0.01, 400, 1'200, 6'000, seed);
    SimConfig cfg = fuzz_config(seed);
    // Overlapping flaps can transiently disconnect the graph; the TTL guard
    // converts stranded packets into accounted drops.
    cfg.packet_ttl_cycles = 5'000;
    Simulator sim(topo, policy, traffic, cfg);
    sim.set_fault_schedule(schedule);
    const SimResult res = sim.run();
    expect_conserved(res, "flap schedule");
    EXPECT_TRUE(res.drained) << "seed=" << seed;
  }
}

TEST(FaultFuzz, RandomSwitchHaltsConservePackets) {
  const Topology topo = make_topology_by_name("dsn-e", 24);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(24 * 4);

  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    Rng rng(0x5a170 + trial);
    const NodeId victim = static_cast<NodeId>(rng.next_below(24));
    const std::uint64_t down_at = 200 + rng.next_below(1'000);
    FaultSchedule schedule;
    schedule.switch_down(down_at, victim);
    if (rng.bernoulli(0.5)) schedule.switch_up(down_at + 2'000, victim);

    SimConfig cfg = fuzz_config(trial + 100);
    cfg.packet_ttl_cycles = 4'000;  // traffic to a halted switch must age out
    Simulator sim(topo, policy, traffic, cfg);
    sim.set_fault_schedule(schedule);
    const SimResult res = sim.run();
    expect_conserved(res, "switch halt");
    EXPECT_TRUE(res.drained) << "trial=" << trial << " switch=" << victim;
  }
}

TEST(FaultFuzz, NoFaultScheduleMatchesBaselineCounters) {
  // An armed but empty schedule must not perturb the simulation.
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);

  const SimResult base = run_simulation(topo, policy, traffic, fuzz_config(9));
  Simulator sim(topo, policy, traffic, fuzz_config(9));
  sim.set_fault_schedule(FaultSchedule{});
  const SimResult armed = sim.run();

  EXPECT_EQ(base.packets_delivered, armed.packets_delivered);
  EXPECT_DOUBLE_EQ(base.avg_latency_ns, armed.avg_latency_ns);
  EXPECT_TRUE(armed.conservation_ok);
  EXPECT_TRUE(armed.fault_log.empty());
}

}  // namespace
}  // namespace dsn
