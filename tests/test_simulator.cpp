// Cycle-accurate simulator tests: conservation (all measured packets are
// delivered), latency sanity against analytic zero-load expectations,
// determinism, saturation behaviour, and deadlock-freedom of every routing
// policy under stress.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {
namespace {

SimConfig quick_config(double offered_gbps) {
  SimConfig cfg;
  cfg.warmup_cycles = 3'000;
  cfg.measure_cycles = 8'000;
  cfg.drain_cycles = 60'000;
  cfg.offered_gbps_per_host = offered_gbps;
  return cfg;
}

TEST(Simulator, ZeroLoadLatencyMatchesAnalyticModel) {
  const Topology topo = make_topology_by_name("dsn", 64);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(64 * 4);
  SimConfig cfg = quick_config(0.5);  // far below saturation
  const SimResult res = run_simulation(topo, policy, traffic, cfg);

  ASSERT_TRUE(res.drained);
  ASSERT_FALSE(res.deadlock);
  ASSERT_GT(res.packets_measured, 100u);
  EXPECT_EQ(res.packets_delivered, res.packets_measured);

  // Zero-load analytic estimate: per switch traversal ~router_delay, per link
  // ~link_delay (injection + hops + ejection), plus packet serialization.
  const double cyc = cfg.cycle_ns();
  const double hops = res.avg_hops;
  const double expected =
      (hops + 1) * static_cast<double>(cfg.router_delay_cycles()) * cyc +
      (hops + 2) * static_cast<double>(cfg.link_delay_cycles()) * cyc +
      cfg.packet_flits * cyc;
  EXPECT_GT(res.avg_latency_ns, 0.5 * expected);
  EXPECT_LT(res.avg_latency_ns, 1.5 * expected);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(16 * 4);
  const SimConfig cfg = quick_config(2.0);
  const SimResult a = run_simulation(topo, policy, traffic, cfg);
  const SimResult b = run_simulation(topo, policy, traffic, cfg);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_DOUBLE_EQ(a.accepted_gbps_per_host, b.accepted_gbps_per_host);
}

TEST(Simulator, AcceptedTracksOfferedBelowSaturation) {
  const Topology topo = make_topology_by_name("dsn", 64);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(64 * 4);
  const SimResult res = run_simulation(topo, policy, traffic, quick_config(2.0));
  ASSERT_TRUE(res.drained);
  EXPECT_NEAR(res.accepted_gbps_per_host, 2.0, 0.4);
}

TEST(Simulator, DsnCustomPolicyDeliversEverything) {
  const std::uint32_t n = 64;
  const Topology topo = make_topology_by_name("dsn", n);
  Dsn dsn_struct(n, dsn_default_x(n));
  DsnCustomPolicy policy(dsn_struct);
  UniformTraffic traffic(n * 4);
  SimConfig cfg = quick_config(1.5);
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  ASSERT_FALSE(res.deadlock);
  ASSERT_TRUE(res.drained);
  EXPECT_EQ(res.packets_delivered, res.packets_measured);
}

TEST(Simulator, UpDownOnlyPolicyDeliversEverything) {
  const Topology topo = make_topology_by_name("random", 32, 7);
  SimRouting routing(topo);
  UpDownOnlyPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  const SimResult res = run_simulation(topo, policy, traffic, quick_config(1.0));
  ASSERT_FALSE(res.deadlock);
  ASSERT_TRUE(res.drained);
}

TEST(Simulator, SaturationReportsAcceptedBelowOffered) {
  const Topology topo = make_topology_by_name("ring", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(16 * 4);
  // A 16-ring with 4 hosts/switch cannot carry 20 Gbps/host uniform traffic.
  SimConfig cfg = quick_config(20.0);
  cfg.drain_cycles = 20'000;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);
  EXPECT_LT(res.accepted_gbps_per_host, 19.0);
}

TEST(Simulator, HighLoadStressNoDeadlockAdaptive) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  SimConfig cfg = quick_config(50.0);  // way past saturation
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  cfg.drain_cycles = 10'000;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);  // escape layer must keep packets draining
}

TEST(Simulator, HighLoadStressNoDeadlockCustom) {
  const std::uint32_t n = 64;
  Dsn dsn_struct(n, dsn_default_x(n));
  DsnCustomPolicy policy(dsn_struct);
  UniformTraffic traffic(n * 4);
  SimConfig cfg = quick_config(50.0);
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 5'000;
  cfg.drain_cycles = 10'000;
  const SimResult res = run_simulation(dsn_struct.topology(), policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);
}

TEST(Simulator, BitReversalTrafficRuns) {
  const Topology topo = make_topology_by_name("torus", 64);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  BitReversalTraffic traffic(64 * 4);
  const SimResult res = run_simulation(topo, policy, traffic, quick_config(1.0));
  ASSERT_TRUE(res.drained);
}

TEST(Simulator, NeighboringTrafficLowerLatencyThanUniformOnTorus) {
  const Topology topo = make_topology_by_name("torus", 64);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  NeighboringTraffic nbr(64 * 4);
  UniformTraffic uni(64 * 4);
  const SimResult rn = run_simulation(topo, policy, nbr, quick_config(1.0));
  const SimResult ru = run_simulation(topo, policy, uni, quick_config(1.0));
  ASSERT_TRUE(rn.drained);
  ASSERT_TRUE(ru.drained);
  // 90% of neighboring packets travel very few hops.
  EXPECT_LT(rn.avg_hops, ru.avg_hops);
}

TEST(Simulator, LinkFlitCountsAreRecorded) {
  const Topology topo = make_topology_by_name("dsn", 32);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic traffic(32 * 4);
  Simulator sim(topo, policy, traffic, quick_config(2.0));
  const SimResult res = sim.run();
  ASSERT_TRUE(res.drained);
  std::uint64_t total = 0;
  for (const auto v : sim.link_flit_counts()) total += v;
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace dsn
