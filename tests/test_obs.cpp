// dsn::obs contract tests: deterministic shard merging across thread counts,
// histogram bucket edges, gauge last/max semantics, idempotent registration,
// and B/E balance of emitted Chrome traces. The DSN_OBS=0 compile-out
// contract lives in test_obs_noop.cpp (built as its own binary with the
// macros stripped).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dsn/common/error.hpp"
#include "dsn/obs/obs.hpp"

namespace {

/// Run `adds` counter increments and one histogram observation per worker on
/// a fresh registry, split across `nthreads` threads, and return the merged
/// snapshot. Totals must not depend on the split.
dsn::obs::Snapshot run_sharded(std::size_t nthreads, std::uint64_t adds_per_thread) {
  dsn::obs::MetricsRegistry registry;
  const auto ops = registry.counter("test.ops");
  const auto hist = registry.histogram("test.latency", {10, 100, 1000});
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < adds_per_thread; ++i) registry.add(ops, 1);
      registry.observe(hist, 5 * (t + 1));
    });
  }
  for (auto& th : threads) th.join();
  return registry.snapshot();
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(Obs, CounterMergeIsDeterministicAcrossThreadCounts) {
  for (const std::size_t nthreads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const auto snap = run_sharded(nthreads, 10'000);
    const auto* ops = snap.find("test.ops");
    ASSERT_NE(ops, nullptr) << nthreads << " threads";
    EXPECT_EQ(ops->kind, dsn::obs::MetricKind::kCounter);
    EXPECT_EQ(ops->value, 10'000 * nthreads) << nthreads << " threads";
    const auto* hist = snap.find("test.latency");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->hist_count, nthreads);
  }
}

TEST(Obs, SnapshotIsStableWhenNothingChanges) {
  dsn::obs::MetricsRegistry registry;
  const auto ops = registry.counter("test.ops");
  registry.add(ops, 42);
  const auto a = registry.snapshot();
  const auto b = registry.snapshot();
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
    EXPECT_EQ(a.metrics[i].value, b.metrics[i].value);
  }
}

TEST(Obs, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  dsn::obs::MetricsRegistry registry;
  const auto hist = registry.histogram("test.h", {10, 20, 30});
  // One value on each side of every edge, plus deep overflow.
  for (const std::uint64_t v : {5u, 10u, 11u, 20u, 21u, 30u, 31u, 1000u})
    registry.observe(hist, v);
  const auto snap = registry.snapshot();
  const auto* h = snap.find("test.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, dsn::obs::MetricKind::kHistogram);
  EXPECT_EQ(h->bounds, (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(h->bucket_counts, (std::vector<std::uint64_t>{2, 2, 2, 2}));
  EXPECT_EQ(h->hist_count, 8u);
  EXPECT_EQ(h->hist_sum, 5u + 10 + 11 + 20 + 21 + 30 + 31 + 1000);
}

TEST(Obs, GaugeKeepsLastValueAndMax) {
  dsn::obs::MetricsRegistry registry;
  const auto depth = registry.gauge("test.depth");
  registry.gauge_set(depth, 5);
  registry.gauge_set(depth, 12);
  registry.gauge_set(depth, 3);
  const auto snap = registry.snapshot();
  const auto* g = snap.find("test.depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge_value, 3);
  EXPECT_EQ(g->gauge_max, 12);
}

TEST(Obs, RegistrationIsIdempotentAndKindChecked) {
  dsn::obs::MetricsRegistry registry;
  const auto a = registry.counter("test.same");
  const auto b = registry.counter("test.same");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(registry.num_metrics(), 1u);
  EXPECT_THROW(registry.gauge("test.same"), dsn::PreconditionError);
  const auto h = registry.histogram("test.hist", {1, 2});
  EXPECT_EQ(registry.histogram("test.hist", {1, 2}).index, h.index);
  EXPECT_THROW(registry.histogram("test.hist", {1, 2, 3}), dsn::PreconditionError);
}

TEST(Obs, InvalidIdsAreIgnored) {
  dsn::obs::MetricsRegistry registry;
  registry.add(dsn::obs::MetricId{}, 99);
  registry.gauge_set(dsn::obs::MetricId{}, 99);
  registry.observe(dsn::obs::MetricId{}, 99);
  EXPECT_EQ(registry.snapshot().metrics.size(), 0u);
}

TEST(Obs, ResetZeroesValuesButKeepsNames) {
  dsn::obs::MetricsRegistry registry;
  const auto ops = registry.counter("test.ops");
  registry.add(ops, 7);
  registry.reset();
  const auto snap = registry.snapshot();
  const auto* m = snap.find("test.ops");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 0u);
  EXPECT_EQ(registry.counter("test.ops").index, ops.index);
}

TEST(Obs, TraceWriterBalancesNestedAndThreadedSpans) {
  dsn::obs::TraceWriter writer;
  writer.begin("outer");
  writer.begin("inner");
  writer.end("inner");
  writer.end("outer");
  std::thread worker([&] {
    writer.begin("worker-span");
    writer.end("worker-span");
  });
  worker.join();
  writer.counter("depth", 2.0);
  const std::string json = writer.to_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 1u);
  // Within one thread the B for a span precedes its E.
  EXPECT_LT(json.find("\"name\":\"outer\",\"ph\":\"B\""),
            json.find("\"name\":\"inner\",\"ph\":\"B\""));
  EXPECT_LT(json.find("\"name\":\"inner\",\"ph\":\"E\""),
            json.find("\"name\":\"outer\",\"ph\":\"E\""));
}

TEST(Obs, StartStopTraceWritesBalancedFile) {
  const std::string path = testing::TempDir() + "dsn_obs_trace_test.json";
  dsn::obs::start_trace();
  {
    // TracedSpan directly rather than DSN_OBS_SPAN so this contract also
    // holds when the suite is built with DSN_OBS=0 (macros stripped, types
    // still compiled).
    dsn::obs::TracedSpan alpha("alpha");
    dsn::obs::TracedSpan beta("beta");
  }
  ASSERT_TRUE(dsn::obs::stop_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 2u);
  // Spans destruct in reverse construction order, so beta closes first.
  EXPECT_LT(json.find("\"name\":\"beta\",\"ph\":\"E\""),
            json.find("\"name\":\"alpha\",\"ph\":\"E\""));
  std::remove(path.c_str());
  // A second stop without a start is a clean no-op.
  EXPECT_FALSE(dsn::obs::stop_trace(path));
}

TEST(Obs, ThreadRenameReplaysOnlyTheLastNamePerThread) {
  // Regression: set_current_thread_name used to append to the remembered
  // name list on every call, so a writer started after N renames replayed N
  // stale thread_name records for the same track (and the list grew without
  // bound). The remembered state must be last-wins per tid.
  const std::string path = testing::TempDir() + "dsn_obs_rename_replay.json";
  dsn::obs::set_current_thread_name("stale-name-one");
  dsn::obs::set_current_thread_name("stale-name-two");
  dsn::obs::set_current_thread_name("final-name");
  // The writer starts AFTER the renames, so every thread_name event it holds
  // for this thread came from the remembered-state replay.
  dsn::obs::start_trace();
  ASSERT_TRUE(dsn::obs::stop_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(count_occurrences(json, "stale-name-one"), 0u) << json;
  EXPECT_EQ(count_occurrences(json, "stale-name-two"), 0u) << json;
  EXPECT_EQ(count_occurrences(json, "\"final-name\""), 1u) << json;
  std::remove(path.c_str());
}

TEST(Obs, RenamesDuringStopTraceDoNotDeadlockOrCorrupt) {
  // Regression: stop_trace used to serialise the trace to disk while holding
  // the trace-state lock, so a rename (or start_trace) landing mid-write
  // blocked on file I/O. The detach now happens under the lock and the write
  // after it; renames racing the write must complete and the file must still
  // be well-formed JSON with balanced spans.
  const std::string path = testing::TempDir() + "dsn_obs_stop_race.json";
  dsn::obs::start_trace();
  { dsn::obs::TracedSpan span("before-stop"); }
  std::thread renamer([] {
    for (int i = 0; i < 100; ++i) dsn::obs::set_current_thread_name("renamer");
  });
  ASSERT_TRUE(dsn::obs::stop_trace(path));
  renamer.join();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Obs, SpanSurvivesStopTraceOfItsWriter) {
  const std::string path = testing::TempDir() + "dsn_obs_trace_detach.json";
  dsn::obs::start_trace();
  {
    dsn::obs::TracedSpan span("outlives-stop");
    ASSERT_TRUE(dsn::obs::stop_trace(path));
    // The span's E lands on the retired writer when this scope closes; it
    // must not crash even though the writer already serialised.
  }
  std::remove(path.c_str());
}

#if DSN_OBS
// Only meaningful when the macros are compiled in; the DSN_OBS=0 macro
// contract lives in test_obs_noop.cpp.
TEST(Obs, RuntimeSwitchGatesMacroUpdates) {
  const bool was_on = dsn::obs::metrics_on();
  static const auto kCounter = DSN_OBS_COUNTER("test.gated");
  dsn::obs::set_metrics_enabled(false);
  DSN_OBS_ADD(kCounter, 1);
  const auto before = dsn::obs::MetricsRegistry::global().snapshot();
  dsn::obs::set_metrics_enabled(true);
  DSN_OBS_ADD(kCounter, 1);
  const auto after = dsn::obs::MetricsRegistry::global().snapshot();
  dsn::obs::set_metrics_enabled(was_on);
  ASSERT_NE(after.find("test.gated"), nullptr);
  const auto* b = before.find("test.gated");
  EXPECT_EQ(after.find("test.gated")->value, (b != nullptr ? b->value : 0) + 1);
}
#endif  // DSN_OBS

}  // namespace
