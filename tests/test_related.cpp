// Tests for the §III related-work topologies: structural invariants and the
// paper's quoted diameter-and-degree figures.
#include <gtest/gtest.h>

#include "dsn/common/math.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/related.hpp"

namespace dsn {
namespace {

TEST(GeneralizedDeBruijn, PowerOfTwoMatchesClassic) {
  // GD(2^k, 2) is the binary De Bruijn graph: diameter k.
  const Topology t = make_generalized_de_bruijn(256, 2);
  const auto s = compute_path_stats(t.graph);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 8u);
  const auto deg = compute_degree_stats(t.graph);
  EXPECT_LE(deg.max_degree, 4u);
}

TEST(GeneralizedDeBruijn, PaperFigure12And4) {
  const Topology t = make_generalized_de_bruijn(3072, 2);
  const auto s = compute_path_stats(t.graph);
  const auto deg = compute_degree_stats(t.graph);
  EXPECT_EQ(s.diameter, 12u);  // paper: "12-and-4 for 3,072 vertices"
  EXPECT_LE(deg.max_degree, 4u);
}

TEST(GeneralizedDeBruijn, DiameterBoundHoldsAcrossSizes) {
  for (const std::uint32_t n : {100u, 500u, 1000u, 2000u}) {
    const Topology t = make_generalized_de_bruijn(n, 2);
    const auto s = compute_path_stats(t.graph);
    EXPECT_TRUE(s.connected) << n;
    EXPECT_LE(s.diameter, ilog2_ceil(n)) << n;
  }
}

TEST(GeneralizedKautz, PaperFigure11And4) {
  const Topology t = make_generalized_kautz(3072, 2);
  const auto s = compute_path_stats(t.graph);
  const auto deg = compute_degree_stats(t.graph);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 11u);  // paper: "Kautz has 11-and-4"
  EXPECT_LE(deg.max_degree, 4u);
}

TEST(GeneralizedKautz, OftenBeatsDeBruijn) {
  for (const std::uint32_t n : {384u, 768u, 1536u, 3072u}) {
    const auto db = compute_path_stats(make_generalized_de_bruijn(n, 2).graph);
    const auto kz = compute_path_stats(make_generalized_kautz(n, 2).graph);
    EXPECT_LE(kz.diameter, db.diameter) << n;
  }
}

TEST(Ccc, StructureAndConstantDegree) {
  const Topology t = make_cube_connected_cycles(4);
  EXPECT_EQ(t.num_nodes(), 4u * 16u);
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(t.graph.degree(v), 3u) << v;
  }
  EXPECT_TRUE(is_connected(t.graph));
}

TEST(Ccc, KnownDiameters) {
  // Diameter of CCC(k) = 2k + floor(k/2) - 2 for k >= 4 (Friš et al.).
  const auto s4 = compute_path_stats(make_cube_connected_cycles(4).graph);
  EXPECT_EQ(s4.diameter, 2u * 4 + 2 - 2);
  const auto s5 = compute_path_stats(make_cube_connected_cycles(5).graph);
  EXPECT_EQ(s5.diameter, 2u * 5 + 2 - 2);
  const auto s6 = compute_path_stats(make_cube_connected_cycles(6).graph);
  EXPECT_EQ(s6.diameter, 2u * 6 + 3 - 2);
}

TEST(Ccc, PaperFigureAt4608) {
  // Paper quotes "CCC has 23-and-3" for 4,608 vertices (k = 9). The exact
  // formula gives 2*9 + 4 - 2 = 20; we measure and pin the true value.
  const Topology t = make_cube_connected_cycles(9);
  EXPECT_EQ(t.num_nodes(), 4608u);
  const auto deg = compute_degree_stats(t.graph);
  EXPECT_EQ(deg.max_degree, 3u);
  const auto s = compute_path_stats(t.graph);
  EXPECT_GE(s.diameter, 20u);
  EXPECT_LE(s.diameter, 23u);
}

TEST(Related, RejectBadParams) {
  EXPECT_THROW(make_generalized_de_bruijn(2, 2), PreconditionError);
  EXPECT_THROW(make_generalized_de_bruijn(64, 1), PreconditionError);
  EXPECT_THROW(make_generalized_kautz(64, 1), PreconditionError);
  EXPECT_THROW(make_cube_connected_cycles(2), PreconditionError);
}

}  // namespace
}  // namespace dsn
