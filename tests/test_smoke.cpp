// Cross-module smoke test: build the paper trio at n = 64, check basic sanity.
#include <gtest/gtest.h>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"

namespace dsn {
namespace {

TEST(Smoke, PaperTrioAt64) {
  for (const auto& family : paper_topology_trio()) {
    const Topology topo = make_topology_by_name(family, 64);
    const GraphSweepPoint pt = evaluate_topology(topo);
    EXPECT_EQ(pt.n, 64u) << family;
    EXPECT_GT(pt.diameter, 0u) << family;
    EXPECT_GT(pt.aspl, 1.0) << family;
    EXPECT_LE(pt.aspl, pt.diameter) << family;
    EXPECT_GT(pt.avg_cable_m, 0.0) << family;
  }
}

}  // namespace
}  // namespace dsn
