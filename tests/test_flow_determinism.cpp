// Determinism gates for the flow tier: results must be byte-identical for
// every solver shard count (in-process, comparing the full JSON projection)
// and for every DSN_THREADS value (subprocess, comparing `dsn-lint flow
// --json` output bytes across thread-pool widths). Registered under
// `ctest -L determinism` via the determinism.flow entry.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/flow/flow_sim.hpp"
#include "dsn/flow/workload.hpp"

namespace dsn::flow {
namespace {

/// One full closed-loop run, projected to bytes.
std::string run_to_bytes(const std::string& topology, const std::string& workload,
                         std::uint32_t n, std::uint32_t shards) {
  const Topology topo = make_topology_by_name(topology, n);
  FlowConfig cfg;
  cfg.shards = shards;
  FlowSimulator sim(topo, cfg);
  WorkloadParams params;
  params.hosts = sim.num_hosts();
  params.clients = 16;
  params.units = 6;
  params.unit_flits = 192;
  params.seed = 11;
  const std::unique_ptr<WorkloadDriver> driver = make_workload(workload, params);
  return to_json(sim.run(*driver)).dump();
}

TEST(FlowDeterminism, ResultsByteIdenticalAcrossShardCounts) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"dsn", "shuffle"},
      {"random-regular", "hdfs-write"},
      {"dln", "allreduce-ring"},
  };
  for (const auto& [topology, workload] : cases) {
    const std::string base = run_to_bytes(topology, workload, 128, /*shards=*/1);
    for (const std::uint32_t shards : {2u, 4u, 8u, 13u}) {
      EXPECT_EQ(base, run_to_bytes(topology, workload, 128, shards))
          << topology << "/" << workload << " shards=" << shards;
    }
  }
}

TEST(FlowDeterminism, StaticBatchMatchesRepeatedRun) {
  // Two simulators fed the same expanded batch must agree byte-for-byte —
  // admission has no hidden per-instance state.
  const Topology topo = make_topology_by_name("dsn", 128);
  WorkloadParams params;
  params.clients = 16;
  params.units = 6;
  params.seed = 3;
  std::string first;
  for (int round = 0; round < 2; ++round) {
    FlowConfig cfg;
    FlowSimulator sim(topo, cfg);
    params.hosts = sim.num_hosts();
    const std::unique_ptr<WorkloadDriver> driver = make_workload("hdfs-read", params);
    const std::vector<Demand> batch = expand_all_demands(*driver);
    const std::string bytes = to_json(sim.run(batch)).dump();
    if (round == 0)
      first = bytes;
    else
      EXPECT_EQ(first, bytes);
  }
}

/// Run the real dsn-lint binary (path injected by CMake as DSN_LINT_PATH)
/// with an environment prefix, capturing stdout.
std::string run_lint_flow(const std::string& env_prefix, const std::string& args,
                          int& exit_code) {
  const std::string cmd =
      env_prefix + " " + std::string(DSN_LINT_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof buf, pipe)) > 0) output.append(buf, got);
  const int status = pclose(pipe);
  exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return output;
}

TEST(FlowDeterminism, LintFlowBytesInvariantUnderDsnThreads) {
  const std::string args =
      "flow --topology dsn --n 128 --workload shuffle --clients 16 --json";
  int base_code = -1;
  const std::string base = run_lint_flow("DSN_THREADS=1", args, base_code);
  ASSERT_EQ(base_code, 0) << base;
  for (const char* threads : {"4", "8"}) {
    int code = -1;
    const std::string out =
        run_lint_flow(std::string("DSN_THREADS=") + threads, args, code);
    EXPECT_EQ(code, 0) << out;
    EXPECT_EQ(base, out) << "DSN_THREADS=" << threads;
  }
}

}  // namespace
}  // namespace dsn::flow
