// Tests for the synthetic traffic patterns (§VII-A).
#include <gtest/gtest.h>

#include <map>

#include "dsn/common/error.hpp"
#include "dsn/sim/traffic.hpp"

namespace dsn {
namespace {

TEST(UniformTrafficTest, NeverSelfAndCoversAll) {
  UniformTraffic traffic(16);
  Rng rng(1);
  std::map<HostId, int> seen;
  for (int i = 0; i < 5000; ++i) {
    const HostId d = traffic.dest(3, rng);
    EXPECT_NE(d, 3u);
    EXPECT_LT(d, 16u);
    ++seen[d];
  }
  EXPECT_EQ(seen.size(), 15u);
  // Roughly uniform: each of 15 destinations ~333 hits.
  for (const auto& [host, count] : seen) {
    EXPECT_GT(count, 200) << host;
    EXPECT_LT(count, 500) << host;
  }
}

TEST(BitReversalTrafficTest, KnownValues) {
  BitReversalTraffic traffic(256);  // 8 bits
  Rng rng(1);
  EXPECT_EQ(traffic.dest(0b00000001, rng), 0b10000000u);
  EXPECT_EQ(traffic.dest(0b10000000, rng), 0b00000001u);
  EXPECT_EQ(traffic.dest(0, rng), 0u);
  EXPECT_EQ(traffic.dest(0b11110000, rng), 0b00001111u);
  EXPECT_EQ(traffic.dest(0b10000001, rng), 0b10000001u);  // palindrome
}

TEST(BitReversalTrafficTest, IsAnInvolution) {
  BitReversalTraffic traffic(256);
  Rng rng(1);
  for (HostId h = 0; h < 256; ++h) {
    EXPECT_EQ(traffic.dest(traffic.dest(h, rng), rng), h);
  }
}

TEST(BitReversalTrafficTest, RejectsNonPowerOfTwo) {
  EXPECT_THROW(BitReversalTraffic(100), PreconditionError);
}

TEST(NeighboringTrafficTest, MostlyNeighbors) {
  NeighboringTraffic traffic(256, 0.9);  // 16x16 array
  Rng rng(2);
  const HostId src = 5 * 16 + 5;  // interior node
  int local = 0;
  const int trials = 10'000;
  for (int i = 0; i < trials; ++i) {
    const HostId d = traffic.dest(src, rng);
    const int dx = std::abs(static_cast<int>(d % 16) - 5);
    const int dy = std::abs(static_cast<int>(d / 16) - 5);
    if (dx + dy == 1) ++local;
  }
  // 90% explicit locals plus a sliver of random picks landing on neighbors.
  EXPECT_NEAR(local / static_cast<double>(trials), 0.9, 0.02);
}

TEST(NeighboringTrafficTest, CornerNodesUseExistingNeighbors) {
  NeighboringTraffic traffic(256, 1.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const HostId d = traffic.dest(0, rng);  // corner of the 16x16 array
    EXPECT_TRUE(d == 1 || d == 16) << d;
  }
}

TEST(NeighboringTrafficTest, RejectsNonSquare) {
  EXPECT_THROW(NeighboringTraffic(200), PreconditionError);
}

TEST(TransposeTrafficTest, KnownValues) {
  TransposeTraffic traffic(256);
  Rng rng(1);
  EXPECT_EQ(traffic.dest(1, rng), 16u);        // (1,0) -> (0,1)
  EXPECT_EQ(traffic.dest(16, rng), 1u);
  EXPECT_EQ(traffic.dest(0, rng), 0u);         // diagonal
  EXPECT_EQ(traffic.dest(17, rng), 17u);       // diagonal
}

TEST(ShuffleTrafficTest, RotatesLeft) {
  ShuffleTraffic traffic(8);  // 3 bits
  Rng rng(1);
  EXPECT_EQ(traffic.dest(0b001, rng), 0b010u);
  EXPECT_EQ(traffic.dest(0b100, rng), 0b001u);
  EXPECT_EQ(traffic.dest(0b101, rng), 0b011u);
}

TEST(HotspotTrafficTest, HotHostOverrepresented) {
  HotspotTraffic traffic(64, 7, 0.25);
  Rng rng(4);
  int hot = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (traffic.dest(3, rng) == 7u) ++hot;
  }
  // 25% explicit + ~1.2% of the uniform remainder.
  EXPECT_NEAR(hot / 10'000.0, 0.25 + 0.75 / 63, 0.02);
}

TEST(TrafficFactory, KnownNames) {
  EXPECT_STREQ(make_traffic("uniform", 64)->name(), "uniform");
  EXPECT_STREQ(make_traffic("bit-reversal", 64)->name(), "bit-reversal");
  EXPECT_STREQ(make_traffic("bitrev", 64)->name(), "bit-reversal");
  EXPECT_STREQ(make_traffic("neighboring", 64)->name(), "neighboring");
  EXPECT_STREQ(make_traffic("transpose", 64)->name(), "transpose");
  EXPECT_STREQ(make_traffic("shuffle", 64)->name(), "shuffle");
  EXPECT_STREQ(make_traffic("hotspot", 64)->name(), "hotspot");
  EXPECT_THROW(make_traffic("bogus", 64), PreconditionError);
}

}  // namespace
}  // namespace dsn
