// Tests for the degree-6 bidirectional DSN (§VI-B remark) and the dateline
// dimension-order simulator policy.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/layout/layout.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/generators.hpp"

namespace dsn {
namespace {

// --------------------------------------------------------------------------
// Degree-6 DSN.
// --------------------------------------------------------------------------

TEST(DsnBidir, DegreeAroundSix) {
  const Topology t = make_dsn_bidir(512);
  const auto deg = compute_degree_stats(t.graph);
  EXPECT_GT(deg.avg_degree, 5.0);
  EXPECT_LE(deg.avg_degree, 6.0 + 1e-9);
  EXPECT_LE(deg.max_degree, 8u);  // 2 ring + up to 2 out + up to 4 in
}

TEST(DsnBidir, StrictlyImprovesOnBasicDsn) {
  const Topology bidir = make_dsn_bidir(512);
  const Topology basic = make_topology_by_name("dsn", 512);
  const auto sb = compute_path_stats(bidir.graph);
  const auto sp = compute_path_stats(basic.graph);
  EXPECT_LE(sb.diameter, sp.diameter);
  EXPECT_LT(sb.avg_shortest_path, sp.avg_shortest_path);
}

TEST(DsnBidir, MirrorShortcutsExist) {
  const std::uint32_t n = 128;
  const Dsn base(n, dsn_default_x(n));
  const Topology bidir = make_dsn_bidir(n);
  for (NodeId a = 0; a < n; ++a) {
    const NodeId b = base.shortcut_target(a);
    if (b == kInvalidNode) continue;
    EXPECT_TRUE(bidir.graph.has_link(n - 1 - a, n - 1 - b)) << a;
  }
}

class Degree6CableTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Degree6CableTest, CableComparableTo3dTorus) {
  // §VI-B: "our DSN with degree 6 surprisingly has shorter average cable
  // length than 3-D torus in conventional floor layout". In our realization
  // the average crosses below the torus at large n (see the strict test
  // below); at mid sizes it stays within a small factor.
  const std::uint32_t n = GetParam();
  const auto dsn6 = compute_cable_report(make_dsn_bidir(n));
  const auto torus3 = compute_cable_report(make_topology_by_name("torus3d", n));
  EXPECT_LT(dsn6.average_m, 1.25 * torus3.average_m) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Degree6CableTest, ::testing::Values(512u, 1024u, 2048u));

TEST(DsnBidir, ShorterCableThan3dTorusAtScale) {
  const auto dsn6 = compute_cable_report(make_dsn_bidir(2048));
  const auto torus3 = compute_cable_report(make_topology_by_name("torus3d", 2048));
  EXPECT_LT(dsn6.average_m, torus3.average_m);
  EXPECT_LT(dsn6.total_m, torus3.total_m);
}

TEST(DsnBidir, ComparableAsplTo3dTorus) {
  const std::uint32_t n = 512;
  const auto dsn6 = compute_path_stats(make_dsn_bidir(n).graph);
  const auto torus3 = compute_path_stats(make_topology_by_name("torus3d", n).graph);
  EXPECT_LT(dsn6.avg_shortest_path, 1.5 * torus3.avg_shortest_path);
}

// --------------------------------------------------------------------------
// Dateline DOR policy.
// --------------------------------------------------------------------------

TEST(TorusDorPolicySim, DeliversEverything) {
  const Topology topo = make_topology_by_name("torus", 64);
  TorusDorPolicy policy(topo, 4);
  UniformTraffic traffic(64 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 6'000;
  cfg.drain_cycles = 60'000;
  cfg.offered_gbps_per_host = 2.0;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  ASSERT_FALSE(res.deadlock);
  ASSERT_TRUE(res.drained);
  EXPECT_EQ(res.packets_delivered, res.packets_measured);
}

TEST(TorusDorPolicySim, MinimalHops) {
  const Topology topo = make_topology_by_name("torus", 64);
  TorusDorPolicy policy(topo, 4);
  UniformTraffic traffic(64 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 2'000;
  cfg.measure_cycles = 6'000;
  cfg.drain_cycles = 60'000;
  cfg.offered_gbps_per_host = 1.0;
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  ASSERT_TRUE(res.drained);
  const auto stats = compute_path_stats(topo.graph);
  EXPECT_NEAR(res.avg_hops, stats.avg_shortest_path, 0.1);
}

TEST(TorusDorPolicySim, StressNoDeadlock) {
  const Topology topo = make_topology_by_name("torus", 36);
  TorusDorPolicy policy(topo, 4);
  UniformTraffic traffic(36 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 1'000;
  cfg.measure_cycles = 4'000;
  cfg.drain_cycles = 10'000;
  cfg.offered_gbps_per_host = 40.0;  // way past saturation
  const SimResult res = run_simulation(topo, policy, traffic, cfg);
  EXPECT_FALSE(res.deadlock);
}

TEST(TorusDorPolicy, CandidateVcEncodesDimensionAndDateline) {
  const Topology topo = make_torus_2d(8, 8);
  const TorusDorPolicy policy(topo, 4);
  std::vector<RouteCandidate> cands;
  // Moving in x with fresh state -> VC 0.
  policy.candidates(0, 3, 0, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].vc, 0u);
  // Moving in y (x already resolved) -> VC 2.
  policy.candidates(0, 3 * 8, 0, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].vc, 2u);
}

TEST(TorusDorPolicy, DatelineBitSetsOnWrapAndResetsOnTurn) {
  const Topology topo = make_torus_2d(8, 8);
  const TorusDorPolicy policy(topo, 4);
  // Wrap hop 0 -> 7 in x sets the crossed bit for dimension 0.
  const RouteCandidate hop{7, 0, false};
  const std::uint8_t st = policy.next_state(0, 7, hop, 0);
  std::vector<RouteCandidate> cands;
  policy.candidates(7, 6, st, cands);  // continue in x
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].vc, 1u);  // odd VC after the dateline
  // Turning into y resets the bit: next VC is the even y VC.
  const std::uint8_t st_y = policy.next_state(7, 7 + 8, {7 + 8, 2, false}, st);
  policy.candidates(7 + 8, 7 + 3 * 8, st_y, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].vc, 2u);
}

TEST(TorusDorPolicy, RejectsBadConfig) {
  const Topology ring = make_ring(8);
  EXPECT_THROW(TorusDorPolicy(ring, 4), PreconditionError);
  const Topology t3 = make_torus_3d(4, 4, 4);
  EXPECT_THROW(TorusDorPolicy(t3, 4), PreconditionError);  // needs 6 VCs
  EXPECT_NO_THROW(TorusDorPolicy(t3, 6));
}

}  // namespace
}  // namespace dsn
