// Trace-driven injection tests: parsing, replay determinism, and exact
// delivery accounting for hand-constructed schedules.
#include <gtest/gtest.h>

#include "dsn/analysis/factory.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/sim/trace.hpp"

namespace dsn {
namespace {

TEST(TraceParsing, ParsesAndSorts) {
  const auto trace = parse_injection_trace_text(
      "# comment line\n"
      "100 3 9\n"
      "50 1 2\n"
      "\n"
      "100 4 8\n");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].cycle, 50u);
  EXPECT_EQ(trace[1].cycle, 100u);
  EXPECT_EQ(trace[1].src, 3u);  // stable order among equal cycles
  EXPECT_EQ(trace[2].src, 4u);
}

TEST(TraceParsing, RejectsGarbage) {
  EXPECT_THROW(parse_injection_trace_text("abc def\n"), PreconditionError);
  EXPECT_THROW(parse_injection_trace_text("1 2\n"), PreconditionError);
}

TEST(TraceParsing, RoundTrip) {
  const std::vector<TraceEntry> trace{{10, 1, 2}, {20, 3, 4}};
  const auto parsed = parse_injection_trace_text(format_injection_trace(trace));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].cycle, 10u);
  EXPECT_EQ(parsed[1].dst, 4u);
}

TEST(TraceReplay, DeliversExactlyTheScheduledPackets) {
  const Topology topo = make_topology_by_name("dsn", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2'000;
  cfg.drain_cycles = 30'000;
  cfg.record_packet_traces = true;

  Simulator sim(topo, policy, unused, cfg);
  sim.set_injection_trace({{10, 0, 63}, {10, 5, 40}, {500, 63, 0}, {900, 12, 13}});
  const SimResult res = sim.run();
  ASSERT_TRUE(res.drained);
  EXPECT_EQ(res.packets_measured, 4u);
  EXPECT_EQ(res.packets_delivered, 4u);
  ASSERT_EQ(sim.packet_traces().size(), 4u);
  // Generation cycles match the schedule.
  std::vector<std::uint64_t> gens;
  for (const auto& t : sim.packet_traces()) gens.push_back(t.gen_cycle);
  std::sort(gens.begin(), gens.end());
  EXPECT_EQ(gens, (std::vector<std::uint64_t>{10, 10, 500, 900}));
}

TEST(TraceReplay, DeterministicLatencies) {
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 1'000;
  cfg.drain_cycles = 20'000;

  std::vector<TraceEntry> schedule;
  for (std::uint64_t c = 0; c < 500; c += 7) {
    schedule.push_back({c, static_cast<HostId>(c % 64),
                        static_cast<HostId>((c * 13 + 5) % 64)});
  }
  const auto run_once = [&] {
    Simulator sim(topo, policy, unused, cfg);
    sim.set_injection_trace(schedule);
    return sim.run();
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
}

TEST(TraceReplay, RejectsOutOfRangeHosts) {
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16 * 4);
  Simulator sim(topo, policy, unused, SimConfig{});
  EXPECT_THROW(sim.set_injection_trace({{0, 0, 64}}), PreconditionError);
}

TEST(TraceReplay, BurstToOneHostSerializesOnEjection) {
  // 20 packets arrive simultaneously for one host: the single ejection port
  // must serialize them, so the last packet waits ~20 packet times.
  const Topology topo = make_topology_by_name("torus", 16);
  SimRouting routing(topo);
  AdaptiveUpDownPolicy policy(routing, 4);
  UniformTraffic unused(16 * 4);
  SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 60'000;
  cfg.record_packet_traces = true;

  std::vector<TraceEntry> burst;
  for (HostId src = 4; src < 24; ++src) burst.push_back({0, src, 0});
  Simulator sim(topo, policy, unused, cfg);
  sim.set_injection_trace(burst);
  const SimResult res = sim.run();
  ASSERT_TRUE(res.drained);
  EXPECT_EQ(res.packets_delivered, 20u);
  std::uint64_t first = ~0ull, last = 0;
  for (const auto& t : sim.packet_traces()) {
    first = std::min(first, t.eject_cycle);
    last = std::max(last, t.eject_cycle);
  }
  // 20 packets x 33 flits over a one-flit/cycle ejection port. Flits of up
  // to vcs = 4 packets interleave, so the first tail can complete after ~4
  // packet times and the spread is at least (20 - 4) packet times.
  EXPECT_GE(last - first, (20u - 4u) * 33u);
  EXPECT_LE(last - first, 20u * 33u + 200u);
}

}  // namespace
}  // namespace dsn
