// Fault drill: what happens to your interconnect when cables get cut or
// switches die? Two views:
//
//  1. Static sweep: random failure fractions on a chosen topology —
//     survival probability, path-length inflation, and the smallest link cut
//     that disconnects it (edge connectivity).
//  2. Live drill: down a shortcut link mid-run inside the cycle-accurate
//     flit simulator and watch the recovery layer react — per-epoch
//     degradation table plus the machine-readable degradation-curve JSON
//     that `dsn-lint drill --json` emits.
//
//   ./examples/example_fault_drill --topology dsn --n 256 --trials 20
//   ./examples/example_fault_drill --n 64 --live-n 48 --json
//   ./examples/example_fault_drill --n 64 --trace drill-trace.json
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/faults.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/paths.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"

namespace {

/// Live drill on DSN-E: kill the first shortcut link mid-measurement, heal it
/// later, and print the degradation curve the recovery layer records.
void run_live_drill(std::uint32_t n, bool emit_json) {
  const dsn::Topology topo = dsn::make_topology_by_name("dsn-e", n);

  // First non-ring link: its loss actually forces a reroute (every ring hop
  // of DSN-E has a parallel partner link).
  dsn::LinkId victim = 0;
  for (dsn::LinkId l = 0; l < topo.graph.num_links(); ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    const dsn::NodeId gap = u < v ? v - u : u - v;
    if (gap != 1 && gap != n - 1) {
      victim = l;
      break;
    }
  }

  dsn::SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 2'000;
  cfg.drain_cycles = 40'000;
  cfg.offered_gbps_per_host = 1.0;
  cfg.epoch_cycles = 250;

  dsn::FaultSchedule schedule;
  schedule.link_down(500, victim).link_up(1'500, victim);

  dsn::SimRouting routing(topo);
  dsn::AdaptiveUpDownPolicy policy(routing, cfg.vcs);
  dsn::UniformTraffic traffic(n * cfg.hosts_per_switch);
  dsn::Simulator sim(topo, policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const dsn::SimResult res = sim.run();

  std::cout << "\nLive drill on " << topo.name << ": shortcut link " << victim
            << " down @500, healed @1500\n";
  std::cout << "  " << res.packets_delivered_total << "/" << res.packets_generated_total
            << " delivered, " << res.packets_dropped << " dropped, "
            << res.packets_retried << " retried, " << res.routing_rebuilds
            << " routing rebuilds, conservation "
            << (res.conservation_ok ? "OK" : "VIOLATED") << "\n";
  for (const dsn::FaultRecord& rec : res.fault_log) {
    std::cout << "  " << dsn::fault_kind_name(rec.event.kind) << " " << rec.event.id
              << " @" << rec.event.cycle;
    if (rec.reconnected)
      std::cout << ": first delivery " << rec.reconnect_cycles << " cycles later";
    std::cout << "\n";
  }

  dsn::Table curve({"epoch start", "injected", "delivered", "dropped", "retried"});
  for (const dsn::EpochStats& e : res.epochs)
    curve.row().cell(e.start_cycle).cell(e.injected).cell(e.delivered).cell(e.dropped).cell(
        e.retried);
  curve.print(std::cout, "Degradation curve (250-cycle buckets)");

  if (emit_json)
    std::cout << "\ndegradation-curve JSON (dsn-lint drill --json emits the same shape):\n"
              << dsn::degradation_curve_json(res).dump(2) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli("Fault drill: degradation of a topology under random failures.");
  cli.add_flag("topology", "dsn", "topology family (see analysis/factory.hpp)");
  cli.add_flag("n", "256", "number of switches");
  cli.add_flag("trials", "20", "random trials per failure fraction");
  cli.add_flag("seed", "1", "seed");
  cli.add_flag("live", "true", "also run the live simulator drill");
  cli.add_flag("live-n", "48", "switch count for the live drill (DSN-E)");
  cli.add_flag("json", "false", "print the live drill's degradation-curve JSON");
  cli.add_flag("trace", "",
               "write a Chrome-trace JSON of the whole run (fault-recovery "
               "spans, sim counter tracks; view at ui.perfetto.dev)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) {
#if DSN_OBS
    dsn::obs::set_metrics_enabled(true);
    dsn::obs::start_trace();
#else
    std::cerr << "fault_drill: --trace needs a DSN_OBS=1 build "
                 "(instrumentation is compiled out)\n";
    return 2;
#endif
  }

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto trials = static_cast<std::uint32_t>(cli.get_uint("trials"));
  const auto seed = cli.get_uint("seed");
  const dsn::Topology topo = dsn::make_topology_by_name(cli.get("topology"), n, seed);

  const auto base = dsn::compute_path_stats(topo.graph);
  std::cout << topo.name << ": " << topo.graph.num_links() << " links, diameter "
            << base.diameter << ", ASPL " << base.avg_shortest_path << "\n";
  std::cout << "edge connectivity (minimum cut that can disconnect a switch): "
            << dsn::edge_connectivity(topo.graph) << " links\n\n";

  dsn::Table table({"failure type", "% failed", "survival rate", "avg diameter",
                    "avg ASPL", "ASPL inflation"});
  for (const double f : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    const auto links = dsn::evaluate_link_faults(topo, f, trials, seed);
    table.row()
        .cell("links")
        .cell(f * 100, 0)
        .cell(links.connected_rate, 2)
        .cell(links.connected_trials ? links.avg_diameter : 0.0, 1)
        .cell(links.connected_trials ? links.avg_aspl : 0.0)
        .cell(links.connected_trials ? links.avg_aspl / base.avg_shortest_path : 0.0);
    const auto switches = dsn::evaluate_switch_faults(topo, f, trials, seed);
    table.row()
        .cell("switches")
        .cell(f * 100, 0)
        .cell(switches.connected_rate, 2)
        .cell(switches.connected_trials ? switches.avg_diameter : 0.0, 1)
        .cell(switches.connected_trials ? switches.avg_aspl : 0.0)
        .cell(switches.connected_trials ? switches.avg_aspl / base.avg_shortest_path
                                        : 0.0);
  }
  table.print(std::cout, "Degradation under random failures (" +
                             std::to_string(trials) + " trials/point)");

  if (cli.get_bool("live"))
    run_live_drill(static_cast<std::uint32_t>(cli.get_uint("live-n")),
                   cli.get_bool("json"));

#if DSN_OBS
  if (!trace_path.empty() && dsn::obs::stop_trace(trace_path))
    std::cout << "\nwrote Chrome trace to " << trace_path
              << " (open at ui.perfetto.dev)\n";
#endif
  return 0;
}
