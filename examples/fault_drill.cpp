// Fault drill: what happens to your interconnect when cables get cut or
// switches die? Sweep failure fractions on a chosen topology and report
// survival probability and path-length inflation — then find the smallest
// link cut that disconnects it (edge connectivity).
//
//   ./examples/example_fault_drill --topology dsn --n 256 --trials 20
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/faults.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/paths.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Fault drill: degradation of a topology under random failures.");
  cli.add_flag("topology", "dsn", "topology family (see analysis/factory.hpp)");
  cli.add_flag("n", "256", "number of switches");
  cli.add_flag("trials", "20", "random trials per failure fraction");
  cli.add_flag("seed", "1", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto trials = static_cast<std::uint32_t>(cli.get_uint("trials"));
  const auto seed = cli.get_uint("seed");
  const dsn::Topology topo = dsn::make_topology_by_name(cli.get("topology"), n, seed);

  const auto base = dsn::compute_path_stats(topo.graph);
  std::cout << topo.name << ": " << topo.graph.num_links() << " links, diameter "
            << base.diameter << ", ASPL " << base.avg_shortest_path << "\n";
  std::cout << "edge connectivity (minimum cut that can disconnect a switch): "
            << dsn::edge_connectivity(topo.graph) << " links\n\n";

  dsn::Table table({"failure type", "% failed", "survival rate", "avg diameter",
                    "avg ASPL", "ASPL inflation"});
  for (const double f : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    const auto links = dsn::evaluate_link_faults(topo, f, trials, seed);
    table.row()
        .cell("links")
        .cell(f * 100, 0)
        .cell(links.connected_rate, 2)
        .cell(links.connected_trials ? links.avg_diameter : 0.0, 1)
        .cell(links.connected_trials ? links.avg_aspl : 0.0)
        .cell(links.connected_trials ? links.avg_aspl / base.avg_shortest_path : 0.0);
    const auto switches = dsn::evaluate_switch_faults(topo, f, trials, seed);
    table.row()
        .cell("switches")
        .cell(f * 100, 0)
        .cell(switches.connected_rate, 2)
        .cell(switches.connected_trials ? switches.avg_diameter : 0.0, 1)
        .cell(switches.connected_trials ? switches.avg_aspl : 0.0)
        .cell(switches.connected_trials ? switches.avg_aspl / base.avg_shortest_path
                                        : 0.0);
  }
  table.print(std::cout, "Degradation under random failures (" +
                             std::to_string(trials) + " trials/point)");
  return 0;
}
