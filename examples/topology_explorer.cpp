// Topology explorer: dump the structure of a DSN — level assignment, shortcut
// table, super nodes, degree histogram — and trace the three-phase custom
// route between any two nodes. Useful for understanding the construction of
// §IV-B and for debugging routing changes.
//
//   ./examples/example_topology_explorer --n 32 --src 3 --dst 27
#include <iostream>

#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Explore the structure of a DSN-x-n and trace custom routes.");
  cli.add_flag("n", "32", "network size");
  cli.add_flag("x", "0", "shortcut-set size (0 = default p-1)");
  cli.add_flag("src", "3", "route source");
  cli.add_flag("dst", "27", "route destination");
  cli.add_flag("dump_nodes", "true", "print the per-node structure table");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const auto x_flag = static_cast<std::uint32_t>(cli.get_uint("x"));
  const dsn::Dsn d(n, x_flag == 0 ? dsn::dsn_default_x(n) : x_flag);

  std::cout << "DSN-" << d.x() << "-" << d.n() << ": p = " << d.p() << ", r = " << d.r()
            << ", super nodes = " << (d.n() + d.p() - 1) / d.p() << "\n\n";

  if (cli.get_bool("dump_nodes")) {
    dsn::Table table({"node", "super", "level", "height", "shortcut ->", "span",
                      "incoming", "degree"});
    for (dsn::NodeId i = 0; i < n; ++i) {
      const dsn::NodeId sc = d.shortcut_target(i);
      std::string span = "-";
      std::string target = "-";
      if (sc != dsn::kInvalidNode) {
        target = std::to_string(sc);
        span = std::to_string((sc + n - i) % n);
      }
      std::string incoming;
      for (const auto from : d.incoming_shortcuts(i)) {
        if (!incoming.empty()) incoming += ",";
        incoming += std::to_string(from);
      }
      table.row()
          .cell(static_cast<std::uint64_t>(i))
          .cell(static_cast<std::uint64_t>(d.super_node(i)))
          .cell(static_cast<std::uint64_t>(d.level(i)))
          .cell(static_cast<std::uint64_t>(d.height(i)))
          .cell(target)
          .cell(span)
          .cell(incoming.empty() ? "-" : incoming)
          .cell(static_cast<std::uint64_t>(d.topology().graph.degree(i)));
    }
    table.print(std::cout, "Per-node structure");
  }

  const auto deg = dsn::compute_degree_stats(d.topology().graph);
  std::cout << "degree histogram:";
  for (std::size_t k = 0; k < deg.histogram.size(); ++k) {
    if (deg.histogram[k] > 0) std::cout << "  deg " << k << ": " << deg.histogram[k];
  }
  std::cout << "  (avg " << deg.avg_degree << ")\n\n";

  const auto src = static_cast<dsn::NodeId>(cli.get_uint("src"));
  const auto dst = static_cast<dsn::NodeId>(cli.get_uint("dst"));
  const dsn::DsnRouter router(d);
  const dsn::Route route = router.route(src, dst);
  std::cout << "custom route " << src << " -> " << dst << " (" << route.length()
            << " hops):\n";
  for (const auto& hop : route.hops) {
    const char* phase = hop.phase == dsn::RoutePhase::kPreWork  ? "PRE-WORK"
                        : hop.phase == dsn::RoutePhase::kMain ? "MAIN"
                                                              : "FINISH";
    const char* kind = hop.kind == dsn::HopKind::kPred     ? "pred"
                       : hop.kind == dsn::HopKind::kSucc   ? "succ"
                       : hop.kind == dsn::HopKind::kShortcut ? "shortcut"
                                                             : "express";
    std::cout << "  " << hop.from << " -> " << hop.to << "  [" << phase << ", " << kind
              << ", level " << d.level(hop.from) << " -> " << d.level(hop.to) << "]\n";
  }
  const auto bfs = dsn::bfs_distances(d.topology().graph, src);
  std::cout << "graph shortest path: " << bfs[dst] << " hops; custom route: "
            << route.length() << " hops\n";
  return 0;
}
