// Interactive-grade driver for the cycle-accurate simulator: pick a topology,
// a traffic pattern, a routing policy and a load, and get latency/throughput
// plus a per-link load profile. This is the workload a network architect runs
// to size an interconnect before committing to hardware.
//
//   ./examples/example_traffic_sim --topology dsn --n 64 --traffic uniform
//       --policy adaptive-updown --load 6
#include <iostream>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Cycle-accurate traffic simulation on a chosen topology.");
  cli.add_flag("topology", "dsn", "dsn | torus | random | ring | dln | torus3d");
  cli.add_flag("n", "64", "number of switches");
  cli.add_flag("traffic", "uniform",
               "uniform | bit-reversal | neighboring | transpose | shuffle | hotspot");
  cli.add_flag("policy", "adaptive-updown", "adaptive-updown | updown-only | dsn-custom");
  cli.add_flag("load", "6.0", "offered Gbit/s per host");
  cli.add_flag("seed", "1", "seed");
  cli.add_flag("cycles", "30000", "measurement cycles");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const dsn::Topology topo =
      dsn::make_topology_by_name(cli.get("topology"), n, cli.get_uint("seed"));

  dsn::SimConfig cfg;
  cfg.offered_gbps_per_host = cli.get_double("load");
  cfg.seed = cli.get_uint("seed");
  cfg.measure_cycles = cli.get_uint("cycles");
  cfg.warmup_cycles = cfg.measure_cycles / 3;
  cfg.drain_cycles = cfg.measure_cycles * 4;

  dsn::SimRouting routing(topo);
  std::unique_ptr<dsn::Dsn> dsn_struct;
  std::unique_ptr<dsn::SimRoutingPolicy> policy;
  const std::string policy_name = cli.get("policy");
  if (policy_name == "adaptive-updown") {
    policy = std::make_unique<dsn::AdaptiveUpDownPolicy>(routing, cfg.vcs);
  } else if (policy_name == "updown-only") {
    policy = std::make_unique<dsn::UpDownOnlyPolicy>(routing, cfg.vcs);
  } else if (policy_name == "dsn-custom") {
    dsn_struct = std::make_unique<dsn::Dsn>(n, dsn::dsn_default_x(n));
    policy = std::make_unique<dsn::DsnCustomPolicy>(*dsn_struct);
  } else {
    std::cerr << "unknown policy: " << policy_name << "\n";
    return 1;
  }

  const auto traffic = dsn::make_traffic(cli.get("traffic"), n * cfg.hosts_per_switch);
  dsn::Simulator sim(topo, *policy, *traffic, cfg);
  const dsn::SimResult res = sim.run();

  dsn::Table table({"metric", "value"});
  table.row().cell("topology").cell(topo.name);
  table.row().cell("traffic").cell(traffic->name());
  table.row().cell("routing policy").cell(policy->name());
  table.row().cell("offered [Gb/s/host]").cell(res.offered_gbps_per_host);
  table.row().cell("accepted [Gb/s/host]").cell(res.accepted_gbps_per_host);
  table.row().cell("avg latency [ns]").cell(res.avg_latency_ns, 1);
  table.row().cell("p50 latency [ns]").cell(res.p50_latency_ns, 1);
  table.row().cell("p99 latency [ns]").cell(res.p99_latency_ns, 1);
  table.row().cell("avg hops").cell(res.avg_hops);
  table.row().cell("packets measured").cell(res.packets_measured);
  table.row().cell("packets delivered").cell(res.packets_delivered);
  table.row().cell("status").cell(res.deadlock ? "DEADLOCK"
                                               : (res.drained ? "drained" : "saturated"));
  table.print(std::cout, "Simulation result");

  const auto loads = dsn::summarize_link_loads(sim.link_flit_counts());
  dsn::Table balance({"link-load metric", "value"});
  balance.row().cell("mean flits/directed link").cell(loads.mean_flits, 1);
  balance.row().cell("max flits/directed link").cell(loads.max_flits, 1);
  balance.row().cell("max/mean").cell(loads.max_over_mean);
  balance.row().cell("coefficient of variation").cell(loads.coefficient_of_variation);
  balance.print(std::cout, "Traffic balance over directed links");
  return 0;
}
