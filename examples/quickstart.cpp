// Quickstart: build a DSN, inspect its structure, route a packet with the
// custom algorithm, and compare graph metrics against a torus and the
// DLN-2-2 random baseline.
//
//   ./examples/example_quickstart [n]
#include <cstdlib>
#include <iostream>

#include "dsn/analysis/experiments.hpp"
#include "dsn/analysis/factory.hpp"
#include "dsn/common/table.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/topology/dsn.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;

  // 1. Build the basic DSN-x topology with the paper's default x = p-1.
  dsn::Dsn dsn_net(n, dsn::dsn_default_x(n));
  std::cout << "DSN-" << dsn_net.x() << "-" << dsn_net.n() << ": p = " << dsn_net.p()
            << " (super-node size), r = " << dsn_net.r() << " (remainder)\n";
  std::cout << "links: " << dsn_net.topology().graph.num_links()
            << ", avg degree: " << dsn_net.topology().graph.average_degree() << "\n\n";

  // 2. Route a packet with the three-phase custom routing (Fig. 2).
  dsn::DsnRouter router(dsn_net);
  const dsn::Route route = router.route(3, n - 5);
  std::cout << "custom route 3 -> " << n - 5 << " (" << route.length() << " hops):\n  ";
  for (const auto& hop : route.hops) {
    const char* phase = hop.phase == dsn::RoutePhase::kPreWork  ? "pre"
                        : hop.phase == dsn::RoutePhase::kMain ? "main"
                                                              : "fin";
    std::cout << hop.from << " -[" << phase << "]-> ";
  }
  std::cout << route.dst << "\n\n";

  // 3. Compare against the paper's counterparts.
  dsn::Table table({"topology", "diameter", "avg shortest path", "avg cable (m)",
                    "avg degree"});
  for (const auto& family : dsn::paper_topology_trio()) {
    const auto topo = dsn::make_topology_by_name(family, n);
    const auto pt = dsn::evaluate_topology(topo);
    table.row()
        .cell(family)
        .cell(static_cast<std::uint64_t>(pt.diameter))
        .cell(pt.aspl)
        .cell(pt.avg_cable_m)
        .cell(pt.avg_degree);
  }
  table.print(std::cout, "DSN vs torus vs RANDOM at n = " + std::to_string(n));
  return 0;
}
