// Machine-room cabling planner: given a switch count, lay out every candidate
// topology on the cabinet grid of §VI-B and report the cabling bill plus the
// hop-count metrics — the deployment trade-off study a datacenter architect
// would run before choosing an interconnect.
//
//   ./examples/example_machine_room_planner [n] [switches_per_cabinet]
#include <cstdlib>
#include <iostream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/table.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/layout/layout.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 1024;
  dsn::MachineRoomConfig room;
  if (argc > 2) room.switches_per_cabinet = static_cast<std::uint32_t>(std::atoi(argv[2]));

  std::cout << "Machine room plan for " << n << " switches, "
            << room.switches_per_cabinet << " switches/cabinet\n"
            << "cabinet: " << room.cabinet_width_m << " m x " << room.cabinet_depth_m
            << " m (incl. aisle), intra-cabinet cable " << room.intra_cabinet_cable_m
            << " m, inter-cabinet overhead " << room.inter_cabinet_overhead_m << " m\n\n";

  dsn::Table table({"topology", "cabinets", "grid", "links", "avg cable [m]",
                    "max cable [m]", "total cable [m]", "diameter", "ASPL"});
  for (const std::string family :
       {"torus", "torus3d", "random", "dsn", "dsn-d", "ring", "dln"}) {
    dsn::Topology topo;
    try {
      topo = dsn::make_topology_by_name(family, n);
    } catch (const dsn::PreconditionError& e) {
      std::cout << "(skipping " << family << ": " << e.what() << ")\n";
      continue;
    }
    const bool grid = topo.dims.size() == 2;
    dsn::FloorLayout layout(topo, room,
                            grid ? dsn::PlacementStrategy::kGrid2D
                                 : dsn::PlacementStrategy::kLinear);
    const auto cable = dsn::compute_cable_report(topo, layout);
    const auto paths = dsn::compute_path_stats(topo.graph);
    table.row()
        .cell(topo.name)
        .cell(static_cast<std::uint64_t>(layout.num_cabinets()))
        .cell(std::to_string(layout.rows()) + "x" + std::to_string(layout.cols()))
        .cell(static_cast<std::uint64_t>(topo.graph.num_links()))
        .cell(cable.average_m)
        .cell(cable.max_m)
        .cell(cable.total_m, 0)
        .cell(static_cast<std::uint64_t>(paths.diameter))
        .cell(paths.avg_shortest_path);
  }
  table.print(std::cout, "Cabling bill of materials");

  std::cout << "Reading: DSN keeps cable close to the torus while cutting the\n"
               "diameter/ASPL to near the random topology — the paper's trade-off.\n";
  return 0;
}
