// Export a topology for external tooling: Graphviz DOT (for rendering with
// `dot`/`circo`) and the plain edge-list format (for custom analysis), with a
// demonstration of the lossless round trip.
//
//   ./examples/example_export_topology --topology dsn --n 32 --out /tmp/dsn32
#include <fstream>
#include <iostream>
#include <sstream>

#include "dsn/analysis/factory.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/topology/io.hpp"

int main(int argc, char** argv) {
  dsn::Cli cli("Export a topology as Graphviz DOT and edge list.");
  cli.add_flag("topology", "dsn", "topology family");
  cli.add_flag("n", "32", "number of switches");
  cli.add_flag("seed", "1", "seed");
  cli.add_flag("out", "", "output path prefix (writes <out>.dot and <out>.edges);"
                          " empty prints to stdout");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const dsn::Topology topo =
      dsn::make_topology_by_name(cli.get("topology"), n, cli.get_uint("seed"));

  const std::string dot = dsn::to_dot(topo);
  const std::string edges = dsn::to_edge_list(topo);

  const std::string prefix = cli.get("out");
  if (prefix.empty()) {
    std::cout << dot << "\n" << edges;
  } else {
    std::ofstream(prefix + ".dot") << dot;
    std::ofstream(prefix + ".edges") << edges;
    std::cout << "wrote " << prefix << ".dot and " << prefix << ".edges\n";
  }

  // Demonstrate the lossless round trip.
  const dsn::Topology parsed = dsn::parse_edge_list(edges);
  const auto a = dsn::compute_path_stats(topo.graph);
  const auto b = dsn::compute_path_stats(parsed.graph);
  std::cout << "round trip check: " << parsed.name << ", " << parsed.graph.num_links()
            << " links, diameter " << b.diameter << " (original " << a.diameter
            << ") — " << (a.diameter == b.diameter ? "ok" : "MISMATCH") << "\n";
  return 0;
}
