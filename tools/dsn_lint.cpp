// dsn-lint: structural invariant checker for DSN topologies.
//
// Lints a topology built by name (any factory the analysis layer knows) or
// loaded from an edge-list file (topology/io format), printing one line per
// violation and a per-topology summary. Exit status is the number of
// topologies with error-severity violations (capped at 125), so the tool
// drops straight into CI pipelines and `ctest`.
//
// Examples:
//   dsn-lint --topology dsn --n 100 --full
//   dsn-lint --topology all --n-list 64,81,100,128
//   dsn-lint --topology dsn --n-list 48,96 --x-sweep
//   dsn-lint --file out/topology.edges --full
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/check/validator.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/math.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/io.hpp"

namespace {

/// Every factory name make_topology_by_name accepts, in lint order.
const std::vector<std::string> kAllTopologies = {
    "ring", "torus",  "torus3d", "dln",   "random", "kleinberg",
    "random-regular", "dsn",     "dsn-d", "dsn-e",  "dsn-bidir"};

struct LintStats {
  int checked = 0;
  int failed = 0;
};

void lint_one(const dsn::Topology& topo, const dsn::check::ValidatorOptions& opts,
              bool quiet, LintStats& stats) {
  const dsn::check::ValidationReport report = dsn::check::validate_topology(topo, opts);
  ++stats.checked;
  if (!report.ok()) ++stats.failed;
  if (!report.ok() || !quiet) std::cout << report.summary() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  dsn::Cli cli(
      "dsn-lint: run the dsn::check invariant battery over topologies and "
      "report violations");
  cli.add_flag("topology", "all",
               "factory name (ring, torus, torus3d, dln, random, kleinberg, "
               "random-regular, dsn, dsn-d, dsn-e, dsn-bidir) or 'all'");
  cli.add_flag("n", "64", "node count when --n-list is not given");
  cli.add_flag("n-list", "", "comma-separated node counts to sweep");
  cli.add_flag("x-sweep", "false",
               "for --topology dsn: lint every legal shortcut-set size x in [1, p-1]");
  cli.add_flag("seed", "1", "seed for the randomized generators");
  cli.add_flag("file", "", "lint an edge-list file instead of generating");
  cli.add_flag("full", "false",
               "also run routing-consistency and CDG-acyclicity checks");
  cli.add_flag("quiet", "false", "print only failing topologies");

  try {
    if (!cli.parse(argc, argv)) return 0;

    dsn::check::ValidatorOptions opts = dsn::check::structural_options();
    if (cli.get_bool("full")) opts = dsn::check::ValidatorOptions{};
    const bool quiet = cli.get_bool("quiet");
    LintStats stats;

    if (!cli.get("file").empty()) {
      std::ifstream in(cli.get("file"));
      if (!in) {
        std::cerr << "dsn-lint: cannot open " << cli.get("file") << "\n";
        return 125;
      }
      lint_one(dsn::read_edge_list(in), opts, quiet, stats);
    } else {
      const std::string which = cli.get("topology");
      std::vector<std::uint64_t> sizes = cli.get_uint_list("n-list");
      if (sizes.empty()) sizes.push_back(cli.get_uint("n"));
      const auto seed = cli.get_uint("seed");

      std::vector<std::string> names;
      if (which == "all") {
        names = kAllTopologies;
      } else {
        // Reject typos up front: an unknown name must not exit 0 as if the
        // sweep had merely skipped an unrealizable size.
        if (std::find(kAllTopologies.begin(), kAllTopologies.end(), which) ==
            kAllTopologies.end()) {
          std::cerr << "dsn-lint: unknown topology '" << which << "'\n";
          return 125;
        }
        names.push_back(which);
      }

      for (const std::uint64_t size : sizes) {
        const auto n = static_cast<std::uint32_t>(size);
        for (const std::string& name : names) {
          try {
            if (name == "dsn" && cli.get_bool("x-sweep")) {
              const std::uint32_t p = dsn::ilog2_ceil(n);
              for (std::uint32_t x = 1; x + 1 <= p; ++x)
                lint_one(dsn::make_dsn(n, x), opts, quiet, stats);
            } else {
              lint_one(dsn::make_topology_by_name(name, n, seed), opts, quiet, stats);
            }
          } catch (const dsn::PreconditionError& e) {
            // A size this family cannot realize (e.g. kleinberg needs square
            // n) is a skip, not a lint failure.
            if (!quiet)
              std::cout << name << " n=" << n << ": skipped (" << e.what() << ")\n";
          }
        }
      }
    }

    if (!quiet || stats.failed > 0) {
      std::cout << "dsn-lint: " << stats.checked << " topologies checked, "
                << stats.failed << " failed\n";
    }
    return stats.failed > 125 ? 125 : stats.failed;
  } catch (const std::exception& e) {
    std::cerr << "dsn-lint: " << e.what() << "\n";
    return 125;
  }
}
