// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
// dsn-lint: structural invariant checker and routing analyzer for DSN
// topologies.
//
// Legacy (lint) mode lints a topology built by name (any factory the
// analysis layer knows) or loaded from an edge-list file (topology/io
// format), printing one line per violation and a per-topology summary. Exit
// status is the number of topologies with error-severity violations (capped
// at 125), so the tool drops straight into CI pipelines and `ctest`.
//
// Subcommand mode drives the whole-network route analyzer (dsn::analyze):
//   dsn-lint routes ...   all-pairs route proofs: loop freedom, reachability,
//                         analytic hop bounds (--strict enforces the bounds)
//   dsn-lint cdg ...      full channel-dependency-graph acyclicity with a
//                         minimal deadlock-cycle witness when cyclic
//   dsn-lint load ...     static per-channel load (max/mean/Gini) and the
//                         uniform-traffic throughput upper bound 1/max_load
//   dsn-lint drill ...    live fault drill on the flit simulator: down a
//                         link/switch (or flap links) mid-run and verify the
//                         network recovers with exact packet accounting
//   dsn-lint flow ...     run a datacenter workload on the flow-level tier
//                         (max-min fair-share over the analyzer's routes) and
//                         verify convergence, the max-min invariant on every
//                         solve, and that every flow completed
//   dsn-lint optimize ... anneal a topology's shortcut placement with
//                         degree-preserving double-edge swaps and report the
//                         (cable length, ASPL, 1/throughput-bound) Pareto
//                         front under the machine-room cable model
//   dsn-lint stats ...    run an instrumented mini-workload through every
//                         layer (generate / graph / opt / analyze / drill /
//                         flow) and report the dsn::obs metrics registry as a
//                         table or JSON; counters are checked monotone across
//                         stages
// Subcommands exit 0 when every checked property holds, 1 when a property is
// refuted, and 2 on usage or internal errors.
//
// Examples:
//   dsn-lint --topology dsn --n 100 --full
//   dsn-lint --topology all --n-list 64,81,100,128
//   dsn-lint --topology dsn --n-list 48,96 --x-sweep
//   dsn-lint --file out/topology.edges --full
//   dsn-lint routes --topology dsn --x 2 --n 512 --strict
//   dsn-lint cdg --topology dsn-v --n 512 --json
//   dsn-lint load --topology dsn-e --n 512
//   dsn-lint drill --topology dsn-e --n 48 --fail-link auto --heal-at 1500
//   dsn-lint drill --topology dsn --n 64 --fail-switch 7 --ttl 4000 --json
//   dsn-lint flow --topology dsn --n 256 --workload shuffle --json
//   dsn-lint flow --topology random-regular --n 1024 --workload hdfs-write
//   dsn-lint optimize --topology dsn --n 1024 --iterations 2000 --json
//   dsn-lint stats --n 96 --json
//   dsn-lint stats --n 96 --trace stats-trace.json
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dsn/analysis/factory.hpp"
#include "dsn/analysis/load_bound.hpp"
#include "dsn/analysis/route_analysis.hpp"
#include "dsn/check/validator.hpp"
#include "dsn/common/cli.hpp"
#include "dsn/common/json.hpp"
#include "dsn/common/math.hpp"
#include "dsn/common/table.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/flow/flow_sim.hpp"
#include "dsn/flow/workload.hpp"
#include "dsn/graph/estimator.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/opt/optimizer.hpp"
#include "dsn/routing/sim_routing.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"
#include "dsn/topology/io.hpp"

namespace {

/// Every factory name make_topology_by_name accepts, in lint order.
const std::vector<std::string> kAllTopologies = {
    "ring", "torus",  "torus3d", "dln",   "random", "kleinberg",
    "random-regular", "dsn",     "dsn-d", "dsn-e",  "dsn-bidir"};

struct LintStats {
  int checked = 0;
  int failed = 0;
};

void lint_one(const dsn::Topology& topo, const dsn::check::ValidatorOptions& opts,
              bool quiet, LintStats& stats) {
  const dsn::check::ValidationReport report = dsn::check::validate_topology(topo, opts);
  ++stats.checked;
  if (!report.ok()) ++stats.failed;
  if (!report.ok() || !quiet) std::cout << report.summary() << "\n";
}

// ---------------------------------------------------------------------------
// Analyzer subcommands (routes / cdg / load)
// ---------------------------------------------------------------------------

constexpr int kExitClean = 0;
constexpr int kExitViolations = 1;
constexpr int kExitUsage = 2;

struct AnalysisViolation {
  std::string kind;
  std::string message;
};

dsn::analyze::RoutingFamily parse_family(const std::string& name) {
  if (name == "dsn") return dsn::analyze::RoutingFamily::kDsn;
  if (name == "dsn-d") return dsn::analyze::RoutingFamily::kDsnD;
  if (name == "dor") return dsn::analyze::RoutingFamily::kTorusDor;
  if (name == "greedy") return dsn::analyze::RoutingFamily::kGreedyGrid;
  if (name == "updown") return dsn::analyze::RoutingFamily::kUpDown;
  throw dsn::PreconditionError("unknown routing family '" + name +
                               "' (expected dsn, dsn-d, dor, greedy or updown)");
}

/// Build the analysis target named by --topology/--n/--x and run the
/// analyzer. "dsn" is the basic DSN with the single unprotected channel
/// class; "dsn-v" is the same topology with the extended classes realized as
/// virtual channels; "dsn-e" carries them on physical Up/Extra links.
dsn::analyze::RouteAnalysis run_analysis(const dsn::Cli& cli, dsn::Topology& topo) {
  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  auto x = static_cast<std::uint32_t>(cli.get_uint("x"));
  const std::string tname = cli.get("topology");

  if (tname == "dsn" || tname == "dsn-v") {
    if (x == 0) x = dsn::dsn_default_x(n);
    const dsn::Dsn d(n, x);
    topo = d.topology();
    const auto scheme = tname == "dsn-v" ? dsn::analyze::ChannelScheme::kExtended
                                         : dsn::analyze::ChannelScheme::kBasic;
    dsn::analyze::RouteAnalysis ra = dsn::analyze::analyze_dsn_routes(d, scheme);
    if (tname == "dsn-v") ra.topology = "dsn-v-" + std::to_string(n);
    return ra;
  }
  if (tname == "dsn-e") {
    const dsn::DsnE e(n);
    topo = e.topology();
    return dsn::analyze::analyze_topology_routes(topo,
                                                 dsn::analyze::RoutingFamily::kDsn);
  }
  if (tname == "dsn-d") {
    const dsn::DsnD dd(n, x == 0 ? 2 : x);
    topo = dd.topology();
    return dsn::analyze::analyze_dsn_d_routes(dd);
  }
  topo = dsn::make_topology_by_name(tname, n, cli.get_uint("seed"));
  const dsn::analyze::RoutingFamily family =
      cli.get("family").empty() ? dsn::analyze::default_family(topo.kind)
                                : parse_family(cli.get("family"));
  return dsn::analyze::analyze_topology_routes(topo, family);
}

void collect_route_violations(const dsn::analyze::RouteAnalysis& ra, bool strict,
                              std::vector<AnalysisViolation>& out) {
  const auto witness_line = [](const dsn::analyze::RouteWitness& w) {
    return "route (" + std::to_string(w.src) + ", " + std::to_string(w.dst) +
           "): " + w.reason;
  };
  for (const auto& w : ra.loop_witnesses) out.push_back({"route-loop", witness_line(w)});
  for (const auto& w : ra.endpoint_witnesses)
    out.push_back({"route-wrong-endpoint", witness_line(w)});
  if (strict) {
    for (const auto& w : ra.bound_witnesses)
      out.push_back({"route-bound-exceeded",
                     witness_line(w) + " (" + ra.hop_bound_law + ")"});
    if (ra.fallback_routes > 0)
      out.push_back({"route-fallback", std::to_string(ra.fallback_routes) +
                                           " routes hit the defensive fallback"});
  }
}

int run_analysis_command(const std::string& cmd, int argc, const char* const* argv) {
  dsn::Cli cli("dsn-lint " + cmd +
               ": whole-network route analysis (exit 0 = proven clean, 1 = a "
               "property was refuted, 2 = usage/internal error)");
  cli.add_flag("topology", "dsn",
               "analysis target: dsn (basic, single channel class), dsn-v "
               "(extended classes as virtual channels), dsn-e, dsn-d, or any "
               "factory name (ring, torus, torus3d, dln, random, kleinberg, "
               "random-regular, dsn-bidir)");
  cli.add_flag("n", "512", "node count");
  cli.add_flag("x", "0",
               "DSN shortcut-set size (0 = paper default p-1); for dsn-d the "
               "express links per super node (0 = 2)");
  cli.add_flag("family", "",
               "routing family override for factory topologies (dsn, dsn-d, "
               "dor, greedy, updown)");
  cli.add_flag("seed", "1", "seed for the randomized generators");
  cli.add_flag("max-normalized-load", "0",
               "load: fail when max_load/(n-1) exceeds this (0 = report only)");
  cli.add_flag("json", "false", "emit a machine-readable JSON report");
  cli.add_flag("strict", "false",
               "routes: also enforce analytic hop bounds and zero fallbacks");

  if (!cli.parse(argc, argv)) return kExitClean;

  dsn::Topology topo;
  const dsn::analyze::RouteAnalysis ra = run_analysis(cli, topo);
  const bool strict = cli.get_bool("strict");

  std::vector<AnalysisViolation> violations;
  if (cmd == "routes") {
    collect_route_violations(ra, strict, violations);
  } else if (cmd == "cdg") {
    if (!ra.cdg_acyclic) {
      violations.push_back(
          {"cdg-cyclic",
           "channel dependency graph has a directed cycle\n" +
               dsn::analyze::render_cycle_witness(topo, ra.cdg_cycle, ra.scheme)});
    }
  } else {  // load
    const double limit = cli.get_double("max-normalized-load");
    if (limit > 0.0 && ra.load.max_normalized > limit) {
      violations.push_back(
          {"channel-overload",
           "channel " + dsn::analyze::render_channel(topo, ra.load.max_channel,
                                                     ra.scheme) +
               " carries normalized load " + std::to_string(ra.load.max_normalized) +
               " > limit " + std::to_string(limit)});
    }
  }

  if (cli.get_bool("json")) {
    dsn::Json doc = dsn::Json::object();
    doc.set("command", cmd);
    doc.set("strict", strict);
    doc.set("analysis", dsn::analyze::to_json(ra));
    dsn::Json vs = dsn::Json::array();
    for (const AnalysisViolation& v : violations) {
      dsn::Json jv = dsn::Json::object();
      jv.set("kind", v.kind);
      jv.set("message", v.message);
      vs.push_back(std::move(jv));
    }
    doc.set("violations", std::move(vs));
    std::cout << doc.dump(2) << "\n";
  } else {
    if (cmd == "cdg") {
      std::cout << "cdg " << ra.topology << " [scheme=" << to_string(ra.scheme)
                << "]: " << ra.cdg_channels << " channels, " << ra.cdg_dependencies
                << " dependencies: "
                << (ra.cdg_acyclic ? "ACYCLIC (deadlock-free)" : "CYCLIC") << "\n";
    } else if (cmd == "load") {
      std::cout << "load " << ra.topology << " [" << ra.pairs << " pairs over "
                << ra.load.channels << " channels]\n"
                << "  max " << ra.load.max_load << " ("
                << dsn::analyze::render_channel(topo, ra.load.max_channel, ra.scheme)
                << ")\n"
                << "  mean " << ra.load.mean_load << ", gini " << ra.load.gini << "\n"
                << "  normalized max " << ra.load.max_normalized
                << " -> throughput bound " << ra.load.throughput_bound << "\n";
    } else {
      std::cout << dsn::analyze::summary(ra) << "\n";
    }
    for (const AnalysisViolation& v : violations)
      std::cout << "VIOLATION " << v.kind << ": " << v.message << "\n";
    std::cout << "dsn-lint " << cmd << ": "
              << (violations.empty() ? "PASS" : "FAIL") << " (" << violations.size()
              << " violations)\n";
  }
  return violations.empty() ? kExitClean : kExitViolations;
}

// ---------------------------------------------------------------------------
// Fault drill subcommand
// ---------------------------------------------------------------------------

/// A non-ring ("shortcut") link, or link 0 when every link is a ring hop.
dsn::LinkId auto_shortcut_link(const dsn::Topology& topo) {
  const dsn::Graph& g = topo.graph;
  const dsn::NodeId n = g.num_nodes();
  for (dsn::LinkId l = 0; l < g.num_links(); ++l) {
    const auto [u, v] = g.link_endpoints(l);
    const dsn::NodeId gap = u < v ? v - u : u - v;
    if (gap != 1 && gap != n - 1) return l;
  }
  return 0;
}

int run_drill_command(int argc, const char* const* argv) {
  dsn::Cli cli(
      "dsn-lint drill: deterministic live-fault drill on the flit simulator "
      "(exit 0 = recovered with exact packet accounting, 1 = a recovery "
      "property was refuted, 2 = usage/internal error)");
  cli.add_flag("topology", "dsn",
               "factory name (dsn, dsn-e, dsn-d, dsn-bidir, torus, ring, ...)");
  cli.add_flag("n", "64", "node count");
  cli.add_flag("policy", "adaptive",
               "adaptive (minimal + up*/down* escape), updown, or custom "
               "(DSN three-phase routing; --topology dsn only)");
  cli.add_flag("load", "1.0", "offered load [Gb/s per host]");
  cli.add_flag("seed", "1", "traffic seed (same seed + schedule => same run)");
  cli.add_flag("measure", "2000", "measurement window [cycles]");
  cli.add_flag("drain", "60000", "drain budget after the window [cycles]");
  cli.add_flag("fail-link", "auto",
               "link to down at --fail-at: a link id, 'auto' (first shortcut "
               "link), or 'none'");
  cli.add_flag("fail-at", "500", "cycle of the link-down event");
  cli.add_flag("heal-at", "0", "cycle of the link repair (0 = never heals)");
  cli.add_flag("fail-switch", "none", "switch to halt: a node id or 'none'");
  cli.add_flag("switch-fail-at", "800", "cycle of the switch halt");
  cli.add_flag("switch-heal-at", "0", "cycle of the switch revival (0 = never)");
  cli.add_flag("flap-prob", "0",
               "per-interval Bernoulli link-flap probability (0 = no flapping)");
  cli.add_flag("flap-interval", "400", "flap model check interval [cycles]");
  cli.add_flag("flap-repair", "1500", "flap model repair time [cycles]");
  cli.add_flag("epoch", "500", "degradation-curve bucket width [cycles] (0 = off)");
  cli.add_flag("ttl", "0",
               "packet time-to-live [cycles] (0 = off; required for switch "
               "faults that never heal)");
  cli.add_flag("retries", "8", "max per-packet fault retries before dropping");
  cli.add_flag("no-recovery", "false",
               "negative control: neither rebuild routing nor retry on faults");
  cli.add_flag("json", "false", "emit the degradation curve as JSON");

  if (!cli.parse(argc, argv)) return kExitClean;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const std::string tname = cli.get("topology");
  const std::string pname = cli.get("policy");

  // Keep whichever routing substrate the policy needs alive for the run.
  dsn::Topology topo;
  std::unique_ptr<dsn::Dsn> dsn_struct;
  std::unique_ptr<dsn::SimRouting> routing;
  std::unique_ptr<dsn::SimRoutingPolicy> policy;
  if (pname == "custom") {
    if (tname != "dsn") {
      std::cerr << "dsn-lint drill: --policy custom requires --topology dsn\n";
      return kExitUsage;
    }
    dsn_struct = std::make_unique<dsn::Dsn>(n, dsn::dsn_default_x(n));
    topo = dsn_struct->topology();
    policy = std::make_unique<dsn::DsnCustomPolicy>(*dsn_struct);
  } else {
    topo = dsn::make_topology_by_name(tname, n, cli.get_uint("seed"));
    routing = std::make_unique<dsn::SimRouting>(topo);
    if (pname == "adaptive") {
      policy = std::make_unique<dsn::AdaptiveUpDownPolicy>(*routing, 4);
    } else if (pname == "updown") {
      policy = std::make_unique<dsn::UpDownOnlyPolicy>(*routing, 4);
    } else {
      std::cerr << "dsn-lint drill: unknown policy '" << pname << "'\n";
      return kExitUsage;
    }
  }

  dsn::SimConfig cfg;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = cli.get_uint("measure");
  cfg.drain_cycles = cli.get_uint("drain");
  cfg.offered_gbps_per_host = cli.get_double("load");
  cfg.seed = cli.get_uint("seed");
  cfg.epoch_cycles = cli.get_uint("epoch");
  cfg.packet_ttl_cycles = cli.get_uint("ttl");
  cfg.max_retries = static_cast<std::uint32_t>(cli.get_uint("retries"));
  if (cli.get_bool("no-recovery")) {
    cfg.rebuild_routing_on_fault = false;
    cfg.retry_on_fault = false;
  }

  dsn::FaultSchedule schedule;
  const std::string fail_link = cli.get("fail-link");
  if (fail_link != "none") {
    const dsn::LinkId victim = fail_link == "auto"
                                   ? auto_shortcut_link(topo)
                                   : static_cast<dsn::LinkId>(std::stoul(fail_link));
    schedule.link_down(cli.get_uint("fail-at"), victim);
    if (cli.get_uint("heal-at") != 0) schedule.link_up(cli.get_uint("heal-at"), victim);
  }
  const std::string fail_switch = cli.get("fail-switch");
  if (fail_switch != "none") {
    const auto victim = static_cast<dsn::NodeId>(std::stoul(fail_switch));
    schedule.switch_down(cli.get_uint("switch-fail-at"), victim);
    if (cli.get_uint("switch-heal-at") != 0)
      schedule.switch_up(cli.get_uint("switch-heal-at"), victim);
  }
  const double flap_prob = cli.get_double("flap-prob");
  if (flap_prob > 0.0) {
    const dsn::FaultSchedule flaps = dsn::make_link_flap_schedule(
        topo, flap_prob, cli.get_uint("flap-interval"), cli.get_uint("flap-repair"),
        cfg.measure_cycles, cli.get_uint("seed"));
    for (const dsn::FaultEvent& ev : flaps.events()) schedule.add(ev);
  }

  dsn::UniformTraffic traffic(topo.num_nodes() * cfg.hosts_per_switch);
  dsn::Simulator sim(topo, *policy, traffic, cfg);
  sim.set_fault_schedule(schedule);
  const dsn::SimResult res = sim.run();

  std::vector<AnalysisViolation> violations;
  if (res.deadlock)
    violations.push_back({"sim-deadlock", "watchdog fired: no progress with flits in flight"});
  if (!res.conservation_ok)
    violations.push_back(
        {"packet-conservation",
         "generated != delivered + dropped + in-flight at drain (unaccounted packets)"});
  if (!res.drained && !res.deadlock)
    violations.push_back({"not-drained",
                          "measured packets neither delivered nor dropped within the "
                          "drain budget"});
  for (const dsn::FaultRecord& rec : res.fault_log) {
    const bool down = rec.event.kind == dsn::FaultKind::kLinkDown ||
                      rec.event.kind == dsn::FaultKind::kSwitchDown;
    if (down && !rec.reconnected) {
      violations.push_back(
          {"no-reconnect", std::string(dsn::fault_kind_name(rec.event.kind)) + " " +
                               std::to_string(rec.event.id) + " at cycle " +
                               std::to_string(rec.event.cycle) +
                               ": no packet delivered afterwards"});
    }
  }

  if (cli.get_bool("json")) {
    dsn::Json doc = dsn::Json::object();
    doc.set("command", "drill");
    doc.set("topology", tname + "-" + std::to_string(n));
    doc.set("policy", policy->name());
    doc.set("schedule_events", static_cast<std::uint64_t>(schedule.size()));
    doc.set("result", dsn::to_json(res));
    doc.set("degradation_curve", dsn::degradation_curve_json(res));
    dsn::Json vs = dsn::Json::array();
    for (const AnalysisViolation& v : violations) {
      dsn::Json jv = dsn::Json::object();
      jv.set("kind", v.kind);
      jv.set("message", v.message);
      vs.push_back(std::move(jv));
    }
    doc.set("violations", std::move(vs));
    std::cout << doc.dump(2) << "\n";
  } else {
    std::cout << "drill " << tname << "-" << n << " [policy=" << policy->name()
              << ", " << schedule.size() << " fault events]\n"
              << "  generated " << res.packets_generated_total << ", delivered "
              << res.packets_delivered_total << ", dropped " << res.packets_dropped
              << " (ttl " << res.packets_dropped_ttl << "), retried "
              << res.packets_retried << ", in flight at end "
              << res.packets_in_flight_at_end << "\n"
              << "  flits dropped " << res.flits_dropped << ", routing rebuilds "
              << res.routing_rebuilds << ", cycles " << res.cycles_run << "\n";
    for (const dsn::FaultRecord& rec : res.fault_log) {
      std::cout << "  event " << dsn::fault_kind_name(rec.event.kind) << " "
                << rec.event.id << " @" << rec.event.cycle << ": requeued "
                << rec.packets_requeued << ", dropped " << rec.packets_dropped;
      if (rec.reconnected)
        std::cout << ", reconnected in " << rec.reconnect_cycles << " cycles";
      std::cout << "\n";
    }
    for (const AnalysisViolation& v : violations)
      std::cout << "VIOLATION " << v.kind << ": " << v.message << "\n";
    std::cout << "dsn-lint drill: " << (violations.empty() ? "PASS" : "FAIL") << " ("
              << violations.size() << " violations)\n";
  }
  return violations.empty() ? kExitClean : kExitViolations;
}

// ---------------------------------------------------------------------------
// Flow-tier subcommand
// ---------------------------------------------------------------------------

int run_flow_command(int argc, const char* const* argv) {
  dsn::Cli cli(
      "dsn-lint flow: run a datacenter workload on the flow-level simulation "
      "tier and verify it (exit 0 = converged, max-min invariant held on "
      "every solve and all flows completed; 1 = a property was refuted, 2 = "
      "usage/internal error)");
  cli.add_flag("topology", "dsn",
               "factory name (dsn, dsn-d, dln, random-regular, torus, ...)");
  cli.add_flag("n", "256", "switch count");
  cli.add_flag("workload", "shuffle",
               "hdfs-read, hdfs-write, shuffle, allreduce-ring, "
               "allreduce-tree or rebuild");
  cli.add_flag("clients", "16", "workload participants");
  cli.add_flag("units", "8", "work units per participant (blocks, fetches, ...)");
  cli.add_flag("unit-flits", "256", "flits per work unit");
  cli.add_flag("window", "4", "concurrent flows per participant");
  cli.add_flag("rack-hosts", "32", "hosts per rack for replica placement");
  cli.add_flag("hosts-per-switch", "4", "hosts attached to each switch");
  cli.add_flag("seed", "1", "seed for placement and the randomized generators");
  cli.add_flag("min-epoch", "1",
               "epoch floor in cycles (batches completions per solve; 1 = "
               "exact event stepping)");
  cli.add_flag("shards", "0", "solver shard count (0 = auto; result-invariant)");
  cli.add_flag("no-verify", "false",
               "skip the per-solve max-min invariant check (faster)");
  cli.add_flag("json", "false", "emit a machine-readable JSON report");

  if (!cli.parse(argc, argv)) return kExitClean;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const dsn::Topology topo =
      dsn::make_topology_by_name(cli.get("topology"), n, cli.get_uint("seed"));

  dsn::flow::FlowConfig cfg;
  cfg.hosts_per_switch = static_cast<std::uint32_t>(cli.get_uint("hosts-per-switch"));
  cfg.min_epoch_cycles = cli.get_uint("min-epoch");
  cfg.shards = static_cast<std::uint32_t>(cli.get_uint("shards"));
  cfg.verify = !cli.get_bool("no-verify");
  dsn::flow::FlowSimulator sim(topo, cfg);

  dsn::flow::WorkloadParams params;
  params.hosts = sim.num_hosts();
  params.rack_hosts = static_cast<std::uint32_t>(cli.get_uint("rack-hosts"));
  params.clients = static_cast<std::uint32_t>(cli.get_uint("clients"));
  params.units = static_cast<std::uint32_t>(cli.get_uint("units"));
  params.unit_flits = cli.get_uint("unit-flits");
  params.window = static_cast<std::uint32_t>(cli.get_uint("window"));
  params.seed = cli.get_uint("seed");
  const std::unique_ptr<dsn::flow::WorkloadDriver> driver =
      dsn::flow::make_workload(cli.get("workload"), params);

  const dsn::flow::FlowResult res = sim.run(*driver);

  std::vector<AnalysisViolation> violations;
  if (!res.converged)
    violations.push_back({"flow-not-converged",
                          "a water-filling solve or the epoch loop hit its "
                          "iteration ceiling, or a flow had rate zero"});
  if (res.verify_violations > 0)
    violations.push_back({"max-min-violated",
                          std::to_string(res.verify_violations) +
                              " invariant findings; first: " + res.verify_first});
  if (res.flows_completed != res.flows)
    violations.push_back({"flows-unfinished",
                          std::to_string(res.flows - res.flows_completed) + " of " +
                              std::to_string(res.flows) + " flows never completed"});

  if (cli.get_bool("json")) {
    dsn::Json doc = dsn::Json::object();
    doc.set("command", "flow");
    doc.set("result", dsn::flow::to_json(res));
    dsn::Json vs = dsn::Json::array();
    for (const AnalysisViolation& v : violations) {
      dsn::Json jv = dsn::Json::object();
      jv.set("kind", v.kind);
      jv.set("message", v.message);
      vs.push_back(std::move(jv));
    }
    doc.set("violations", std::move(vs));
    std::cout << doc.dump(2) << "\n";
  } else {
    std::cout << "flow " << res.topology << " [routes=" << res.route_mode
              << ", workload=" << res.workload << ", " << res.hosts << " hosts]\n"
              << "  flows " << res.flows << " (completed " << res.flows_completed
              << "), flits " << res.flits_total << "\n"
              << "  epochs " << res.epochs << ", water-filling rounds max "
              << res.max_waterfill_rounds << " total " << res.waterfill_rounds_total
              << "\n"
              << "  makespan " << res.makespan_cycles << " cycles, per-host "
              << res.per_host_flits_per_cycle << " flits/cycle ("
              << res.per_host_gbps << " Gb/s), avg fct " << res.avg_fct_cycles
              << "\n";
    for (const AnalysisViolation& v : violations)
      std::cout << "VIOLATION " << v.kind << ": " << v.message << "\n";
    std::cout << "dsn-lint flow: " << (violations.empty() ? "PASS" : "FAIL") << " ("
              << violations.size() << " violations)\n";
  }
  return violations.empty() ? kExitClean : kExitViolations;
}

// ---------------------------------------------------------------------------
// Shortcut-placement optimizer subcommand
// ---------------------------------------------------------------------------

int run_optimize_command(int argc, const char* const* argv) {
  dsn::Cli cli(
      "dsn-lint optimize: anneal a topology's shortcut placement with "
      "degree-preserving double-edge swaps and report the (cable length, "
      "ASPL, 1/throughput-bound) Pareto front under the machine-room cable "
      "model (exit 0 = optimizer ran and the front is consistent, 1 = a "
      "front/estimator check failed, 2 = usage/internal error)");
  cli.add_flag("topology", "dsn",
               "factory name with shortcut links (dsn, dln, random, dsn-bidir, ...)");
  cli.add_flag("n", "256", "switch count");
  cli.add_flag("seed", "1", "annealing seed (also the generator seed)");
  cli.add_flag("passes", "3", "annealing passes (restarts with cycled weights)");
  cli.add_flag("iterations", "2000", "swap proposals per pass");
  cli.add_flag("plateau", "100", "proposals per temperature step");
  cli.add_flag("sample-sources", "0",
               "estimator BFS sources (0 = auto: exact when n <= 1024, else 128)");
  cli.add_flag("json", "false", "emit a machine-readable JSON report");

  if (!cli.parse(argc, argv)) return kExitClean;

  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  const dsn::Topology topo =
      dsn::make_topology_by_name(cli.get("topology"), n, cli.get_uint("seed"));

  dsn::opt::OptimizerConfig cfg;
  cfg.seed = cli.get_uint("seed");
  cfg.passes = static_cast<std::uint32_t>(cli.get_uint("passes"));
  cfg.iterations = static_cast<std::uint32_t>(cli.get_uint("iterations"));
  cfg.plateau = static_cast<std::uint32_t>(cli.get_uint("plateau"));
  cfg.estimator.sample_sources =
      static_cast<std::uint32_t>(cli.get_uint("sample-sources"));
  const dsn::opt::OptimizerResult res = dsn::opt::optimize_shortcuts(topo, cfg);

  // Independent view of the seed placement through the shared analysis-layer
  // load bound, over the same sampled sources the optimizer used.
  const dsn::CsrView seed_csr(topo.graph);
  const std::vector<dsn::NodeId> sources =
      dsn::sample_sources(n, res.sample_sources, cfg.estimator.seed);
  const dsn::analyze::TreeLoadBound seed_bound =
      dsn::analyze::compute_tree_load_bound(seed_csr, sources);

  std::vector<AnalysisViolation> violations;
  if (res.front.empty()) {
    violations.push_back({"front-empty", "Pareto archive lost the seed point"});
  }
  for (std::size_t i = 1; i < res.front.size(); ++i) {
    if (res.front[i].cable_m <= res.front[i - 1].cable_m ||
        res.front[i].aspl >= res.front[i - 1].aspl) {
      violations.push_back(
          {"front-not-monotone",
           "front[" + std::to_string(i) + "] does not trade strictly more "
           "cable for strictly less ASPL"});
    }
  }
  const bool covers_seed =
      std::any_of(res.front.begin(), res.front.end(), [&](const auto& p) {
        return p.cable_m <= res.seed_point.cable_m &&
               p.aspl <= res.seed_point.aspl;
      });
  if (!covers_seed) {
    violations.push_back({"front-worse-than-seed",
                          "no front point is at least as good as the seed "
                          "placement in both cable and ASPL"});
  }
  // The optimizer's seed estimate and the analyzer's bound count the same
  // canonical trees over the same sources; any gap means the incremental
  // estimator and the one-shot kernel diverged.
  if (std::abs(res.seed_point.max_normalized_load - seed_bound.max_normalized) >
      1e-12) {
    violations.push_back(
        {"estimator-bound-mismatch",
         "optimizer seed max_normalized_load " +
             std::to_string(res.seed_point.max_normalized_load) +
             " != analysis tree-load bound " +
             std::to_string(seed_bound.max_normalized)});
  }

  if (cli.get_bool("json")) {
    dsn::Json doc = dsn::Json::object();
    doc.set("command", "optimize");
    doc.set("result", dsn::opt::optimizer_result_to_json(res));
    doc.set("seed_load_bound", dsn::analyze::to_json(seed_bound));
    dsn::Json vs = dsn::Json::array();
    for (const AnalysisViolation& v : violations) {
      dsn::Json jv = dsn::Json::object();
      jv.set("kind", v.kind);
      jv.set("message", v.message);
      vs.push_back(std::move(jv));
    }
    doc.set("violations", std::move(vs));
    std::cout << doc.dump(2) << "\n";
  } else {
    std::cout << "optimize " << res.topology << " [n=" << res.n << ", "
              << res.shortcuts << " shortcut slots, degree "
              << res.degree_min << ".." << res.degree_max << ", "
              << res.sample_sources << " sampled sources]\n"
              << "  seed   cable " << res.seed_point.cable_m << " m, aspl "
              << res.seed_point.aspl << ", throughput bound "
              << res.seed_point.throughput_bound << "\n"
              << "  front  " << res.front.size() << " points (archive "
              << res.archive_size << "): ";
    for (std::size_t i = 0; i < res.front.size(); ++i) {
      if (i != 0) std::cout << " | ";
      std::cout << res.front[i].cable_m << "m@" << res.front[i].aspl;
    }
    std::cout << "\n  moves  " << res.proposals << " proposals, "
              << res.accepted << " accepted, " << res.invalid << " invalid, "
              << res.resweeps << " re-sweeps, " << res.full_sweeps
              << " full sweeps\n"
              << "  best   cable " << res.best_cable_m_at_seed_aspl
              << " m at aspl <= seed (" << res.cable_saved_pct << "% saved, "
              << (res.beats_seed ? "beats seed" : "does not beat seed")
              << "), best aspl " << res.best_aspl << "\n";
    for (const AnalysisViolation& v : violations)
      std::cout << "VIOLATION " << v.kind << ": " << v.message << "\n";
    std::cout << "dsn-lint optimize: " << (violations.empty() ? "PASS" : "FAIL")
              << " (" << violations.size() << " violations)\n";
  }
  return violations.empty() ? kExitClean : kExitViolations;
}

// ---------------------------------------------------------------------------
// Observability stats subcommand
// ---------------------------------------------------------------------------

#if DSN_OBS
/// One metrics snapshot as ordered JSON (registration order, so reports diff
/// cleanly run to run).
dsn::Json snapshot_to_json(const dsn::obs::Snapshot& snap) {
  dsn::Json metrics = dsn::Json::array();
  for (const dsn::obs::MetricSnapshot& m : snap.metrics) {
    dsn::Json jm = dsn::Json::object();
    jm.set("name", m.name);
    jm.set("kind", dsn::obs::to_string(m.kind));
    switch (m.kind) {
      case dsn::obs::MetricKind::kCounter:
        jm.set("value", m.value);
        break;
      case dsn::obs::MetricKind::kGauge:
        jm.set("value", m.gauge_value);
        jm.set("max", m.gauge_max);
        break;
      case dsn::obs::MetricKind::kHistogram: {
        jm.set("count", m.hist_count);
        jm.set("sum", m.hist_sum);
        dsn::Json bounds = dsn::Json::array();
        for (const std::uint64_t b : m.bounds) bounds.push_back(dsn::Json(b));
        jm.set("bounds", std::move(bounds));
        dsn::Json buckets = dsn::Json::array();
        for (const std::uint64_t c : m.bucket_counts) buckets.push_back(dsn::Json(c));
        jm.set("buckets", std::move(buckets));
        break;
      }
    }
    metrics.push_back(std::move(jm));
  }
  return metrics;
}
#endif  // DSN_OBS

int run_stats_command(int argc, const char* const* argv) {
  dsn::Cli cli(
      "dsn-lint stats: drive an instrumented mini-workload through every "
      "layer (generate -> graph -> opt -> analyze -> drill -> flow) and report "
      "the dsn::obs metrics registry (exit 0 = instrumentation present and "
      "consistent, 1 = a metric is missing or a counter regressed, 2 = "
      "usage/internal error)");
  cli.add_flag("n", "96", "node count of the workload topology");
  cli.add_flag("seed", "1", "traffic seed for the drill stage");
  cli.add_flag("json", "false", "emit a machine-readable JSON report");
  cli.add_flag("trace", "",
               "also capture a Chrome-trace JSON of the workload to this file");

  if (!cli.parse(argc, argv)) return kExitClean;

#if !DSN_OBS
  std::cerr << "dsn-lint stats: this binary was built with DSN_OBS=0; "
               "instrumentation call sites are compiled out\n";
  return kExitUsage;
#else
  const auto n = static_cast<std::uint32_t>(cli.get_uint("n"));
  dsn::obs::set_metrics_enabled(true);
  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) dsn::obs::start_trace();

  // Each stage exercises one layer's instrumentation (the flow tier last);
  // the cumulative snapshot after each stage is kept so counters can be
  // proven monotone.
  std::vector<std::pair<std::string, dsn::obs::Snapshot>> stages;
  auto& registry = dsn::obs::MetricsRegistry::global();

  const dsn::Dsn d(n, dsn::dsn_default_x(n));
  stages.emplace_back("generate", registry.snapshot());

  // Route a token task through the pool's worker queue: parallel_for runs
  // inline on single-core hosts (and under nested parallelism), which would
  // leave the dsn.pool.* instrumentation unregistered there.
  dsn::ThreadPool::global().submit([] {});
  dsn::ThreadPool::global().wait_idle();

  const dsn::CsrView csr(d.topology().graph);
  (void)dsn::compute_path_stats(csr);
  (void)dsn::eccentricities(csr);
  stages.emplace_back("graph", registry.snapshot());

  // Opt stage: a short annealing run on the same instance exercises the
  // optimizer's proposal/accept counters, drift gauge and plateau timer.
  {
    dsn::opt::OptimizerConfig ocfg;
    ocfg.seed = cli.get_uint("seed");
    ocfg.passes = 1;
    ocfg.iterations = 60;
    ocfg.plateau = 20;
    (void)dsn::opt::optimize_shortcuts(d.topology(), ocfg);
  }
  stages.emplace_back("opt", registry.snapshot());

  (void)dsn::analyze::analyze_dsn_routes(d, dsn::analyze::ChannelScheme::kBasic);
  stages.emplace_back("analyze", registry.snapshot());

  // Drill stage: the three-phase custom policy on the same DSN instance with
  // a healed shortcut failure, so per-phase hop counters and the fault
  // recovery path both run.
  {
    dsn::DsnCustomPolicy policy(d);
    dsn::SimConfig cfg;
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1000;
    cfg.drain_cycles = 30000;
    cfg.seed = cli.get_uint("seed");
    cfg.packet_ttl_cycles = 4000;
    dsn::FaultSchedule schedule;
    const dsn::LinkId victim = auto_shortcut_link(d.topology());
    schedule.link_down(300, victim);
    schedule.link_up(900, victim);
    dsn::UniformTraffic traffic(d.topology().num_nodes() * cfg.hosts_per_switch);
    dsn::Simulator sim(d.topology(), policy, traffic, cfg);
    sim.set_fault_schedule(schedule);
    (void)sim.run();
  }
  stages.emplace_back("drill", registry.snapshot());

  // Flow stage: a small shuffle on the same node count exercises the
  // flow-tier instrumentation (admissions, epochs, water-filling rounds).
  {
    dsn::flow::FlowConfig fcfg;
    fcfg.verify = true;
    dsn::flow::FlowSimulator fsim(d.topology(), fcfg);
    dsn::flow::WorkloadParams params;
    params.hosts = fsim.num_hosts();
    params.clients = 8;
    params.units = 4;
    params.unit_flits = 64;
    params.seed = cli.get_uint("seed");
    const std::unique_ptr<dsn::flow::WorkloadDriver> driver =
        dsn::flow::make_workload("shuffle", params);
    (void)fsim.run(*driver);
  }
  stages.emplace_back("flow", registry.snapshot());

  if (!trace_path.empty()) dsn::obs::stop_trace(trace_path);
  const dsn::obs::Snapshot& final_snap = stages.back().second;

  // Self-checks: the canonical per-layer metrics must exist, and every
  // counter must be monotone across the stage snapshots (the sharded-merge
  // discipline guarantees it; a regression means torn reads or id misuse).
  std::vector<AnalysisViolation> violations;
  for (const char* required :
       {"dsn.topology.generated", "dsn.topology.shortcuts",
        "dsn.graph.msbfs_batches", "dsn.analysis.routes_checked",
        "dsn.pool.tasks_executed", "dsn.sim.hops", "dsn.sim.hops.main",
        "dsn.sim.packet_latency_cycles", "dsn.flow.flows",
        "dsn.flow.flows_completed", "dsn.flow.epochs",
        "dsn.flow.waterfill_rounds", "dsn.flow.fct_cycles",
        "dsn.opt.proposals", "dsn.opt.accepts", "dsn.opt.resweeps",
        "dsn.opt.full_sweeps", "dsn.opt.affected_sources", "dsn.opt.plateau_ns",
        "dsn.opt.plateaus"}) {
    if (final_snap.find(required) == nullptr) {
      violations.push_back({"metric-missing",
                            std::string("expected metric '") + required +
                                "' was never registered by the workload"});
    }
  }
  for (std::size_t s = 1; s < stages.size(); ++s) {
    for (const dsn::obs::MetricSnapshot& m : stages[s].second.metrics) {
      if (m.kind != dsn::obs::MetricKind::kCounter) continue;
      const dsn::obs::MetricSnapshot* prev = stages[s - 1].second.find(m.name);
      if (prev != nullptr && prev->value > m.value) {
        violations.push_back(
            {"counter-regression",
             m.name + " fell from " + std::to_string(prev->value) + " to " +
                 std::to_string(m.value) + " between stage '" +
                 stages[s - 1].first + "' and '" + stages[s].first + "'"});
      }
    }
  }

  if (cli.get_bool("json")) {
    dsn::Json doc = dsn::Json::object();
    doc.set("command", "stats");
    doc.set("topology", "dsn-" + std::to_string(n));
    doc.set("obs_enabled", true);
    dsn::Json jstages = dsn::Json::array();
    for (const auto& [name, snap] : stages) {
      dsn::Json js = dsn::Json::object();
      js.set("stage", name);
      js.set("metrics", snapshot_to_json(snap));
      jstages.push_back(std::move(js));
    }
    doc.set("stages", std::move(jstages));
    doc.set("metrics", snapshot_to_json(final_snap));
    dsn::Json vs = dsn::Json::array();
    for (const AnalysisViolation& v : violations) {
      dsn::Json jv = dsn::Json::object();
      jv.set("kind", v.kind);
      jv.set("message", v.message);
      vs.push_back(std::move(jv));
    }
    doc.set("violations", std::move(vs));
    std::cout << doc.dump(2) << "\n";
  } else {
    dsn::Table table({"metric", "kind", "value", "max/sum"});
    for (const dsn::obs::MetricSnapshot& m : final_snap.metrics) {
      auto& row = table.row().cell(m.name).cell(dsn::obs::to_string(m.kind));
      switch (m.kind) {
        case dsn::obs::MetricKind::kCounter:
          row.cell(m.value).cell("");
          break;
        case dsn::obs::MetricKind::kGauge:
          row.cell(m.gauge_value).cell(std::to_string(m.gauge_max));
          break;
        case dsn::obs::MetricKind::kHistogram:
          row.cell(m.hist_count).cell(std::to_string(m.hist_sum));
          break;
      }
    }
    table.print(std::cout,
                "dsn::obs metrics after generate/graph/opt/analyze/drill/flow "
                "(dsn-" +
                    std::to_string(n) + ")");
    for (const AnalysisViolation& v : violations)
      std::cout << "VIOLATION " << v.kind << ": " << v.message << "\n";
    std::cout << "dsn-lint stats: " << (violations.empty() ? "PASS" : "FAIL")
              << " (" << violations.size() << " violations)\n";
  }
  return violations.empty() ? kExitClean : kExitViolations;
#endif  // DSN_OBS
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string cmd = argv[1];
    if (cmd == "routes" || cmd == "cdg" || cmd == "load") {
      try {
        // Shift argv so the subcommand name acts as the program name.
        return run_analysis_command(cmd, argc - 1, argv + 1);
      } catch (const std::exception& e) {
        std::cerr << "dsn-lint " << cmd << ": " << e.what() << "\n";
        return kExitUsage;
      }
    }
    if (cmd == "drill") {
      try {
        return run_drill_command(argc - 1, argv + 1);
      } catch (const std::exception& e) {
        std::cerr << "dsn-lint drill: " << e.what() << "\n";
        return kExitUsage;
      }
    }
    if (cmd == "flow") {
      try {
        return run_flow_command(argc - 1, argv + 1);
      } catch (const std::exception& e) {
        std::cerr << "dsn-lint flow: " << e.what() << "\n";
        return kExitUsage;
      }
    }
    if (cmd == "optimize") {
      try {
        return run_optimize_command(argc - 1, argv + 1);
      } catch (const std::exception& e) {
        std::cerr << "dsn-lint optimize: " << e.what() << "\n";
        return kExitUsage;
      }
    }
    if (cmd == "stats") {
      try {
        return run_stats_command(argc - 1, argv + 1);
      } catch (const std::exception& e) {
        std::cerr << "dsn-lint stats: " << e.what() << "\n";
        return kExitUsage;
      }
    }
  }

  dsn::Cli cli(
      "dsn-lint: run the dsn::check invariant battery over topologies and "
      "report violations");
  cli.add_flag("topology", "all",
               "factory name (ring, torus, torus3d, dln, random, kleinberg, "
               "random-regular, dsn, dsn-d, dsn-e, dsn-bidir) or 'all'");
  cli.add_flag("n", "64", "node count when --n-list is not given");
  cli.add_flag("n-list", "", "comma-separated node counts to sweep");
  cli.add_flag("x-sweep", "false",
               "for --topology dsn: lint every legal shortcut-set size x in [1, p-1]");
  cli.add_flag("seed", "1", "seed for the randomized generators");
  cli.add_flag("file", "", "lint an edge-list file instead of generating");
  cli.add_flag("full", "false",
               "also run routing-consistency and CDG-acyclicity checks");
  cli.add_flag("quiet", "false", "print only failing topologies");

  try {
    if (!cli.parse(argc, argv)) return 0;

    dsn::check::ValidatorOptions opts = dsn::check::structural_options();
    if (cli.get_bool("full")) opts = dsn::check::ValidatorOptions{};
    const bool quiet = cli.get_bool("quiet");
    LintStats stats;

    if (!cli.get("file").empty()) {
      std::ifstream in(cli.get("file"));
      if (!in) {
        std::cerr << "dsn-lint: cannot open " << cli.get("file") << "\n";
        return 125;
      }
      lint_one(dsn::read_edge_list(in), opts, quiet, stats);
    } else {
      const std::string which = cli.get("topology");
      std::vector<std::uint64_t> sizes = cli.get_uint_list("n-list");
      if (sizes.empty()) sizes.push_back(cli.get_uint("n"));
      const auto seed = cli.get_uint("seed");

      std::vector<std::string> names;
      if (which == "all") {
        names = kAllTopologies;
      } else {
        // Reject typos up front: an unknown name must not exit 0 as if the
        // sweep had merely skipped an unrealizable size.
        if (std::find(kAllTopologies.begin(), kAllTopologies.end(), which) ==
            kAllTopologies.end()) {
          std::cerr << "dsn-lint: unknown topology '" << which << "'\n";
          return 125;
        }
        names.push_back(which);
      }

      for (const std::uint64_t size : sizes) {
        const auto n = static_cast<std::uint32_t>(size);
        for (const std::string& name : names) {
          try {
            if (name == "dsn" && cli.get_bool("x-sweep")) {
              const std::uint32_t p = dsn::ilog2_ceil(n);
              for (std::uint32_t x = 1; x + 1 <= p; ++x)
                lint_one(dsn::make_dsn(n, x), opts, quiet, stats);
            } else {
              lint_one(dsn::make_topology_by_name(name, n, seed), opts, quiet, stats);
            }
          } catch (const dsn::PreconditionError& e) {
            // A size this family cannot realize (e.g. kleinberg needs square
            // n) is a skip, not a lint failure.
            if (!quiet)
              std::cout << name << " n=" << n << ": skipped (" << e.what() << ")\n";
          }
        }
      }
    }

    if (!quiet || stats.failed > 0) {
      std::cout << "dsn-lint: " << stats.checked << " topologies checked, "
                << stats.failed << " failed\n";
    }
    return stats.failed > 125 ? 125 : stats.failed;
  } catch (const std::exception& e) {
    std::cerr << "dsn-lint: " << e.what() << "\n";
    return 125;
  }
}
