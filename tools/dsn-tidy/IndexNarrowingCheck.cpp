#include "IndexNarrowingCheck.h"

#include "DsnTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dsn {

void IndexNarrowingCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "ScopeDirs", ScopeDirs);
}

void IndexNarrowingCheck::registerMatchers(MatchFinder *Finder) {
  // Every implicit integral conversion; width filtering happens in check()
  // where the ASTContext can answer real bit widths (NodeId and friends are
  // typedefs — spelling-based matching would miss exactly the cases that
  // matter). Template instantiations are traversed, so a narrowing that only
  // materializes for a 64-bit instantiation argument is still seen.
  Finder->addMatcher(
      implicitCastExpr(hasCastKind(CK_IntegralCast)).bind("cast"), this);
}

void IndexNarrowingCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<ImplicitCastExpr>("cast");
  if (Cast == nullptr || Cast->isValueDependent())
    return;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = Cast->getExprLoc();
  if (!isProjectLocation(SM, Loc) || !inScopedDir(SM, Loc, ScopeDirs))
    return;

  ASTContext &Ctx = *Result.Context;
  const Expr *Sub = Cast->getSubExpr();
  const QualType SrcType = Sub->getType();
  const QualType DstType = Cast->getType();
  if (!SrcType->isIntegerType() || !DstType->isIntegerType() ||
      SrcType->isBooleanType() || DstType->isBooleanType() ||
      SrcType->isEnumeralType())
    return;

  const unsigned SrcWidth = Ctx.getIntWidth(SrcType);
  const unsigned DstWidth = Ctx.getIntWidth(DstType);
  if (SrcWidth < 64 || DstWidth > 32)
    return;

  // A constant that provably fits the destination is not a narrowing hazard
  // (enum-sized literals, small constexpr arithmetic).
  Expr::EvalResult Eval;
  if (Sub->EvaluateAsInt(Eval, Ctx)) {
    const llvm::APSInt Value = Eval.Val.getInt();
    const bool DstSigned = DstType->isSignedIntegerType();
    const bool Fits = DstSigned ? Value.isSignedIntN(DstWidth)
                                : Value.isIntN(DstWidth);
    if (Fits)
      return;
  }

  diag(Loc,
       "implicit narrowing from %0 (%1-bit) to %2 (%3-bit) in scale-critical "
       "code; at n=65k+ this truncates silently — widen the destination or "
       "spell the bound with an explicit checked cast")
      << SrcType << SrcWidth << DstType << DstWidth;
}

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
