// dsn-lock-scope-purity: no file I/O, stream serialization, or blocking
// calls may be reachable while a dsn::LockGuard is held.
//
// This is the exact bug class PR 6 found by hand in TraceWriter::stop_trace
// (flushing the trace file while still holding the writer mutex): the
// critical section silently inherits the latency of the slowest I/O path,
// and under the shared ThreadPool that stalls every worker contending for
// the lock. The check walks the statements that execute after a LockGuard
// declaration inside its scope, and follows calls one level into function
// bodies visible in the translation unit (depth-limited), so a blocking
// call hidden behind a small helper is still caught. Lambda bodies are
// skipped — a lambda *defined* under the lock runs later, outside it.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallPtrSet.h"

namespace clang {
namespace tidy {
namespace dsn {

class LockScopePurityCheck : public ClangTidyCheck {
 public:
  LockScopePurityCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  /// Scan `S` (and, for calls into function bodies visible in this TU, one
  /// nested level up to `Depth` kMaxCallDepth) for blocking/IO calls.
  /// Diagnoses at `ReportLoc` (the statement inside the locked scope).
  void scanForBlocking(const Stmt *S, SourceLocation ReportLoc,
                       const VarDecl *Guard, int Depth,
                       llvm::SmallPtrSet<const FunctionDecl *, 8> &Visited);

  /// Returns a human-readable description if `Call` is a blocking/IO/
  /// serialization call, or an empty string otherwise.
  std::string classifyBlockingCall(const Expr *Call) const;
};

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
