// dsn-deterministic-container: bans iteration-order-unstable containers, by
// canonical type, in files carrying the `// dsn-slint: deterministic` marker.
//
// The token-level dsn-slint tier already greps for the literal spelling
// `std::unordered_map`; this check closes the holes a lexer cannot see:
// type aliases (`using Index = std::unordered_map<...>`), `auto`-deduced
// declarations, typedefs from other headers, and template instantiations
// whose written spelling never mentions "unordered" at all.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseMap.h"

namespace clang {
namespace tidy {
namespace dsn {

class DeterministicContainerCheck : public ClangTidyCheck {
 public:
  DeterministicContainerCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  llvm::DenseMap<FileID, bool> MarkerCache;
};

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
