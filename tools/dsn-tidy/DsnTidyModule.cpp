// dsn-tidy: the semantic (clang AST) tier of the project's two-tier static
// analysis. The token tier (ci/dsn_slint.py) runs everywhere in
// milliseconds; this plugin loads into stock clang-tidy via
//
//   clang-tidy -load=libdsn_tidy.so -checks='-*,dsn-*' ...
//
// and enforces the same house invariants as *semantic* properties — through
// type aliases, `auto`, template instantiation, and one level of the call
// graph — plus the 64-bit index-safety rule the lexer cannot express.
// See DESIGN.md §8 for the check table and the shared suppression policy.
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "DeterministicContainerCheck.h"
#include "GuardedMemberCheck.h"
#include "IndexNarrowingCheck.h"
#include "LockScopePurityCheck.h"
#include "UnseededRngCheck.h"

namespace clang {
namespace tidy {
namespace dsn {

class DsnTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<DeterministicContainerCheck>(
        "dsn-deterministic-container");
    CheckFactories.registerCheck<UnseededRngCheck>("dsn-unseeded-rng");
    CheckFactories.registerCheck<LockScopePurityCheck>(
        "dsn-lock-scope-purity");
    CheckFactories.registerCheck<GuardedMemberCheck>("dsn-guarded-member");
    CheckFactories.registerCheck<IndexNarrowingCheck>("dsn-index-narrowing");
  }
};

}  // namespace dsn

// Register the module with the shared clang-tidy registry; the volatile
// anchor keeps the object file alive under aggressive dead-stripping.
static ClangTidyModuleRegistry::Add<dsn::DsnTidyModule>
    X("dsn-module", "dsn house checks: determinism, lock discipline, and "
                    "64k+-scale index safety");

volatile int DsnTidyModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
