#include "UnseededRngCheck.h"

#include "DsnTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dsn {

namespace {

AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<QualType>,
                     stdEngineType) {
  return qualType(hasCanonicalType(hasDeclaration(cxxRecordDecl(hasAnyName(
      "::std::linear_congruential_engine", "::std::mersenne_twister_engine",
      "::std::subtract_with_carry_engine", "::std::discard_block_engine",
      "::std::independent_bits_engine", "::std::shuffle_order_engine")))));
}

AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<QualType>,
                     randomDeviceType) {
  return qualType(hasCanonicalType(
      hasDeclaration(cxxRecordDecl(hasName("::std::random_device")))));
}

/// Recursively scan an initializer for calls that read wall-clock time or
/// hardware entropy — the classic "seeded but still irreproducible" pattern
/// (mt19937 g(time(nullptr)); mt19937 g(rd());).
bool referencesAmbientEntropy(const Stmt *S) {
  if (S == nullptr)
    return false;
  if (const auto *Call = dyn_cast<CallExpr>(S)) {
    if (const FunctionDecl *Callee = Call->getDirectCallee()) {
      const std::string Name = Callee->getQualifiedNameAsString();
      if (Name == "time" || Name == "std::time" || Name == "clock" ||
          Name == "std::clock" || Name == "gettimeofday" ||
          Name == "std::chrono::system_clock::now" ||
          Name == "std::chrono::steady_clock::now" ||
          Name == "std::chrono::high_resolution_clock::now")
        return true;
      // random_device::operator() — entropy read.
      if (const auto *Method = dyn_cast<CXXMethodDecl>(Callee)) {
        const CXXRecordDecl *Class = Method->getParent();
        if (Class != nullptr &&
            Class->getQualifiedNameAsString() == "std::random_device")
          return true;
      }
    }
  }
  for (const Stmt *Child : S->children()) {
    if (referencesAmbientEntropy(Child))
      return true;
  }
  return false;
}

/// True for a constructor call with no explicitly written arguments
/// (defaulted arguments included) — i.e. a default-constructed engine.
bool isDefaultConstruction(const Expr *Init) {
  if (Init == nullptr)
    return true;
  const Expr *E = Init->IgnoreParenImpCasts();
  if (const auto *Construct = dyn_cast<CXXConstructExpr>(E)) {
    for (const Expr *Arg : Construct->arguments()) {
      if (!isa<CXXDefaultArgExpr>(Arg))
        return false;
    }
    return true;
  }
  return false;
}

}  // namespace

void UnseededRngCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(varDecl(hasType(randomDeviceType())).bind("device"),
                     this);
  Finder->addMatcher(varDecl(hasType(stdEngineType())).bind("engine"), this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::rand", "::srand", "::drand48", "::lrand48", "::srand48",
                   "::random", "::srandom"))))
          .bind("libc"),
      this);
  // Re-seeding an engine from time or entropy after construction.
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasName("seed"))),
                        on(hasType(stdEngineType())))
          .bind("reseed"),
      this);
}

void UnseededRngCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Device = Result.Nodes.getNodeAs<VarDecl>("device")) {
    if (!isProjectLocation(SM, Device->getLocation()))
      return;
    diag(Device->getLocation(),
         "%0 reads hardware entropy (std::random_device); ambient seeds "
         "unpin every downstream experiment — take an explicit 64-bit seed "
         "and use dsn::Rng")
        << Device;
    return;
  }

  if (const auto *Engine = Result.Nodes.getNodeAs<VarDecl>("engine")) {
    if (!isProjectLocation(SM, Engine->getLocation()))
      return;
    if (isDefaultConstruction(Engine->getInit())) {
      diag(Engine->getLocation(),
           "%0 is a default-constructed (unseeded) std RNG engine; its "
           "sequence is implementation-pinned but invisible in the code — "
           "use dsn::Rng with an explicit seed")
          << Engine;
    } else if (referencesAmbientEntropy(Engine->getInit())) {
      diag(Engine->getLocation(),
           "%0 is seeded from wall-clock time or hardware entropy; the run "
           "cannot be replayed — use dsn::Rng with an explicit seed")
          << Engine;
    } else {
      diag(Engine->getLocation(),
           "%0 bypasses the seeded dsn::Rng entry points; all project "
           "randomness flows through dsn::Rng / dsn::SplitMix64")
          << Engine;
    }
    return;
  }

  if (const auto *Libc = Result.Nodes.getNodeAs<CallExpr>("libc")) {
    if (!isProjectLocation(SM, Libc->getExprLoc()))
      return;
    diag(Libc->getExprLoc(),
         "libc RNG call relies on hidden global state; use dsn::Rng with an "
         "explicit seed");
    return;
  }

  if (const auto *Reseed = Result.Nodes.getNodeAs<CXXMemberCallExpr>("reseed")) {
    if (!isProjectLocation(SM, Reseed->getExprLoc()))
      return;
    if (Reseed->getNumArgs() == 0 ||
        referencesAmbientEntropy(Reseed->getArg(0))) {
      diag(Reseed->getExprLoc(),
           "re-seeding a std engine from ambient state; the run cannot be "
           "replayed — use dsn::Rng with an explicit seed");
    }
  }
}

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
