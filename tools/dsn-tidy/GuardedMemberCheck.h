// dsn-guarded-member: a member that is mutated both inside a lambda handed
// to the dsn::ThreadPool (submit / submit_batch / parallel_for, or the free
// dsn::parallel_for) and outside of such lambdas is shared mutable state by
// construction. It must either carry DSN_GUARDED_BY(<mutex>) so Clang
// Thread Safety Analysis proves every access, be a std::atomic, or carry a
// documented NOLINT suppression naming the publication invariant (DESIGN §8
// documents when the lock-free-shard pattern is the right call).
//
// Mutation sites are collected across the whole translation unit and the
// verdict is delivered per field at end of TU, so the diagnostic can point
// at both conflicting writes.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseMap.h"

namespace clang {
namespace tidy {
namespace dsn {

class GuardedMemberCheck : public ClangTidyCheck {
 public:
  GuardedMemberCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void onEndOfTranslationUnit() override;

 private:
  llvm::DenseMap<const FieldDecl *, SourceLocation> MutatedInPoolTask;
  llvm::DenseMap<const FieldDecl *, SourceLocation> MutatedOutside;
};

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
