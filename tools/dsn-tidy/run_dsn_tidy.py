#!/usr/bin/env python3
"""Driver for the dsn-tidy clang-tidy plugin (tools/dsn-tidy).

Two subcommands:

  fixtures  Negative-control gate. Every dsn-* check must FIRE on its
            fire_<slug>[.cpp] fixture and stay silent on ok_<slug>.cpp.
            A check that silently stops matching — a matcher regression, a
            renamed registry entry, a plugin that fails to load — fails this
            gate, the same philosophy as dsn-slint's unsuppressible
            suppression-syntax findings.

  scan      Run the plugin over translation units (directly or through a
            compile database), print every finding, optionally write a SARIF
            2.1.0 report, and exit 1 when any unsuppressed finding remains.
            NOLINT-suppressed findings never reach clang-tidy's output, so
            "zero findings" here means "zero *unsuppressed* findings".

The clang-tidy binary and plugin path always come from flags, never PATH
guessing — CI pins the LLVM major version and passes both explicitly. All
parsing/reporting logic is pure so ci/test_dsn_tidy_runner.py can exercise
the gate semantics locally with a fake clang-tidy, no clang required.
"""
import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

# clang-tidy diagnostic line: /path/file.cpp:12:5: warning: message [check]
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<level>warning|error):\s+(?P<message>.*?)\s+\[(?P<checks>[^\]\s]+)\]$")
# Hard errors (parse failures, bad flags) have no [check] suffix.
BARE_ERROR_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+error:\s+(?P<message>.*)$")

CHECK_PREFIX = "dsn-"


class Finding:
    def __init__(self, file, line, col, level, message, check):
        self.file = file
        self.line = int(line)
        self.col = int(col)
        self.level = level
        self.message = message
        self.check = check

    def key(self):
        return (self.file, self.line, self.col, self.check, self.message)

    def render(self):
        return (f"{self.file}:{self.line}:{self.col}: [{self.check}] "
                f"{self.message}")


def parse_diagnostics(text):
    """Extract deduplicated findings from clang-tidy stdout/stderr.

    Header diagnostics repeat once per including TU; report each once. Bare
    errors (no [check] tag — e.g. a fixture that fails to parse) are
    reported under the pseudo-check `clang-diagnostic-error` so they can
    never be mistaken for a clean run.
    """
    findings, seen = [], set()
    for line in text.splitlines():
        m = DIAG_RE.match(line.strip())
        if m is not None:
            for check in m.group("checks").split(","):
                f = Finding(m.group("file"), m.group("line"), m.group("col"),
                            m.group("level"), m.group("message"), check)
                if f.key() not in seen:
                    seen.add(f.key())
                    findings.append(f)
            continue
        m = BARE_ERROR_RE.match(line.strip())
        if m is not None:
            f = Finding(m.group("file"), m.group("line"), m.group("col"),
                        "error", m.group("message"), "clang-diagnostic-error")
            if f.key() not in seen:
                seen.add(f.key())
                findings.append(f)
    return findings


def to_sarif(findings, tool_name="dsn-tidy"):
    """Minimal SARIF 2.1.0 document for CI artifact upload / code scanning."""
    rules = sorted({f.check for f in findings})
    return {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "DESIGN.md#8-static-analysis--concurrency-discipline",
                "rules": [{"id": rule} for rule in rules],
            }},
            "results": [{
                "ruleId": f.check,
                "level": "error" if f.level == "error" else "warning",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.file},
                    "region": {"startLine": f.line, "startColumn": f.col},
                }}],
            } for f in findings],
        }],
    }


def check_name_for_fixture(path):
    """fire_lock_scope_purity.cpp -> dsn-lock-scope-purity."""
    slug = re.sub(r"^(fire|ok)_", "", path.stem)
    return CHECK_PREFIX + slug.replace("_", "-")


def fixture_pairs(fixture_dir):
    """Yield (check, fire_path, ok_path) for every fire_* fixture, sorted.

    A fire fixture without its ok twin (or vice versa) is a hard error:
    every check must be demonstrated both firing and silenced.
    """
    fixture_dir = Path(fixture_dir)
    fires = {check_name_for_fixture(p): p
             for p in sorted(fixture_dir.rglob("fire_*.cpp"))}
    oks = {check_name_for_fixture(p): p
           for p in sorted(fixture_dir.rglob("ok_*.cpp"))}
    if set(fires) != set(oks):
        raise SystemExit(
            f"dsn-tidy fixtures: unpaired fixtures — fire for {sorted(fires)}"
            f" vs ok for {sorted(oks)}")
    return [(check, fires[check], oks[check]) for check in sorted(fires)]


def run_clang_tidy(clang_tidy, plugin, checks, files, extra_args=(),
                   compile_flags=()):
    cmd = [str(clang_tidy), f"--load={plugin}", f"--checks=-*,{checks}",
           "--quiet", *extra_args, *[str(f) for f in files]]
    if compile_flags:
        cmd += ["--", *compile_flags]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc, parse_diagnostics(proc.stdout + "\n" + proc.stderr)


def cmd_fixtures(args):
    fixture_dir = Path(args.fixture_dir)
    compile_flags = ["-std=c++17", f"-I{fixture_dir}"]
    failures = []
    for check, fire, ok in fixture_pairs(fixture_dir):
        for path, expectation in ((fire, "fire"), (ok, "ok")):
            proc, findings = run_clang_tidy(
                args.clang_tidy, args.plugin, check, [path],
                compile_flags=compile_flags)
            errors = [f for f in findings
                      if f.check == "clang-diagnostic-error"]
            hits = [f for f in findings if f.check == check]
            if errors:
                failures.append(f"{path.name}: fixture does not parse:\n  "
                                + "\n  ".join(e.render() for e in errors))
            elif expectation == "fire" and not hits:
                failures.append(
                    f"{path.name}: {check} produced NO findings on its fire "
                    f"fixture — the check has gone dead (clang-tidy exit "
                    f"{proc.returncode})")
            elif expectation == "ok" and hits:
                failures.append(
                    f"{path.name}: {check} fired on its ok fixture:\n  "
                    + "\n  ".join(h.render() for h in hits))
            else:
                label = ("fires" if expectation == "fire" else "clean")
                print(f"dsn-tidy fixtures: {check} {label} "
                      f"({path.name}: {len(hits)} finding(s))")
    if failures:
        print("dsn-tidy fixtures: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("dsn-tidy fixtures: PASS")
    return 0


def collect_sources(paths):
    sources = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            sources.extend(sorted(path.rglob("*.cpp")))
        elif path.is_file():
            sources.append(path)
        else:
            raise SystemExit(f"dsn-tidy scan: no such path: {path}")
    return sources


def cmd_scan(args):
    sources = collect_sources(args.paths)
    if not sources:
        raise SystemExit("dsn-tidy scan: no .cpp sources found")
    extra = [f"-p={args.compdb}"] if args.compdb else []
    proc, findings = run_clang_tidy(
        args.clang_tidy, args.plugin, args.checks, sources, extra_args=extra)
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(findings), indent=2) + "\n")
    for f in findings:
        print(f.render(), file=sys.stderr)
    verdict = "FAIL" if findings else "PASS"
    print(f"dsn-tidy scan: {verdict} ({len(sources)} file(s), "
          f"{len(findings)} unsuppressed finding(s))")
    if findings:
        return 1
    if proc.returncode != 0:
        # No findings but a nonzero exit means the scan itself broke (bad
        # plugin path, compdb missing) — never report that as clean.
        print(f"dsn-tidy scan: clang-tidy exited {proc.returncode}:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--clang-tidy", required=True,
                        help="clang-tidy binary (CI pins the LLVM major)")
    common.add_argument("--plugin", required=True,
                        help="path to the built libdsn_tidy plugin")

    fixtures = sub.add_parser("fixtures", parents=[common],
                              help="fire/ok negative-control gate")
    fixtures.add_argument("--fixture-dir",
                          default=str(Path(__file__).parent / "fixtures"))
    fixtures.set_defaults(func=cmd_fixtures)

    scan = sub.add_parser("scan", parents=[common],
                          help="tree scan + SARIF report")
    scan.add_argument("--compdb", help="build dir with compile_commands.json")
    scan.add_argument("--sarif", help="write a SARIF 2.1.0 report here")
    scan.add_argument("--checks", default="dsn-*",
                      help="clang-tidy -checks payload (default: dsn-*)")
    scan.add_argument("paths", nargs="+",
                      help="files or directories to scan")
    scan.set_defaults(func=cmd_scan)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
