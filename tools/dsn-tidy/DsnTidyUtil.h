// Shared helpers for the dsn-tidy checks: deterministic-marker lookup and
// path scoping. Kept header-only and free of check state so every check can
// include it without ordering constraints.
//
// Compatibility note: this plugin builds against stock clang-tidy headers
// (LLVM 14 through 18). Stick to the stable subset of the AST/Basic APIs —
// no llvm::Optional, no APInt methods deprecated after 14.
#pragma once

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/DenseMap.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace dsn {

/// True when the file containing `FID` carries the project determinism
/// marker (`// dsn-slint: deterministic`). The marker is shared with the
/// token-level dsn-slint tier so a file opts into both tiers at once.
/// Results are memoised per FileID in `Cache` — buffer scans are cheap but
/// the same file is queried once per matched declaration.
inline bool hasDeterministicMarker(const SourceManager &SM, FileID FID,
                                   llvm::DenseMap<FileID, bool> &Cache) {
  auto It = Cache.find(FID);
  if (It != Cache.end())
    return It->second;
  bool Invalid = false;
  llvm::StringRef Buffer = SM.getBufferData(FID, &Invalid);
  const bool Marked = !Invalid && Buffer.contains("dsn-slint: deterministic");
  Cache[FID] = Marked;
  return Marked;
}

/// True when `Loc` (after macro expansion) is usable for a project
/// diagnostic: valid and not inside a system header.
inline bool isProjectLocation(const SourceManager &SM, SourceLocation Loc) {
  if (Loc.isInvalid())
    return false;
  return !SM.isInSystemHeader(SM.getExpansionLoc(Loc));
}

/// True when the expansion file of `Loc` lives under one of the
/// comma-separated directory names in `ScopeDirs` (e.g. "graph,routing,sim"
/// matches any path containing "/graph/"). An empty ScopeDirs matches
/// everywhere.
inline bool inScopedDir(const SourceManager &SM, SourceLocation Loc,
                        llvm::StringRef ScopeDirs) {
  if (ScopeDirs.empty())
    return true;
  const llvm::StringRef Path = SM.getFilename(SM.getExpansionLoc(Loc));
  llvm::SmallVector<llvm::StringRef, 8> Dirs;
  ScopeDirs.split(Dirs, ',', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef Dir : Dirs) {
    const std::string Needle = ("/" + Dir.trim() + "/").str();
    if (Path.contains(Needle))
      return true;
  }
  return false;
}

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
