// dsn-unseeded-rng: every source of ambient (non-reproducible) randomness is
// a defect anywhere in the tree. All stochastic behaviour must flow through
// dsn::Rng / dsn::SplitMix64, which take explicit 64-bit seeds.
//
// Beyond the dsn-slint token tier this check understands:
//   - std::random_device declarations through aliases and `auto`;
//   - std engines named via their class templates (mersenne_twister_engine,
//     linear_congruential_engine, subtract_with_carry_engine), so a
//     `using Gen = std::mt19937; Gen g;` is caught even though the token
//     "mt19937" never appears at the declaration;
//   - default-constructed engines (unseeded) vs engines seeded from time()
//     or chrono clocks, with tailored diagnostics;
//   - libc rand()/srand()/drand48()/lrand48()/random()/srandom() calls.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dsn {

class UnseededRngCheck : public ClangTidyCheck {
 public:
  UnseededRngCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
