#include "LockScopePurityCheck.h"

#include "DsnTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dsn {

namespace {

constexpr int kMaxCallDepth = 3;

/// Functions whose very purpose is to block or touch the filesystem. The
/// list is spelled with fully qualified names as produced by
/// getQualifiedNameAsString (no leading ::).
bool isBlockingFunctionName(llvm::StringRef Name) {
  static const char *const kNames[] = {
      "fopen",   "freopen", "fclose",  "fread",   "fwrite", "fprintf",
      "vfprintf", "fscanf",  "fgets",   "fputs",   "fputc",  "fgetc",
      "puts",    "printf",  "vprintf", "scanf",   "fflush", "remove",
      "rename",  "system",  "popen",   "pclose",  "open",   "close",
      "read",    "write",   "fsync",   "sleep",   "usleep", "nanosleep",
      "std::getline", "std::this_thread::sleep_for",
      "std::this_thread::sleep_until"};
  for (const char *Candidate : kNames) {
    if (Name == Candidate)
      return true;
  }
  return false;
}

/// True when `RD` is, or transitively inherits from, a class whose
/// qualified name starts with one of `Prefixes` (e.g. "std::basic_ostream").
bool matchesOrInherits(const CXXRecordDecl *RD,
                       llvm::ArrayRef<llvm::StringRef> Prefixes) {
  if (RD == nullptr)
    return false;
  const std::string Name = RD->getQualifiedNameAsString();
  for (llvm::StringRef Prefix : Prefixes) {
    // std::string::rfind(p, 0) == 0 is the prefix test; StringRef spells it
    // startswith in LLVM 14 and starts_with in 18, so neither is portable.
    if (Name.rfind(Prefix.str(), 0) == 0)
      return true;
  }
  if (!RD->hasDefinition())
    return false;
  for (const CXXBaseSpecifier &Base : RD->bases()) {
    if (matchesOrInherits(Base.getType()->getAsCXXRecordDecl(), Prefixes))
      return true;
  }
  return false;
}

const CXXRecordDecl *recordOfExpr(const Expr *E) {
  if (E == nullptr)
    return nullptr;
  return E->getType().getNonReferenceType().getCanonicalType()
      ->getAsCXXRecordDecl();
}

const llvm::StringRef kFileStreamPrefixes[] = {
    "std::basic_ofstream", "std::basic_ifstream", "std::basic_fstream",
    "std::basic_filebuf"};
const llvm::StringRef kAnyStreamPrefixes[] = {
    "std::basic_ostream", "std::basic_istream", "std::basic_iostream",
    "std::basic_ofstream", "std::basic_ifstream", "std::basic_fstream"};

}  // namespace

void LockScopePurityCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      varDecl(hasType(hasCanonicalType(hasDeclaration(
                  cxxRecordDecl(hasName("::dsn::LockGuard"))))),
              hasAncestor(compoundStmt().bind("scope")))
          .bind("guard"),
      this);
}

std::string LockScopePurityCheck::classifyBlockingCall(const Expr *E) const {
  if (const auto *Member = dyn_cast<CXXMemberCallExpr>(E)) {
    const CXXRecordDecl *Class = Member->getRecordDecl();
    if (Class == nullptr)
      return "";
    const std::string ClassName = Class->getQualifiedNameAsString();
    const auto *Method = Member->getMethodDecl();
    const std::string MethodName =
        Method != nullptr ? Method->getNameAsString() : "";
    if (matchesOrInherits(Class, kFileStreamPrefixes))
      return "file-stream call '" + ClassName + "::" + MethodName + "'";
    if (matchesOrInherits(Class, kAnyStreamPrefixes) &&
        (MethodName == "flush" || MethodName == "write" ||
         MethodName == "put" || MethodName == "read" || MethodName == "get" ||
         MethodName == "getline" || MethodName == "sync" ||
         MethodName == "open" || MethodName == "close"))
      return "stream I/O call '" + ClassName + "::" + MethodName + "'";
    if (ClassName == "dsn::Json" &&
        (MethodName == "dump" || MethodName == "dump_to"))
      return "serialization call 'dsn::Json::" + MethodName + "'";
    return "";
  }
  if (const auto *Op = dyn_cast<CXXOperatorCallExpr>(E)) {
    const OverloadedOperatorKind Kind = Op->getOperator();
    if ((Kind == OO_LessLess || Kind == OO_GreaterGreater) &&
        Op->getNumArgs() >= 1 &&
        matchesOrInherits(recordOfExpr(Op->getArg(0)), kAnyStreamPrefixes))
      return "stream serialization (operator<</>> on a std stream)";
    return "";
  }
  if (const auto *Call = dyn_cast<CallExpr>(E)) {
    if (const FunctionDecl *Callee = Call->getDirectCallee()) {
      const std::string Name = Callee->getQualifiedNameAsString();
      if (isBlockingFunctionName(Name))
        return "blocking/IO call '" + Name + "'";
    }
    return "";
  }
  if (const auto *Construct = dyn_cast<CXXConstructExpr>(E)) {
    if (matchesOrInherits(Construct->getConstructor()->getParent(),
                          kFileStreamPrefixes))
      return "file-stream construction (opens a file)";
  }
  return "";
}

void LockScopePurityCheck::scanForBlocking(
    const Stmt *S, SourceLocation ReportLoc, const VarDecl *Guard, int Depth,
    llvm::SmallPtrSet<const FunctionDecl *, 8> &Visited) {
  if (S == nullptr)
    return;
  // A lambda defined under the lock executes later, outside the critical
  // section; its body is some other scope's problem.
  if (isa<LambdaExpr>(S))
    return;

  if (const auto *E = dyn_cast<Expr>(S)) {
    const std::string What = classifyBlockingCall(E);
    if (!What.empty()) {
      if (Depth == 0) {
        diag(E->getExprLoc(),
             "%0 while dsn::LockGuard %1 is held; the critical section "
             "inherits the I/O latency and stalls every contending thread — "
             "move the work outside the lock")
            << What << Guard;
      } else {
        diag(ReportLoc,
             "call reaches %0 while dsn::LockGuard %1 is held (via a "
             "function body visible in this translation unit); move the "
             "blocking work outside the lock")
            << What << Guard;
      }
      return;  // one diagnostic per offending call chain is enough
    }
    // Follow direct calls one level into bodies visible in this TU: the
    // stop_trace bug hid its fflush behind a small helper.
    if (const auto *Call = dyn_cast<CallExpr>(E)) {
      const FunctionDecl *Callee = Call->getDirectCallee();
      if (Callee != nullptr && Callee->hasBody() && Depth < kMaxCallDepth &&
          Visited.insert(Callee->getCanonicalDecl()).second) {
        scanForBlocking(Callee->getBody(),
                        Depth == 0 ? Call->getExprLoc() : ReportLoc, Guard,
                        Depth + 1, Visited);
      }
    }
  }

  for (const Stmt *Child : S->children())
    scanForBlocking(Child, ReportLoc, Guard, Depth, Visited);
}

void LockScopePurityCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Guard = Result.Nodes.getNodeAs<VarDecl>("guard");
  const auto *Scope = Result.Nodes.getNodeAs<CompoundStmt>("scope");
  if (Guard == nullptr || Scope == nullptr)
    return;
  if (!isProjectLocation(*Result.SourceManager, Guard->getLocation()))
    return;

  // Everything that executes after the guard's declaration statement, inside
  // the same compound scope, runs with the lock held.
  bool AfterGuard = false;
  for (const Stmt *Child : Scope->body()) {
    if (!AfterGuard) {
      if (const auto *DS = dyn_cast<DeclStmt>(Child)) {
        for (const Decl *D : DS->decls()) {
          if (D == Guard) {
            AfterGuard = true;
            break;
          }
        }
      }
      continue;
    }
    llvm::SmallPtrSet<const FunctionDecl *, 8> Visited;
    scanForBlocking(Child, Child->getBeginLoc(), Guard, /*Depth=*/0, Visited);
  }
}

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
