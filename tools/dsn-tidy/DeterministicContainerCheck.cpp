#include "DeterministicContainerCheck.h"

#include "DsnTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dsn {

namespace {

AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<QualType>,
                     unorderedContainerType) {
  // Canonical-type matching is the whole point: after desugaring aliases,
  // `auto`, and dependent sugar, the declaration behind the type is the
  // std::unordered_* class template specialization itself.
  return qualType(hasCanonicalType(hasDeclaration(cxxRecordDecl(hasAnyName(
      "::std::unordered_map", "::std::unordered_set",
      "::std::unordered_multimap", "::std::unordered_multiset")))));
}

}  // namespace

void DeterministicContainerCheck::registerMatchers(MatchFinder *Finder) {
  // Variables, fields and parameters of (possibly aliased) unordered type.
  Finder->addMatcher(valueDecl(hasType(unorderedContainerType())).bind("decl"),
                     this);
  // The alias declarations themselves, so the fix lands where the type is
  // introduced and not only where it is used.
  Finder->addMatcher(
      typedefNameDecl(hasType(unorderedContainerType())).bind("decl"), this);
  // Functions returning an unordered container (callers will iterate it).
  Finder->addMatcher(
      functionDecl(returns(unorderedContainerType())).bind("decl"), this);
}

void DeterministicContainerCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *D = Result.Nodes.getNodeAs<NamedDecl>("decl");
  if (D == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  const SourceLocation Loc = D->getLocation();
  if (!isProjectLocation(SM, Loc))
    return;
  // Only files that opted into determinism are in scope; the marker is the
  // same one the dsn-slint token tier keys on.
  const FileID FID = SM.getFileID(SM.getExpansionLoc(Loc));
  if (!hasDeterministicMarker(SM, FID, MarkerCache))
    return;
  diag(Loc,
       "%0 has an iteration-order-unstable canonical type in a "
       "deterministic-marked file; hash-seeded order breaks byte-identical "
       "replay — use std::map/std::set or a sorted vector")
      << D;
}

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
