#include "GuardedMemberCheck.h"

#include "DsnTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dsn {

namespace {

/// True when `Callee` is one of the dsn::ThreadPool task-submission entry
/// points (member submit/submit_batch/parallel_for) or the free
/// dsn::parallel_for convenience wrapper.
bool isPoolSubmission(const FunctionDecl *Callee) {
  if (Callee == nullptr)
    return false;
  const std::string Name = Callee->getQualifiedNameAsString();
  return Name == "dsn::ThreadPool::submit" ||
         Name == "dsn::ThreadPool::submit_batch" ||
         Name == "dsn::ThreadPool::parallel_for" ||
         Name == "dsn::parallel_for";
}

/// Walks the parent chain of `Node`: returns true when the mutation sits
/// inside a lambda that is (transitively) an argument of a ThreadPool
/// submission call. The lambda may be wrapped (std::function construction,
/// vector push_back for submit_batch) — any enclosing submission call after
/// an enclosing lambda counts.
bool insidePoolTask(const Stmt *Node, ASTContext &Ctx) {
  bool SeenLambda = false;
  DynTypedNode Current = DynTypedNode::create(*Node);
  for (int Hops = 0; Hops < 64; ++Hops) {
    const auto Parents = Ctx.getParents(Current);
    if (Parents.empty())
      return false;
    Current = Parents[0];
    if (const auto *Lambda = Current.get<LambdaExpr>()) {
      (void)Lambda;
      SeenLambda = true;
      continue;
    }
    if (!SeenLambda)
      continue;
    if (const auto *Call = Current.get<CallExpr>()) {
      if (isPoolSubmission(Call->getDirectCallee()))
        return true;
    }
  }
  return false;
}

/// True for std::atomic<...> members — the sanctioned annotation-free way to
/// share a scalar with pool tasks.
bool isAtomicField(const FieldDecl *Field) {
  const QualType Canonical = Field->getType().getCanonicalType();
  if (Canonical->isAtomicType())
    return true;
  if (const CXXRecordDecl *RD = Canonical->getAsCXXRecordDecl())
    return RD->getQualifiedNameAsString() == "std::atomic";
  return false;
}

}  // namespace

void GuardedMemberCheck::registerMatchers(MatchFinder *Finder) {
  const auto MutatedMember =
      memberExpr(member(fieldDecl().bind("field"))).bind("member");
  Finder->addMatcher(
      binaryOperator(isAssignmentOperator(),
                     hasLHS(ignoringParenImpCasts(MutatedMember)))
          .bind("mutation"),
      this);
  Finder->addMatcher(
      unaryOperator(hasAnyOperatorName("++", "--"),
                    hasUnaryOperand(ignoringParenImpCasts(MutatedMember)))
          .bind("mutation"),
      this);
}

void GuardedMemberCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("field");
  const auto *Mutation = Result.Nodes.getNodeAs<Stmt>("mutation");
  if (Field == nullptr || Mutation == nullptr)
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (!isProjectLocation(SM, Mutation->getBeginLoc()) ||
      !isProjectLocation(SM, Field->getLocation()))
    return;
  if (isAtomicField(Field))
    return;
  // Already annotated: Thread Safety Analysis owns this field.
  if (Field->hasAttr<GuardedByAttr>() || Field->hasAttr<PtGuardedByAttr>())
    return;

  const FieldDecl *Canonical =
      cast<FieldDecl>(Field->getCanonicalDecl());
  auto &Bucket = insidePoolTask(Mutation, *Result.Context)
                     ? MutatedInPoolTask
                     : MutatedOutside;
  Bucket.insert({Canonical, Mutation->getBeginLoc()});
}

void GuardedMemberCheck::onEndOfTranslationUnit() {
  for (const auto &Entry : MutatedInPoolTask) {
    const FieldDecl *Field = Entry.first;
    const auto Outside = MutatedOutside.find(Field);
    if (Outside == MutatedOutside.end())
      continue;
    diag(Field->getLocation(),
         "member %0 is mutated both inside a ThreadPool task and outside of "
         "one but carries no DSN_GUARDED_BY annotation; annotate it, make it "
         "std::atomic, or document the publication invariant with a NOLINT")
        << Field;
    diag(Entry.second, "mutated inside a pool task here",
         DiagnosticIDs::Note);
    diag(Outside->second, "mutated outside any pool task here",
         DiagnosticIDs::Note);
  }
  MutatedInPoolTask.clear();
  MutatedOutside.clear();
}

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
