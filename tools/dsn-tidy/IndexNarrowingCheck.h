// dsn-index-narrowing: flags implicit narrowing of 64-bit integer values
// (node/link/offset arithmetic, container sizes, accumulated sums) into
// 32-bit-or-smaller variables in the scale-critical directories (graph/,
// routing/, sim/ by default). At n = 65k+ switches, link and channel counts
// clear 2^32 products long before anything crashes — the truncation is
// silent and corrupts indices far from the overflow site.
//
// The lexer tier cannot see this class at all: the narrowing usually
// happens through `auto`, typedefs (NodeId = uint32_t), or template
// instantiation where no cast is spelled in the source. Constant
// expressions that provably fit the destination are exempt; an explicit
// static_cast is the documented way to say "I bounded this".
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dsn {

class IndexNarrowingCheck : public ClangTidyCheck {
 public:
  IndexNarrowingCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context),
        ScopeDirs(Options.get("ScopeDirs", "graph,routing,sim")) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  /// Comma-separated directory names the check is scoped to; empty means
  /// everywhere. Matched as "/<name>/" substrings of the expansion-file path.
  const std::string ScopeDirs;
};

}  // namespace dsn
}  // namespace tidy
}  // namespace clang
