// OK fixture for dsn-unseeded-rng: explicit-seed arithmetic generators (the
// dsn::Rng shape), no std engines, no entropy, no libc RNG — plus the NOLINT
// escape hatch with a written reason. Must produce zero findings.
#include "support/stub_aliases.hpp"

namespace dsn_fixture {

// The house pattern: a tiny explicit-seed generator (dsn::SplitMix64 shape).
class SplitMix {
 public:
  explicit SplitMix(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

std::uint64_t deterministic_draw(std::uint64_t seed) {
  SplitMix rng(seed);
  return rng.next();
}

void sanctioned_escape_hatch() {
  // Interop with an external API that demands a std engine; seed is pinned.
  // NOLINTNEXTLINE(dsn-unseeded-rng)
  Gen pinned(0x5eedu);
  (void)pinned;
}

}  // namespace dsn_fixture
