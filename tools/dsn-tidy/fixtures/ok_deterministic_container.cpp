// dsn-slint: deterministic — fixture stands in for a replay-critical file.
//
// OK fixture for dsn-deterministic-container: ordered containers (also via
// aliases and `auto`) are fine in a deterministic-marked file, and a NOLINT
// with a written reason is the sanctioned escape hatch. Must produce zero
// findings.
#include "support/stub_aliases.hpp"

namespace dsn_fixture {

struct ReplayState {
  OrderedIndex flows_;
  OrderedLookup<long> routes_;
  std::vector<int> order_;
  // Scratch only — rebuilt and emitted through a sorted copy before dumping.
  // NOLINTNEXTLINE(dsn-deterministic-container)
  FlowIndex scratch_;
};

void snapshot() {
  auto index = make_ordered_index();
  (void)index;
}

OrderedIndex rebuild();

}  // namespace dsn_fixture
