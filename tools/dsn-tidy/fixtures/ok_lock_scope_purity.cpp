// OK fixture for dsn-lock-scope-purity: pure state mutation under the lock;
// I/O before the guard is taken, after the scope closes, or inside a lambda
// that merely gets *defined* under the lock (it runs later, outside); and
// the NOLINT escape hatch. Must produce zero findings.
#include "support/stub_dsn.hpp"

namespace dsn_fixture {

struct Registry {
  dsn::Mutex mutex_;
  std::ofstream out_;
  long long generation_ = 0;
  std::vector<long long> pending_;
};

void pure_critical_section(Registry& reg) {
  reg.out_.flush();  // I/O while the lock is NOT held: fine.
  dsn::LockGuard guard(reg.mutex_);
  reg.generation_ += 1;
  reg.pending_.push_back(reg.generation_);
}

void io_after_scope(Registry& reg) {
  {
    dsn::LockGuard guard(reg.mutex_);
    reg.generation_ += 1;
  }
  // The guard died with its scope; this write is outside the section.
  reg.out_.write("x", 1);
}

void lambda_defined_under_lock(Registry& reg, dsn::ThreadPool& pool) {
  dsn::LockGuard guard(reg.mutex_);
  reg.generation_ += 1;
  // The lambda body executes on a worker later, not inside this section.
  pool.submit([&reg] { reg.out_.flush(); });
}

void documented_exception(Registry& reg) {
  dsn::LockGuard guard(reg.mutex_);
  // Shutdown path: single-threaded by contract, flush must see final state.
  fflush(nullptr);  // NOLINT(dsn-lock-scope-purity)
}

}  // namespace dsn_fixture
