// FIRE fixture for dsn-lock-scope-purity: file I/O, stream serialization,
// blocking sleeps, and an I/O call hidden one level down the call graph, all
// while a dsn::LockGuard is held. This is the TraceWriter::stop_trace bug
// class PR 6 fixed by hand — now machine-checked.
#include "support/stub_dsn.hpp"

namespace dsn_fixture {

struct TraceSink {
  dsn::Mutex mutex_;
  std::ofstream out_;
  long long events_ = 0;
};

// The hidden-I/O helper: the blocking call is not lexically under any lock.
void flush_everything(TraceSink& sink) { sink.out_.flush(); }

void direct_io_under_lock(TraceSink& sink) {
  dsn::LockGuard guard(sink.mutex_);
  sink.events_ += 1;
  // Direct libc file I/O inside the critical section.
  fflush(nullptr);
}

void stream_write_under_lock(TraceSink& sink) {
  dsn::LockGuard guard(sink.mutex_);
  // Member I/O on a file stream.
  sink.out_.write("x", 1);
}

void serialization_under_lock(TraceSink& sink, std::ostream& os) {
  dsn::LockGuard guard(sink.mutex_);
  // Stream serialization extends the critical section by the format cost.
  os << sink.events_;
}

void sleep_under_lock(TraceSink& sink) {
  dsn::LockGuard guard(sink.mutex_);
  std::this_thread::sleep_for(std::chrono::nanoseconds{100});
}

void reachable_io_under_lock(TraceSink& sink) {
  dsn::LockGuard guard(sink.mutex_);
  // The stop_trace shape: innocuous-looking helper, fflush inside.
  flush_everything(sink);
}

}  // namespace dsn_fixture
