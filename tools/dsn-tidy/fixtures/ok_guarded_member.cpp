// OK fixture for dsn-guarded-member: every sanctioned way to share state
// with pool tasks — DSN_GUARDED_BY annotation, std::atomic, mutation on one
// side only, and the documented-suppression escape hatch. Must produce zero
// findings.
#include "support/stub_dsn.hpp"

namespace dsn_fixture {

class ShardMerger {
 public:
  void run(dsn::ThreadPool& pool) {
    pool.submit([this] {
      guarded_count_++;
      atomic_count_ = 1;
      task_only_ += 1;
      publish_slot_ = 1;
    });
  }

  void reset() {
    guarded_count_ = 0;
    atomic_count_ = 0;
    host_only_ = 0;
    publish_slot_ = 0;
  }

 private:
  dsn::Mutex mutex_;
  long long guarded_count_ DSN_GUARDED_BY(mutex_) = 0;
  std::atomic<long long> atomic_count_;
  long long task_only_ = 0;   // mutated only inside pool tasks
  long long host_only_ = 0;   // mutated only outside pool tasks
  // Lock-free shard publication per DESIGN §8: readers are ordered by the
  // release store on atomic_count_, the published prefix is immutable.
  // NOLINTNEXTLINE(dsn-guarded-member)
  long long publish_slot_ = 0;
};

}  // namespace dsn_fixture
