// dsn-slint: deterministic — fixture stands in for a replay-critical file.
//
// FIRE fixture for dsn-deterministic-container: every declaration below has
// an iteration-order-unstable *canonical* type, but none of them spells
// std::unordered_* — an alias, an `auto`, and an alias-template
// instantiation. The committed comparison test (ci/test_dsn_tidy_runner.py)
// proves dsn-slint reports zero findings on this file while dsn-tidy must
// report one per declaration.
#include "support/stub_aliases.hpp"

namespace dsn_fixture {

struct ReplayState {
  // Alias to std::unordered_map — lexer-invisible.
  FlowIndex flows_;
  // Alias template instantiation — the written type is `Lookup<long>`.
  Lookup<long> routes_;
};

void snapshot() {
  // `auto` deduced from a factory return type.
  auto index = make_index();
  (void)index;
}

// Function returning an unordered container through the alias.
FlowIndex rebuild();

}  // namespace dsn_fixture
