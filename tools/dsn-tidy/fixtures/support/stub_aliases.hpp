// Type aliases used by the fixtures to prove the semantic tier sees through
// sugar the token tier cannot. This header deliberately carries NO
// deterministic marker (spelling the marker here, even in prose, would make
// both tiers treat the header as marked), so the literal std::unordered_*
// spellings below are legal for dsn-slint — the marked fixture files only
// ever use the alias names, which is exactly the hole dsn-tidy closes.
// dsn-slint-ignore-file(seeded-rng-only): alias targets for the
// dsn-unseeded-rng fixtures; never instantiated outside them
#pragma once

#include "stub_std.hpp"

namespace dsn_fixture {

// Lexer-invisible container sugar.
using FlowIndex = std::unordered_map<int, int>;
using OrderedIndex = std::map<int, int>;
template <typename K>
using Lookup = std::unordered_map<K, K>;
template <typename K>
using OrderedLookup = std::map<K, K>;

FlowIndex make_index();
OrderedIndex make_ordered_index();

// Lexer-invisible RNG sugar.
using Gen = std::mt19937;
using Entropy = std::random_device;

}  // namespace dsn_fixture
