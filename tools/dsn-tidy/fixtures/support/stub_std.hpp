// Minimal std:: surface for the dsn-tidy fixtures. The checks match
// *canonical qualified names* (::std::unordered_map, ::std::random_device,
// ::std::basic_ofstream, ...), so hermetic stand-ins with the right names
// exercise exactly the same matcher paths as libstdc++ — without dragging
// a real standard library (and its version drift) into the fixture ASTs.
// This mirrors how clang-tidy's own test suite fakes the std headers.
//
// dsn-slint-ignore-file(header-hygiene, seeded-rng-only, annotated-mutex-only, no-unordered-in-deterministic): fixture stub — declares the very tokens the checks exist to flag
#pragma once

typedef unsigned long long uint64_t_stub;

namespace std {

using size_t = decltype(sizeof(0));
using int32_t = int;
using uint32_t = unsigned int;
using int64_t = long long;
using uint64_t = unsigned long long;

template <typename T>
class allocator {};

template <typename K, typename V, typename H = int, typename E = int,
          typename A = allocator<K>>
class unordered_map {
 public:
  void insert(const K&, const V&) {}
  V& operator[](const K&);
  size_t size() const { return 0; }
};

template <typename K, typename H = int, typename E = int,
          typename A = allocator<K>>
class unordered_set {
 public:
  void insert(const K&) {}
};

template <typename K, typename V>
class unordered_multimap {};
template <typename K>
class unordered_multiset {};

template <typename K, typename V>
class map {
 public:
  V& operator[](const K&);
};
template <typename K>
class set {
 public:
  void insert(const K&) {}
};

template <typename T>
class vector {
 public:
  void push_back(const T&) {}
  size_t size() const { return 0; }
  T& operator[](size_t);
};

class random_device {
 public:
  unsigned operator()() { return 0u; }
};

template <typename UInt, UInt a, UInt c, UInt m>
class linear_congruential_engine {
 public:
  linear_congruential_engine() {}
  explicit linear_congruential_engine(UInt s) { (void)s; }
  void seed(UInt s) { (void)s; }
  UInt operator()() { return 0; }
};

template <typename UInt, int w, int n, int m, int r, UInt A, int u, UInt d,
          int s, UInt b, int t, UInt c, int l, UInt f>
class mersenne_twister_engine {
 public:
  mersenne_twister_engine() {}
  explicit mersenne_twister_engine(UInt sd) { (void)sd; }
  void seed(UInt sd) { (void)sd; }
  UInt operator()() { return 0; }
};

using mt19937 =
    mersenne_twister_engine<unsigned int, 32, 624, 397, 31, 0x9908b0dfu, 11,
                            0xffffffffu, 7, 0x9d2c5680u, 15, 0xefc60000u, 18,
                            1812433253u>;
using mt19937_64 =
    mersenne_twister_engine<unsigned long long, 64, 312, 156, 31,
                            0xb5026f5aa96619e9ull, 29, 0x5555555555555555ull,
                            17, 0x71d67fffeda60000ull, 37,
                            0xfff7eee000000000ull, 43, 6364136223846793005ull>;
using default_random_engine =
    linear_congruential_engine<unsigned int, 48271u, 0u, 2147483647u>;
using minstd_rand =
    linear_congruential_engine<unsigned int, 48271u, 0u, 2147483647u>;

template <typename C>
class basic_ostream {
 public:
  void flush() {}
  void write(const C*, size_t) {}
  void put(C) {}
};
template <typename C>
class basic_istream {
 public:
  void read(C*, size_t) {}
  int get() { return 0; }
};
template <typename C>
class basic_ofstream : public basic_ostream<C> {
 public:
  basic_ofstream() {}
  explicit basic_ofstream(const char*) {}
  void open(const char*) {}
  void close() {}
};
template <typename C>
class basic_ifstream : public basic_istream<C> {
 public:
  basic_ifstream() {}
  explicit basic_ifstream(const char*) {}
  void open(const char*) {}
  void close() {}
};
using ostream = basic_ostream<char>;
using istream = basic_istream<char>;
using ofstream = basic_ofstream<char>;
using ifstream = basic_ifstream<char>;

template <typename C>
basic_ostream<C>& operator<<(basic_ostream<C>& os, const C*) {
  return os;
}
template <typename C>
basic_ostream<C>& operator<<(basic_ostream<C>& os, long long) {
  return os;
}

class string {
 public:
  string() {}
  string(const char*) {}  // NOLINT(google-explicit-constructor)
};

namespace chrono {
struct nanoseconds {
  long long count_;
};
struct time_point {
  long long ticks;
};
struct system_clock {
  static time_point now() { return {0}; }
};
struct steady_clock {
  static time_point now() { return {0}; }
};
}  // namespace chrono

namespace this_thread {
inline void sleep_for(chrono::nanoseconds) {}
}  // namespace this_thread

template <typename T>
struct atomic {
  atomic() {}
  T load() const { return T{}; }
  void store(T) {}
  atomic& operator=(T) { return *this; }
  atomic& operator++() { return *this; }
};

}  // namespace std

extern "C" {
long time(long*);
int rand(void);
void srand(unsigned);
double drand48(void);
long lrand48(void);
int fflush(void*);
void* fopen(const char*, const char*);
int fclose(void*);
unsigned long fwrite(const void*, unsigned long, unsigned long, void*);
int fprintf(void*, const char*, ...);
int printf(const char*, ...);
}
