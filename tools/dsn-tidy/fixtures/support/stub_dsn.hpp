// Minimal dsn:: surface for the dsn-tidy fixtures: the annotated lock
// wrappers, the ThreadPool submission API, and the DSN_GUARDED_BY macro,
// with the same qualified names the checks match on. Function bodies are
// empty — the checks reason about names, types and call structure only.
#pragma once

#include "stub_std.hpp"

#if defined(__clang__)
#define DSN_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define DSN_GUARDED_BY(x)
#endif

namespace dsn {

class Mutex {
 public:
  void lock() {}
  void unlock() {}
};

class LockGuard {
 public:
  explicit LockGuard(Mutex&) {}
  ~LockGuard() {}
};

template <typename F>
class function {
 public:
  function(F) {}  // NOLINT(google-explicit-constructor)
};

class ThreadPool {
 public:
  template <typename F>
  void submit(F task) {
    (void)task;
  }
  template <typename F>
  void submit_batch(std::vector<F> tasks) {
    (void)tasks;
  }
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, const F& fn) {
    (void)begin;
    (void)end;
    (void)fn;
  }
  static ThreadPool& global();
};

template <typename F>
void parallel_for(std::size_t begin, std::size_t end, const F& fn) {
  (void)begin;
  (void)end;
  (void)fn;
}

class Json {
 public:
  std::string dump(int indent = -1) const { return std::string(); }
};

}  // namespace dsn
