// FIRE fixture for dsn-unseeded-rng: ambient randomness in every disguise —
// aliased engines (no std:: token anywhere near the declaration), aliased
// random_device, default construction, time seeding, entropy re-seeding,
// and the libc calls.
//
// dsn-slint-ignore-file(seeded-rng-only): dsn-tidy fixture — this file exists to exercise the semantic RNG check, including forms the token tier also sees
#include "support/stub_aliases.hpp"

namespace dsn_fixture {

void all_the_wrong_ways() {
  // Default-constructed engine through an alias: lexer-invisible.
  Gen unseeded;
  (void)unseeded;

  // Hardware entropy through an alias: lexer-invisible.
  Entropy entropy;

  // Seeded, but from the wall clock — still irreproducible.
  Gen clock_seeded(static_cast<unsigned>(time(nullptr)));
  (void)clock_seeded;

  // Seeded from the entropy device.
  Gen device_seeded(entropy());
  (void)device_seeded;

  // Re-seeded from ambient state after construction.
  Gen reseeded(7u);
  reseeded.seed(static_cast<unsigned>(time(nullptr)));

  // Hidden-global-state libc RNG.
  srand(static_cast<unsigned>(time(nullptr)));
  int noise = rand();
  (void)noise;
}

}  // namespace dsn_fixture
