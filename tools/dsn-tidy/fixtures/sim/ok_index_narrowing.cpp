// OK fixture for dsn-index-narrowing: explicit casts spell the bound,
// constants that provably fit are exempt, widening is always fine, and the
// NOLINT escape hatch works. Must produce zero findings.
#include "support/stub_std.hpp"

namespace dsn_fixture {

using NodeId = std::uint32_t;

NodeId explicit_bound(std::uint64_t node, std::uint64_t ports_per_node,
                      std::uint64_t port) {
  // The cast is the documented "I bounded this" annotation.
  return static_cast<NodeId>(node * ports_per_node + port);
}

void constants_and_widening() {
  // Constant expression that provably fits 32 bits.
  std::uint32_t window = 1ull << 20;
  (void)window;

  // Widening is never a hazard.
  std::uint32_t narrow = 7u;
  std::uint64_t wide = narrow;
  (void)wide;
}

std::uint32_t documented_exception(std::uint64_t epoch) {
  // Epoch wraps by design; low 32 bits are the replay key.
  std::uint32_t key = epoch;  // NOLINT(dsn-index-narrowing)
  return key;
}

}  // namespace dsn_fixture
