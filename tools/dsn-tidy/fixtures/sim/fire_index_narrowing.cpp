// FIRE fixture for dsn-index-narrowing. This file lives under a sim/
// directory on purpose: the check is scoped to the scale-critical dirs
// (graph/, routing/, sim/) by its ScopeDirs option. Every narrowing below is
// implicit and spells no cast — through typedefs, `auto` arithmetic, a
// container size, and a template instantiation the lexer never sees.
#include "support/stub_std.hpp"

namespace dsn_fixture {

using NodeId = std::uint32_t;  // the real tree's index typedef shape

NodeId flat_channel_index(std::uint64_t node, std::uint64_t port,
                          std::uint64_t ports_per_node) {
  // node * ports_per_node + port exceeds 2^32 at n = 65k+ with wide ports.
  NodeId channel = node * ports_per_node + port;
  return channel;
}

void offsets_and_sizes(const std::vector<long long>& offsets) {
  // size_t (64-bit) into a 32-bit counter.
  unsigned count = offsets.size();
  (void)count;

  // 64-bit accumulator truncated on assignment.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < offsets.size(); ++i) total += offsets[i];
  std::uint32_t stored = total;
  (void)stored;
}

// Narrowing that only materializes at instantiation: T = unsigned.
template <typename T>
T as_index(std::uint64_t value) {
  T result = value;
  return result;
}

unsigned instantiated() { return as_index<unsigned>(1ull << 40); }

}  // namespace dsn_fixture
