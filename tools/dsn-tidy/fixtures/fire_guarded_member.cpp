// FIRE fixture for dsn-guarded-member: members mutated both from lambdas
// handed to the dsn::ThreadPool and from plain member functions, with no
// DSN_GUARDED_BY annotation, no atomic type, and no documented suppression.
// Both the member submit() path and the free dsn::parallel_for path fire.
#include "support/stub_dsn.hpp"

namespace dsn_fixture {

class ShardMerger {
 public:
  void run(dsn::ThreadPool& pool) {
    pool.submit([this] { merged_count_++; });
  }

  void run_batch() {
    dsn::parallel_for(0, 8, [this](std::size_t i) { touched_ = i; });
  }

  void reset() {
    merged_count_ = 0;
    touched_ = 0;
  }

 private:
  long long merged_count_ = 0;  // racy: pool lambda + reset()
  std::size_t touched_ = 0;     // racy: parallel_for lambda + reset()
};

}  // namespace dsn_fixture
