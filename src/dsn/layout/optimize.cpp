#include "dsn/layout/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dsn/common/math.hpp"
#include "dsn/common/rng.hpp"

namespace dsn {

namespace {

/// Slot geometry shared by the optimizer and the report: slot s sits in
/// cabinet s / switches_per_cabinet on the q = ceil(sqrt m) grid.
struct SlotGeometry {
  std::uint32_t per_cabinet;
  std::uint32_t cols;

  std::pair<std::uint32_t, std::uint32_t> cabinet_of(std::uint32_t slot) const {
    const std::uint32_t cab = slot / per_cabinet;
    return {cab / cols, cab % cols};
  }
};

SlotGeometry make_geometry(std::uint32_t n, const MachineRoomConfig& room) {
  const auto cabinets =
      static_cast<std::uint32_t>(ceil_div(n, room.switches_per_cabinet));
  const auto rows = static_cast<std::uint32_t>(isqrt_ceil(cabinets));
  const auto cols = static_cast<std::uint32_t>(ceil_div(cabinets, rows));
  return {room.switches_per_cabinet, cols};
}

double slot_cable_m(const SlotGeometry& geo, const MachineRoomConfig& room,
                    std::uint32_t slot_a, std::uint32_t slot_b) {
  const auto [ra, ca] = geo.cabinet_of(slot_a);
  const auto [rb, cb] = geo.cabinet_of(slot_b);
  if (ra == rb && ca == cb) return room.intra_cabinet_cable_m;
  const double dr = std::abs(static_cast<double>(ra) - rb);
  const double dc = std::abs(static_cast<double>(ca) - cb);
  return dc * room.cabinet_width_m + dr * room.cabinet_depth_m +
         room.inter_cabinet_overhead_m;
}

/// Total cable length of the links incident to `node` under the placement.
double incident_cost(const Topology& topo, const SlotGeometry& geo,
                     const MachineRoomConfig& room,
                     const std::vector<std::uint32_t>& slot_of, NodeId node) {
  double cost = 0.0;
  for (const AdjHalf& h : topo.graph.neighbors(node)) {
    cost += slot_cable_m(geo, room, slot_of[node], slot_of[h.to]);
  }
  return cost;
}

}  // namespace

CableReport compute_cable_report_with_slots(const Topology& topo,
                                            const MachineRoomConfig& room,
                                            const std::vector<std::uint32_t>& slot_of) {
  DSN_REQUIRE(slot_of.size() == topo.num_nodes(), "placement size mismatch");
  const SlotGeometry geo = make_geometry(topo.num_nodes(), room);
  CableReport report;
  report.per_link_m.reserve(topo.graph.num_links());
  for (LinkId l = 0; l < topo.graph.num_links(); ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    const double len = slot_cable_m(geo, room, slot_of[u], slot_of[v]);
    report.per_link_m.push_back(len);
    report.total_m += len;
    report.max_m = std::max(report.max_m, len);
    const auto [ru, cu] = geo.cabinet_of(slot_of[u]);
    const auto [rv, cv] = geo.cabinet_of(slot_of[v]);
    if (ru == rv && cu == cv)
      ++report.intra_cabinet_links;
    else
      ++report.inter_cabinet_links;
  }
  report.average_m = topo.graph.num_links() == 0
                         ? 0.0
                         : report.total_m / static_cast<double>(topo.graph.num_links());
  return report;
}

OptimizedPlacement optimize_placement(const Topology& topo,
                                      const MachineRoomConfig& room,
                                      const PlacementOptimizerConfig& config) {
  const NodeId n = topo.num_nodes();
  DSN_REQUIRE(n >= 2, "nothing to optimize");
  const SlotGeometry geo = make_geometry(n, room);

  OptimizedPlacement result;
  result.slot_of.resize(n);
  std::iota(result.slot_of.begin(), result.slot_of.end(), 0);
  result.initial_total_m =
      compute_cable_report_with_slots(topo, room, result.slot_of).total_m;

  Rng rng(config.seed);
  double temperature = config.initial_temperature;
  auto& slot_of = result.slot_of;

  for (std::uint64_t it = 0; it < config.iterations; ++it) {
    const auto a = static_cast<NodeId>(rng.next_below(n));
    auto b = static_cast<NodeId>(rng.next_below(n - 1));
    if (b >= a) ++b;

    const double before = incident_cost(topo, geo, room, slot_of, a) +
                          incident_cost(topo, geo, room, slot_of, b);
    std::swap(slot_of[a], slot_of[b]);
    double after = incident_cost(topo, geo, room, slot_of, a) +
                   incident_cost(topo, geo, room, slot_of, b);
    // Links directly between a and b are counted twice on both sides, so the
    // delta is still exact.
    const double delta = after - before;
    const bool accept =
        delta <= 0.0 || rng.next_double() < std::exp(-delta / std::max(1e-9, temperature));
    if (!accept) std::swap(slot_of[a], slot_of[b]);
    temperature *= config.cooling;
  }

  result.optimized_total_m =
      compute_cable_report_with_slots(topo, room, slot_of).total_m;
  return result;
}

}  // namespace dsn
