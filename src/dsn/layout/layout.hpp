// Machine-room floorplan and cable-length model (paper §VI-B).
//
// Cabinets are aligned on a 2-D grid with q = ceil(sqrt(m)) rows and
// ceil(m/q) cabinets per row. Each cabinet is 0.6 m wide and 2.1 m deep
// including aisle space (HP recommendation [21]) and holds 16 switches.
// Inter-cabinet cable length is the Manhattan distance between cabinet
// positions plus a 2 m wiring overhead; intra-cabinet cables are 2 m
// (Kim/Dally/Abts cost model [22]). Host-to-switch cables are constant and
// ignored, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/topology/topology.hpp"

namespace dsn {

struct MachineRoomConfig {
  double cabinet_width_m = 0.6;
  double cabinet_depth_m = 2.1;  ///< includes aisle space
  std::uint32_t switches_per_cabinet = 16;
  double intra_cabinet_cable_m = 2.0;
  double inter_cabinet_overhead_m = 2.0;
};

/// How node ids map onto cabinets.
enum class PlacementStrategy {
  /// Consecutive node ids fill cabinets in order; cabinets fill the grid
  /// row-major. Natural for ring-based topologies (DSN, DLN, RANDOM).
  kLinear,
  /// 2-D grid/torus topologies tile their coordinate plane onto cabinets
  /// (near-square tiles of switches per cabinet). Requires topo.dims of
  /// rank 2. This is the conventional torus floor layout.
  kGrid2D,
};

/// Physical placement of every switch on the floor.
class FloorLayout {
 public:
  FloorLayout(const Topology& topo, const MachineRoomConfig& config,
              PlacementStrategy strategy);

  std::uint32_t num_cabinets() const { return num_cabinets_; }
  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }

  /// Cabinet (row, col) of a switch.
  std::pair<std::uint32_t, std::uint32_t> cabinet_of(NodeId v) const;

  /// Cable length in meters between two switches under the model.
  double cable_length_m(NodeId u, NodeId v) const;

  const MachineRoomConfig& config() const { return config_; }

 private:
  MachineRoomConfig config_;
  std::uint32_t num_cabinets_ = 0;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::uint32_t> cab_row_;  // per node
  std::vector<std::uint32_t> cab_col_;
};

/// Aggregate cabling statistics of a topology under a layout.
struct CableReport {
  double total_m = 0.0;
  double average_m = 0.0;
  double max_m = 0.0;
  std::uint64_t intra_cabinet_links = 0;
  std::uint64_t inter_cabinet_links = 0;
  std::vector<double> per_link_m;  ///< parallel to graph link ids
};

CableReport compute_cable_report(const Topology& topo, const FloorLayout& layout);

/// Convenience: pick the conventional placement for the topology kind
/// (kGrid2D for 2-D meshes/tori with rank-2 dims, kLinear otherwise) and
/// return its cable report.
CableReport compute_cable_report(const Topology& topo,
                                 const MachineRoomConfig& config = {});

/// Theorem 2b's 1-D line model: nodes evenly spaced (distance 1) on a line;
/// link length is |u - v|. Reports the average length over shortcut-role
/// links and the total length over all links.
struct LineCableStats {
  double avg_shortcut_length = 0.0;  ///< mean |u - v| over shortcut links
  /// Mean *designed span* (minimum ring distance) over shortcut links — the
  /// quantity Theorem 2b bounds by ~n/p; the line metric additionally pays
  /// for shortcuts that wrap past node 0.
  double avg_shortcut_span = 0.0;
  double total_length = 0.0;
  std::uint64_t shortcut_links = 0;
};
LineCableStats compute_line_cable_stats(const Topology& topo);

}  // namespace dsn
