#include "dsn/layout/layout.hpp"

#include <algorithm>
#include <cmath>

#include "dsn/common/math.hpp"

namespace dsn {

FloorLayout::FloorLayout(const Topology& topo, const MachineRoomConfig& config,
                         PlacementStrategy strategy)
    : config_(config) {
  const NodeId n = topo.num_nodes();
  DSN_REQUIRE(n > 0, "empty topology");
  DSN_REQUIRE(config.switches_per_cabinet > 0, "cabinet must hold switches");
  cab_row_.resize(n);
  cab_col_.resize(n);

  if (strategy == PlacementStrategy::kGrid2D) {
    DSN_REQUIRE(topo.dims.size() == 2, "kGrid2D needs a rank-2 topology");
    const std::uint32_t w = topo.dims[0];
    const std::uint32_t h = topo.dims[1];
    // Near-square tile of switches_per_cabinet switches, e.g. 4x4 for 16.
    std::uint32_t tile_w = static_cast<std::uint32_t>(isqrt(config.switches_per_cabinet));
    while (tile_w > 1 && config.switches_per_cabinet % tile_w != 0) --tile_w;
    const std::uint32_t tile_h = config.switches_per_cabinet / tile_w;
    cols_ = static_cast<std::uint32_t>(ceil_div(w, tile_w));
    rows_ = static_cast<std::uint32_t>(ceil_div(h, tile_h));
    num_cabinets_ = rows_ * cols_;
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t x = v % w;
      const std::uint32_t y = v / w;
      cab_col_[v] = x / tile_w;
      cab_row_[v] = y / tile_h;
    }
  } else {
    num_cabinets_ =
        static_cast<std::uint32_t>(ceil_div(n, config.switches_per_cabinet));
    rows_ = static_cast<std::uint32_t>(isqrt_ceil(num_cabinets_));  // q = ceil(sqrt m)
    cols_ = static_cast<std::uint32_t>(ceil_div(num_cabinets_, rows_));
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t cab = v / config.switches_per_cabinet;
      cab_row_[v] = cab / cols_;
      cab_col_[v] = cab % cols_;
    }
  }
}

std::pair<std::uint32_t, std::uint32_t> FloorLayout::cabinet_of(NodeId v) const {
  DSN_REQUIRE(v < cab_row_.size(), "node id out of range");
  return {cab_row_[v], cab_col_[v]};
}

double FloorLayout::cable_length_m(NodeId u, NodeId v) const {
  DSN_REQUIRE(u < cab_row_.size() && v < cab_row_.size(), "node id out of range");
  if (cab_row_[u] == cab_row_[v] && cab_col_[u] == cab_col_[v]) {
    return config_.intra_cabinet_cable_m;
  }
  const double dr = std::abs(static_cast<double>(cab_row_[u]) - cab_row_[v]);
  const double dc = std::abs(static_cast<double>(cab_col_[u]) - cab_col_[v]);
  return dc * config_.cabinet_width_m + dr * config_.cabinet_depth_m +
         config_.inter_cabinet_overhead_m;
}

CableReport compute_cable_report(const Topology& topo, const FloorLayout& layout) {
  CableReport report;
  const std::size_t links = topo.graph.num_links();
  report.per_link_m.reserve(links);
  for (LinkId id = 0; id < links; ++id) {
    const auto [u, v] = topo.graph.link_endpoints(id);
    const double len = layout.cable_length_m(u, v);
    report.per_link_m.push_back(len);
    report.total_m += len;
    report.max_m = std::max(report.max_m, len);
    const auto [ru, cu] = layout.cabinet_of(u);
    const auto [rv, cv] = layout.cabinet_of(v);
    if (ru == rv && cu == cv)
      ++report.intra_cabinet_links;
    else
      ++report.inter_cabinet_links;
  }
  report.average_m = links == 0 ? 0.0 : report.total_m / static_cast<double>(links);
  return report;
}

CableReport compute_cable_report(const Topology& topo, const MachineRoomConfig& config) {
  const bool grid = topo.dims.size() == 2;
  FloorLayout layout(topo, config,
                     grid ? PlacementStrategy::kGrid2D : PlacementStrategy::kLinear);
  return compute_cable_report(topo, layout);
}

LineCableStats compute_line_cable_stats(const Topology& topo) {
  LineCableStats stats;
  const std::uint64_t n = topo.num_nodes();
  double shortcut_total = 0.0;
  double span_total = 0.0;
  for (LinkId id = 0; id < topo.graph.num_links(); ++id) {
    const auto [u, v] = topo.graph.link_endpoints(id);
    const double len = std::abs(static_cast<double>(u) - static_cast<double>(v));
    stats.total_length += len;
    if (id < topo.link_roles.size() && topo.link_roles[id] == LinkRole::kShortcut) {
      shortcut_total += len;
      span_total += static_cast<double>(ring_distance(u, v, n));
      ++stats.shortcut_links;
    }
  }
  if (stats.shortcut_links > 0) {
    stats.avg_shortcut_length = shortcut_total / static_cast<double>(stats.shortcut_links);
    stats.avg_shortcut_span = span_total / static_cast<double>(stats.shortcut_links);
  }
  return stats;
}

}  // namespace dsn
