// Layout optimization: assign switches to cabinet slots to minimize total
// cable length, via simulated annealing over the placement permutation.
// This reproduces the context of the paper's §III discussion of [11]
// ("layout-conscious random topologies... optimizes the layout after
// randomizing the links"): even with an optimized placement, random-shortcut
// topologies keep paying for their long links, while DSN's linear placement
// is already near-optimal.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/layout/layout.hpp"

namespace dsn {

struct PlacementOptimizerConfig {
  std::uint64_t iterations = 200'000;
  double initial_temperature = 4.0;  ///< meters of cable, roughly one hop
  double cooling = 0.999975;         ///< per-iteration geometric cooling
  std::uint64_t seed = 1;
};

struct OptimizedPlacement {
  /// slot_of[node] = cabinet slot index (slots fill cabinets linearly in the
  /// same q = ceil(sqrt m) grid as PlacementStrategy::kLinear).
  std::vector<std::uint32_t> slot_of;
  double initial_total_m = 0.0;
  double optimized_total_m = 0.0;
};

/// Anneal the node->slot permutation starting from the identity (linear)
/// placement. Deterministic for a given seed.
OptimizedPlacement optimize_placement(const Topology& topo,
                                      const MachineRoomConfig& room,
                                      const PlacementOptimizerConfig& config = {});

/// Cable report for an explicit node->slot placement.
CableReport compute_cable_report_with_slots(const Topology& topo,
                                            const MachineRoomConfig& room,
                                            const std::vector<std::uint32_t>& slot_of);

}  // namespace dsn
