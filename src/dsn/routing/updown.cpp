// dsn-slint: deterministic — route tables feed byte-identical replay and
// shard-order merges; iteration order here is part of the contract.
#include "dsn/routing/updown.hpp"

#include <algorithm>
#include <deque>

#include "dsn/common/thread_pool.hpp"
#include "dsn/graph/metrics.hpp"
#include "dsn/graph/msbfs.hpp"

namespace dsn {

UpDownRouting::UpDownRouting(const Graph& g, NodeId root, bool allow_disconnected)
    : graph_(&g), csr_(g), root_(root) {
  const NodeId n = g.num_nodes();
  DSN_REQUIRE(root < n, "root out of range");
  DSN_REQUIRE(allow_disconnected || is_connected(csr_),
              "up*/down* requires a connected graph");

  tree_level_ = csr_bfs_distances(csr_, root);

  const std::size_t nn = static_cast<std::size_t>(n) * n;
  for (int ph = 0; ph < 2; ++ph) {
    dist_[ph].assign(nn, kUnreachable);
    next_[ph].assign(nn, kInvalidNode);
  }

  // For every destination t, a backward BFS over the (node, phase) state
  // graph yields the shortest legal distance and the next hop per phase.
  parallel_for(0, n, [&](std::size_t ti) {
    const NodeId t = static_cast<NodeId>(ti);
    const std::size_t base = ti * n;
    auto& d0 = dist_[0];
    auto& d1 = dist_[1];
    auto& n0 = next_[0];
    auto& n1 = next_[1];

    // State encoding: node * 2 + phase.
    std::deque<std::uint32_t> queue;
    d0[base + t] = 0;
    d1[base + t] = 0;
    queue.push_back(t * 2 + 0);
    queue.push_back(t * 2 + 1);

    while (!queue.empty()) {
      const std::uint32_t state = queue.front();
      queue.pop_front();
      const NodeId v = state / 2;
      const int ph = static_cast<int>(state % 2);
      const std::uint32_t dist_v = (ph == 0 ? d0 : d1)[base + v];

      for (const NodeId u : csr_.neighbors(v)) {
        if (ph == 0) {
          // Only an up hop u->v keeps the walker in phase 0.
          if (is_up(u, v) && d0[base + u] == kUnreachable) {
            d0[base + u] = dist_v + 1;
            n0[base + u] = v;
            queue.push_back(u * 2 + 0);
          }
        } else {
          // A down hop u->v can be taken from either phase; it is the first
          // down hop when coming from phase 0.
          if (!is_up(u, v)) {
            if (d1[base + u] == kUnreachable) {
              d1[base + u] = dist_v + 1;
              n1[base + u] = v;
              queue.push_back(u * 2 + 1);
            }
            if (d0[base + u] == kUnreachable) {
              d0[base + u] = dist_v + 1;
              n0[base + u] = v;
              queue.push_back(u * 2 + 0);
            }
          }
        }
      }
    }
  });
}

bool UpDownRouting::is_up(NodeId u, NodeId v) const {
  return tree_level_[v] < tree_level_[u] ||
         (tree_level_[v] == tree_level_[u] && v < u);
}

std::uint32_t UpDownRouting::legal_distance(NodeId u, NodeId t) const {
  const NodeId n = graph_->num_nodes();
  DSN_REQUIRE(u < n && t < n, "node id out of range");
  return dist_[0][static_cast<std::size_t>(t) * n + u];
}

NodeId UpDownRouting::next_hop(NodeId u, NodeId t, bool down_only) const {
  const NodeId n = graph_->num_nodes();
  DSN_REQUIRE(u < n && t < n, "node id out of range");
  if (u == t) return kInvalidNode;
  return next_[down_only ? 1 : 0][static_cast<std::size_t>(t) * n + u];
}

std::vector<NodeId> UpDownRouting::route(NodeId s, NodeId t) const {
  std::vector<NodeId> path{s};
  NodeId u = s;
  bool down_only = false;
  while (u != t) {
    const NodeId v = next_hop(u, t, down_only);
    DSN_ASSERT(v != kInvalidNode, "legal up*/down* continuation must exist");
    if (!is_up(u, v)) down_only = true;
    path.push_back(v);
    u = v;
    DSN_ASSERT(path.size() <= graph_->num_nodes() + 1, "up*/down* route too long");
  }
  return path;
}

RoutingScan UpDownRouting::scan_all_pairs() const {
  const NodeId n = graph_->num_nodes();
  RoutingScan scan;
  std::uint64_t total = 0;
  for (NodeId t = 0; t < n; ++t) {
    const std::size_t base = static_cast<std::size_t>(t) * n;
    for (NodeId u = 0; u < n; ++u) {
      if (u == t) continue;
      const std::uint32_t dd = dist_[0][base + u];
      DSN_ASSERT(dd != kUnreachable, "connected graph must have legal paths");
      scan.max_hops = std::max(scan.max_hops, dd);
      total += dd;
    }
  }
  scan.pairs = static_cast<std::uint64_t>(n) * (n - 1);
  scan.avg_hops =
      scan.pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(scan.pairs);
  return scan;
}

}  // namespace dsn
