// dsn-slint: deterministic — route tables feed byte-identical replay and
// shard-order merges; iteration order here is part of the contract.
#include "dsn/routing/dsn_routing.hpp"

#include "dsn/common/math.hpp"

namespace dsn {

namespace {

/// Clockwise ring distance helper.
std::uint64_t cw(NodeId a, NodeId b, std::uint32_t n) { return ring_cw_distance(a, b, n); }

/// Defensive hop cap: far above the 3p + r routing diameter (Fact 2) so it
/// only fires on a genuine algorithmic bug or out-of-premise parameters.
std::size_t hop_cap(const Dsn& d) {
  return 10u * (d.p() + d.r()) + 50u;
}

/// Walk the ring from u to t along the shorter direction, appending hops.
void ring_walk(const Dsn& d, NodeId& u, NodeId t, RoutePhase phase,
               std::vector<RouteHop>& hops) {
  const std::uint32_t n = d.n();
  const std::uint64_t dist_cw = cw(u, t, n);
  const bool go_succ = dist_cw <= n - dist_cw;
  while (u != t) {
    const NodeId v = go_succ ? d.succ(u) : d.pred(u);
    hops.push_back({u, v, phase, go_succ ? HopKind::kSucc : HopKind::kPred});
    u = v;
  }
}

}  // namespace

DsnRouter::DsnRouter(const Dsn& dsn, DsnRoutingOptions options)
    : dsn_(&dsn), options_(options) {}

std::uint32_t DsnRouter::level_for_distance(std::uint64_t d) const {
  DSN_ASSERT(d >= 1, "distance must be positive");
  const std::uint32_t n = dsn_->n();
  const std::uint32_t p = dsn_->p();
  // Smallest l >= 1 with n / 2^l <= d in *real* arithmetic (n <= d * 2^l),
  // exactly the paper's l = floor(log(n/d)) + 1. Using floor(n/2^l) here
  // instead would misclassify boundary distances (e.g. d = 37 with n = 300)
  // and break the MAIN-PROCESS level invariant.
  for (std::uint32_t l = 1; l < p; ++l) {
    if (n <= (d << l)) return l;
  }
  return p;
}

Route DsnRouter::route(NodeId s, NodeId t) const {
  const Dsn& d = *dsn_;
  const std::uint32_t n = d.n();
  const std::uint32_t p = d.p();
  const std::uint32_t x = d.x();
  DSN_REQUIRE(s < n && t < n, "node id out of range");

  Route r;
  r.src = s;
  r.dst = t;
  if (s == t) return r;

  const std::size_t cap = hop_cap(d);
  NodeId u = s;

  // Destinations a short counterclockwise walk away are handled directly by
  // FINISH (the same bidirectional local walk the algorithm ends with); the
  // clockwise machinery would otherwise tour the whole ring for them.
  if (n - cw(s, t, n) <= p + d.r()) {
    ring_walk(d, u, t, RoutePhase::kFinish, r.hops);
    return r;
  }

  // Short clockwise distances are also pure FINISH: MAIN stops at dist <= p
  // anyway, so PRE-WORK's counterclockwise descent would only detour — and
  // make the route revisit its own source on the way back.
  if (cw(s, t, n) <= p) {
    ring_walk(d, u, t, RoutePhase::kFinish, r.hops);
    return r;
  }

  // When the required shortcut level exceeds x, every owned shortcut
  // overshoots the destination: the route degenerates to a ring walk, and
  // PRE-WORK would again detour through already-visited nodes. This only
  // happens outside the x > p - log p premise of Theorems 1-2.
  if (level_for_distance(cw(s, t, n)) > x) {
    ring_walk(d, u, t, RoutePhase::kFinish, r.hops);
    return r;
  }

  // ----- PRE-WORK: reach a node whose level matches the required shortcut
  // level l for the current clockwise distance to t.
  std::uint32_t l = level_for_distance(cw(u, t, n));
  if (options_.nearest_prework && d.level(u) > l) {
    // Fact 3: walk to the nearest level-l node in either ring direction.
    NodeId fwd = u, bwd = u;
    std::uint32_t fwd_steps = 0, bwd_steps = 0;
    while (d.level(fwd) != l && fwd_steps <= p + d.r()) {
      fwd = d.succ(fwd);
      ++fwd_steps;
    }
    while (d.level(bwd) != l && bwd_steps <= p + d.r()) {
      bwd = d.pred(bwd);
      ++bwd_steps;
    }
    const bool go_fwd = d.level(fwd) == l && (fwd_steps <= bwd_steps || d.level(bwd) != l);
    const NodeId target = go_fwd ? fwd : bwd;
    while (u != target && u != t) {
      const NodeId v = go_fwd ? d.succ(u) : d.pred(u);
      r.hops.push_back({u, v, RoutePhase::kPreWork,
                        go_fwd ? HopKind::kSucc : HopKind::kPred});
      u = v;
    }
    if (u != t) l = level_for_distance(cw(u, t, n));
  }
  while (u != t && d.level(u) > l && r.hops.size() < cap) {
    const NodeId v = d.pred(u);
    r.hops.push_back({u, v, RoutePhase::kPreWork, HopKind::kPred});
    u = v;
    if (u == t) break;
    l = level_for_distance(cw(u, t, n));
  }

  // ----- MAIN-PROCESS: climb to the needed level with succ links and take
  // distance-halving shortcuts; stop on the LOOP-STOP condition. The take
  // rule is slightly greedier than the literal pseudo-code ("take own
  // shortcut whenever it does not overshoot"): integer spans can leave the
  // walker one level above the recomputed l, where the literal rule would
  // march to level x+1 and pay a long FINISH. Levels still increase
  // monotonically, so the Theorem 3 deadlock argument is unaffected.
  while (u != t && r.hops.size() < cap) {
    const std::uint64_t dist = cw(u, t, n);
    if (dist <= p) break;  // close enough — overshooting would waste hops
    const std::uint32_t lu = d.level(u);
    if (lu == x + 1) break;  // this level has no shortcut
    l = level_for_distance(dist);
    if (lu <= x) {
      const NodeId v = d.shortcut_target(u);
      DSN_ASSERT(v != kInvalidNode, "level <= x node must own a shortcut");
      const std::uint64_t span = cw(u, v, n);
      if (span <= dist) {
        r.hops.push_back({u, v, RoutePhase::kMain, HopKind::kShortcut});
        u = v;
        continue;
      }
      if (lu >= l) {
        // The designated-level shortcut overshoots t.
        if (options_.avoid_overshoot) {
          // §V-D: step forward and use the successor's shorter shortcut.
          const NodeId w = d.succ(u);
          r.hops.push_back({u, w, RoutePhase::kMain, HopKind::kSucc});
          u = w;
          continue;
        }
        r.hops.push_back({u, v, RoutePhase::kMain, HopKind::kShortcut});
        u = v;
        break;  // LOOP-STOP: overshot t
      }
    }
    const NodeId v = d.succ(u);
    r.hops.push_back({u, v, RoutePhase::kMain, HopKind::kSucc});
    u = v;
  }

  // ----- FINISH: plain ring walk over the remaining (short) distance.
  if (r.hops.size() >= cap) r.used_fallback = true;
  ring_walk(d, u, t, RoutePhase::kFinish, r.hops);
  return r;
}

RoutingScan scan_all_pairs(const DsnRouter& router) {
  return scan_all_pairs_fn(router.dsn().n(),
                           [&](NodeId s, NodeId t) { return router.route(s, t); });
}

void validate_route(const Dsn& dsn, const Route& route) {
  const Graph& g = dsn.topology().graph;
  if (route.src == route.dst) {
    DSN_ASSERT(route.hops.empty(), "self route must be empty");
    return;
  }
  DSN_ASSERT(!route.hops.empty(), "route between distinct nodes must have hops");
  DSN_ASSERT(route.hops.front().from == route.src, "route must start at src");
  DSN_ASSERT(route.hops.back().to == route.dst, "route must end at dst");
  RoutePhase prev_phase = RoutePhase::kPreWork;
  for (std::size_t i = 0; i < route.hops.size(); ++i) {
    const RouteHop& h = route.hops[i];
    if (i > 0) {
      DSN_ASSERT(route.hops[i - 1].to == h.from, "hops must chain");
      DSN_ASSERT(static_cast<int>(h.phase) >= static_cast<int>(prev_phase),
                 "phases must be non-decreasing");
    }
    DSN_ASSERT(g.has_link(h.from, h.to), "hop must traverse a physical link");
    prev_phase = h.phase;
  }
}

// ---------------------------------------------------------------------------
// DSN-D routing: express-aware local walks.
// ---------------------------------------------------------------------------

namespace {

/// Walk from u to an exact target node, pred-ward or succ-ward, taking DSN-D
/// express links whenever they jump toward the target without passing it.
void express_walk(const DsnD& dd, NodeId& u, NodeId target, bool succ_ward,
                  RoutePhase phase, std::vector<RouteHop>& hops) {
  const Dsn& d = dd.base();
  const Graph& g = dd.topology().graph;
  const std::uint32_t n = d.n();
  const std::uint32_t q = dd.q();
  while (u != target) {
    if (succ_ward) {
      const std::uint64_t remaining = ring_cw_distance(u, target, n);
      const NodeId jump = static_cast<NodeId>((u + q) % n);
      if (u % q == 0 && remaining >= q && g.has_link(u, jump) && jump != d.succ(u)) {
        hops.push_back({u, jump, phase, HopKind::kExpress});
        u = jump;
        continue;
      }
      const NodeId v = d.succ(u);
      hops.push_back({u, v, phase, HopKind::kSucc});
      u = v;
    } else {
      const std::uint64_t remaining = ring_cw_distance(target, u, n);
      if (u % q == 0 && u >= q && remaining >= q && g.has_link(u, u - q) &&
          u - q != d.pred(u)) {
        hops.push_back({u, u - q, phase, HopKind::kExpress});
        u = u - q;
        continue;
      }
      const NodeId v = d.pred(u);
      hops.push_back({u, v, phase, HopKind::kPred});
      u = v;
    }
  }
}

}  // namespace

Route route_dsn_d(const DsnD& dd, NodeId s, NodeId t, DsnRoutingOptions options) {
  const Dsn& d = dd.base();
  const std::uint32_t n = d.n();
  const std::uint32_t p = d.p();
  const std::uint32_t x = d.x();
  DSN_REQUIRE(s < n && t < n, "node id out of range");

  Route r;
  r.src = s;
  r.dst = t;
  if (s == t) return r;

  const std::size_t cap = hop_cap(d);
  NodeId u = s;

  const auto level_for = [&](std::uint64_t dist) {
    for (std::uint32_t l = 1; l < p; ++l)
      if (n <= (dist << l)) return l;
    return p;
  };

  // Short counterclockwise destinations go straight to FINISH (see route()).
  if (n - cw(s, t, n) <= p + d.r()) {
    express_walk(dd, u, t, /*succ_ward=*/false, RoutePhase::kFinish, r.hops);
    return r;
  }

  // Short clockwise distances are also pure FINISH: MAIN stops at dist <= p
  // anyway, so the PRE-WORK descent would only detour — and make the route
  // revisit its own source on the way back (mirrors DsnRouter::route).
  if (cw(s, t, n) <= p) {
    express_walk(dd, u, t, /*succ_ward=*/true, RoutePhase::kFinish, r.hops);
    return r;
  }

  // When the required shortcut level exceeds x, every owned shortcut
  // overshoots the destination: the route degenerates to an express-assisted
  // ring walk, and PRE-WORK would again detour through already-visited
  // nodes. Only happens outside the x > p - log p premise of Theorems 1-2.
  if (level_for(cw(s, t, n)) > x) {
    const std::uint64_t dist_cw = cw(s, t, n);
    express_walk(dd, u, t, /*succ_ward=*/dist_cw <= n - dist_cw, RoutePhase::kFinish, r.hops);
    return r;
  }

  // PRE-WORK with express links: target the level-l node reached by walking
  // counterclockwise within the current super node.
  std::uint32_t l = level_for(cw(u, t, n));
  if (d.level(u) > l) {
    const NodeId target = static_cast<NodeId>(u - (d.level(u) - l));  // same super node
    express_walk(dd, u, target, /*succ_ward=*/false, RoutePhase::kPreWork, r.hops);
  }
  while (d.level(u) > level_for(cw(u, t, n)) && r.hops.size() < cap) {
    const NodeId v = d.pred(u);
    r.hops.push_back({u, v, RoutePhase::kPreWork, HopKind::kPred});
    u = v;
  }

  // MAIN-PROCESS: identical to the basic algorithm (greedy take rule).
  while (u != t && r.hops.size() < cap) {
    const std::uint64_t dist = cw(u, t, n);
    if (dist <= p) break;
    const std::uint32_t lu = d.level(u);
    if (lu == x + 1) break;
    l = level_for(dist);
    if (lu <= x) {
      const NodeId v = d.shortcut_target(u);
      DSN_ASSERT(v != kInvalidNode, "level <= x node must own a shortcut");
      const std::uint64_t span = cw(u, v, n);
      if (span <= dist) {
        r.hops.push_back({u, v, RoutePhase::kMain, HopKind::kShortcut});
        u = v;
        continue;
      }
      if (lu >= l) {
        if (options.avoid_overshoot) {
          const NodeId w = d.succ(u);
          r.hops.push_back({u, w, RoutePhase::kMain, HopKind::kSucc});
          u = w;
          continue;
        }
        r.hops.push_back({u, v, RoutePhase::kMain, HopKind::kShortcut});
        u = v;
        break;  // overshot
      }
    }
    const NodeId v = d.succ(u);
    r.hops.push_back({u, v, RoutePhase::kMain, HopKind::kSucc});
    u = v;
  }

  if (r.hops.size() >= cap) r.used_fallback = true;

  // FINISH with express links along the shorter ring direction.
  const std::uint64_t dist_cw = cw(u, t, n);
  express_walk(dd, u, t, /*succ_ward=*/dist_cw <= n - dist_cw, RoutePhase::kFinish, r.hops);
  return r;
}

// ---------------------------------------------------------------------------
// Flexible DSN routing (§V-C).
// ---------------------------------------------------------------------------

Route route_dsn_flex(const FlexDsn& f, NodeId s, NodeId t, DsnRoutingOptions options) {
  const std::uint32_t n_total = f.num_total();
  DSN_REQUIRE(s < n_total && t < n_total, "node id out of range");

  Route r;
  r.src = s;
  r.dst = t;
  if (s == t) return r;

  const Graph& g = f.topology().graph;
  NodeId u = s;

  // A minor source first steps back to its preceding major node.
  if (!f.is_major(u)) {
    const NodeId major_phys = f.preceding_major(u);
    while (u != major_phys) {
      const NodeId v = u == 0 ? n_total - 1 : u - 1;
      r.hops.push_back({u, v, RoutePhase::kPreWork, HopKind::kPred});
      u = v;
    }
  }

  // Route between majors in the logical DSN, then expand each logical hop to
  // physical hops (a logical ring hop may cross one minor node).
  const NodeId t_major_phys = f.is_major(t) ? t : f.preceding_major(t);
  const NodeId s_major = f.major_of(u);
  const NodeId t_major = f.major_of(t_major_phys);
  if (s_major != t_major) {
    DsnRouter base_router(f.base(), options);
    const Route logical = base_router.route(s_major, t_major);
    for (const RouteHop& lh : logical.hops) {
      const NodeId pa = f.phys_of(lh.from);
      const NodeId pb = f.phys_of(lh.to);
      DSN_ASSERT(u == pa, "flex expansion lost track of position");
      if (g.has_link(pa, pb)) {
        r.hops.push_back({pa, pb, lh.phase, lh.kind});
        u = pb;
      } else {
        // One minor node sits between the two majors on the ring.
        DSN_ASSERT(lh.kind == HopKind::kPred || lh.kind == HopKind::kSucc,
                   "only ring hops may cross minors");
        const bool fwd = lh.kind == HopKind::kSucc;
        const NodeId mid = fwd ? (pa + 1) % n_total : (pa == 0 ? n_total - 1 : pa - 1);
        DSN_ASSERT(!f.is_major(mid) && g.has_link(pa, mid) && g.has_link(mid, pb),
                   "expected a single minor between consecutive majors");
        r.hops.push_back({pa, mid, lh.phase, lh.kind});
        r.hops.push_back({mid, pb, lh.phase, lh.kind});
        u = pb;
      }
    }
  }

  // Walk forward (succ) from the destination's preceding major to the minor
  // destination, or we are already there.
  while (u != t) {
    const NodeId v = (u + 1) % n_total;
    r.hops.push_back({u, v, RoutePhase::kFinish, HopKind::kSucc});
    u = v;
  }
  return r;
}

}  // namespace dsn
