#include "dsn/routing/greedy.hpp"

#include <algorithm>
#include <cstdlib>
#include "dsn/common/mutex.hpp"

#include "dsn/common/thread_pool.hpp"

namespace dsn {

namespace {

std::int64_t lattice_distance(NodeId a, NodeId b, std::uint32_t side) {
  const std::int64_t ax = a % side, ay = a / side;
  const std::int64_t bx = b % side, by = b / side;
  return std::abs(ax - bx) + std::abs(ay - by);
}

}  // namespace

std::vector<NodeId> route_greedy_grid(const Topology& topo, NodeId s, NodeId t) {
  DSN_REQUIRE(topo.dims.size() == 2 && topo.dims[0] == topo.dims[1],
              "greedy routing needs a square grid topology");
  const CsrView csr(topo.graph);
  return route_greedy_grid(csr, topo.dims[0], s, t);
}

std::vector<NodeId> route_greedy_grid(const CsrView& csr, std::uint32_t side, NodeId s,
                                      NodeId t) {
  DSN_REQUIRE(s < csr.num_nodes() && t < csr.num_nodes(), "node id out of range");

  std::vector<NodeId> path{s};
  NodeId u = s;
  const std::size_t cap = 4ull * side + 16;
  while (u != t) {
    NodeId best = kInvalidNode;
    std::int64_t best_dist = lattice_distance(u, t, side);
    for (const NodeId v : csr.neighbors(u)) {
      const std::int64_t d = lattice_distance(v, t, side);
      if (d < best_dist || (d == best_dist && best != kInvalidNode && v < best)) {
        // Strictly-closer neighbors only: the grid links guarantee one
        // always exists, which is what makes greedy routing well defined.
        if (d < lattice_distance(u, t, side)) {
          best = v;
          best_dist = d;
        }
      }
    }
    DSN_ASSERT(best != kInvalidNode, "grid must provide a closer neighbor");
    path.push_back(best);
    u = best;
    DSN_ASSERT(path.size() <= cap, "greedy walk exceeded the progress bound");
  }
  return path;
}

RoutingScan scan_greedy_grid(const Topology& topo) {
  DSN_REQUIRE(topo.dims.size() == 2 && topo.dims[0] == topo.dims[1],
              "greedy routing needs a square grid topology");
  const NodeId n = topo.num_nodes();
  const std::uint32_t side = topo.dims[0];
  const CsrView csr(topo.graph);
  RoutingScan scan;
  Mutex merge;
  std::uint64_t total = 0;
  parallel_for(0, n, [&](std::size_t s) {
    std::uint32_t local_max = 0;
    std::uint64_t local_total = 0;
    for (NodeId t = 0; t < n; ++t) {
      if (t == static_cast<NodeId>(s)) continue;
      const auto path = route_greedy_grid(csr, side, static_cast<NodeId>(s), t);
      const auto hops = static_cast<std::uint32_t>(path.size() - 1);
      local_max = std::max(local_max, hops);
      local_total += hops;
    }
    LockGuard lock(merge);
    scan.max_hops = std::max(scan.max_hops, local_max);
    total += local_total;
  });
  scan.pairs = static_cast<std::uint64_t>(n) * (n - 1);
  scan.avg_hops =
      scan.pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(scan.pairs);
  return scan;
}

}  // namespace dsn
