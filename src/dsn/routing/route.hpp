// Route representation shared by all routing algorithms: an ordered list of
// hops annotated with the routing phase and the kind of link taken, so the
// channel-dependency analysis can assign each hop to a channel class.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/common/types.hpp"

namespace dsn {

/// Phase of the DSN custom routing algorithm a hop belongs to (Fig. 2).
/// Non-DSN algorithms use kMain for every hop.
enum class RoutePhase : std::uint8_t {
  kPreWork,  ///< climb to a node high enough to "look over" to the destination
  kMain,     ///< distance-halving shortcut walk
  kFinish,   ///< local ring walk to the destination
};

/// Kind of link a hop traverses.
enum class HopKind : std::uint8_t {
  kPred,      ///< counterclockwise ring link
  kSucc,      ///< clockwise ring link
  kShortcut,  ///< long-range shortcut
  kExpress,   ///< DSN-D intra-super-node express link
};

struct RouteHop {
  NodeId from;
  NodeId to;
  RoutePhase phase;
  HopKind kind;
};

/// A complete route from a source to a destination.
struct Route {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<RouteHop> hops;
  /// True when the defensive hop cap fired and the route fell back to a plain
  /// ring walk (never expected for well-formed parameters; tests assert 0).
  bool used_fallback = false;

  std::size_t length() const { return hops.size(); }
};

/// Aggregate statistics of a routing algorithm over all ordered (s, t) pairs.
struct RoutingScan {
  std::uint32_t max_hops = 0;      ///< the "routing diameter"
  double avg_hops = 0.0;           ///< expected route length, uniform (s, t)
  std::uint64_t fallback_routes = 0;
  std::uint64_t pairs = 0;
};

}  // namespace dsn
