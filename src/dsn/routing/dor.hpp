// Dimension-order routing (DOR) for 2-D/3-D tori: resolve the X offset first
// (shorter wrap direction), then Y, then Z. Deadlock-free with 2 VCs per
// dimension (dateline scheme); here used for path-length analysis and as an
// ablation baseline against up*/down* on tori.
#pragma once

#include <vector>

#include "dsn/routing/route.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

/// Full DOR path (node sequence) on a torus topology. Requires
/// topo.kind == kTorus2D or kTorus3D.
std::vector<NodeId> route_torus_dor(const Topology& topo, NodeId s, NodeId t);

/// Next hop under DOR (kInvalidNode when s == t).
NodeId torus_dor_next_hop(const Topology& topo, NodeId s, NodeId t);

/// All-pairs DOR scan (max = torus diameter under DOR, avg path length).
RoutingScan scan_torus_dor(const Topology& topo);

}  // namespace dsn
