// Greedy geographic routing on Kleinberg-style grid topologies (§II, [15]):
// at each step move to the neighbor with the smallest lattice (Manhattan)
// distance to the destination, using local information only. Kleinberg proved
// greedy finds paths of expected length O(log^2 n) — asymptotically quadratic
// in the optimum [16] — which is the weakness the DSN custom routing is
// designed to avoid.
#pragma once

#include <vector>

#include "dsn/graph/csr.hpp"
#include "dsn/routing/route.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

/// Greedy path (node sequence) on a rank-2 grid topology with optional
/// shortcuts (topo.dims = {side, side}). The base grid guarantees progress,
/// so the walk always terminates in at most 2*side hops... per remaining
/// distance; a defensive cap still guards against malformed topologies.
std::vector<NodeId> route_greedy_grid(const Topology& topo, NodeId s, NodeId t);

/// CSR-backed variant for all-pairs sweeps: identical walk over a prebuilt
/// snapshot of the grid's graph (side = grid width), without per-hop
/// adjacency-list pointer chasing.
std::vector<NodeId> route_greedy_grid(const CsrView& csr, std::uint32_t side, NodeId s,
                                      NodeId t);

/// All-pairs greedy scan (max/avg path length).
RoutingScan scan_greedy_grid(const Topology& topo);

}  // namespace dsn
