// dsn-slint: deterministic — per-hop routing decisions replay byte-identically
// from a seed; iteration order here is part of the contract.
#include "dsn/routing/sim_routing.hpp"

#include <algorithm>

#include "dsn/common/thread_pool.hpp"

namespace dsn {

namespace {

Graph alive_subgraph(const Graph& g, std::span<const std::uint8_t> link_alive,
                     std::span<const std::uint8_t> switch_alive) {
  DSN_REQUIRE(link_alive.size() == g.num_links(), "link_alive mask size mismatch");
  DSN_REQUIRE(switch_alive.size() == g.num_nodes(), "switch_alive mask size mismatch");
  Graph out(g.num_nodes());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (!link_alive[l]) continue;
    const auto [u, v] = g.link_endpoints(l);
    if (!switch_alive[u] || !switch_alive[v]) continue;
    out.add_link(u, v);
  }
  return out;
}

}  // namespace

SimRouting::SimRouting(const Topology& topo, NodeId updown_root, ThreadPool* pool)
    : topo_(&topo), n_(topo.num_nodes()), updown_(topo.graph, updown_root) {
  build_tables(topo.graph, pool);
}

SimRouting::SimRouting(const Topology& topo, std::span<const std::uint8_t> link_alive,
                       std::span<const std::uint8_t> switch_alive, NodeId updown_root,
                       ThreadPool* pool)
    : topo_(&topo),
      n_(topo.num_nodes()),
      degraded_(std::make_unique<Graph>(alive_subgraph(topo.graph, link_alive,
                                                       switch_alive))),
      updown_(*degraded_, updown_root, /*allow_disconnected=*/true) {
  DSN_REQUIRE(updown_root < switch_alive.size() && switch_alive[updown_root],
              "up*/down* root must be an alive switch");
  build_tables(*degraded_, pool);
}

void SimRouting::build_tables(const Graph& g, ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  const std::size_t nn = static_cast<std::size_t>(n_) * n_;
  dist_.assign(nn, kUnreachable);

  tp.parallel_for(0, n_, [&](std::size_t src) {
    const auto d = bfs_distances(g, static_cast<NodeId>(src));
    std::copy(d.begin(), d.end(), dist_.begin() + static_cast<std::ptrdiff_t>(src * n_));
  });

  // Minimal next hops per (u, t): neighbors of u one hop closer to t,
  // collected per source then flattened with a prefix sum. Unreachable
  // destinations (degraded builds) naturally collect zero next hops.
  std::vector<std::vector<NodeId>> per_u(n_);
  std::vector<std::uint32_t> counts(nn, 0);
  tp.parallel_for(0, n_, [&](std::size_t u) {
    auto& flat = per_u[u];
    for (NodeId t = 0; t < n_; ++t) {
      if (t == static_cast<NodeId>(u)) continue;
      const std::uint32_t du = dist_[u * n_ + t];
      if (du == kUnreachable) continue;
      std::uint32_t added = 0;
      for (const AdjHalf& h : g.neighbors(static_cast<NodeId>(u))) {
        if (dist_[static_cast<std::size_t>(h.to) * n_ + t] + 1 == du) {
          flat.push_back(h.to);
          ++added;
        }
      }
      counts[u * n_ + t] = added;
    }
  });

  minimal_off_.assign(nn + 1, 0);
  for (std::size_t i = 0; i < nn; ++i) minimal_off_[i + 1] = minimal_off_[i] + counts[i];
  minimal_flat_.clear();
  minimal_flat_.reserve(minimal_off_[nn]);
  for (NodeId u = 0; u < n_; ++u) {
    minimal_flat_.insert(minimal_flat_.end(), per_u[u].begin(), per_u[u].end());
  }
  DSN_ASSERT(minimal_flat_.size() == minimal_off_[nn], "offset bookkeeping mismatch");
}

std::span<const NodeId> SimRouting::minimal_next_hops(NodeId u, NodeId t) const {
  DSN_REQUIRE(u < n_ && t < n_, "node id out of range");
  const std::size_t idx = static_cast<std::size_t>(u) * n_ + t;
  const std::uint32_t lo = minimal_off_[idx];
  const std::uint32_t hi = minimal_off_[idx + 1];
  return {minimal_flat_.data() + lo, hi - lo};
}

}  // namespace dsn
