#include "dsn/routing/sim_routing.hpp"

#include <algorithm>

#include "dsn/common/thread_pool.hpp"

namespace dsn {

SimRouting::SimRouting(const Topology& topo, NodeId updown_root)
    : topo_(&topo), n_(topo.num_nodes()), updown_(topo.graph, updown_root) {
  const Graph& g = topo.graph;
  const std::size_t nn = static_cast<std::size_t>(n_) * n_;
  dist_.assign(nn, kUnreachable);

  parallel_for(0, n_, [&](std::size_t src) {
    const auto d = bfs_distances(g, static_cast<NodeId>(src));
    std::copy(d.begin(), d.end(), dist_.begin() + static_cast<std::ptrdiff_t>(src * n_));
  });

  // Minimal next hops per (u, t): neighbors of u one hop closer to t,
  // collected per source then flattened with a prefix sum.
  std::vector<std::vector<NodeId>> per_u(n_);
  std::vector<std::uint32_t> counts(nn, 0);
  parallel_for(0, n_, [&](std::size_t u) {
    auto& flat = per_u[u];
    for (NodeId t = 0; t < n_; ++t) {
      if (t == static_cast<NodeId>(u)) continue;
      const std::uint32_t du = dist_[u * n_ + t];
      std::uint32_t added = 0;
      for (const AdjHalf& h : g.neighbors(static_cast<NodeId>(u))) {
        if (dist_[static_cast<std::size_t>(h.to) * n_ + t] + 1 == du) {
          flat.push_back(h.to);
          ++added;
        }
      }
      counts[u * n_ + t] = added;
    }
  });

  minimal_off_.assign(nn + 1, 0);
  for (std::size_t i = 0; i < nn; ++i) minimal_off_[i + 1] = minimal_off_[i] + counts[i];
  minimal_flat_.reserve(minimal_off_[nn]);
  for (NodeId u = 0; u < n_; ++u) {
    minimal_flat_.insert(minimal_flat_.end(), per_u[u].begin(), per_u[u].end());
  }
  DSN_ASSERT(minimal_flat_.size() == minimal_off_[nn], "offset bookkeeping mismatch");
}

std::span<const NodeId> SimRouting::minimal_next_hops(NodeId u, NodeId t) const {
  DSN_REQUIRE(u < n_ && t < n_, "node id out of range");
  const std::size_t idx = static_cast<std::size_t>(u) * n_ + t;
  const std::uint32_t lo = minimal_off_[idx];
  const std::uint32_t hi = minimal_off_[idx + 1];
  return {minimal_flat_.data() + lo, hi - lo};
}

}  // namespace dsn
