// Channel Dependency Graph (CDG) analysis [Dally & Seitz] used to verify the
// deadlock-freedom claims of the paper:
//  - Theorem 3: the extended DSN routing on DSN-E (physical Up/Extra links)
//    and DSN-V (virtual channels) has an acyclic CDG;
//  - up*/down* escape routing has an acyclic CDG (classic result);
//  - negative control: the basic DSN custom routing without the extension
//    has a cyclic CDG.
//
// A channel is a directed use of a physical link tagged with a channel class
// (virtual channel / link group). A dependency c1 -> c2 is recorded whenever
// some route holds c1 and then immediately requests c2. The routing is
// deadlock-free (for virtual cut-through) if the resulting directed graph is
// acyclic.
//
// Channels are indexed through a flat hash table (not an ordered map) and
// adjacency rows reserve ahead, so all-pairs builds stay cheap at n = 4096.
// Build functions shard the ordered-pair sweep across the global thread pool
// into thread-local graphs merged deterministically at the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsn/common/types.hpp"
#include "dsn/routing/route.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn {

/// A directed channel: physical hop (from -> to) within a channel class.
struct Channel {
  NodeId from;
  NodeId to;
  std::uint8_t cls;
  auto operator<=>(const Channel&) const = default;
};

/// Multiplicative mix of the (from, to, cls) triple. The three multiplies
/// are independent (no xor-shift chain), which matters in the all-pairs
/// sweeps where this hash runs once per route hop; the probe table keeps its
/// load factor under 1/2, so the slightly weaker mixing costs nothing.
struct ChannelHash {
  std::size_t operator()(const Channel& c) const {
    const std::uint64_t z = (c.from + 1ull) * 0x9e3779b97f4a7c15ULL ^
                            (c.to + 1ull) * 0xbf58476d1ce4e5b9ULL ^
                            (c.cls + 1ull) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 29));
  }
};

class ChannelDependencyGraph {
 public:
  /// Record the channel sequence of one route; consecutive channels create
  /// dependencies. Duplicate dependencies are collapsed; every traversal of a
  /// channel still counts toward its static load (use_count).
  void add_route(const std::vector<Channel>& channels);

  /// Pre-size the index and channel arrays for an expected channel count.
  void reserve(std::size_t expected_channels);

  /// Merge another CDG into this one (channels re-indexed, dependencies
  /// deduplicated, use counts added). Used to combine per-thread shards.
  void merge(const ChannelDependencyGraph& other);

  std::size_t num_channels() const { return adjacency_.size(); }
  std::size_t num_dependencies() const { return num_deps_; }

  /// All channels, indexed by their dense channel id.
  const std::vector<Channel>& channels() const { return channels_; }

  /// Number of route traversals of each channel (the static channel load),
  /// parallel to channels().
  const std::vector<std::uint64_t>& use_counts() const { return use_counts_; }

  /// True iff the dependency a -> b has been recorded.
  bool has_dependency(const Channel& a, const Channel& b) const;

  /// True iff the dependency graph has no directed cycle (Kahn's algorithm).
  bool is_acyclic() const;

  /// One directed cycle (channel sequence; each element depends on the next,
  /// and the last depends on the first) or empty when acyclic.
  std::vector<Channel> find_cycle() const;

  /// A *shortest* directed cycle, for human-readable deadlock witnesses.
  /// Searches per-SCC breadth-first; when the estimated work exceeds
  /// `work_cap` it falls back to the (not necessarily minimal) DFS cycle.
  std::vector<Channel> find_shortest_cycle(std::uint64_t work_cap = 1ULL << 28) const;

 private:
  std::uint32_t channel_index(const Channel& c);
  std::uint32_t find_index(const Channel& c) const;
  void grow_slots(std::size_t min_capacity);

  // Open-addressing index over channels_: slots_ holds channel-id + 1 (0 =
  // empty) in a power-of-two table probed linearly. A node-based hash map
  // here costs a pointer chase per hop; the all-pairs sweeps call
  // channel_index once per route hop (billions of times at n = 4096), so the
  // probe table is the difference between seconds and minutes.
  std::vector<std::uint32_t> slots_;
  std::size_t slot_mask_ = 0;
  std::vector<Channel> channels_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::uint64_t> use_counts_;
  std::size_t num_deps_ = 0;
};

/// Channel classes used when mapping DSN routes onto channels.
enum DsnChannelClass : std::uint8_t {
  kClassUp = 0,      ///< PRE-WORK moves (Up links / "up" VC)
  kClassMain = 1,    ///< MAIN-PROCESS succ + shortcut moves
  kClassFinish = 2,  ///< FINISH ring moves
  kClassExtra = 3,   ///< FINISH moves carried by Extra links near node 0
};

/// Map a DSN route onto channels under the *extended* scheme of §V-A
/// (Theorem 3): PRE-WORK on Up channels, MAIN on main channels, FINISH on
/// finish channels except that, when the destination lies in [0, 2p-1], hops
/// with both endpoints in [0, 2p] ride the Extra channels.
std::vector<Channel> dsn_route_channels_extended(const Dsn& dsn, const Route& route);

/// Map a DSN route onto channels with a single channel class (the basic,
/// unprotected design — expected to yield a cyclic CDG).
std::vector<Channel> dsn_route_channels_basic(const Route& route);

/// Build the CDG of the DSN custom routing over all ordered pairs
/// (parallelized over sources; the result is deterministic).
ChannelDependencyGraph build_dsn_cdg(const Dsn& dsn, bool extended,
                                     bool nearest_prework = false);

/// Build the CDG of an up*/down* routing over all ordered pairs (parallel).
class UpDownRouting;
ChannelDependencyGraph build_updown_cdg(const UpDownRouting& routing);

}  // namespace dsn
