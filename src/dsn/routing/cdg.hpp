// Channel Dependency Graph (CDG) analysis [Dally & Seitz] used to verify the
// deadlock-freedom claims of the paper:
//  - Theorem 3: the extended DSN routing on DSN-E (physical Up/Extra links)
//    and DSN-V (virtual channels) has an acyclic CDG;
//  - up*/down* escape routing has an acyclic CDG (classic result);
//  - negative control: the basic DSN custom routing without the extension
//    has a cyclic CDG.
//
// A channel is a directed use of a physical link tagged with a channel class
// (virtual channel / link group). A dependency c1 -> c2 is recorded whenever
// some route holds c1 and then immediately requests c2. The routing is
// deadlock-free (for virtual cut-through) if the resulting directed graph is
// acyclic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dsn/common/types.hpp"
#include "dsn/routing/route.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn {

/// A directed channel: physical hop (from -> to) within a channel class.
struct Channel {
  NodeId from;
  NodeId to;
  std::uint8_t cls;
  auto operator<=>(const Channel&) const = default;
};

class ChannelDependencyGraph {
 public:
  /// Record the channel sequence of one route; consecutive channels create
  /// dependencies. Duplicate channels/dependencies are collapsed.
  void add_route(const std::vector<Channel>& channels);

  std::size_t num_channels() const { return adjacency_.size(); }
  std::size_t num_dependencies() const { return num_deps_; }

  /// True iff the dependency graph has no directed cycle (Kahn's algorithm).
  bool is_acyclic() const;

  /// One directed cycle (as channel indices into channels()) or empty when
  /// acyclic — useful for diagnostics and the negative-control test.
  std::vector<Channel> find_cycle() const;

 private:
  std::uint32_t channel_index(const Channel& c);

  std::map<Channel, std::uint32_t> index_;
  std::vector<Channel> channels_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::size_t num_deps_ = 0;
};

/// Channel classes used when mapping DSN routes onto channels.
enum DsnChannelClass : std::uint8_t {
  kClassUp = 0,      ///< PRE-WORK moves (Up links / "up" VC)
  kClassMain = 1,    ///< MAIN-PROCESS succ + shortcut moves
  kClassFinish = 2,  ///< FINISH ring moves
  kClassExtra = 3,   ///< FINISH moves carried by Extra links near node 0
};

/// Map a DSN route onto channels under the *extended* scheme of §V-A
/// (Theorem 3): PRE-WORK on Up channels, MAIN on main channels, FINISH on
/// finish channels except that, when the destination lies in [0, 2p-1], hops
/// with both endpoints in [0, 2p] ride the Extra channels.
std::vector<Channel> dsn_route_channels_extended(const Dsn& dsn, const Route& route);

/// Map a DSN route onto channels with a single channel class (the basic,
/// unprotected design — expected to yield a cyclic CDG).
std::vector<Channel> dsn_route_channels_basic(const Route& route);

/// Build the CDG of the DSN custom routing over all ordered pairs.
ChannelDependencyGraph build_dsn_cdg(const Dsn& dsn, bool extended,
                                     bool nearest_prework = false);

/// Build the CDG of an up*/down* routing over all ordered pairs.
class UpDownRouting;
ChannelDependencyGraph build_updown_cdg(const UpDownRouting& routing);

}  // namespace dsn
