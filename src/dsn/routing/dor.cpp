#include "dsn/routing/dor.hpp"

#include <algorithm>
#include "dsn/common/mutex.hpp"

#include "dsn/common/math.hpp"
#include "dsn/common/thread_pool.hpp"

namespace dsn {

namespace {

struct Coords {
  std::vector<std::uint32_t> c;
};

Coords coords_of(const Topology& topo, NodeId v) {
  Coords out;
  NodeId rest = v;
  for (const std::uint32_t dim : topo.dims) {
    out.c.push_back(rest % dim);
    rest /= dim;
  }
  return out;
}

NodeId id_of(const Topology& topo, const Coords& coords) {
  NodeId id = 0;
  for (std::size_t k = topo.dims.size(); k-- > 0;) {
    id = id * topo.dims[k] + coords.c[k];
  }
  return id;
}

/// Step coordinate `dim` one hop toward the target along the shorter wrap
/// direction; ties go clockwise (+1).
std::uint32_t step_toward(std::uint32_t from, std::uint32_t to, std::uint32_t size) {
  const std::uint64_t fwd = ring_cw_distance(from, to, size);
  const std::uint64_t bwd = size - fwd;
  if (fwd <= bwd) return (from + 1) % size;
  return from == 0 ? size - 1 : from - 1;
}

}  // namespace

std::vector<NodeId> route_torus_dor(const Topology& topo, NodeId s, NodeId t) {
  DSN_REQUIRE(topo.kind == TopologyKind::kTorus2D || topo.kind == TopologyKind::kTorus3D,
              "DOR requires a torus topology");
  DSN_REQUIRE(s < topo.num_nodes() && t < topo.num_nodes(), "node id out of range");
  std::vector<NodeId> path{s};
  Coords cur = coords_of(topo, s);
  const Coords dst = coords_of(topo, t);
  for (std::size_t dim = 0; dim < topo.dims.size(); ++dim) {
    while (cur.c[dim] != dst.c[dim]) {
      cur.c[dim] = step_toward(cur.c[dim], dst.c[dim], topo.dims[dim]);
      path.push_back(id_of(topo, cur));
    }
  }
  return path;
}

NodeId torus_dor_next_hop(const Topology& topo, NodeId s, NodeId t) {
  if (s == t) return kInvalidNode;
  Coords cur = coords_of(topo, s);
  const Coords dst = coords_of(topo, t);
  for (std::size_t dim = 0; dim < topo.dims.size(); ++dim) {
    if (cur.c[dim] != dst.c[dim]) {
      cur.c[dim] = step_toward(cur.c[dim], dst.c[dim], topo.dims[dim]);
      return id_of(topo, cur);
    }
  }
  return kInvalidNode;
}

RoutingScan scan_torus_dor(const Topology& topo) {
  const NodeId n = topo.num_nodes();
  RoutingScan scan;
  Mutex merge;
  std::uint64_t total = 0;
  parallel_for(0, n, [&](std::size_t s) {
    std::uint32_t local_max = 0;
    std::uint64_t local_total = 0;
    for (NodeId t = 0; t < n; ++t) {
      if (t == static_cast<NodeId>(s)) continue;
      const auto path = route_torus_dor(topo, static_cast<NodeId>(s), t);
      const auto hops = static_cast<std::uint32_t>(path.size() - 1);
      local_max = std::max(local_max, hops);
      local_total += hops;
    }
    LockGuard lock(merge);
    scan.max_hops = std::max(scan.max_hops, local_max);
    total += local_total;
  });
  scan.pairs = static_cast<std::uint64_t>(n) * (n - 1);
  scan.avg_hops =
      scan.pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(scan.pairs);
  return scan;
}

}  // namespace dsn
