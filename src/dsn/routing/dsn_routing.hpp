// The DSN custom routing algorithm (paper §IV-B, Fig. 2) and its variants:
//  - basic three-phase routing (PRE-WORK, MAIN-PROCESS, FINISH);
//  - nearest-direction PRE-WORK (used in the Fact-3 diameter argument);
//  - overshoot-avoiding variant (§V-D);
//  - DSN-D routing that exploits express links in the local-walk phases.
#pragma once

#include <algorithm>
#include "dsn/common/mutex.hpp"

#include "dsn/common/thread_pool.hpp"
#include "dsn/routing/route.hpp"
#include "dsn/topology/dsn.hpp"
#include "dsn/topology/dsn_ext.hpp"

namespace dsn {

struct DsnRoutingOptions {
  /// §V-D: when the selected shortcut would overshoot the destination, step
  /// to the successor and take its (shorter) shortcut instead.
  bool avoid_overshoot = false;
  /// Fact 3: in PRE-WORK move toward the *nearest* node of the required
  /// level, clockwise or counterclockwise, instead of always counterclockwise.
  bool nearest_prework = false;
};

/// Stateless router over a basic DSN. Routes are deterministic.
class DsnRouter {
 public:
  explicit DsnRouter(const Dsn& dsn, DsnRoutingOptions options = {});

  /// Compute the full route from s to t. s == t yields an empty route.
  Route route(NodeId s, NodeId t) const;

  const Dsn& dsn() const { return *dsn_; }
  const DsnRoutingOptions& options() const { return options_; }

 private:
  /// Required shortcut level for clockwise distance d: l = floor(log2(n/d))+1,
  /// clamped to [1, p]; satisfies n/2^l <= d (approximately, integer math).
  std::uint32_t level_for_distance(std::uint64_t d) const;

  const Dsn* dsn_;
  DsnRoutingOptions options_;
};

/// Route on a DSN-D using express links to shorten PRE-WORK and FINISH.
Route route_dsn_d(const DsnD& d, NodeId s, NodeId t, DsnRoutingOptions options = {});

/// Route on a flexible DSN: minor destinations are reached through the
/// preceding major node, then by succ links (§V-C).
Route route_dsn_flex(const FlexDsn& f, NodeId s, NodeId t, DsnRoutingOptions options = {});

/// All-pairs scan of a DsnRouter.
RoutingScan scan_all_pairs(const DsnRouter& router);

/// Verify that a route is well-formed on the given DSN: starts at src, ends
/// at dst, every hop is a graph link, phases appear in order. Throws
/// InternalError on violation.
void validate_route(const Dsn& dsn, const Route& route);

/// Evaluate an arbitrary route function over all ordered pairs of an n-node
/// network (parallelized over sources).
template <typename RouteFn>
RoutingScan scan_all_pairs_fn(NodeId n, const RouteFn& route_fn) {
  RoutingScan scan;
  Mutex merge;
  std::uint64_t total = 0;
  parallel_for(0, n, [&](std::size_t s) {
    std::uint32_t local_max = 0;
    std::uint64_t local_total = 0;
    std::uint64_t local_fallbacks = 0;
    for (NodeId t = 0; t < n; ++t) {
      if (t == static_cast<NodeId>(s)) continue;
      const Route r = route_fn(static_cast<NodeId>(s), t);
      local_max = std::max<std::uint32_t>(local_max, static_cast<std::uint32_t>(r.length()));
      local_total += r.length();
      local_fallbacks += r.used_fallback ? 1 : 0;
    }
    LockGuard lock(merge);
    scan.max_hops = std::max(scan.max_hops, local_max);
    total += local_total;
    scan.fallback_routes += local_fallbacks;
  });
  scan.pairs = static_cast<std::uint64_t>(n) * (n - 1);
  scan.avg_hops = scan.pairs == 0 ? 0.0
                                  : static_cast<double>(total) / static_cast<double>(scan.pairs);
  return scan;
}

}  // namespace dsn
