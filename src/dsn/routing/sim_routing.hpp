// Routing tables for the cycle-accurate simulator: the topology-agnostic
// adaptive scheme of Silla & Duato [24] as described in §VII-A — fully
// adaptive minimal hops on the adaptive virtual channels, with up*/down*
// shortest legal paths as the escape layer. Deadlock freedom follows from
// Duato's theory for virtual cut-through: the escape subnetwork (up*/down*)
// has an acyclic channel dependency graph and is connected.
//
// The masked constructor supports live fault recovery: it builds the same
// tables over the alive subgraph only (dead links and halted switches
// removed), allowing disconnected intermediate states — unreachable pairs
// simply have no next hops until the topology heals.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dsn/graph/metrics.hpp"
#include "dsn/routing/updown.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

class ThreadPool;

class SimRouting {
 public:
  /// Builds APSP distances, minimal next-hop sets and up*/down* tables.
  /// `pool` overrides the global thread pool for table construction (the
  /// deterministic-replay tests rebuild with explicit 1/4/8-worker pools;
  /// the tables are identical for any worker count).
  explicit SimRouting(const Topology& topo, NodeId updown_root = 0,
                      ThreadPool* pool = nullptr);

  /// Degraded rebuild over the alive subgraph (link_alive indexed by LinkId,
  /// switch_alive by NodeId; a link is kept only when it and both endpoints
  /// are alive). `updown_root` must be an alive switch.
  SimRouting(const Topology& topo, std::span<const std::uint8_t> link_alive,
             std::span<const std::uint8_t> switch_alive, NodeId updown_root,
             ThreadPool* pool = nullptr);

  const Topology& topology() const { return *topo_; }
  const UpDownRouting& updown() const { return updown_; }

  /// Hop distance between switches (kUnreachable across dead regions).
  std::uint32_t distance(NodeId u, NodeId t) const {
    return dist_[static_cast<std::size_t>(u) * n_ + t];
  }

  /// Minimal adaptive next hops from u toward t (neighbors one hop closer;
  /// empty when t is unreachable).
  std::span<const NodeId> minimal_next_hops(NodeId u, NodeId t) const;

  /// Escape next hop (up*/down*). `down_only` reflects whether the packet's
  /// previous consecutive escape hop was a down hop.
  NodeId escape_next_hop(NodeId u, NodeId t, bool down_only) const {
    return updown_.next_hop(u, t, down_only);
  }

  /// Whether hop u -> v is a down hop in the up*/down* orientation.
  bool escape_hop_is_down(NodeId u, NodeId v) const { return !updown_.is_up(u, v); }

 private:
  void build_tables(const Graph& g, ThreadPool* pool);

  const Topology* topo_;
  NodeId n_;
  std::unique_ptr<Graph> degraded_;  ///< owned alive subgraph (masked builds only)
  UpDownRouting updown_;
  std::vector<std::uint32_t> dist_;       // n * n
  std::vector<NodeId> minimal_flat_;      // concatenated next-hop lists
  std::vector<std::uint32_t> minimal_off_;  // (n*n + 1) offsets into minimal_flat_
};

}  // namespace dsn
