// Up*/down* routing [Schroeder et al., Autonet] — the topology-agnostic
// deadlock-free routing the paper assumes for random topologies and uses as
// the escape layer of the adaptive scheme in the simulator (§VII-A, [24]).
//
// A BFS spanning tree from a root orients every link: the end closer to the
// root (ties broken by lower node id) is the "up" end. A legal path traverses
// zero or more up links followed by zero or more down links; this forbids the
// down->up transition, which makes the channel dependency graph acyclic.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/graph/csr.hpp"
#include "dsn/graph/graph.hpp"
#include "dsn/routing/route.hpp"

namespace dsn {

class UpDownRouting {
 public:
  /// Builds tree levels and both next-hop tables (O(n * E) preprocessing).
  /// With `allow_disconnected` the graph may have several components (the
  /// degraded rebuilds of the fault-recovery path): nodes unreachable from
  /// the root keep kUnreachable tree levels — the (level, id) orientation
  /// stays a total order, so legality is still acyclic — and pairs in
  /// different components simply have no legal paths (next_hop returns
  /// kInvalidNode for them).
  UpDownRouting(const Graph& g, NodeId root, bool allow_disconnected = false);

  NodeId root() const { return root_; }
  const Graph& graph() const { return *graph_; }

  /// True iff traversing u -> v is an "up" hop (toward the root).
  bool is_up(NodeId u, NodeId v) const;

  /// Hop count of the shortest legal path from u to t (phase 0: up allowed).
  std::uint32_t legal_distance(NodeId u, NodeId t) const;

  /// Next hop on a shortest legal path from u to t. `down_only` selects the
  /// table for packets whose previous hop (on the escape layer) was a down
  /// hop; such a continuation exists whenever the tables were followed
  /// consistently. Returns kInvalidNode when u == t.
  NodeId next_hop(NodeId u, NodeId t, bool down_only = false) const;

  /// Full shortest legal path from s to t (node sequence including both ends).
  std::vector<NodeId> route(NodeId s, NodeId t) const;

  /// Max/avg legal path length over all ordered pairs.
  RoutingScan scan_all_pairs() const;

 private:
  const Graph* graph_;
  CsrView csr_;  // traversal snapshot: table construction walks this
  NodeId root_;
  std::vector<std::uint32_t> tree_level_;
  // dist_[phase][t * n + u] = shortest legal hops from u to t given phase
  // (0: up still allowed, 1: down only); kUnreachable if none.
  std::vector<std::uint32_t> dist_[2];
  // next_[phase][t * n + u] = next hop on such a path.
  std::vector<NodeId> next_[2];
};

}  // namespace dsn
