#include "dsn/routing/cdg.hpp"

#include <algorithm>
#include <utility>

#include "dsn/common/thread_pool.hpp"
#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/updown.hpp"

namespace dsn {

void ChannelDependencyGraph::grow_slots(std::size_t min_capacity) {
  std::size_t cap = 64;
  while (cap < 2 * min_capacity) cap *= 2;  // keep load factor under 1/2
  slots_.assign(cap, 0);
  slot_mask_ = cap - 1;
  for (std::uint32_t id = 0; id < channels_.size(); ++id) {
    std::size_t h = ChannelHash{}(channels_[id]) & slot_mask_;
    while (slots_[h] != 0) h = (h + 1) & slot_mask_;
    slots_[h] = id + 1;
  }
}

std::uint32_t ChannelDependencyGraph::channel_index(const Channel& c) {
  if (2 * (channels_.size() + 1) > slots_.size()) grow_slots(channels_.size() + 1);
  std::size_t h = ChannelHash{}(c) & slot_mask_;
  while (slots_[h] != 0) {
    const std::uint32_t id = slots_[h] - 1;
    if (channels_[id] == c) return id;
    h = (h + 1) & slot_mask_;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(channels_.size());
  slots_[h] = id + 1;
  channels_.push_back(c);
  adjacency_.emplace_back();
  // Reserve ahead: CDG out-degrees are tiny (a channel is followed by at
  // most a handful of distinct next channels), so one small reservation
  // avoids the doubling reallocations of the first few pushes.
  adjacency_.back().reserve(4);
  use_counts_.push_back(0);
  return id;
}

std::uint32_t ChannelDependencyGraph::find_index(const Channel& c) const {
  if (slots_.empty()) return 0xffffffffu;
  std::size_t h = ChannelHash{}(c) & slot_mask_;
  while (slots_[h] != 0) {
    const std::uint32_t id = slots_[h] - 1;
    if (channels_[id] == c) return id;
    h = (h + 1) & slot_mask_;
  }
  return 0xffffffffu;
}

void ChannelDependencyGraph::add_route(const std::vector<Channel>& channels) {
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const std::uint32_t cur = channel_index(channels[i]);
    ++use_counts_[cur];
    if (i > 0 && prev != cur) {
      auto& out = adjacency_[prev];
      if (std::find(out.begin(), out.end(), cur) == out.end()) {
        out.push_back(cur);
        ++num_deps_;
      }
    }
    prev = cur;
  }
}

void ChannelDependencyGraph::reserve(std::size_t expected_channels) {
  if (2 * expected_channels > slots_.size()) grow_slots(expected_channels);
  channels_.reserve(expected_channels);
  adjacency_.reserve(expected_channels);
  use_counts_.reserve(expected_channels);
}

void ChannelDependencyGraph::merge(const ChannelDependencyGraph& other) {
  reserve(num_channels() + other.num_channels());
  // Re-index the other graph's channels into this one, then translate its
  // adjacency rows; duplicates collapse exactly as in add_route.
  std::vector<std::uint32_t> remap(other.channels_.size());
  for (std::size_t i = 0; i < other.channels_.size(); ++i) {
    remap[i] = channel_index(other.channels_[i]);
    use_counts_[remap[i]] += other.use_counts_[i];
  }
  for (std::size_t i = 0; i < other.adjacency_.size(); ++i) {
    auto& out = adjacency_[remap[i]];
    for (const std::uint32_t raw : other.adjacency_[i]) {
      const std::uint32_t to = remap[raw];
      if (std::find(out.begin(), out.end(), to) == out.end()) {
        out.push_back(to);
        ++num_deps_;
      }
    }
  }
}

bool ChannelDependencyGraph::has_dependency(const Channel& a, const Channel& b) const {
  const std::uint32_t ia = find_index(a);
  const std::uint32_t ib = find_index(b);
  if (ia == 0xffffffffu || ib == 0xffffffffu) return false;
  const auto& out = adjacency_[ia];
  return std::find(out.begin(), out.end(), ib) != out.end();
}

bool ChannelDependencyGraph::is_acyclic() const {
  // Kahn's algorithm: the graph is acyclic iff every node can be popped.
  const std::size_t n = adjacency_.size();
  std::vector<std::uint32_t> indegree(n, 0);
  for (const auto& out : adjacency_)
    for (const std::uint32_t v : out) ++indegree[v];
  std::vector<std::uint32_t> ready;
  ready.reserve(n);
  for (std::uint32_t u = 0; u < n; ++u)
    if (indegree[u] == 0) ready.push_back(u);
  std::size_t popped = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.back();
    ready.pop_back();
    ++popped;
    for (const std::uint32_t v : adjacency_[u])
      if (--indegree[v] == 0) ready.push_back(v);
  }
  return popped == n;
}

std::vector<Channel> ChannelDependencyGraph::find_cycle() const {
  // Iterative DFS with colors; returns the first back-edge cycle found.
  const std::size_t n = adjacency_.size();
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::uint32_t> parent(n, kInvalidNode);

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    // Stack of (node, next child index).
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [u, child] = stack.back();
      if (child < adjacency_[u].size()) {
        const std::uint32_t v = adjacency_[u][child++];
        if (color[v] == 0) {
          color[v] = 1;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == 1) {
          // Found a cycle v -> ... -> u -> v.
          std::vector<Channel> cycle;
          std::uint32_t w = u;
          cycle.push_back(channels_[v]);
          while (w != v && w != kInvalidNode) {
            cycle.push_back(channels_[w]);
            w = parent[w];
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

namespace {

/// Strongly connected components by iterative Tarjan; returns the component
/// id of every node. Only components of size >= 2 (or with a self edge,
/// which add_route forbids) can contain cycles.
std::vector<std::uint32_t> tarjan_scc(const std::vector<std::vector<std::uint32_t>>& adj,
                                      std::vector<std::uint32_t>& comp_size) {
  const std::size_t n = adj.size();
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> comp(n, kUnset), low(n, 0), disc(n, kUnset);
  std::vector<std::uint32_t> scc_stack;
  std::vector<std::uint8_t> on_stack(n, 0);
  std::uint32_t timer = 0, comps = 0;
  std::vector<std::pair<std::uint32_t, std::size_t>> dfs;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (disc[root] != kUnset) continue;
    dfs.emplace_back(root, 0);
    while (!dfs.empty()) {
      auto& [u, child] = dfs.back();
      if (child == 0) {
        disc[u] = low[u] = timer++;
        scc_stack.push_back(u);
        on_stack[u] = 1;
      }
      if (child < adj[u].size()) {
        const std::uint32_t v = adj[u][child++];
        if (disc[v] == kUnset) {
          dfs.emplace_back(v, 0);
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        if (low[u] == disc[u]) {
          std::uint32_t size = 0;
          while (true) {
            const std::uint32_t w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            comp[w] = comps;
            ++size;
            if (w == u) break;
          }
          comp_size.push_back(size);
          ++comps;
        }
        const std::uint32_t u_done = u;
        dfs.pop_back();
        if (!dfs.empty()) {
          low[dfs.back().first] = std::min(low[dfs.back().first], low[u_done]);
        }
      }
    }
  }
  return comp;
}

}  // namespace

std::vector<Channel> ChannelDependencyGraph::find_shortest_cycle(
    std::uint64_t work_cap) const {
  const std::size_t n = adjacency_.size();
  if (n == 0) return {};
  std::vector<std::uint32_t> comp_size;
  const std::vector<std::uint32_t> comp = tarjan_scc(adjacency_, comp_size);

  // Every directed cycle lives inside one SCC of size >= 2; BFS from each
  // such node, restricted to its component, finds the shortest cycle through
  // that node. Estimated work: sum over cyclic SCCs of size^2.
  std::uint64_t work = 0;
  for (const std::uint32_t size : comp_size)
    if (size >= 2) work += static_cast<std::uint64_t>(size) * size;
  if (work == 0) return {};
  if (work > work_cap) return find_cycle();

  std::vector<std::uint32_t> dist(n), parent(n), queue;
  std::vector<std::uint32_t> best;  // node-id cycle, best.front() repeated implicitly
  for (std::uint32_t start = 0; start < n; ++start) {
    if (comp_size[comp[start]] < 2) continue;
    if (!best.empty() && best.size() == 2) break;  // 2 is the global minimum
    std::fill(dist.begin(), dist.end(), kInvalidNode);
    queue.clear();
    dist[start] = 0;
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      if (!best.empty() && dist[u] + 1 >= best.size()) break;  // cannot improve
      for (const std::uint32_t v : adjacency_[u]) {
        if (comp[v] != comp[start]) continue;
        if (v == start) {
          // Closed a cycle start -> ... -> u -> start of length dist[u] + 1.
          std::vector<std::uint32_t> cycle;
          for (std::uint32_t w = u;; w = parent[w]) {
            cycle.push_back(w);
            if (w == start) break;
          }
          std::reverse(cycle.begin(), cycle.end());
          if (best.empty() || cycle.size() < best.size()) best = std::move(cycle);
          continue;
        }
        if (dist[v] != kInvalidNode) continue;
        dist[v] = dist[u] + 1;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  std::vector<Channel> out;
  out.reserve(best.size());
  for (const std::uint32_t idx : best) out.push_back(channels_[idx]);
  return out;
}

std::vector<Channel> dsn_route_channels_extended(const Dsn& dsn, const Route& route) {
  const std::uint32_t p = dsn.p();
  const NodeId region_hi = 2 * p;  // Extra links connect nodes 0..2p
  const bool dst_in_region = route.dst + 1 <= region_hi;  // dst <= 2p - 1
  std::vector<Channel> out;
  out.reserve(route.hops.size());
  for (const RouteHop& h : route.hops) {
    std::uint8_t cls = kClassMain;
    switch (h.phase) {
      case RoutePhase::kPreWork:
        cls = kClassUp;
        break;
      case RoutePhase::kMain:
        cls = kClassMain;
        break;
      case RoutePhase::kFinish:
        if (dst_in_region && h.from <= region_hi && h.to <= region_hi &&
            std::max(h.from, h.to) <= region_hi) {
          cls = kClassExtra;
        } else {
          cls = kClassFinish;
        }
        break;
    }
    out.push_back({h.from, h.to, cls});
  }
  return out;
}

std::vector<Channel> dsn_route_channels_basic(const Route& route) {
  std::vector<Channel> out;
  out.reserve(route.hops.size());
  for (const RouteHop& h : route.hops) out.push_back({h.from, h.to, 0});
  return out;
}

namespace {

/// Shard the all-ordered-pairs sweep over sources across the global pool:
/// each shard accumulates into a private CDG over a contiguous source range,
/// and shards merge in fixed order so the result is deterministic.
template <typename PerSource>
ChannelDependencyGraph build_cdg_sharded(NodeId n, const PerSource& per_source) {
  ThreadPool& pool = ThreadPool::global();
  const std::size_t num_shards =
      std::max<std::size_t>(1, std::min<std::size_t>(n, 4 * pool.size()));
  std::vector<ChannelDependencyGraph> shards(num_shards);
  pool.parallel_for(0, num_shards, [&](std::size_t k) {
    const NodeId begin = static_cast<NodeId>(k * n / num_shards);
    const NodeId end = static_cast<NodeId>((k + 1) * n / num_shards);
    for (NodeId s = begin; s < end; ++s) per_source(s, shards[k]);
  });
  ChannelDependencyGraph cdg = std::move(shards[0]);
  for (std::size_t k = 1; k < num_shards; ++k) cdg.merge(shards[k]);
  return cdg;
}

}  // namespace

ChannelDependencyGraph build_dsn_cdg(const Dsn& dsn, bool extended, bool nearest_prework) {
  DsnRoutingOptions options;
  options.nearest_prework = nearest_prework;
  DsnRouter router(dsn, options);
  const NodeId n = dsn.n();
  return build_cdg_sharded(n, [&](NodeId s, ChannelDependencyGraph& shard) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const Route r = router.route(s, t);
      shard.add_route(extended ? dsn_route_channels_extended(dsn, r)
                               : dsn_route_channels_basic(r));
    }
  });
}

ChannelDependencyGraph build_updown_cdg(const UpDownRouting& routing) {
  const NodeId n = routing.graph().num_nodes();
  return build_cdg_sharded(n, [&](NodeId s, ChannelDependencyGraph& shard) {
    std::vector<Channel> channels;
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto path = routing.route(s, t);
      channels.clear();
      channels.reserve(path.size());
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        channels.push_back({path[i], path[i + 1], 0});
      }
      shard.add_route(channels);
    }
  });
}

}  // namespace dsn
