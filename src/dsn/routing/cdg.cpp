#include "dsn/routing/cdg.hpp"

#include <algorithm>
#include <set>

#include "dsn/routing/dsn_routing.hpp"
#include "dsn/routing/updown.hpp"

namespace dsn {

std::uint32_t ChannelDependencyGraph::channel_index(const Channel& c) {
  auto [it, inserted] = index_.try_emplace(c, static_cast<std::uint32_t>(channels_.size()));
  if (inserted) {
    channels_.push_back(c);
    adjacency_.emplace_back();
  }
  return it->second;
}

void ChannelDependencyGraph::add_route(const std::vector<Channel>& channels) {
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const std::uint32_t cur = channel_index(channels[i]);
    if (i > 0 && prev != cur) {
      auto& out = adjacency_[prev];
      if (std::find(out.begin(), out.end(), cur) == out.end()) {
        out.push_back(cur);
        ++num_deps_;
      }
    }
    prev = cur;
  }
}

bool ChannelDependencyGraph::is_acyclic() const { return find_cycle().empty(); }

std::vector<Channel> ChannelDependencyGraph::find_cycle() const {
  // Iterative DFS with colors; returns the first back-edge cycle found.
  const std::size_t n = adjacency_.size();
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::uint32_t> parent(n, kInvalidNode);

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    // Stack of (node, next child index).
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [u, child] = stack.back();
      if (child < adjacency_[u].size()) {
        const std::uint32_t v = adjacency_[u][child++];
        if (color[v] == 0) {
          color[v] = 1;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (color[v] == 1) {
          // Found a cycle v -> ... -> u -> v.
          std::vector<Channel> cycle;
          std::uint32_t w = u;
          cycle.push_back(channels_[v]);
          while (w != v && w != kInvalidNode) {
            cycle.push_back(channels_[w]);
            w = parent[w];
          }
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
      } else {
        color[u] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

std::vector<Channel> dsn_route_channels_extended(const Dsn& dsn, const Route& route) {
  const std::uint32_t p = dsn.p();
  const NodeId region_hi = 2 * p;  // Extra links connect nodes 0..2p
  const bool dst_in_region = route.dst + 1 <= region_hi;  // dst <= 2p - 1
  std::vector<Channel> out;
  out.reserve(route.hops.size());
  for (const RouteHop& h : route.hops) {
    std::uint8_t cls = kClassMain;
    switch (h.phase) {
      case RoutePhase::kPreWork:
        cls = kClassUp;
        break;
      case RoutePhase::kMain:
        cls = kClassMain;
        break;
      case RoutePhase::kFinish:
        if (dst_in_region && h.from <= region_hi && h.to <= region_hi &&
            std::max(h.from, h.to) <= region_hi) {
          cls = kClassExtra;
        } else {
          cls = kClassFinish;
        }
        break;
    }
    out.push_back({h.from, h.to, cls});
  }
  return out;
}

std::vector<Channel> dsn_route_channels_basic(const Route& route) {
  std::vector<Channel> out;
  out.reserve(route.hops.size());
  for (const RouteHop& h : route.hops) out.push_back({h.from, h.to, 0});
  return out;
}

ChannelDependencyGraph build_dsn_cdg(const Dsn& dsn, bool extended, bool nearest_prework) {
  DsnRoutingOptions options;
  options.nearest_prework = nearest_prework;
  DsnRouter router(dsn, options);
  ChannelDependencyGraph cdg;
  const NodeId n = dsn.n();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const Route r = router.route(s, t);
      cdg.add_route(extended ? dsn_route_channels_extended(dsn, r)
                             : dsn_route_channels_basic(r));
    }
  }
  return cdg;
}

ChannelDependencyGraph build_updown_cdg(const UpDownRouting& routing) {
  ChannelDependencyGraph cdg;
  const NodeId n = routing.graph().num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto path = routing.route(s, t);
      std::vector<Channel> channels;
      channels.reserve(path.size() - 1);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        channels.push_back({path[i], path[i + 1], 0});
      }
      cdg.add_route(channels);
    }
  }
  return cdg;
}

}  // namespace dsn
