// Topology import/export: Graphviz DOT (for visual inspection), a plain
// edge-list format (one "u v role" line per link) for interchange with other
// tools, and a round-trip parser for the edge-list format.
#pragma once

#include <iosfwd>
#include <string>

#include "dsn/topology/topology.hpp"

namespace dsn {

/// Graphviz DOT with link roles as edge colors (shortcuts red, ring black,
/// express blue, up/extra dashed).
std::string to_dot(const Topology& topo);

/// Plain edge list: header line "# dsn-topology <name> <kind> <n> [dims...]",
/// then one "u v role" line per link.
std::string to_edge_list(const Topology& topo);
void write_edge_list(std::ostream& os, const Topology& topo);

/// Parse the edge-list format produced by to_edge_list. Throws
/// PreconditionError on malformed input.
Topology read_edge_list(std::istream& is);
Topology parse_edge_list(const std::string& text);

}  // namespace dsn
