// The paper's primary contribution: the basic Distributed Shortcut Network
// DSN-x-n (§IV).
//
// n nodes sit on a ring. With p = ceil(log2 n), node i has level
// l(i) = (i mod p) + 1 and height p + 1 - l(i). Every node at level l <= x
// owns one *level-l shortcut* to the nearest clockwise node of level l+1 at
// ring distance >= floor(n / 2^l). Groups of p consecutive nodes ("super
// nodes") therefore collectively own a full DLN-style set of distance-halving
// shortcuts, which is what keeps the diameter logarithmic at average degree
// <= 4 (Fact 1 / Theorem 1).
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/topology/topology.hpp"

namespace dsn {

class Dsn {
 public:
  /// Construct DSN-x-n. Requires n >= 8 (so p >= 3) and 1 <= x <= p-1.
  Dsn(std::uint32_t n, std::uint32_t x);

  std::uint32_t n() const { return n_; }
  /// p = ceil(log2 n): super-node size and number of levels.
  std::uint32_t p() const { return p_; }
  /// Size of the shortcut set (levels 1..x have shortcuts).
  std::uint32_t x() const { return x_; }
  /// r = n mod p: size of the final, possibly incomplete super node.
  std::uint32_t r() const { return r_; }

  /// Level of node i, in [1, p].
  std::uint32_t level(NodeId i) const { return i % p_ + 1; }
  /// Height of node i = p + 1 - level(i); higher nodes own longer shortcuts.
  std::uint32_t height(NodeId i) const { return p_ + 1 - level(i); }

  NodeId pred(NodeId i) const { return i == 0 ? n_ - 1 : i - 1; }
  NodeId succ(NodeId i) const { return i + 1 == n_ ? 0 : i + 1; }

  /// Minimum span of a level-l shortcut: floor(n / 2^l).
  std::uint32_t shortcut_min_span(std::uint32_t l) const { return n_ >> l; }

  /// Outgoing shortcut target of node i, or kInvalidNode when level(i) > x.
  NodeId shortcut_target(NodeId i) const { return shortcut_target_[i]; }

  /// Nodes whose shortcut points at i (0, 1 or 2 of them — Fact 1).
  const std::vector<NodeId>& incoming_shortcuts(NodeId i) const {
    return incoming_shortcuts_[i];
  }

  /// Super node index of node i (groups of p consecutive ids).
  std::uint32_t super_node(NodeId i) const { return i / p_; }

  /// The switch graph (ring links then shortcut links; shortcut links that
  /// would duplicate a ring link are collapsed).
  const Topology& topology() const { return topology_; }

 private:
  std::uint32_t n_;
  std::uint32_t p_;
  std::uint32_t x_;
  std::uint32_t r_;
  std::vector<NodeId> shortcut_target_;
  std::vector<std::vector<NodeId>> incoming_shortcuts_;
  Topology topology_;
};

/// Convenience factory returning only the Topology of a basic DSN-x-n.
Topology make_dsn(std::uint32_t n, std::uint32_t x);

/// The paper's default shortcut-set size: the largest x (= p-1), which
/// satisfies the x > p - log p premise of Theorems 1-2.
std::uint32_t dsn_default_x(std::uint32_t n);

}  // namespace dsn
