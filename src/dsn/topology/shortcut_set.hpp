// dsn-slint: deterministic — swap validity and snapshot layout must depend
// only on the topology and the requested swap, never on iteration order of
// hashed containers (none are used) or thread count.
//
// Mutable view over a topology's shortcut placement. The optimizer explores
// placements by double-edge swaps over LinkRole::kShortcut links only: the
// fixed subgraph (ring/torus/express links) is never touched, so its
// connectivity — required at construction — is an invariant, and every
// node's degree is exactly preserved by construction.
//
// Snapshots are immutable CsrViews with a stable link-id layout: fixed links
// first (ids 0 .. fixed_links() - 1, in topology order), then shortcut slot i
// at id fixed_links() + i. Per-link state held across swaps (estimator tree
// loads, cable lengths) therefore stays aligned: a swap changes the endpoint
// pair stored in a slot, not the slot's id.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dsn/graph/csr.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

class MutableShortcutSet {
 public:
  /// Partitions topo's links into fixed (every non-kShortcut role) and
  /// mutable shortcut slots. Requires at least two shortcut links (a double
  /// swap needs two slots) and a connected fixed subgraph.
  explicit MutableShortcutSet(const Topology& topo);

  NodeId num_nodes() const { return n_; }
  std::size_t fixed_links() const { return fixed_.size(); }
  std::size_t num_shortcuts() const { return shortcuts_.size(); }
  std::size_t num_links() const { return fixed_.size() + shortcuts_.size(); }

  const std::pair<NodeId, NodeId>& shortcut(std::size_t slot) const {
    DSN_REQUIRE(slot < shortcuts_.size(), "shortcut slot out of range");
    return shortcuts_[slot];
  }
  std::span<const std::pair<NodeId, NodeId>> shortcuts() const { return shortcuts_; }

  /// Link id of shortcut slot `slot` in snapshots of this view.
  LinkId shortcut_link_id(std::size_t slot) const {
    DSN_REQUIRE(slot < shortcuts_.size(), "shortcut slot out of range");
    return static_cast<LinkId>(fixed_.size() + slot);
  }

  /// Double-edge swap on slots i != j holding (a, b) and (c, d):
  ///   cross == false  ->  (a, c), (b, d)
  ///   cross == true   ->  (a, d), (b, c)
  /// Rejects (returning false, state unchanged) swaps that would create a
  /// self loop, duplicate an existing link (fixed or shortcut), or reproduce
  /// the current placement (no-op). On success the swap is applied and
  /// becomes undoable.
  bool try_swap(std::size_t i, std::size_t j, bool cross);

  /// Revert the most recent successful try_swap. At most one level of undo.
  void undo_last();

  /// Immutable CSR snapshot of the current placement (stable link ids as
  /// documented above). O(n + m); reuses an internal edge buffer.
  CsrView snapshot() const;

 private:
  std::uint32_t edge_count(NodeId u, NodeId v) const;
  void adj_remove(NodeId u, NodeId v);
  void adj_insert(NodeId u, NodeId v);

  NodeId n_ = 0;
  std::vector<std::pair<NodeId, NodeId>> fixed_;
  std::vector<std::pair<NodeId, NodeId>> shortcuts_;
  /// Sorted per-node neighbor multisets over ALL links, for O(degree)
  /// duplicate checks.
  std::vector<std::vector<NodeId>> adj_;

  struct SwapRecord {
    std::size_t i = 0;
    std::size_t j = 0;
    std::pair<NodeId, NodeId> old_i;
    std::pair<NodeId, NodeId> old_j;
    bool valid = false;
  };
  SwapRecord last_;

  mutable std::vector<std::pair<NodeId, NodeId>> edge_buf_;
};

}  // namespace dsn
