// Factories for the non-DSN topologies: ring, tori, DLN-x, DLN-x-y ("RANDOM"),
// Kleinberg's small-world grid, and random regular graphs. The DSN family
// lives in dsn.hpp / dsn_ext.hpp.
#pragma once

#include <cstdint>

#include "dsn/topology/topology.hpp"

namespace dsn {

/// Simple n-node ring.
Topology make_ring(std::uint32_t n);

/// 2-D torus of width w and height h (node id = y*w + x). Dimensions of size
/// 1 are rejected; dimensions of size 2 use a single link (no parallel wrap).
Topology make_torus_2d(std::uint32_t w, std::uint32_t h);

/// 2-D torus with n nodes using the most nearly square factorization
/// (h = largest divisor of n with h <= sqrt(n)).
Topology make_torus_2d_near_square(std::uint32_t n);

/// 3-D torus of dims x*y*z (node id = k*(x*y) + j*x + i).
Topology make_torus_3d(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// 3-D torus with n nodes using the most nearly cubic factorization.
Topology make_torus_3d_near_cube(std::uint32_t n);

/// DLN-x [Koibuchi+ ISCA'12]: n-node ring plus, for every node i and every
/// k = 1..x-2, a shortcut to (i + floor(n/2^k)) mod n. Duplicate edges are
/// collapsed. Degree is x for x <= log n. DLN-2 is the plain ring.
Topology make_dln(std::uint32_t n, std::uint32_t x);

/// DLN-x-y: DLN-x plus y superposed uniform random perfect matchings, giving
/// every node exactly y extra shortcut endpoints (the paper's "RANDOM"
/// baseline DLN-2-2 has exact degree 4). Requires even n for exact degree;
/// with odd n one node per matching is left unmatched. Matchings avoid self
/// loops and duplicate links.
Topology make_dln_random(std::uint32_t n, std::uint32_t x, std::uint32_t y,
                         std::uint64_t seed);

/// Kleinberg's small-world network: side*side grid (no wraparound) where every
/// node gets `shortcuts_per_node` extra links drawn with probability
/// proportional to (lattice distance)^-alpha (alpha = 2 in the paper).
Topology make_kleinberg(std::uint32_t side, std::uint32_t shortcuts_per_node,
                        double alpha, std::uint64_t seed);

/// Random d-regular graph via the configuration model with edge-swap repair
/// (Jellyfish-style). Requires n*d even and d < n.
Topology make_random_regular(std::uint32_t n, std::uint32_t degree, std::uint64_t seed);

/// Alternative reading of DLN-x-y [3]: each node originates y shortcuts to
/// uniformly random endpoints (no matching structure), giving average degree
/// x + 2y but a spread of node degrees. Used to check that the Figure 7-9
/// comparisons are robust to the RANDOM construction's interpretation.
Topology make_dln_random_endpoints(std::uint32_t n, std::uint32_t x, std::uint32_t y,
                                   std::uint64_t seed);

/// Watts-Strogatz small-world model [20]: ring lattice where every node links
/// to its k nearest neighbors per side (degree 2k), then each lattice link's
/// far endpoint is rewired to a uniform random node with probability beta.
/// beta = 0 keeps the lattice (high clustering, long paths); beta = 1 is
/// fully random. Self loops and duplicate links are re-drawn.
Topology make_watts_strogatz(std::uint32_t n, std::uint32_t k, double beta,
                             std::uint64_t seed);

}  // namespace dsn
