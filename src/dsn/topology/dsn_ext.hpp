// DSN extensions from §V of the paper:
//  - DSN-E (§V-A): basic DSN with x = p-1 plus physical Up links (one per
//    node, parallel to the pred link, reserved for PRE-WORK) and 2p Extra
//    links ((i, i-1) for i = 1..2p, reserved for FINISH). With these, the
//    custom routing is deadlock-free (Theorem 3). DSN-V is the same design
//    realized with virtual channels instead of physical links — the routing
//    module models it with VC classes over the basic topology.
//  - DSN-D-x (§V-B): DSN with x = p - ceil(log p) as the base plus x express
//    local links per super node (span q = ceil(p/x)), trimming the local
//    walks in PRE-WORK and FINISH.
//  - Flexible DSN (§V-C): super nodes of size p plus/minus a few; extra
//    "minor" nodes carry no shortcut and are reached via their preceding
//    "major" node.
#pragma once

#include <cstdint>
#include <vector>

#include "dsn/topology/dsn.hpp"

namespace dsn {

/// DSN-E: basic DSN-(p-1) plus Up and Extra links.
class DsnE {
 public:
  explicit DsnE(std::uint32_t n);

  const Dsn& base() const { return base_; }
  const Topology& topology() const { return topology_; }

  /// Link id of node i's Up link (to pred(i)).
  LinkId up_link(NodeId i) const { return up_link_[i]; }
  /// Link id of the Extra link (i, i-1), valid for i in [1, 2p]; kInvalidLink
  /// otherwise.
  LinkId extra_link(NodeId i) const {
    return i < extra_link_.size() ? extra_link_[i] : kInvalidLink;
  }

 private:
  Dsn base_;
  Topology topology_;
  std::vector<LinkId> up_link_;
  std::vector<LinkId> extra_link_;  // index i holds link (i, i-1); [0] invalid
};

/// DSN-D-x: returns the extended structure; `express_per_super_node` is the
/// paper's x in "DSN-D-x" (e.g. 2).
class DsnD {
 public:
  DsnD(std::uint32_t n, std::uint32_t express_per_super_node);

  const Dsn& base() const { return base_; }
  const Topology& topology() const { return topology_; }
  /// Span of each express link: q = ceil(p / x_d).
  std::uint32_t q() const { return q_; }
  std::uint32_t express_per_super_node() const { return xd_; }

 private:
  static std::uint32_t base_x(std::uint32_t n);
  Dsn base_;
  std::uint32_t xd_;
  std::uint32_t q_;
  Topology topology_;
};

/// Flexible DSN (§V-C): a basic DSN on `n_major` major nodes with extra minor
/// nodes spliced into the ring after chosen major nodes. Minor nodes have no
/// shortcuts and no level; routing reaches them through the preceding major.
class FlexDsn {
 public:
  /// `insert_after` lists major node ids (each < n_major, strictly
  /// increasing) after which one minor node is inserted.
  FlexDsn(std::uint32_t n_major, std::uint32_t x, std::vector<NodeId> insert_after);

  const Dsn& base() const { return base_; }
  const Topology& topology() const { return topology_; }

  std::uint32_t num_total() const { return topology_.graph.num_nodes(); }
  std::uint32_t num_major() const { return base_.n(); }
  std::uint32_t num_minor() const { return num_total() - num_major(); }

  /// True iff physical node id is a major node.
  bool is_major(NodeId phys) const { return major_of_[phys] != kInvalidNode; }
  /// Major (logical DSN) id of a physical node, or kInvalidNode for minors.
  NodeId major_of(NodeId phys) const { return major_of_[phys]; }
  /// Physical id of a major (logical DSN) node.
  NodeId phys_of(NodeId major) const { return phys_of_[major]; }
  /// Nearest major node at or counterclockwise-before a physical node.
  NodeId preceding_major(NodeId phys) const;

 private:
  Dsn base_;
  Topology topology_;
  std::vector<NodeId> major_of_;  // phys -> major id or kInvalidNode
  std::vector<NodeId> phys_of_;   // major id -> phys
};

/// Degree-6 DSN (the §VI-B remark comparing against a 3-D torus): the basic
/// DSN-(p-1) plus the mirror image of its shortcut set in the
/// counterclockwise direction (node i also owns a CCW shortcut obtained by
/// reflecting the ring through i <-> n-1-i). Average degree ~6; diameter and
/// ASPL drop below the basic DSN while cable lengths stay ring-local.
Topology make_dsn_bidir(std::uint32_t n);

}  // namespace dsn
