// Opt-in post-generation hook: every topology factory notifies the installed
// hook (if any) with the finished Topology. The dsn::check module installs a
// validating hook here (gated on the DSN_VALIDATE environment variable) so
// tests, tools and applications can have every generated topology structurally
// verified without the topology module depending on the checker.
#pragma once

#include "dsn/topology/topology.hpp"

namespace dsn {

/// Hook signature: inspect a freshly generated topology; throw to reject it.
using TopologyGeneratedHook = void (*)(const Topology&);

/// Install `hook` (nullptr disables). Returns the previously installed hook.
/// Thread-safe; the hook itself must be safe to call concurrently.
TopologyGeneratedHook set_topology_generated_hook(TopologyGeneratedHook hook);

/// Currently installed hook, or nullptr.
TopologyGeneratedHook topology_generated_hook();

namespace detail {

/// Called by every generator just before returning its topology.
void notify_topology_generated(const Topology& topo);

}  // namespace detail
}  // namespace dsn
