#include "dsn/topology/related.hpp"

namespace dsn {

Topology make_generalized_de_bruijn(std::uint32_t n, std::uint32_t b) {
  DSN_REQUIRE(n >= 4, "generalized De Bruijn needs at least 4 nodes");
  DSN_REQUIRE(b >= 2, "base must be >= 2");
  Topology t{"gdb-" + std::to_string(b) + "-" + std::to_string(n),
             TopologyKind::kDln, Graph(n), {}, {}};
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t a = 0; a < b; ++a) {
      const NodeId v = static_cast<NodeId>(
          (static_cast<std::uint64_t>(b) * u + a) % n);
      if (v == u) continue;
      if (!t.graph.has_link(u, v)) {
        t.graph.add_link(u, v);
        t.link_roles.push_back(LinkRole::kShortcut);
      }
    }
  }
  return t;
}

Topology make_generalized_kautz(std::uint32_t n, std::uint32_t b) {
  DSN_REQUIRE(n >= 4, "generalized Kautz needs at least 4 nodes");
  DSN_REQUIRE(b >= 2, "base must be >= 2");
  Topology t{"gkautz-" + std::to_string(b) + "-" + std::to_string(n),
             TopologyKind::kDln, Graph(n), {}, {}};
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t a = 0; a < b; ++a) {
      // v = (-b*u - a - 1) mod n, computed without signed arithmetic.
      const std::uint64_t bu = static_cast<std::uint64_t>(b) * u % n;
      const NodeId v = static_cast<NodeId>(
          (n - bu + n - (a + 1) % n) % n);
      if (v == u) continue;
      if (!t.graph.has_link(u, v)) {
        t.graph.add_link(u, v);
        t.link_roles.push_back(LinkRole::kShortcut);
      }
    }
  }
  return t;
}

Topology make_cube_connected_cycles(std::uint32_t k) {
  DSN_REQUIRE(k >= 3, "CCC needs cycle length k >= 3");
  DSN_REQUIRE(k < 26, "CCC size would overflow");
  const std::uint32_t cube = 1u << k;
  const std::uint32_t n = k * cube;
  Topology t{"ccc-" + std::to_string(k), TopologyKind::kDln, Graph(n), {}, {}};
  const auto id = [k](std::uint32_t w, std::uint32_t i) { return w * k + i; };
  for (std::uint32_t w = 0; w < cube; ++w) {
    for (std::uint32_t i = 0; i < k; ++i) {
      // Cycle links within the corner's ring.
      const std::uint32_t j = (i + 1) % k;
      if (!t.graph.has_link(id(w, i), id(w, j))) {
        t.graph.add_link(id(w, i), id(w, j));
        t.link_roles.push_back(LinkRole::kRing);
      }
      // Hypercube link along dimension i.
      const std::uint32_t w2 = w ^ (1u << i);
      if (w < w2) {
        t.graph.add_link(id(w, i), id(w2, i));
        t.link_roles.push_back(LinkRole::kShortcut);
      }
    }
  }
  return t;
}

}  // namespace dsn
