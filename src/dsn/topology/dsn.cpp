#include "dsn/topology/dsn.hpp"

#include "dsn/common/math.hpp"
#include "dsn/obs/obs.hpp"
#include "dsn/topology/hooks.hpp"

namespace dsn {

Dsn::Dsn(std::uint32_t n, std::uint32_t x) : n_(n), p_(0), x_(x), r_(0) {
  DSN_REQUIRE(n >= 8, "DSN needs at least 8 nodes (p >= 3)");
  p_ = ilog2_ceil(n);
  r_ = n % p_;
  DSN_REQUIRE(x >= 1 && x <= p_ - 1, "DSN requires 1 <= x <= p-1");

  shortcut_target_.assign(n_, kInvalidNode);
  incoming_shortcuts_.assign(n_, {});

  topology_.name = "dsn-" + std::to_string(x_) + "-" + std::to_string(n_);
  topology_.kind = TopologyKind::kDsn;
  topology_.graph = Graph(n_);

  // Ring links.
  for (NodeId i = 0; i < n_; ++i) {
    topology_.graph.add_link(i, succ(i));
    topology_.link_roles.push_back(LinkRole::kRing);
  }

  // Level-l shortcuts: node i (level l <= x) connects to the first clockwise
  // node j with level l+1 at ring distance >= floor(n/2^l).
  DSN_OBS_ONLY(std::vector<std::uint64_t> shortcuts_per_level(x_ + 1, 0);)
  for (NodeId i = 0; i < n_; ++i) {
    const std::uint32_t l = level(i);
    if (l > x_) continue;
    DSN_OBS_ONLY(++shortcuts_per_level[l];)
    const std::uint32_t min_span = shortcut_min_span(l);
    // Candidates with level l+1 satisfy j mod p == l; scan clockwise from the
    // minimum span. The scan is bounded by n (levels repeat every p ids, but
    // the incomplete final super node can shift the residue pattern once).
    NodeId j = static_cast<NodeId>((static_cast<std::uint64_t>(i) + min_span) % n_);
    std::uint32_t scanned = 0;
    while (j % p_ != l) {
      j = succ(j);
      ++scanned;
      DSN_ASSERT(scanned <= n_, "no level-(l+1) node found on the ring");
    }
    DSN_ASSERT(j != i, "shortcut degenerated to a self loop");
    shortcut_target_[i] = j;
    incoming_shortcuts_[j].push_back(i);
    // A minimal-span shortcut can coincide with the ring link (i, i+1) when
    // floor(n/2^l) == 1; keep the structural target but do not duplicate the
    // physical link.
    if (!topology_.graph.has_link(i, j)) {
      topology_.graph.add_link(i, j);
      topology_.link_roles.push_back(LinkRole::kShortcut);
    }
  }
#if DSN_OBS
  // Per-level construction counters accumulate locally and publish once, so
  // the generator's hot loop never touches the registry mutex.
  if (obs::metrics_on()) {
    auto& registry = obs::MetricsRegistry::global();
    const obs::MetricId total = registry.counter("dsn.topology.shortcuts");
    for (std::uint32_t l = 0; l <= x_; ++l) {
      if (shortcuts_per_level[l] == 0) continue;
      registry.add(total, shortcuts_per_level[l]);
      registry.add(
          registry.counter("dsn.topology.shortcuts.level" + std::to_string(l)),
          shortcuts_per_level[l]);
    }
  }
#endif
  detail::notify_topology_generated(topology_);
}

Topology make_dsn(std::uint32_t n, std::uint32_t x) { return Dsn(n, x).topology(); }

std::uint32_t dsn_default_x(std::uint32_t n) {
  DSN_REQUIRE(n >= 8, "DSN needs at least 8 nodes");
  return ilog2_ceil(n) - 1;
}

}  // namespace dsn
