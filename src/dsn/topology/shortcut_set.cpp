// dsn-slint: deterministic
#include "dsn/topology/shortcut_set.hpp"

#include <algorithm>

#include "dsn/common/error.hpp"
#include "dsn/graph/metrics.hpp"

namespace dsn {

namespace {

std::pair<NodeId, NodeId> normalized(NodeId u, NodeId v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

}  // namespace

MutableShortcutSet::MutableShortcutSet(const Topology& topo)
    : n_(topo.graph.num_nodes()) {
  const std::size_t m = topo.graph.num_links();
  DSN_REQUIRE(topo.link_roles.size() == m, "link_roles must cover every link");
  adj_.assign(n_, {});
  for (LinkId l = 0; l < m; ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    if (topo.link_roles[l] == LinkRole::kShortcut) {
      shortcuts_.emplace_back(u, v);
    } else {
      fixed_.emplace_back(u, v);
    }
    adj_[u].push_back(v);
    adj_[v].push_back(u);
  }
  for (std::vector<NodeId>& nbrs : adj_) std::sort(nbrs.begin(), nbrs.end());
  DSN_REQUIRE(shortcuts_.size() >= 2,
              "shortcut optimization needs at least two shortcut links");
  // The fixed subgraph is never mutated, so checking its connectivity once
  // here makes "swaps cannot disconnect the fixed skeleton" an invariant.
  // (Candidate placements can still lengthen paths; the optimizer guards
  // against sampled-unreachable candidates via the estimator.)
  const CsrView fixed_csr(n_, fixed_);
  DSN_REQUIRE(is_connected(fixed_csr),
              "fixed (non-shortcut) subgraph must be connected");
}

std::uint32_t MutableShortcutSet::edge_count(NodeId u, NodeId v) const {
  const std::vector<NodeId>& nbrs = adj_[u];
  const auto [lo, hi] = std::equal_range(nbrs.begin(), nbrs.end(), v);
  return static_cast<std::uint32_t>(hi - lo);
}

void MutableShortcutSet::adj_remove(NodeId u, NodeId v) {
  std::vector<NodeId>& nbrs = adj_[u];
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  DSN_ASSERT(it != nbrs.end() && *it == v, "adjacency entry missing");
  nbrs.erase(it);
}

void MutableShortcutSet::adj_insert(NodeId u, NodeId v) {
  std::vector<NodeId>& nbrs = adj_[u];
  nbrs.insert(std::upper_bound(nbrs.begin(), nbrs.end(), v), v);
}

bool MutableShortcutSet::try_swap(std::size_t i, std::size_t j, bool cross) {
  DSN_REQUIRE(i < shortcuts_.size() && j < shortcuts_.size(), "slot out of range");
  DSN_REQUIRE(i != j, "swap needs two distinct slots");
  const auto [a, b] = shortcuts_[i];
  const auto [c, d] = shortcuts_[j];
  const std::pair<NodeId, NodeId> e1 = cross ? std::pair{a, d} : std::pair{a, c};
  const std::pair<NodeId, NodeId> e2 = cross ? std::pair{b, c} : std::pair{b, d};
  if (e1.first == e1.second || e2.first == e2.second) return false;  // self loop

  const auto r1 = normalized(a, b);
  const auto r2 = normalized(c, d);
  const auto n1 = normalized(e1.first, e1.second);
  const auto n2 = normalized(e2.first, e2.second);
  // No-op: the new pair set equals the removed pair set.
  if ((n1 == r1 && n2 == r2) || (n1 == r2 && n2 == r1)) return false;
  // Duplicate check against the multiset of all links minus the two removed
  // pairs (and counting e1 when testing e2).
  const auto count_after_removal = [&](const std::pair<NodeId, NodeId>& e) {
    std::uint32_t cnt = edge_count(e.first, e.second);
    if (e == r1) --cnt;
    if (e == r2) --cnt;
    return cnt;
  };
  if (count_after_removal(n1) > 0) return false;
  if (count_after_removal(n2) + (n2 == n1 ? 1 : 0) > 0) return false;

  adj_remove(a, b);
  adj_remove(b, a);
  adj_remove(c, d);
  adj_remove(d, c);
  adj_insert(e1.first, e1.second);
  adj_insert(e1.second, e1.first);
  adj_insert(e2.first, e2.second);
  adj_insert(e2.second, e2.first);
  last_ = SwapRecord{i, j, shortcuts_[i], shortcuts_[j], true};
  shortcuts_[i] = e1;
  shortcuts_[j] = e2;
  return true;
}

void MutableShortcutSet::undo_last() {
  DSN_REQUIRE(last_.valid, "no swap to undo");
  const auto [ni_f, ni_s] = shortcuts_[last_.i];
  const auto [nj_f, nj_s] = shortcuts_[last_.j];
  adj_remove(ni_f, ni_s);
  adj_remove(ni_s, ni_f);
  adj_remove(nj_f, nj_s);
  adj_remove(nj_s, nj_f);
  adj_insert(last_.old_i.first, last_.old_i.second);
  adj_insert(last_.old_i.second, last_.old_i.first);
  adj_insert(last_.old_j.first, last_.old_j.second);
  adj_insert(last_.old_j.second, last_.old_j.first);
  shortcuts_[last_.i] = last_.old_i;
  shortcuts_[last_.j] = last_.old_j;
  last_.valid = false;
}

CsrView MutableShortcutSet::snapshot() const {
  edge_buf_.clear();
  edge_buf_.reserve(fixed_.size() + shortcuts_.size());
  edge_buf_.insert(edge_buf_.end(), fixed_.begin(), fixed_.end());
  edge_buf_.insert(edge_buf_.end(), shortcuts_.begin(), shortcuts_.end());
  return CsrView(n_, edge_buf_);
}

}  // namespace dsn
