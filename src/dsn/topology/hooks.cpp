#include "dsn/topology/hooks.hpp"

#include <atomic>

#include "dsn/obs/obs.hpp"

namespace dsn {

namespace {

std::atomic<TopologyGeneratedHook> g_hook{nullptr};

}  // namespace

TopologyGeneratedHook set_topology_generated_hook(TopologyGeneratedHook hook) {
  return g_hook.exchange(hook, std::memory_order_acq_rel);
}

TopologyGeneratedHook topology_generated_hook() {
  return g_hook.load(std::memory_order_acquire);
}

namespace detail {

void notify_topology_generated(const Topology& topo) {
#if DSN_OBS
  static const obs::MetricId generated =
      obs::MetricsRegistry::global().counter("dsn.topology.generated");
  DSN_OBS_ADD(generated, 1);
#endif
  if (const TopologyGeneratedHook hook = topology_generated_hook()) hook(topo);
}

}  // namespace detail
}  // namespace dsn
