#include "dsn/topology/topology.hpp"

namespace dsn {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kTorus2D: return "torus2d";
    case TopologyKind::kTorus3D: return "torus3d";
    case TopologyKind::kDln: return "dln";
    case TopologyKind::kDlnRandom: return "dln-random";
    case TopologyKind::kKleinberg: return "kleinberg";
    case TopologyKind::kRandomRegular: return "random-regular";
    case TopologyKind::kDsn: return "dsn";
    case TopologyKind::kDsnD: return "dsn-d";
    case TopologyKind::kDsnE: return "dsn-e";
    case TopologyKind::kDsnFlex: return "dsn-flex";
    case TopologyKind::kDsnBidir: return "dsn-bidir";
  }
  return "unknown";
}

const char* to_string(LinkRole role) {
  switch (role) {
    case LinkRole::kRing: return "ring";
    case LinkRole::kShortcut: return "shortcut";
    case LinkRole::kUp: return "up";
    case LinkRole::kExtra: return "extra";
    case LinkRole::kDLocal: return "dlocal";
    case LinkRole::kWrap: return "wrap";
  }
  return "unknown";
}

}  // namespace dsn
