#include "dsn/topology/dsn_ext.hpp"

#include <algorithm>

#include "dsn/common/math.hpp"
#include "dsn/topology/hooks.hpp"

namespace dsn {

// ---------------------------------------------------------------------------
// DSN-E
// ---------------------------------------------------------------------------

DsnE::DsnE(std::uint32_t n) : base_(n, dsn_default_x(n)) {
  const std::uint32_t p = base_.p();
  DSN_REQUIRE(2 * p <= n, "DSN-E needs n >= 2p for the Extra-link ring prefix");

  topology_ = base_.topology();
  topology_.name = "dsn-e-" + std::to_string(n);
  topology_.kind = TopologyKind::kDsnE;

  // Up links: one physical (i, pred(i)) link per node, parallel to the ring.
  up_link_.assign(n, kInvalidLink);
  for (NodeId i = 0; i < n; ++i) {
    up_link_[i] = topology_.graph.add_link(i, base_.pred(i));
    topology_.link_roles.push_back(LinkRole::kUp);
  }

  // Extra links: (i, i-1) for i = 1..2p, breaking FINISH-phase ring cycles.
  extra_link_.assign(2 * p + 1, kInvalidLink);
  for (NodeId i = 1; i <= 2 * p; ++i) {
    extra_link_[i] = topology_.graph.add_link(i, i - 1);
    topology_.link_roles.push_back(LinkRole::kExtra);
  }
  detail::notify_topology_generated(topology_);
}

// ---------------------------------------------------------------------------
// DSN-D
// ---------------------------------------------------------------------------

std::uint32_t DsnD::base_x(std::uint32_t n) {
  DSN_REQUIRE(n >= 8, "DSN-D needs at least 8 nodes");
  const std::uint32_t p = ilog2_ceil(n);
  const std::uint32_t x = p - ilog2_ceil(p);
  return std::max<std::uint32_t>(1, x);
}

DsnD::DsnD(std::uint32_t n, std::uint32_t express_per_super_node)
    : base_(n, base_x(n)), xd_(express_per_super_node) {
  DSN_REQUIRE(xd_ >= 1, "DSN-D needs at least one express link per super node");
  const std::uint32_t p = base_.p();
  DSN_REQUIRE(xd_ < p, "DSN-D express count must be < p");
  q_ = static_cast<std::uint32_t>(ceil_div(p, xd_));
  DSN_REQUIRE(q_ >= 2, "express span must be >= 2 (q = ceil(p/x))");

  topology_ = base_.topology();
  topology_.name =
      "dsn-d-" + std::to_string(xd_) + "-" + std::to_string(n);
  topology_.kind = TopologyKind::kDsnD;

  // Express links between consecutive multiples of q around the ring,
  // including the wrap link back to node 0 (§V-B construction).
  for (NodeId a = 0; a < n; a = a + q_) {
    const NodeId b = (a + q_ >= n) ? 0 : a + q_;
    if (b == a || b == base_.succ(a)) continue;  // degenerate near the wrap
    if (!topology_.graph.has_link(a, b)) {
      topology_.graph.add_link(a, b);
      topology_.link_roles.push_back(LinkRole::kDLocal);
    }
    if (b == 0) break;
  }
  detail::notify_topology_generated(topology_);
}

// ---------------------------------------------------------------------------
// Flexible DSN
// ---------------------------------------------------------------------------

FlexDsn::FlexDsn(std::uint32_t n_major, std::uint32_t x, std::vector<NodeId> insert_after)
    : base_(n_major, x) {
  DSN_REQUIRE(std::is_sorted(insert_after.begin(), insert_after.end()) &&
                  std::adjacent_find(insert_after.begin(), insert_after.end()) ==
                      insert_after.end(),
              "insert_after must be strictly increasing");
  DSN_REQUIRE(insert_after.empty() || insert_after.back() < n_major,
              "insert_after ids must be < n_major");

  const std::uint32_t n_total = n_major + static_cast<std::uint32_t>(insert_after.size());
  topology_.name = "dsn-flex-" + std::to_string(x) + "-" + std::to_string(n_major) + "+" +
                   std::to_string(insert_after.size());
  topology_.kind = TopologyKind::kDsnFlex;
  topology_.graph = Graph(n_total);

  // Lay out the physical ring: majors in order, each optionally followed by
  // one minor node.
  major_of_.assign(n_total, kInvalidNode);
  phys_of_.assign(n_major, kInvalidNode);
  std::size_t next_minor = 0;
  NodeId phys = 0;
  for (NodeId major = 0; major < n_major; ++major) {
    major_of_[phys] = major;
    phys_of_[major] = phys;
    ++phys;
    if (next_minor < insert_after.size() && insert_after[next_minor] == major) {
      // The node at `phys` stays a minor (major_of_ already kInvalidNode).
      ++phys;
      ++next_minor;
    }
  }
  DSN_ASSERT(phys == n_total, "physical ring layout mismatch");

  // Ring links over all physical nodes.
  for (NodeId i = 0; i < n_total; ++i) {
    topology_.graph.add_link(i, (i + 1) % n_total);
    topology_.link_roles.push_back(LinkRole::kRing);
  }
  // Shortcuts between the physical positions of the DSN shortcut endpoints.
  for (NodeId major = 0; major < n_major; ++major) {
    const NodeId target = base_.shortcut_target(major);
    if (target == kInvalidNode) continue;
    const NodeId a = phys_of_[major];
    const NodeId b = phys_of_[target];
    if (!topology_.graph.has_link(a, b)) {
      topology_.graph.add_link(a, b);
      topology_.link_roles.push_back(LinkRole::kShortcut);
    }
  }
  detail::notify_topology_generated(topology_);
}

// ---------------------------------------------------------------------------
// Degree-6 bidirectional DSN
// ---------------------------------------------------------------------------

Topology make_dsn_bidir(std::uint32_t n) {
  const Dsn base(n, dsn_default_x(n));
  Topology topo = base.topology();
  topo.name = "dsn-bidir-" + std::to_string(n);
  topo.kind = TopologyKind::kDsnBidir;
  // Mirror the shortcut set: a CW shortcut (a -> b) reflected through the
  // ring (i <-> n-1-i) becomes a CCW shortcut (n-1-a -> n-1-b).
  for (NodeId a = 0; a < n; ++a) {
    const NodeId b = base.shortcut_target(a);
    if (b == kInvalidNode) continue;
    const NodeId ma = n - 1 - a;
    const NodeId mb = n - 1 - b;
    if (!topo.graph.has_link(ma, mb)) {
      topo.graph.add_link(ma, mb);
      topo.link_roles.push_back(LinkRole::kShortcut);
    }
  }
  detail::notify_topology_generated(topo);
  return topo;
}

NodeId FlexDsn::preceding_major(NodeId phys) const {
  DSN_REQUIRE(phys < num_total(), "node id out of range");
  NodeId v = phys;
  for (std::uint32_t step = 0; step < num_total(); ++step) {
    if (major_of_[v] != kInvalidNode) return v;
    v = v == 0 ? num_total() - 1 : v - 1;
  }
  DSN_ASSERT(false, "no major node found");
  return kInvalidNode;
}

}  // namespace dsn
