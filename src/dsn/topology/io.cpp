#include "dsn/topology/io.hpp"

#include <map>
#include <ostream>
#include <sstream>

namespace dsn {

namespace {

const char* dot_style(LinkRole role) {
  switch (role) {
    case LinkRole::kRing: return "color=black";
    case LinkRole::kWrap: return "color=gray,style=dashed";
    case LinkRole::kShortcut: return "color=red";
    case LinkRole::kDLocal: return "color=blue";
    case LinkRole::kUp: return "color=green,style=dashed";
    case LinkRole::kExtra: return "color=orange,style=dashed";
  }
  return "";
}

LinkRole role_from_string(const std::string& s) {
  static const std::map<std::string, LinkRole> kMap = {
      {"ring", LinkRole::kRing},       {"wrap", LinkRole::kWrap},
      {"shortcut", LinkRole::kShortcut}, {"dlocal", LinkRole::kDLocal},
      {"up", LinkRole::kUp},           {"extra", LinkRole::kExtra}};
  const auto it = kMap.find(s);
  DSN_REQUIRE(it != kMap.end(), "unknown link role: " + s);
  return it->second;
}

TopologyKind kind_from_string(const std::string& s) {
  for (const TopologyKind k :
       {TopologyKind::kRing, TopologyKind::kTorus2D, TopologyKind::kTorus3D,
        TopologyKind::kDln, TopologyKind::kDlnRandom, TopologyKind::kKleinberg,
        TopologyKind::kRandomRegular, TopologyKind::kDsn, TopologyKind::kDsnD,
        TopologyKind::kDsnE, TopologyKind::kDsnFlex, TopologyKind::kDsnBidir}) {
    if (s == to_string(k)) return k;
  }
  throw PreconditionError("unknown topology kind: " + s);
}

}  // namespace

std::string to_dot(const Topology& topo) {
  std::ostringstream os;
  os << "graph \"" << topo.name << "\" {\n";
  os << "  layout=circo;\n  node [shape=circle, fontsize=10];\n";
  for (LinkId l = 0; l < topo.graph.num_links(); ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    const LinkRole role =
        l < topo.link_roles.size() ? topo.link_roles[l] : LinkRole::kRing;
    os << "  " << u << " -- " << v << " [" << dot_style(role) << "];\n";
  }
  os << "}\n";
  return os.str();
}

void write_edge_list(std::ostream& os, const Topology& topo) {
  os << "# dsn-topology " << topo.name << " " << to_string(topo.kind) << " "
     << topo.num_nodes();
  for (const auto d : topo.dims) os << " " << d;
  os << "\n";
  for (LinkId l = 0; l < topo.graph.num_links(); ++l) {
    const auto [u, v] = topo.graph.link_endpoints(l);
    const LinkRole role =
        l < topo.link_roles.size() ? topo.link_roles[l] : LinkRole::kRing;
    os << u << " " << v << " " << to_string(role) << "\n";
  }
}

std::string to_edge_list(const Topology& topo) {
  std::ostringstream os;
  write_edge_list(os, topo);
  return os.str();
}

Topology read_edge_list(std::istream& is) {
  std::string line;
  DSN_REQUIRE(static_cast<bool>(std::getline(is, line)), "empty topology stream");
  std::istringstream header(line);
  std::string hash, magic, name, kind_str;
  std::uint32_t n = 0;
  header >> hash >> magic >> name >> kind_str >> n;
  DSN_REQUIRE(hash == "#" && magic == "dsn-topology" && n > 0,
              "bad edge-list header: " + line);

  Topology topo;
  topo.name = name;
  topo.kind = kind_from_string(kind_str);
  topo.graph = Graph(n);
  std::uint32_t dim;
  while (header >> dim) topo.dims.push_back(dim);

  NodeId u, v;
  std::string role;
  while (is >> u >> v >> role) {
    topo.graph.add_link(u, v);
    topo.link_roles.push_back(role_from_string(role));
  }
  return topo;
}

Topology parse_edge_list(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

}  // namespace dsn
