// Related-work topologies from §III of the paper, so its diameter-and-degree
// comparisons are reproducible:
//  - generalized De Bruijn graphs (Imase-Itoh): any n, degree <= 2b,
//    diameter ~ ceil(log_b n) — "De Bruijn has 12-and-4 for 3,072 vertices";
//  - generalized Kautz graphs (Imase-Itoh): "Kautz has 11-and-4";
//  - cube-connected cycles: constant degree 3 — "CCC has 23-and-3".
#pragma once

#include <cstdint>

#include "dsn/topology/topology.hpp"

namespace dsn {

/// Generalized De Bruijn graph GD(n, b): directed edges u -> (b*u + a) mod n
/// for a = 0..b-1, taken as undirected links (self loops dropped, parallel
/// edges collapsed). Degree <= 2b; diameter <= ceil(log_b n).
Topology make_generalized_de_bruijn(std::uint32_t n, std::uint32_t b);

/// Generalized Kautz graph GK(n, b) (Imase-Itoh): directed edges
/// u -> (-b*u - a - 1) mod n for a = 0..b-1, taken as undirected links.
/// Degree <= 2b; diameter <= ceil(log_b n) and often one less than the
/// generalized De Bruijn of the same size.
Topology make_generalized_kautz(std::uint32_t n, std::uint32_t b);

/// Cube-connected cycles CCC(k): each vertex of a k-cube is replaced by a
/// k-cycle; node (w, i) links to (w, i±1 mod k) and to (w xor 2^i, i).
/// n = k * 2^k nodes, uniform degree 3 (for k >= 3).
Topology make_cube_connected_cycles(std::uint32_t k);

}  // namespace dsn
