// Topology: a named switch graph plus the structural metadata needed by the
// layout model (grid dimensions) and by routing/deadlock analysis (link roles).
#pragma once

#include <string>
#include <vector>

#include "dsn/graph/graph.hpp"

namespace dsn {

/// Families of topologies this library can generate.
enum class TopologyKind {
  kRing,
  kTorus2D,
  kTorus3D,
  kDln,          ///< Distributed Loop Network DLN-x [Koibuchi et al., ISCA'12]
  kDlnRandom,    ///< DLN-x plus random matchings ("RANDOM" baseline, e.g. DLN-2-2)
  kKleinberg,    ///< Kleinberg's small-world grid [STOC'00]
  kRandomRegular,///< Jellyfish-style random regular graph
  kDsn,          ///< basic DSN-x (this paper)
  kDsnD,         ///< DSN-D-x: extra intra-super-node express links (§V-B)
  kDsnE,         ///< DSN-E: Up + Extra links for deadlock-free routing (§V-A)
  kDsnFlex,      ///< flexible DSN with major/minor nodes (§V-C)
  kDsnBidir,     ///< degree-6 DSN: shortcuts in both ring directions (§VI-B remark)
};

const char* to_string(TopologyKind kind);

/// Role a physical link plays; routing phases and the channel-dependency
/// analysis distinguish these.
enum class LinkRole : std::uint8_t {
  kRing,      ///< pred/succ link on the base ring (or torus/grid mesh link)
  kShortcut,  ///< DSN/DLN long-range shortcut (or random matching link)
  kUp,        ///< DSN-E Up link (parallel (i, i-1) used only in PRE-WORK)
  kExtra,     ///< DSN-E Extra link ((i, i-1) for i in [1, 2p], used in FINISH)
  kDLocal,    ///< DSN-D intra-super-node express link
  kWrap,      ///< torus wraparound link
};

const char* to_string(LinkRole role);

/// A generated topology.
struct Topology {
  std::string name;
  TopologyKind kind;
  Graph graph;
  /// Per-link role, parallel to graph link ids.
  std::vector<LinkRole> link_roles;
  /// Grid dimensions for mesh/torus topologies (empty otherwise). Node id
  /// encodes coordinates row-major: id = z*(w*h) + y*w + x.
  std::vector<std::uint32_t> dims;

  NodeId num_nodes() const { return graph.num_nodes(); }
};

}  // namespace dsn
