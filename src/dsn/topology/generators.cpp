#include "dsn/topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "dsn/common/math.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/topology/hooks.hpp"

namespace dsn {

namespace {

/// Adds a link and records its role.
void add_role_link(Topology& t, NodeId u, NodeId v, LinkRole role) {
  t.graph.add_link(u, v);
  t.link_roles.push_back(role);
}

/// Notify the opt-in post-generation hook (DSN_VALIDATE) and hand back the
/// finished topology.
Topology finish(Topology t) {
  detail::notify_topology_generated(t);
  return t;
}

/// Adds a link unless it already exists; records the role when added.
bool add_role_link_unique(Topology& t, NodeId u, NodeId v, LinkRole role) {
  if (t.graph.has_link(u, v)) return false;
  add_role_link(t, u, v, role);
  return true;
}

}  // namespace

Topology make_ring(std::uint32_t n) {
  DSN_REQUIRE(n >= 3, "ring needs at least 3 nodes");
  Topology t{"ring-" + std::to_string(n), TopologyKind::kRing, Graph(n), {}, {}};
  for (NodeId i = 0; i < n; ++i) add_role_link(t, i, (i + 1) % n, LinkRole::kRing);
  return finish(std::move(t));
}

Topology make_torus_2d(std::uint32_t w, std::uint32_t h) {
  DSN_REQUIRE(w >= 2 && h >= 2, "torus dimensions must be >= 2");
  const std::uint32_t n = w * h;
  Topology t{"torus2d-" + std::to_string(w) + "x" + std::to_string(h),
             TopologyKind::kTorus2D, Graph(n), {}, {w, h}};
  const auto id = [w](std::uint32_t x, std::uint32_t y) { return y * w + x; };
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      // +x direction; wrap link when x == w-1 (skip duplicate when w == 2).
      if (x + 1 < w) {
        add_role_link(t, id(x, y), id(x + 1, y), LinkRole::kRing);
      } else if (w > 2) {
        add_role_link(t, id(x, y), id(0, y), LinkRole::kWrap);
      }
      if (y + 1 < h) {
        add_role_link(t, id(x, y), id(x, y + 1), LinkRole::kRing);
      } else if (h > 2) {
        add_role_link(t, id(x, y), id(x, 0), LinkRole::kWrap);
      }
    }
  }
  return finish(std::move(t));
}

Topology make_torus_2d_near_square(std::uint32_t n) {
  DSN_REQUIRE(n >= 4, "torus needs at least 4 nodes");
  std::uint32_t h = static_cast<std::uint32_t>(isqrt(n));
  while (h >= 2 && n % h != 0) --h;
  DSN_REQUIRE(h >= 2, "n has no factorization with both dims >= 2");
  return make_torus_2d(n / h, h);
}

Topology make_torus_3d(std::uint32_t dx, std::uint32_t dy, std::uint32_t dz) {
  DSN_REQUIRE(dx >= 2 && dy >= 2 && dz >= 2, "torus dimensions must be >= 2");
  const std::uint32_t n = dx * dy * dz;
  Topology t{"torus3d-" + std::to_string(dx) + "x" + std::to_string(dy) + "x" +
                 std::to_string(dz),
             TopologyKind::kTorus3D, Graph(n), {}, {dx, dy, dz}};
  const auto id = [dx, dy](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return z * (dx * dy) + y * dx + x;
  };
  for (std::uint32_t z = 0; z < dz; ++z) {
    for (std::uint32_t y = 0; y < dy; ++y) {
      for (std::uint32_t x = 0; x < dx; ++x) {
        if (x + 1 < dx)
          add_role_link(t, id(x, y, z), id(x + 1, y, z), LinkRole::kRing);
        else if (dx > 2)
          add_role_link(t, id(x, y, z), id(0, y, z), LinkRole::kWrap);
        if (y + 1 < dy)
          add_role_link(t, id(x, y, z), id(x, y + 1, z), LinkRole::kRing);
        else if (dy > 2)
          add_role_link(t, id(x, y, z), id(x, 0, z), LinkRole::kWrap);
        if (z + 1 < dz)
          add_role_link(t, id(x, y, z), id(x, y, z + 1), LinkRole::kRing);
        else if (dz > 2)
          add_role_link(t, id(x, y, z), id(x, y, 0), LinkRole::kWrap);
      }
    }
  }
  return finish(std::move(t));
}

Topology make_torus_3d_near_cube(std::uint32_t n) {
  DSN_REQUIRE(n >= 8, "3-D torus needs at least 8 nodes");
  // Pick dz = largest divisor <= cbrt(n), then factor n/dz near-square.
  std::uint32_t dz = static_cast<std::uint32_t>(std::cbrt(static_cast<double>(n)) + 1e-9);
  while (dz >= 2 && n % dz != 0) --dz;
  DSN_REQUIRE(dz >= 2, "n has no 3-D factorization with all dims >= 2");
  const std::uint32_t rest = n / dz;
  std::uint32_t dy = static_cast<std::uint32_t>(isqrt(rest));
  while (dy >= 2 && rest % dy != 0) --dy;
  DSN_REQUIRE(dy >= 2, "n has no 3-D factorization with all dims >= 2");
  return make_torus_3d(rest / dy, dy, dz);
}

Topology make_dln(std::uint32_t n, std::uint32_t x) {
  DSN_REQUIRE(n >= 3, "DLN needs at least 3 nodes");
  DSN_REQUIRE(x >= 2, "DLN degree parameter must be >= 2");
  Topology t{"dln-" + std::to_string(x) + "-" + std::to_string(n), TopologyKind::kDln,
             Graph(n), {}, {}};
  for (NodeId i = 0; i < n; ++i) add_role_link(t, i, (i + 1) % n, LinkRole::kRing);
  for (std::uint32_t k = 1; k + 2 <= x; ++k) {
    const std::uint32_t span = n >> k;  // floor(n / 2^k)
    if (span <= 1) break;               // further shortcuts collapse onto ring links
    for (NodeId i = 0; i < n; ++i) {
      add_role_link_unique(t, i, (i + span) % n, LinkRole::kShortcut);
    }
  }
  return finish(std::move(t));
}

Topology make_dln_random(std::uint32_t n, std::uint32_t x, std::uint32_t y,
                         std::uint64_t seed) {
  Topology t = make_dln(n, x);
  t.kind = TopologyKind::kDlnRandom;
  t.name = "dln-" + std::to_string(x) + "-" + std::to_string(y) + "-" + std::to_string(n);
  Rng rng(seed);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::uint32_t m = 0; m < y; ++m) {
    // Draw a random perfect matching avoiding existing links; retry the whole
    // matching if a collision-free pairing cannot be completed.
    constexpr int kMaxAttempts = 200;
    bool done = false;
    for (int attempt = 0; attempt < kMaxAttempts && !done; ++attempt) {
      // Fisher-Yates shuffle.
      for (std::uint32_t i = n - 1; i > 0; --i) {
        const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
        std::swap(perm[i], perm[j]);
      }
      std::vector<std::pair<NodeId, NodeId>> pairs;
      pairs.reserve(n / 2);
      bool ok = true;
      for (std::uint32_t i = 0; i + 1 < n; i += 2) {
        const NodeId a = perm[i], b = perm[i + 1];
        if (t.graph.has_link(a, b)) {
          ok = false;
          break;
        }
        pairs.emplace_back(a, b);
      }
      // Also reject duplicates within this matching draw (cannot happen for a
      // matching, but keep the check cheap and explicit).
      if (ok) {
        for (const auto& [a, b] : pairs) add_role_link(t, a, b, LinkRole::kShortcut);
        done = true;
      }
    }
    DSN_REQUIRE(done, "could not draw a collision-free random matching");
  }
  return finish(std::move(t));
}

Topology make_kleinberg(std::uint32_t side, std::uint32_t shortcuts_per_node,
                        double alpha, std::uint64_t seed) {
  DSN_REQUIRE(side >= 2, "grid side must be >= 2");
  const std::uint32_t n = side * side;
  Topology t{"kleinberg-" + std::to_string(side) + "x" + std::to_string(side),
             TopologyKind::kKleinberg, Graph(n), {}, {side, side}};
  const auto id = [side](std::uint32_t x, std::uint32_t y) { return y * side + x; };
  for (std::uint32_t yy = 0; yy < side; ++yy) {
    for (std::uint32_t xx = 0; xx < side; ++xx) {
      if (xx + 1 < side) add_role_link(t, id(xx, yy), id(xx + 1, yy), LinkRole::kRing);
      if (yy + 1 < side) add_role_link(t, id(xx, yy), id(xx, yy + 1), LinkRole::kRing);
    }
  }
  Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    const std::int64_t ux = u % side, uy = u / side;
    // Build the d^-alpha distribution over all other nodes (n is small enough
    // that the O(n) per-node scan is fine for analysis purposes).
    std::vector<double> weight(n, 0.0);
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      const std::int64_t vx = v % side, vy = v / side;
      const auto d = static_cast<double>(std::abs(ux - vx) + std::abs(uy - vy));
      weight[v] = std::pow(d, -alpha);
      total += weight[v];
    }
    for (std::uint32_t s = 0; s < shortcuts_per_node; ++s) {
      double pick = rng.next_double() * total;
      NodeId chosen = u == 0 ? 1 : 0;
      for (NodeId v = 0; v < n; ++v) {
        pick -= weight[v];
        if (pick <= 0 && weight[v] > 0) {
          chosen = v;
          break;
        }
      }
      add_role_link_unique(t, u, chosen, LinkRole::kShortcut);
    }
  }
  return finish(std::move(t));
}

Topology make_dln_random_endpoints(std::uint32_t n, std::uint32_t x, std::uint32_t y,
                                   std::uint64_t seed) {
  Topology t = make_dln(n, x);
  t.kind = TopologyKind::kDlnRandom;
  t.name = "dln-ep-" + std::to_string(x) + "-" + std::to_string(y) + "-" +
           std::to_string(n);
  Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t s = 0; s < y; ++s) {
      // Draw until the endpoint is neither u nor already linked; a node
      // cannot be adjacent to everyone at these densities.
      NodeId v;
      int guard = 0;
      do {
        v = static_cast<NodeId>(rng.next_below(n));
        DSN_ASSERT(++guard < 10'000, "endpoint draw failed to converge");
      } while (v == u || t.graph.has_link(u, v));
      add_role_link(t, u, v, LinkRole::kShortcut);
    }
  }
  return finish(std::move(t));
}

Topology make_watts_strogatz(std::uint32_t n, std::uint32_t k, double beta,
                             std::uint64_t seed) {
  DSN_REQUIRE(n >= 4, "Watts-Strogatz needs at least 4 nodes");
  DSN_REQUIRE(k >= 1 && 2 * k < n, "neighbor range k must satisfy 1 <= k < n/2");
  DSN_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
  Topology t{"watts-strogatz-" + std::to_string(k) + "-" + std::to_string(n),
             TopologyKind::kKleinberg, Graph(n), {}, {}};
  Rng rng(seed);
  for (std::uint32_t offset = 1; offset <= k; ++offset) {
    for (NodeId u = 0; u < n; ++u) {
      NodeId v = static_cast<NodeId>((u + offset) % n);
      LinkRole role = offset == 1 ? LinkRole::kRing : LinkRole::kShortcut;
      // Rewire with probability beta — or forcibly when a previous rewiring
      // already created this lattice link, so the link count is preserved.
      if (rng.bernoulli(beta) || t.graph.has_link(u, v)) {
        // Retry on self loops / duplicates; with degree < n-1 a free target
        // always exists, so the loop terminates.
        NodeId w;
        do {
          w = static_cast<NodeId>(rng.next_below(n));
        } while (w == u || t.graph.has_link(u, w));
        v = w;
        role = LinkRole::kShortcut;
      }
      t.graph.add_link(u, v);
      t.link_roles.push_back(role);
    }
  }
  return finish(std::move(t));
}

Topology make_random_regular(std::uint32_t n, std::uint32_t degree, std::uint64_t seed) {
  DSN_REQUIRE(degree >= 2 && degree < n, "degree must be in [2, n)");
  DSN_REQUIRE(static_cast<std::uint64_t>(n) * degree % 2 == 0, "n*degree must be even");
  Rng rng(seed);

  // Configuration model with double-edge-swap repair: a plain restart scheme
  // has acceptance probability ~exp(-(d-1)/2 - (d-1)^2/4), hopeless for d >= 5,
  // so conflicting pairs are repaired by swapping endpoints with random
  // partner pairs until the multigraph is simple.
  const std::size_t num_pairs = static_cast<std::size_t>(n) * degree / 2;
  std::vector<std::pair<NodeId, NodeId>> pairs(num_pairs);
  std::set<std::pair<NodeId, NodeId>> edges;

  const auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  const auto is_bad = [&](const std::pair<NodeId, NodeId>& pr) {
    // Bad when self loop, or this normalized edge appears more than once.
    return pr.first == pr.second;
  };

  constexpr int kMaxAttempts = 20;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(num_pairs * 2);
    for (NodeId u = 0; u < n; ++u)
      for (std::uint32_t d = 0; d < degree; ++d) stubs.push_back(u);
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
      std::swap(stubs[i], stubs[j]);
    }
    edges.clear();
    std::vector<std::size_t> bad;  // indices of conflicting pairs
    for (std::size_t i = 0; i < num_pairs; ++i) {
      pairs[i] = {stubs[2 * i], stubs[2 * i + 1]};
      if (is_bad(pairs[i]) || !edges.insert(norm(pairs[i].first, pairs[i].second)).second) {
        bad.push_back(i);
      }
    }

    // Repair loop: swap a bad pair's second endpoint with a random pair's.
    std::size_t budget = 200 * (bad.size() + 1);
    while (!bad.empty() && budget-- > 0) {
      const std::size_t bi = bad.back();
      const std::size_t pj = static_cast<std::size_t>(rng.next_below(num_pairs));
      if (pj == bi) continue;
      auto [a1, b1] = pairs[bi];
      auto [a2, b2] = pairs[pj];
      // Proposed replacement pairs (a1, b2) and (a2, b1).
      if (a1 == b2 || a2 == b1) continue;
      const auto e1 = norm(a1, b2);
      const auto e2 = norm(a2, b1);
      if (e1 == e2 || edges.contains(e1) || edges.contains(e2)) continue;
      // Remove the partner's (always valid) edge and the bad pair's edge if
      // it was the registered copy.
      edges.erase(norm(a2, b2));
      const auto old_bad = norm(a1, b1);
      // A bad pair is registered only if it was the first copy; erase is a
      // no-op otherwise, which is exactly what we want.
      if (a1 != b1) {
        // Only erase when this index owned the registration, i.e. when the
        // edge exists AND no other pair claims it. Simplest sound rule: if
        // the edge exists, check whether another pair equals it.
        bool another = false;
        for (std::size_t k = 0; k < num_pairs && !another; ++k) {
          if (k != bi && norm(pairs[k].first, pairs[k].second) == old_bad) another = true;
        }
        if (!another) edges.erase(old_bad);
      }
      pairs[bi] = {a1, b2};
      pairs[pj] = {a2, b1};
      edges.insert(e1);
      edges.insert(e2);
      bad.pop_back();
    }

    if (bad.empty() && edges.size() == num_pairs) {
      Topology t{"random-regular-" + std::to_string(degree) + "-" + std::to_string(n),
                 TopologyKind::kRandomRegular, Graph(n), {}, {}};
      for (const auto& [a, b] : pairs) add_role_link(t, a, b, LinkRole::kShortcut);
      return finish(std::move(t));
    }
  }
  throw PreconditionError("could not sample a simple random regular graph");
}

}  // namespace dsn
