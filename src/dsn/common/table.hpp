// Column-aligned ASCII tables and CSV output for benchmark harnesses.
//
// Every figure/table bench in bench/ prints its results through this class so
// output is uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dsn {

/// A simple row/column table. Cells are strings; numeric helpers format with
/// fixed precision. Rendered with aligned columns or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new empty row.
  Table& row();

  /// Append a cell to the current row.
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(unsigned value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render with padded, right-aligned columns (headers left-aligned).
  std::string to_string() const;

  /// Render as RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  /// Print to a stream with a title banner.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsn
