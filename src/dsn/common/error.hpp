// Error-handling helpers: precondition checks that throw rather than abort,
// so library misuse is reportable and testable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace dsn {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace dsn

// The msg operand is wrapped in a lambda that is only invoked on failure, so
// hot loops never pay for message construction (string concatenation,
// std::to_string, ...) when the check passes.

/// Check a documented caller-facing precondition; throws dsn::PreconditionError.
#define DSN_REQUIRE(expr, msg)                                                 \
  do {                                                                         \
    if (!(expr)) [[unlikely]] {                                                \
      ::dsn::detail::throw_precondition(                                       \
          #expr, __FILE__, __LINE__,                                           \
          [&]() -> ::std::string { return (msg); }());                         \
    }                                                                          \
  } while (false)

/// Check an internal invariant; throws dsn::InternalError.
#define DSN_ASSERT(expr, msg)                                                  \
  do {                                                                         \
    if (!(expr)) [[unlikely]] {                                                \
      ::dsn::detail::throw_internal(                                           \
          #expr, __FILE__, __LINE__,                                           \
          [&]() -> ::std::string { return (msg); }());                         \
    }                                                                          \
  } while (false)
