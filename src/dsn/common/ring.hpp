// dsn-slint: deterministic — FIFO order here is observable in byte-identical
// sim replay; iteration and compaction must be stable front-to-back.
//
// Flat ring-buffer FIFO replacing std::deque in simulator hot state. An empty
// libstdc++ deque eagerly allocates a ~500-byte map+node, which at 65k
// switches × ports × VCs costs gigabytes before the first flit moves. An
// empty RingQueue is 32 bytes inline and allocates nothing until first push;
// capacity grows by doubling (power of two, index masked).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>

#include "dsn/common/error.hpp"

namespace dsn {

/// Bounded-growth FIFO with stable front-to-back iteration, O(1) push_back /
/// pop_front, and stable erase_if/erase_at (same element order std::erase_if
/// on a deque preserves). Not thread-safe; T must be movable.
template <class T>
class RingQueue {
 public:
  RingQueue() = default;
  RingQueue(RingQueue&&) noexcept = default;
  RingQueue& operator=(RingQueue&&) noexcept = default;
  RingQueue(const RingQueue& other) { *this = other; }
  RingQueue& operator=(const RingQueue& other) {
    if (this == &other) return *this;
    data_.reset();
    cap_ = 0;
    head_ = 0;
    size_ = 0;
    reserve_pow2(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) data_[i] = other[i];
    size_ = other.size_;
    return *this;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  T& front() {
    DSN_ASSERT(size_ > 0, "front() on empty RingQueue");
    return data_[head_];
  }
  const T& front() const {
    DSN_ASSERT(size_ > 0, "front() on empty RingQueue");
    return data_[head_];
  }
  T& back() {
    DSN_ASSERT(size_ > 0, "back() on empty RingQueue");
    return data_[(head_ + size_ - 1) & (cap_ - 1)];
  }
  const T& back() const {
    DSN_ASSERT(size_ > 0, "back() on empty RingQueue");
    return data_[(head_ + size_ - 1) & (cap_ - 1)];
  }

  T& operator[](std::size_t i) { return data_[(head_ + i) & (cap_ - 1)]; }
  const T& operator[](std::size_t i) const {
    return data_[(head_ + i) & (cap_ - 1)];
  }

  void push_back(T value) {
    if (size_ == cap_) reserve_pow2(size_ + 1);
    data_[(head_ + size_) & (cap_ - 1)] = std::move(value);
    ++size_;
  }

  void pop_front() {
    DSN_ASSERT(size_ > 0, "pop_front() on empty RingQueue");
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  /// Remove the element at logical index i, preserving the order of the
  /// rest (shifts the tail side down — O(size - i)).
  void erase_at(std::size_t i) {
    DSN_ASSERT(i < size_, "erase_at() index out of range");
    for (std::size_t k = i; k + 1 < size_; ++k) {
      (*this)[k] = std::move((*this)[k + 1]);
    }
    --size_;
  }

  /// Stable front-to-back compaction: removes every element the predicate
  /// accepts (predicate side effects observe elements in FIFO order, exactly
  /// like std::erase_if over a deque). Returns the number removed.
  template <class Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < size_; ++read) {
      T& elem = (*this)[read];
      if (pred(static_cast<const T&>(elem))) continue;
      if (write != read) (*this)[write] = std::move(elem);
      ++write;
    }
    const std::size_t removed = size_ - write;
    size_ = write;
    return removed;
  }

  /// Minimal forward iterator (front-to-back) so range-for call sites keep
  /// reading like the deque-based originals.
  template <class Q, class V>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = V;
    using difference_type = std::ptrdiff_t;
    using pointer = V*;
    using reference = V&;

    Iter(Q* q, std::size_t i) : q_(q), i_(i) {}
    reference operator*() const { return (*q_)[i_]; }
    pointer operator->() const { return &(*q_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    Iter operator++(int) {
      Iter old = *this;
      ++i_;
      return old;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    Q* q_;
    std::size_t i_;
  };

  using iterator = Iter<RingQueue, T>;
  using const_iterator = Iter<const RingQueue, const T>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  void reserve_pow2(std::size_t min_cap) {
    std::size_t cap = cap_ == 0 ? 8 : cap_;
    while (cap < min_cap) cap *= 2;
    if (cap == cap_) return;
    std::unique_ptr<T[]> grown(new T[cap]);
    for (std::size_t i = 0; i < size_; ++i) grown[i] = std::move((*this)[i]);
    data_ = std::move(grown);
    cap_ = cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> data_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dsn
