// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (random topologies, traffic
// generators) take an explicit 64-bit seed so every experiment is exactly
// reproducible. We use SplitMix64 for seeding and xoshiro256** as the
// workhorse generator (both public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>

namespace dsn {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x3243f6a8885a308dULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling on the top bits keeps the distribution exactly uniform.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// True with probability prob (clamped to [0,1]).
  bool bernoulli(double prob) { return next_double() < prob; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dsn
