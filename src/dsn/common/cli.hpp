// Tiny command-line flag parser shared by the bench and example binaries.
//
// Supports --flag value, --flag=value, and boolean --flag. Unknown flags are
// an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dsn {

/// Declarative CLI parser. Register flags with defaults, then parse().
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Register a flag; `help` is shown by --help.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv. Returns false (after printing usage) if --help was given.
  /// Throws dsn::PreconditionError on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Parse a comma-separated list of unsigned integers (e.g. "64,128,256").
  std::vector<std::uint64_t> get_uint_list(const std::string& name) const;
  /// Parse a comma-separated list of doubles.
  std::vector<double> get_double_list(const std::string& name) const;

  std::string usage(const std::string& argv0) const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
    bool set = false;
  };
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace dsn
