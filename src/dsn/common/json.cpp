// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dsn/common/error.hpp"

namespace dsn {

bool Json::as_bool() const {
  DSN_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_double() const {
  DSN_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

std::int64_t Json::as_int() const {
  DSN_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return static_cast<std::int64_t>(number_);
}

const std::string& Json::as_string() const {
  DSN_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  DSN_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  DSN_REQUIRE(index < items_.size(), "JSON array index out of range");
  return items_[index];
}

const Json& Json::at(std::string_view key) const {
  DSN_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_)
    if (k == key) return v;
  throw PreconditionError("JSON object has no member '" + std::string(key) + "'");
}

bool Json::has(std::string_view key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : members_)
    if (k == key) return true;
  return false;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  DSN_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  items_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  DSN_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const std::vector<Json>& Json::items() const {
  DSN_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  DSN_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kNumber: return a.number_ == b.number_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return a.items_ == b.items_;
    case Json::Kind::kObject: return a.members_ == b.members_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  // Integral values within the exact-double range print without a fraction so
  // counts and node ids round-trip byte-identically.
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (std::isfinite(v) && v == std::floor(v) && v >= -kExact && v <= kExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  DSN_REQUIRE(std::isfinite(v), "JSON cannot represent NaN/Inf");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, number_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    DSN_REQUIRE(pos_ == text_.size(), "JSON: trailing characters after document");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    DSN_REQUIRE(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    DSN_REQUIRE(peek() == c, std::string("JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        DSN_REQUIRE(consume_literal("true"), "JSON: bad literal");
        return Json(true);
      case 'f':
        DSN_REQUIRE(consume_literal("false"), "JSON: bad literal");
        return Json(false);
      case 'n':
        DSN_REQUIRE(consume_literal("null"), "JSON: bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      DSN_REQUIRE(peek() == '"', "JSON: object key must be a string");
      std::string key = parse_string();
      expect(':');
      obj.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      DSN_REQUIRE(c == ',', "JSON: expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      DSN_REQUIRE(c == ',', "JSON: expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      DSN_REQUIRE(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        DSN_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                    "JSON: unescaped control character in string");
        out.push_back(c);
        continue;
      }
      DSN_REQUIRE(pos_ < text_.size(), "JSON: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          DSN_REQUIRE(pos_ + 4 <= text_.size(), "JSON: truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else throw PreconditionError("JSON: bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are out of scope
          // for the tool's ASCII reports; lone surrogates pass through).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default: throw PreconditionError("JSON: unknown escape sequence");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    DSN_REQUIRE(pos_ > start, "JSON: expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    DSN_REQUIRE(end != nullptr && *end == '\0', "JSON: malformed number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace dsn
