// Minimal thread pool with a blocking parallel_for, used to parallelize
// all-pairs BFS sweeps and per-point experiment sweeps across cores.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "dsn/common/mutex.hpp"
#include "dsn/common/thread_annotations.hpp"

namespace dsn {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions thrown
/// by tasks propagate out of parallel_for (first one wins).
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Enqueue a batch of tasks under one lock acquisition and a single wakeup
  /// broadcast. parallel_for uses this to push all its chunks at once instead
  /// of paying a lock/notify round-trip per chunk — the difference shows for
  /// fine-grained kernels issuing many small parallel loops.
  void submit_batch(std::vector<std::function<void()>> tasks);

  /// Block until all submitted tasks have completed. Must not be called from
  /// one of this pool's own workers (throws PreconditionError: it would wait
  /// for the calling task to finish).
  void wait_idle();

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Work is distributed in contiguous chunks for cache friendliness.
  /// Reentrant: when called from inside one of this pool's own tasks the loop
  /// runs inline on the calling worker (nested parallel_for cannot deadlock).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Shared process-wide pool (lazily constructed; worker count from the
  /// DSN_THREADS environment variable when set, else hardware_concurrency).
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t index);

  /// Written only by the constructor; immutable (and lock-free to read)
  /// for the pool's whole concurrent lifetime.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ DSN_GUARDED_BY(mutex_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t active_ DSN_GUARDED_BY(mutex_) = 0;
  bool stop_ DSN_GUARDED_BY(mutex_) = false;
};

/// Convenience free function running on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace dsn
