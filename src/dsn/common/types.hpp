// Core fixed-width identifier types shared across all dsn modules.
#pragma once

#include <cstdint>
#include <limits>

namespace dsn {

/// Identifier of a switch (vertex) in a topology graph.
using NodeId = std::uint32_t;

/// Identifier of an undirected physical link (edge).
using LinkId = std::uint32_t;

/// Identifier of a compute host attached to a switch.
using HostId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no link".
inline constexpr LinkId kInvalidLink = std::numeric_limits<LinkId>::max();

/// Sentinel for "unreachable" in hop-distance computations.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

}  // namespace dsn
