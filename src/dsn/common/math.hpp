// Small integer-math helpers used throughout topology construction.
#pragma once

#include <cstdint>

#include "dsn/common/error.hpp"

namespace dsn {

/// floor(log2(v)) for v >= 1.
constexpr std::uint32_t ilog2_floor(std::uint64_t v) {
  std::uint32_t r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(v)) for v >= 1.
constexpr std::uint32_t ilog2_ceil(std::uint64_t v) {
  if (v <= 1) return 0;
  return ilog2_floor(v - 1) + 1;
}

/// True iff v is a power of two (v >= 1).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer ceil division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// floor(sqrt(v)).
constexpr std::uint64_t isqrt(std::uint64_t v) {
  if (v < 2) return v;
  std::uint64_t lo = 1, hi = v;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (mid <= v / mid)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

/// ceil(sqrt(v)).
constexpr std::uint64_t isqrt_ceil(std::uint64_t v) {
  const std::uint64_t r = isqrt(v);
  return r * r == v ? r : r + 1;
}

/// Clockwise (increasing-ID, wrapping) distance from a to b on a ring of n nodes.
constexpr std::uint64_t ring_cw_distance(std::uint64_t a, std::uint64_t b, std::uint64_t n) {
  return b >= a ? b - a : n - (a - b);
}

/// Minimum ring distance (either direction) between a and b on a ring of n nodes.
constexpr std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b, std::uint64_t n) {
  const std::uint64_t cw = ring_cw_distance(a, b, n);
  return cw <= n - cw ? cw : n - cw;
}

}  // namespace dsn
