// Annotated mutual-exclusion primitives: the only lock types dsn code uses.
//
// dsn::Mutex wraps std::mutex and carries the Clang Thread Safety Analysis
// `capability` attribute, so fields declared DSN_GUARDED_BY(some_mutex_) are
// compile-time checked against it under the `tsa` preset. dsn::LockGuard is
// the RAII critical section (a scoped capability), and dsn::CondVar pairs
// with LockGuard for condition waits. Naked std::mutex / std::lock_guard /
// std::condition_variable elsewhere in src/ or tools/ is a dsn-slint
// violation (`annotated-mutex-only`): an unannotated lock is invisible to the
// analysis, which silently un-checks every field it guards.
//
// Condition predicates are written as explicit while loops at the call site
// (`while (!ready_) cv_.wait(lock);`) rather than the predicate-lambda
// overload: the analysis cannot see through a lambda that std::condition_
// variable::wait invokes internally, but it checks the while-loop body
// normally. CondVar::wait deliberately has no predicate overload to make the
// checked form the only form.
//
// dsn-slint-ignore-file(annotated-mutex-only): this header IS the wrapper.
#pragma once

#include <condition_variable>
#include <mutex>

#include "dsn/common/thread_annotations.hpp"

namespace dsn {

class CondVar;

/// Annotated standard mutex. Prefer LockGuard over manual lock()/unlock().
class DSN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DSN_ACQUIRE() { m_.lock(); }
  void unlock() DSN_RELEASE() { m_.unlock(); }
  bool try_lock() DSN_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class LockGuard;
  std::mutex m_;
};

/// RAII critical section over a dsn::Mutex. Holds the lock for its whole
/// lifetime (no early unlock; split the scope instead — smaller critical
/// sections are the point).
class DSN_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) DSN_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~LockGuard() DSN_RELEASE() = default;

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable only with LockGuard, keeping waits inside
/// analysed critical sections. wait() can wake spuriously — always call it
/// from a while loop re-checking the guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `guard`'s mutex and block; the mutex is reacquired
  /// before returning. The capability is held again on return, which is what
  /// the analysis assumes when the enclosing scope holds `guard`.
  void wait(LockGuard& guard) { cv_.wait(guard.lock_); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dsn
