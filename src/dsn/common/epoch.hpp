// Epoch-barrier shard executor: the concurrency discipline shared by the
// MS-BFS engine, the obs registry merges, and the active-set simulator core.
// Work is partitioned into fixed shards; each epoch runs one function per
// shard in parallel and returns only when every shard has finished (the
// barrier), so the caller's serial sections between epochs observe a fully
// quiesced state and can merge per-shard results in shard order — the order
// that makes the merge independent of thread scheduling.
#pragma once

#include <cstddef>
#include <functional>

#include "dsn/common/thread_pool.hpp"

namespace dsn {

/// Runs per-shard functions over a fixed shard count with a full barrier
/// between epochs. shards == 1 (or a null pool) degrades to an inline serial
/// loop on the calling thread — no pool traffic, no synchronization — which
/// is also the determinism baseline the parallel path must reproduce.
class ShardEpoch {
 public:
  /// The pool is borrowed, not owned; it must outlive this object. A null
  /// pool forces inline execution regardless of the shard count.
  ShardEpoch(ThreadPool* pool, std::size_t shards)
      : pool_(shards > 1 ? pool : nullptr), shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }

  /// True when epochs actually fan out to pool workers.
  bool parallel_execution() const { return pool_ != nullptr; }

  /// One epoch: run fn(shard) for every shard in [0, shards()), blocking
  /// until all complete. Exceptions from shard functions propagate (first
  /// one wins, matching ThreadPool::parallel_for).
  void run(const std::function<void(std::size_t)>& fn) const {
    if (pool_ == nullptr) {
      for (std::size_t s = 0; s < shards_; ++s) fn(s);
      return;
    }
    pool_->parallel_for(0, shards_, fn);
  }

 private:
  ThreadPool* pool_;
  std::size_t shards_;
};

}  // namespace dsn
