#include "dsn/common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "dsn/common/error.hpp"

namespace dsn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DSN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  DSN_REQUIRE(!rows_.empty(), "call row() before cell()");
  DSN_REQUIRE(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::left << std::setw(static_cast<int>(widths[c])) << headers_[c];
    os << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      os << std::right << std::setw(static_cast<int>(widths[c])) << v;
      os << (c + 1 == headers_.size() ? "\n" : "  ");
    }
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << headers_[c] << (c + 1 == headers_.size() ? "\n" : ",");
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c < r.size()) os << r[c];
      os << (c + 1 == headers_.size() ? "\n" : ",");
    }
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) {
    os << "== " << title << " ==\n";
  }
  os << to_string() << "\n";
}

}  // namespace dsn
