// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
// Minimal JSON value type with a parser and serializer, used for the
// machine-readable reports of dsn-lint (and their round-trip tests). Objects
// preserve insertion order so dump(parse(dump(x))) == dump(x) holds exactly.
//
// Scope is deliberately small: UTF-8 pass-through strings, numbers stored as
// double (integral values in [-2^53, 2^53] print without a fraction), no
// comments, no trailing commas.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsn {

class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                        // NOLINT
  Json(double v) : kind_(Kind::kNumber), number_(v) {}                  // NOLINT
  Json(std::int64_t v)                                                  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v)                                                 // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(int v) : kind_(Kind::kNumber), number_(v) {}                     // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}             // NOLINT

  static Json array() { return Json(Kind::kArray); }
  static Json object() { return Json(Kind::kObject); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw dsn::PreconditionError on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array/object size (0 for scalars).
  std::size_t size() const;

  /// Array element access (throws when out of range or not an array).
  const Json& at(std::size_t index) const;
  /// Object member access (throws when absent or not an object).
  const Json& at(std::string_view key) const;
  bool has(std::string_view key) const;

  /// Append to an array (converts a null value into an array first).
  void push_back(Json value);
  /// Set an object member, replacing any existing entry with that key
  /// (converts a null value into an object first).
  void set(std::string key, Json value);

  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialize. indent < 0 produces the compact single-line form; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (throws dsn::PreconditionError on any
  /// syntax error or trailing garbage).
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  explicit Json(Kind kind) : kind_(kind) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace dsn
