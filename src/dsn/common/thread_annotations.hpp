// Portable Clang Thread Safety Analysis annotation macros.
//
// Under clang with -Wthread-safety these expand to the capability attributes
// the analysis consumes, turning lock discipline into a compile-time property:
// a field declared DSN_GUARDED_BY(mutex_) cannot be read or written without
// the mutex held, a function declared DSN_REQUIRES(mutex_) cannot be called
// without it, and the `tsa` CMake preset promotes every finding to an error.
// Under GCC/MSVC every macro expands to nothing, so annotated code builds
// everywhere and the clang CI leg is the enforcement point.
//
// House rules (enforced by ci/dsn_slint.py check `annotated-mutex-only`):
// lock-owning classes use dsn::Mutex/dsn::LockGuard from
// dsn/common/mutex.hpp, never naked std::mutex, so every critical section in
// the tree is visible to the analysis. See DESIGN.md §8 for the full
// discipline, including when lock-free shard publication is preferred over a
// capability and why such fields stay un-annotated.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define DSN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DSN_THREAD_ANNOTATION(x)
#endif

/// Class attribute: instances are capabilities (lockable objects).
#define DSN_CAPABILITY(x) DSN_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII types whose constructor acquires and destructor
/// releases a capability.
#define DSN_SCOPED_CAPABILITY DSN_THREAD_ANNOTATION(scoped_lockable)

/// Data members: may only be accessed while holding the given capability.
#define DSN_GUARDED_BY(x) DSN_THREAD_ANNOTATION(guarded_by(x))
/// Pointer members: the pointed-to data is guarded (the pointer itself is not).
#define DSN_PT_GUARDED_BY(x) DSN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: caller must hold the capability (exclusively / shared).
#define DSN_REQUIRES(...) \
  DSN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DSN_REQUIRES_SHARED(...) \
  DSN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire/release the capability (lock()/unlock() and friends).
#define DSN_ACQUIRE(...) DSN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DSN_ACQUIRE_SHARED(...) \
  DSN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DSN_RELEASE(...) DSN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DSN_RELEASE_SHARED(...) \
  DSN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Functions: acquire only when returning `ret` (try_lock()).
#define DSN_TRY_ACQUIRE(ret, ...) \
  DSN_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Functions: caller must NOT hold the capability (deadlock prevention).
#define DSN_EXCLUDES(...) DSN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions: returns a reference to the named capability.
#define DSN_RETURN_CAPABILITY(x) DSN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. lock juggling across
/// function boundaries). Use sparingly and leave a comment saying why.
#define DSN_NO_THREAD_SAFETY_ANALYSIS \
  DSN_THREAD_ANNOTATION(no_thread_safety_analysis)
