#include "dsn/common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "dsn/common/error.hpp"

namespace dsn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t nthreads = workers_.size();
  if (total == 1 || nthreads == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // ~4 chunks per worker balances load without excessive queue traffic.
  const std::size_t chunks = std::min(total, nthreads * 4);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t submitted = 0;

  for (std::size_t c = 0; c * chunk_size < total; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    ++submitted;
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::scoped_lock el(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        std::scoped_lock dl(done_mutex);
        done.fetch_add(1, std::memory_order_relaxed);
      }
      done_cv.notify_one();
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load(std::memory_order_relaxed) == submitted; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace dsn
