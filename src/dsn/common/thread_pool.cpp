#include "dsn/common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "dsn/common/error.hpp"
#include "dsn/obs/obs.hpp"

namespace dsn {

#if DSN_OBS
namespace {

/// Pool-wide metric ids, registered once. All pools share the metrics — the
/// process has one global pool in practice, and tests that build private
/// pools fold into the same counters by design.
struct PoolMetrics {
  obs::MetricId queue_depth = obs::MetricsRegistry::global().gauge("dsn.pool.queue_depth");
  obs::MetricId tasks_executed = obs::MetricsRegistry::global().counter("dsn.pool.tasks_executed");
  obs::MetricId task_ns = obs::MetricsRegistry::global().counter("dsn.pool.task_ns");

  static const PoolMetrics& get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace
#endif  // DSN_OBS

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    LockGuard lock(mutex_);
    tasks_.push(std::move(task));
    DSN_OBS_GAUGE_SET(PoolMetrics::get().queue_depth,
                      static_cast<std::int64_t>(tasks_.size()));
  }
  cv_task_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const std::size_t count = tasks.size();
  {
    LockGuard lock(mutex_);
    for (auto& task : tasks) tasks_.push(std::move(task));
    DSN_OBS_GAUGE_SET(PoolMetrics::get().queue_depth,
                      static_cast<std::int64_t>(tasks_.size()));
  }
  if (count == 1) {
    cv_task_.notify_one();
  } else {
    cv_task_.notify_all();
  }
}

namespace {

/// Pool the current thread is a worker of, or nullptr. Lets parallel_for run
/// inline when called from inside one of its own tasks (nested parallelism)
/// instead of deadlocking: the submitting worker would block waiting for
/// chunks that only the (fully occupied) pool could run.
thread_local ThreadPool* t_current_pool = nullptr;

}  // namespace

void ThreadPool::wait_idle() {
  DSN_REQUIRE(t_current_pool != this,
              "wait_idle called from a pool worker would deadlock");
  LockGuard lock(mutex_);
  while (!(tasks_.empty() && active_ == 0)) cv_idle_.wait(lock);
}

void ThreadPool::worker_loop(std::size_t index) {
  t_current_pool = this;
  DSN_OBS_ONLY(
      obs::set_current_thread_name("pool-worker-" + std::to_string(index));)
#if !DSN_OBS
  (void)index;
#endif
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      DSN_OBS_GAUGE_SET(PoolMetrics::get().queue_depth,
                        static_cast<std::int64_t>(tasks_.size()));
      ++active_;
    }
    {
      DSN_OBS_TIMER(PoolMetrics::get().task_ns,
                    PoolMetrics::get().tasks_executed);
      DSN_OBS_SPAN("pool.task");
      task();
    }
    {
      LockGuard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t nthreads = workers_.size();
  // Run inline when parallelism cannot help (single item / single worker) or
  // when called from one of this pool's own workers: a nested parallel_for
  // must not block a worker on chunks only the saturated pool could execute.
  if (total == 1 || nthreads == 1 || t_current_pool == this) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // ~4 chunks per worker balances load without excessive queue traffic.
  const std::size_t chunks = std::min(total, nthreads * 4);
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::size_t done = 0;  // guarded by done_mutex
  std::exception_ptr first_error;  // guarded by error_mutex
  Mutex error_mutex;
  Mutex done_mutex;
  CondVar done_cv;

  std::vector<std::function<void()>> batch;
  batch.reserve((total + chunk_size - 1) / chunk_size);
  for (std::size_t c = 0; c * chunk_size < total; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    batch.push_back([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        LockGuard el(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Increment and notify while holding the lock: once the waiter observes
      // done == submitted it returns and destroys done_cv, so a notify after
      // releasing the mutex would race with that destruction (use-after-free,
      // caught by TSan).
      LockGuard dl(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }
  const std::size_t submitted = batch.size();
  submit_batch(std::move(batch));

  LockGuard lock(done_mutex);
  while (done != submitted) done_cv.wait(lock);
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  // DSN_THREADS pins the worker count (benches use it to report honest
  // thread numbers); unset or invalid falls back to hardware_concurrency.
  static ThreadPool pool([] {
    const char* env = std::getenv("DSN_THREADS");
    if (env == nullptr) return std::size_t{0};
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace dsn
