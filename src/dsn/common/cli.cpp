#include "dsn/common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "dsn/common/error.hpp"

namespace dsn {

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  DSN_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, help, default_value, false};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argv[0]);
      return false;
    }
    DSN_REQUIRE(arg.starts_with("--"), "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    DSN_REQUIRE(it != flags_.end(), "unknown flag: --" + arg);
    if (!has_value) {
      const bool is_bool =
          it->second.default_value == "false" || it->second.default_value == "true";
      if (is_bool) {
        // Boolean flags may omit the value ("--quick") but also accept an
        // explicit one ("--quick false") when the next token looks boolean.
        value = "true";
        if (i + 1 < argc) {
          const std::string next = argv[i + 1];
          if (next == "true" || next == "false" || next == "1" || next == "0") {
            value = (next == "true" || next == "1") ? "true" : "false";
            ++i;
          }
        }
      } else {
        DSN_REQUIRE(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

bool Cli::has(const std::string& name) const {
  auto it = flags_.find(name);
  DSN_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  return it->second.set;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  DSN_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

std::uint64_t Cli::get_uint(const std::string& name) const {
  const auto v = std::stoll(get(name));
  DSN_REQUIRE(v >= 0, "flag --" + name + " must be non-negative");
  return static_cast<std::uint64_t>(v);
}

double Cli::get_double(const std::string& name) const { return std::stod(get(name)); }

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::uint64_t> Cli::get_uint_list(const std::string& name) const {
  std::vector<std::uint64_t> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoull(tok));
  }
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  return out;
}

std::string Cli::usage(const std::string& argv0) const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << argv0 << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << (f.default_value.empty() ? "\"\"" : f.default_value)
       << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace dsn
