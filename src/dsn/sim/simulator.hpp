// Cycle-accurate flit-level network simulator with virtual cut-through
// switching, per-VC input buffering and credit-based flow control.
//
// Model summary (one cycle = one flit serialization time on a link):
//  - Input-queued switches; each input port has `vcs` FIFO buffers of
//    `buffer_flits` flits guarded by credits held at the upstream sender.
//  - A head flit becomes routable router_delay after arriving (covering
//    routing, VC allocation, switch allocation and crossbar setup, ~100 ns).
//  - VC allocation implements virtual cut-through: an output VC is granted
//    only when it is unowned AND the downstream buffer has room for the
//    entire packet, so a blocked packet is always fully absorbed.
//  - Switch allocation moves at most one flit per input port and one flit
//    per output port per cycle (round-robin arbiters with rotating offsets).
//  - Links carry one flit per cycle with link_delay latency; credits return
//    with the same latency.
//  - Hosts inject via dedicated injection ports (NIC holds packet-granular
//    source queues, open-loop Bernoulli generation) and eject via dedicated
//    ejection ports with sink bandwidth of one flit per cycle.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dsn/common/json.hpp"
#include "dsn/common/ring.hpp"
#include "dsn/obs/metrics.hpp"
#include "dsn/sim/config.hpp"
#include "dsn/sim/demand.hpp"
#include "dsn/sim/fault.hpp"
#include "dsn/sim/packet.hpp"
#include "dsn/sim/policy.hpp"
#include "dsn/sim/trace.hpp"
#include "dsn/sim/traffic.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

/// Outcome of one simulation run at a fixed offered load.
struct SimResult {
  double offered_gbps_per_host = 0.0;
  double accepted_gbps_per_host = 0.0;  ///< ejected flits during measurement
  double avg_latency_ns = 0.0;          ///< generation -> tail delivered, measured packets
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double avg_hops = 0.0;                ///< switch-to-switch hops, measured packets
  std::uint64_t packets_measured = 0;   ///< generated inside the window
  std::uint64_t packets_delivered = 0;  ///< of the measured ones
  bool drained = false;    ///< all measured packets delivered before the drain cap
  bool deadlock = false;   ///< watchdog saw in-flight flits make no progress
  std::uint64_t cycles_run = 0;

  // Degraded-mode observability (live fault injection, see dsn/sim/fault.hpp;
  // totals cover all phases, not just the measurement window).
  std::uint64_t packets_generated_total = 0;
  std::uint64_t packets_delivered_total = 0;
  std::uint64_t packets_dropped = 0;      ///< fault purges + TTL expiries
  std::uint64_t packets_dropped_ttl = 0;  ///< of those, TTL expiries
  std::uint64_t packets_retried = 0;      ///< requeue events (one per retry)
  std::uint64_t flits_dropped = 0;        ///< flits purged from buffers/wires
  /// Live packets at exit, recounted independently from the packet pool.
  std::uint64_t packets_in_flight_at_end = 0;
  /// Packet conservation: generated == delivered + dropped + in-flight, with
  /// the in-flight count recounted from the pool (no unaccounted flits).
  bool conservation_ok = true;
  std::uint32_t routing_rebuilds = 0;
  std::vector<FaultRecord> fault_log;  ///< one record per applied fault event
  std::vector<EpochStats> epochs;      ///< degradation curve (epoch_cycles > 0)
};

/// Full SimResult as ordered JSON (byte-identical for identical results —
/// the golden determinism tests compare these dumps across thread counts).
Json to_json(const SimResult& result);

/// Degradation-curve view: totals + fault log + per-epoch counts.
Json degradation_curve_json(const SimResult& result);

class ActiveCore;

class Simulator {
 public:
  /// The policy is held non-const: fault recovery calls its on_fault_update
  /// hook to rebuild routing tables when the topology changes mid-run.
  Simulator(const Topology& topo, SimRoutingPolicy& policy,
            const TrafficPattern& traffic, const SimConfig& config);

  /// Run the configured warmup + measurement + drain phases. Dispatches to
  /// the active-set core (default) or the legacy full-scan core
  /// (SimConfig::legacy_core); both produce byte-identical SimResult.
  SimResult run();

  /// Replace the open-loop Bernoulli generators with an explicit injection
  /// schedule (entries must be sorted by cycle; packets whose cycle falls in
  /// the measurement window are measured). Call before run().
  void set_injection_trace(std::vector<TraceEntry> trace);

  /// Arm a live fault schedule (validated against the topology). Events are
  /// applied at the start of their cycle: flits on a dead link or inside a
  /// halted switch are purged with explicit drop/requeue accounting, credits
  /// are recomputed exactly from the flow-control invariant, and the policy
  /// rebuilds its routing state. Call before run().
  void set_fault_schedule(FaultSchedule schedule);

  /// Flits carried per directed link half during the measurement window
  /// (index = 2*link + dir with dir 0: u->v, 1: v->u); for the
  /// traffic-balance analysis of the custom routing.
  const std::vector<std::uint64_t>& link_flit_counts() const { return link_flits_; }

  /// Per-packet traces of delivered measured packets (empty unless
  /// SimConfig::record_packet_traces is set).
  const std::vector<PacketTrace>& packet_traces() const { return traces_; }

  std::uint32_t num_hosts() const { return num_hosts_; }

 private:
  struct InputVc {
    RingQueue<Flit> buffer;
    RingQueue<std::uint64_t> head_ready;  ///< routable cycles of queued head flits
    enum class State : std::uint8_t { kIdle, kActive } state = State::kIdle;
    std::uint32_t out_port = 0;
    std::uint32_t out_vc = 0;
    /// Packet owning the current allocation (kActive only). The buffer can
    /// momentarily hold zero of its flits mid-stream, so the fault purge
    /// cannot infer the owner from the buffer front.
    PacketSlot cur_packet = kInvalidPacketSlot;
  };

  struct OutputVc {
    bool owned = false;
    std::uint32_t owner_port = 0;
    std::uint32_t owner_vc = 0;
    std::uint32_t credits = 0;
  };

  struct Arrival {
    std::uint64_t cycle;
    Flit flit;
    std::uint32_t vc;
  };

  struct CreditReturn {
    std::uint64_t cycle;
    std::uint32_t count;
  };

  struct SwitchState {
    std::uint32_t num_net_ports = 0;   ///< network in/out ports (adjacency order)
    std::uint32_t num_ports = 0;       ///< net + host ports
    std::vector<InputVc> in;           ///< [port * vcs + vc]
    std::vector<OutputVc> out;         ///< [port * vcs + vc]
    std::vector<RingQueue<Arrival>> wire;          ///< per input port
    std::vector<RingQueue<CreditReturn>> credits;  ///< per (out port * vcs + vc)
    std::vector<std::uint32_t> sa_rr;  ///< round-robin pointer per output port
  };

  struct NicState {
    RingQueue<PacketSlot> source_queue;
    /// Fault-damaged packets awaiting re-injection (Packet::retry_at holds
    /// each packet's bounded-exponential-backoff deadline).
    RingQueue<PacketSlot> retry_queue;
    PacketSlot streaming = 0;
    bool busy = false;
    std::uint32_t flits_sent = 0;
    std::uint32_t stream_vc = 0;
    std::vector<std::uint32_t> credits;  ///< per VC at the injection port
    Rng rng{0};
  };

  /// Per-switch scratch for the switch-allocation kernel, preallocated to
  /// the widest switch once (no per-cycle container writes in the hot loop):
  /// input_used entries are set during one switch's arbitration and reset
  /// via the used_inputs undo list before the kernel returns. The legacy
  /// core owns one instance; the active core owns one per shard.
  struct SaScratch {
    std::vector<std::uint8_t> input_used;
    std::vector<std::uint32_t> used_inputs;
    /// sa_switch_active ordering buffer: (out_port, RR-cyclic key, VC index)
    /// packed into one word per active VC so a single sort recovers the
    /// legacy scan order over the active subset.
    std::vector<std::uint64_t> rr_candidates;
  };

  PacketSlot alloc_packet();
  void free_packet(PacketSlot slot);
  /// Allocate a packet src -> dst generated at `now` and queue it at the
  /// source NIC — the single injection path both cores share, so packet ids
  /// and pool slots are assigned in the same order everywhere.
  void enqueue_packet(HostId src, HostId dst, std::uint64_t now);
  void generate_traffic(std::uint64_t now);
  void nic_stream(std::uint64_t now);
  /// One NIC's injection step for one cycle (shared by both cores). Returns
  /// true when the NIC still has actionable or pending work; false when it
  /// is idle. When idle purely because every queued retry is still backing
  /// off, *wake_at (if non-null) receives the earliest retry_at so the
  /// active core can re-arm a wakeup instead of polling.
  bool nic_step(HostId h, std::uint64_t now, std::uint64_t* wake_at);
  void deliver_wire_flits(std::uint64_t now);
  void apply_credit_returns(std::uint64_t now);
  void allocate_vcs(std::uint64_t now);
  void switch_allocation(std::uint64_t now);
  /// One switch's allocation (round-robin arbitration + flit movement) for
  /// one cycle. The Sink receives every side effect whose destination
  /// differs between cores: cross-switch queue pushes (mailboxed when the
  /// target lives on another shard), delivery/drop accounting (per-shard
  /// deltas merged in shard order), and active-set bookkeeping hooks.
  /// Defined in dsn/sim/switch_kernel.hpp; both cores instantiate it.
  template <class Sink>
  void sa_switch(NodeId u, std::uint64_t now, bool in_window, SaScratch& scratch,
                 Sink& sink);
  /// Same arbitration restricted to the caller's list of active input VCs
  /// (state kActive with a nonempty buffer) — O(active) per switch instead
  /// of O(ports x vcs). Grant decisions and credit-stall counts are
  /// byte-identical to sa_switch; the active core maintains the lists.
  template <class Sink>
  void sa_switch_active(NodeId u, std::uint64_t now, bool in_window,
                        const std::vector<std::uint32_t>& active,
                        SaScratch& scratch, Sink& sink);
  /// Shared grant body of both front-ends: moves the winning flit, consumes
  /// and returns credits, ejects tails, and fires the Sink hooks.
  template <class Sink>
  void sa_apply_grant(NodeId u, std::uint32_t op, std::uint32_t granted,
                      std::uint64_t now, bool in_window, SaScratch& scratch,
                      Sink& sink);
  bool try_allocate(NodeId sw, std::uint32_t in_port, std::uint32_t vc,
                    std::uint64_t now, std::vector<RouteCandidate>& scratch);
  /// TTL-expire queued packets of NICs in [begin, end), appending expired
  /// slots to `out` (erased from the queues; caller purges). Both cores call
  /// this on the same strided cycles (SimConfig::ttl_sweep_stride).
  void sweep_nic_ttl(std::uint64_t now, HostId begin, HostId end,
                     std::vector<PacketSlot>& out);
  SimResult run_legacy();
  SimResult run_active();
  /// Assemble the SimResult from the accumulated counters (shared epilogue:
  /// latency percentiles, conservation recount, fault log, epochs).
  SimResult finalize_result(std::uint64_t now, bool deadlock);

  // --- fault machinery (see dsn/sim/fault.hpp) ----------------------------
  /// Returns true when at least one event changed topology state (the active
  /// core rebuilds its work lists from scratch after any such change).
  bool apply_fault_events(std::uint64_t now);
  /// Packets with flits in flight on link l or mid-stream across it.
  void collect_link_packets(LinkId l, std::vector<PacketSlot>& out) const;
  /// Packets with any flit inside switch s, streaming into it, or mid-stream
  /// on any of its links (everything a halted switch loses).
  void collect_switch_packets(NodeId s, std::vector<PacketSlot>& out) const;
  /// Remove every flit of the given packets from wires, buffers and NIC
  /// streams, release their allocations, rebuild head_ready bookkeeping, and
  /// requeue (bounded retries) or drop each packet with accounting. Sorts
  /// and dedupes `slots` in place. Callers must recompute_credits() after.
  void purge_packets(std::vector<PacketSlot>& slots, std::uint64_t now,
                     bool allow_requeue, bool ttl, FaultRecord* record);
  /// Reset every credit counter exactly from the flow-control invariant:
  /// free space = buffer_flits - (downstream occupancy + wire in-flight).
  /// Pending credit returns are flushed (they are part of the recount).
  void recompute_credits();
  /// Reset live packets' routing state to the policy's initial state (after
  /// a rebuild whose state encoding refers to the previous topology).
  void reset_route_states();
  EpochStats& epoch_at(std::uint64_t now);

  const Topology* topo_;
  SimRoutingPolicy* policy_;
  const TrafficPattern* traffic_;
  SimConfig config_;
  /// Shared pattern→demand layer (sim/demand.hpp); the Bernoulli generators
  /// live there so both simulation tiers consume one demand definition.
  std::unique_ptr<TrafficDemand> demand_;
  std::vector<Demand> demand_scratch_;

  std::uint32_t num_switches_ = 0;
  std::uint32_t num_hosts_ = 0;
  std::uint64_t router_delay_ = 0;
  std::uint64_t link_delay_ = 0;

  std::vector<SwitchState> switches_;
  std::vector<NicState> nics_;
  /// Reverse port map: for (switch, net in_port) the upstream (switch, out_port).
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> upstream_;
  /// Forward port map: for (switch, net out_port) the downstream (switch, in_port).
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> downstream_;
  /// Directed link index for (switch, net out_port), for link_flits_.
  std::vector<std::vector<std::uint32_t>> out_link_index_;

  std::vector<Packet> packets_;
  std::vector<PacketSlot> free_slots_;
  std::uint64_t next_packet_id_ = 0;

  std::vector<std::uint64_t> link_flits_;
  std::vector<PacketTrace> traces_;
  std::vector<std::uint32_t> measured_latencies_;  ///< cycles
  std::uint64_t measured_generated_ = 0;
  std::uint64_t measured_delivered_ = 0;
  std::uint64_t measured_hops_ = 0;
  std::uint64_t ejected_flits_in_window_ = 0;
  std::uint64_t in_flight_packets_ = 0;
  std::uint64_t last_progress_cycle_ = 0;

  std::vector<RouteCandidate> scratch_candidates_;  ///< legacy-core route scratch
  SaScratch sa_scratch_;          ///< legacy-core switch-allocation scratch
  std::uint32_t max_ports_ = 0;   ///< widest switch (scratch sizing)

  std::vector<TraceEntry> injection_trace_;
  std::size_t trace_cursor_ = 0;
  bool use_trace_ = false;

  // --- live fault state ---------------------------------------------------
  std::vector<std::uint8_t> link_alive_;    ///< by LinkId
  std::vector<std::uint8_t> switch_alive_;  ///< by NodeId
  /// Port of link l at each endpoint: {(node, adjacency port), ...} — needed
  /// because parallel links (DSN-E Up links) share neighbor node ids.
  std::vector<std::array<std::pair<NodeId, std::uint32_t>, 2>> link_ports_;
  FaultSchedule fault_schedule_;
  std::size_t fault_cursor_ = 0;
  bool faults_armed_ = false;
  std::vector<FaultRecord> fault_log_;
  /// fault_log_ indices of down events awaiting their first post-event
  /// delivery (time-to-reconnect measurement).
  std::vector<std::size_t> pending_reconnect_;
  std::vector<EpochStats> epochs_;
  std::uint64_t generated_total_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t dropped_total_ = 0;
  std::uint64_t dropped_ttl_ = 0;
  std::uint64_t retried_total_ = 0;
  std::uint64_t flits_dropped_ = 0;
  std::uint64_t measured_dropped_ = 0;
  std::uint32_t routing_rebuilds_ = 0;
  std::vector<PacketSlot> ttl_expired_;  ///< per-cycle scratch

  /// Per-phase hop counters, indexed by routing state, registered in the
  /// constructor for every state the policy names (dsn.sim.hops.<phase>).
  /// Unnamed states keep invalid ids, which every registry op ignores.
  /// Present in all builds (headers are DSN_OBS-invariant); with DSN_OBS=0
  /// nothing ever registers or touches them.
  std::array<obs::MetricId, 8> hop_phase_metrics_{};

  void emit_trace_sample(std::uint64_t now);

  /// The active-set engine (dsn/sim/active_core.cpp) drives the same state
  /// machine through work lists and sharded epochs; it is an implementation
  /// detail of run_active() with full access to the simulator state.
  friend class ActiveCore;
};

/// Convenience wrapper: run one simulation point.
SimResult run_simulation(const Topology& topo, SimRoutingPolicy& policy,
                         const TrafficPattern& traffic, const SimConfig& config);

}  // namespace dsn
