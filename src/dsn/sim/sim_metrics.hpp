// Shared metric ids for the simulator cores. Lives in its own header (not an
// anonymous namespace of simulator.cpp) because the switch-allocation kernel
// and the active-set core are separate TUs that must update the exact same
// counters — two registrations would be idempotent, but a shared struct keeps
// the id set reviewable in one place.
#pragma once

#include "dsn/obs/obs.hpp"

#if DSN_OBS

#include <string>

namespace dsn::sim_detail {

struct SimMetrics {
  obs::MetricId hops = obs::MetricsRegistry::global().counter("dsn.sim.hops");
  obs::MetricId credit_stalls =
      obs::MetricsRegistry::global().counter("dsn.sim.credit_stalls");
  obs::MetricId fault_events =
      obs::MetricsRegistry::global().counter("dsn.sim.fault_events");
  obs::MetricId in_flight =
      obs::MetricsRegistry::global().gauge("dsn.sim.in_flight_packets");
  obs::MetricId latency_cycles = obs::MetricsRegistry::global().histogram(
      "dsn.sim.packet_latency_cycles",
      {64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384});
  // Active-set core health: calendar events drained, input VCs examined by
  // the allocation pass, and switches visited by switch allocation. Counted
  // per shard and folded into the registry once per cycle from the serial
  // merge section, so totals are byte-identical for every sim_threads value.
  obs::MetricId active_events =
      obs::MetricsRegistry::global().counter("dsn.sim.active.events");
  obs::MetricId active_alloc_checks =
      obs::MetricsRegistry::global().counter("dsn.sim.active.alloc_checks");
  obs::MetricId active_sa_visits =
      obs::MetricsRegistry::global().counter("dsn.sim.active.sa_visits");

  static const SimMetrics& get() {
    static SimMetrics metrics;
    return metrics;
  }
};

}  // namespace dsn::sim_detail

#endif  // DSN_OBS
