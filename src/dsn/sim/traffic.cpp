// dsn-slint: deterministic — generated traffic must replay byte-identically
// from a seed; iteration order here is part of the contract.
#include "dsn/sim/traffic.hpp"

#include <array>

#include "dsn/common/error.hpp"
#include "dsn/common/math.hpp"

namespace dsn {

UniformTraffic::UniformTraffic(std::uint32_t num_hosts) : num_hosts_(num_hosts) {
  DSN_REQUIRE(num_hosts >= 2, "uniform traffic needs >= 2 hosts");
}

HostId UniformTraffic::dest(HostId src, Rng& rng) const {
  // Sample from [0, H-1) and skip over src to stay uniform over others.
  const auto d = static_cast<HostId>(rng.next_below(num_hosts_ - 1));
  return d >= src ? d + 1 : d;
}

BitReversalTraffic::BitReversalTraffic(std::uint32_t num_hosts)
    : num_hosts_(num_hosts), bits_(ilog2_floor(num_hosts)) {
  DSN_REQUIRE(is_pow2(num_hosts), "bit reversal needs a power-of-two host count");
}

HostId BitReversalTraffic::dest(HostId src, Rng&) const {
  HostId out = 0;
  for (std::uint32_t b = 0; b < bits_; ++b) {
    out = (out << 1) | ((src >> b) & 1u);
  }
  return out;
}

NeighboringTraffic::NeighboringTraffic(std::uint32_t num_hosts, double local_fraction)
    : num_hosts_(num_hosts),
      side_(static_cast<std::uint32_t>(isqrt(num_hosts))),
      local_fraction_(local_fraction) {
  DSN_REQUIRE(side_ * side_ == num_hosts,
              "neighboring traffic needs a square host count for the 2-D array");
  DSN_REQUIRE(local_fraction >= 0.0 && local_fraction <= 1.0,
              "local fraction must be in [0, 1]");
}

HostId NeighboringTraffic::dest(HostId src, Rng& rng) const {
  if (!rng.bernoulli(local_fraction_)) {
    const auto d = static_cast<HostId>(rng.next_below(num_hosts_ - 1));
    return d >= src ? d + 1 : d;
  }
  const std::uint32_t x = src % side_;
  const std::uint32_t y = src / side_;
  std::array<HostId, 4> candidates{};
  std::size_t count = 0;
  if (x > 0) candidates[count++] = src - 1;
  if (x + 1 < side_) candidates[count++] = src + 1;
  if (y > 0) candidates[count++] = src - side_;
  if (y + 1 < side_) candidates[count++] = src + side_;
  return candidates[rng.next_below(count)];
}

TransposeTraffic::TransposeTraffic(std::uint32_t num_hosts)
    : num_hosts_(num_hosts), side_(static_cast<std::uint32_t>(isqrt(num_hosts))) {
  DSN_REQUIRE(side_ * side_ == num_hosts, "transpose needs a square host count");
}

HostId TransposeTraffic::dest(HostId src, Rng&) const {
  const std::uint32_t x = src % side_;
  const std::uint32_t y = src / side_;
  return x * side_ + y;
}

ShuffleTraffic::ShuffleTraffic(std::uint32_t num_hosts)
    : num_hosts_(num_hosts), bits_(ilog2_floor(num_hosts)) {
  DSN_REQUIRE(is_pow2(num_hosts), "shuffle needs a power-of-two host count");
}

HostId ShuffleTraffic::dest(HostId src, Rng&) const {
  const HostId top = (src >> (bits_ - 1)) & 1u;
  return ((src << 1) | top) & (num_hosts_ - 1);
}

HotspotTraffic::HotspotTraffic(std::uint32_t num_hosts, HostId hot, double hot_fraction)
    : num_hosts_(num_hosts), hot_(hot), hot_fraction_(hot_fraction) {
  DSN_REQUIRE(hot < num_hosts, "hot host out of range");
  DSN_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0, "fraction must be in [0, 1]");
}

HostId HotspotTraffic::dest(HostId src, Rng& rng) const {
  if (src != hot_ && rng.bernoulli(hot_fraction_)) return hot_;
  const auto d = static_cast<HostId>(rng.next_below(num_hosts_ - 1));
  return d >= src ? d + 1 : d;
}

std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             std::uint32_t num_hosts) {
  if (name == "uniform") return std::make_unique<UniformTraffic>(num_hosts);
  if (name == "bit-reversal" || name == "bitrev")
    return std::make_unique<BitReversalTraffic>(num_hosts);
  if (name == "neighboring") return std::make_unique<NeighboringTraffic>(num_hosts);
  if (name == "transpose") return std::make_unique<TransposeTraffic>(num_hosts);
  if (name == "shuffle") return std::make_unique<ShuffleTraffic>(num_hosts);
  if (name == "hotspot")
    return std::make_unique<HotspotTraffic>(num_hosts, 0, 0.1);
  throw PreconditionError("unknown traffic pattern: " + name);
}

}  // namespace dsn
