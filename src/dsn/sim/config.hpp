// Simulator configuration mirroring the paper's §VII-A setup:
//   - virtual cut-through switching, 4 virtual channels;
//   - >100 ns per-hop header latency (routing + VC allocation + switch
//     allocation + crossbar);
//   - 20 ns flit-injection + link delay;
//   - 33-flit packets, 256-bit flits, 96 Gbps effective link bandwidth;
//   - 64 switches with 4 compute hosts each.
//
// Internally the simulator is cycle-stepped with one cycle equal to the flit
// serialization time (flit_bits / link_bw), so every link moves at most one
// flit per cycle and all ns-valued delays are rounded up to whole cycles.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dsn/common/error.hpp"

namespace dsn {

/// Switching mode: virtual cut-through forwards a packet only when the
/// downstream buffer can absorb it entirely; wormhole forwards as soon as one
/// flit of space exists, letting blocked packets stall stretched across
/// switches (which is why its deadlock analysis needs indirect dependencies).
enum class SwitchingMode : std::uint8_t { kVirtualCutThrough, kWormhole };

struct SimConfig {
  SwitchingMode switching = SwitchingMode::kVirtualCutThrough;
  std::uint32_t vcs = 4;
  /// Input buffer depth per (port, VC) in flits. Virtual cut-through requires
  /// at least one full packet; VC allocation demands packet_flits credits.
  std::uint32_t buffer_flits = 33;
  std::uint32_t packet_flits = 33;  ///< incl. 1 header flit
  double flit_bits = 256.0;
  double link_bw_gbps = 96.0;
  double router_delay_ns = 100.0;
  double link_delay_ns = 20.0;  ///< flit injection delay + link delay
  std::uint32_t hosts_per_switch = 4;

  std::uint64_t warmup_cycles = 20'000;
  std::uint64_t measure_cycles = 60'000;
  std::uint64_t drain_cycles = 120'000;  ///< cap on the post-measurement drain

  /// Offered load per host in Gbit/s (converted to flits/cycle internally).
  double offered_gbps_per_host = 4.0;
  std::uint64_t seed = 1;

  /// Record one PacketTrace per delivered measured packet (up to
  /// trace_limit), retrievable via Simulator::packet_traces().
  bool record_packet_traces = false;
  std::size_t trace_limit = 100'000;

  // --- live fault injection & recovery (see dsn/sim/fault.hpp) ------------
  /// Bucket width of the degradation curve: delivered/dropped/retried counts
  /// are aggregated into SimResult::epochs per epoch_cycles-cycle bucket
  /// (0 disables the curve).
  std::uint64_t epoch_cycles = 0;
  /// Rebuild the policy's routing state (up*/down* re-derivation, masked
  /// tables) after every topology-changing fault event.
  bool rebuild_routing_on_fault = true;
  /// Requeue packets damaged by a fault at their source NIC with bounded
  /// exponential backoff instead of dropping them outright.
  bool retry_on_fault = true;
  std::uint32_t max_retries = 8;
  /// First-retry delay; the k-th retry of a packet waits
  /// min(retry_backoff_cycles << (k-1), retry_backoff_cap_cycles).
  std::uint64_t retry_backoff_cycles = 64;
  std::uint64_t retry_backoff_cap_cycles = 4096;
  /// Drop packets older than this many cycles at their next routing attempt
  /// (0 disables). Livelock guard for destinations inside a dead region.
  std::uint64_t packet_ttl_cycles = 0;

  // --- simulator core selection (see dsn/sim/simulator.hpp) ---------------
  /// Run the original full-scan core instead of the active-set core. The two
  /// cores produce byte-identical SimResult for any sim_threads value; the
  /// legacy core exists as the equivalence baseline (ctest -L determinism)
  /// and is exposed as --legacy-core where simulators are driven from CLIs.
  bool legacy_core = false;
  /// Shard count for the active-set core (1 = serial inline execution, the
  /// default; 0 = use the global ThreadPool's worker count). Results are
  /// byte-identical for every value: cross-shard flit handoff goes through
  /// per-shard mailboxes drained in shard order at the epoch barrier.
  std::uint32_t sim_threads = 1;
  /// The NIC-queue TTL sweep (packet_ttl_cycles != 0 only) runs on cycles
  /// divisible by this stride instead of every cycle; head-of-buffer TTL
  /// checks remain per-cycle. TTL deadlines are coarse — expiring a queued
  /// packet up to stride-1 cycles late only delays its drop accounting.
  /// Both cores apply the same stride, so equivalence is unaffected.
  std::uint64_t ttl_sweep_stride = 64;

  /// Nanoseconds per simulator cycle (= flit serialization time).
  double cycle_ns() const { return flit_bits / link_bw_gbps; }
  std::uint64_t router_delay_cycles() const {
    return static_cast<std::uint64_t>((router_delay_ns + cycle_ns() - 1e-9) / cycle_ns());
  }
  std::uint64_t link_delay_cycles() const {
    return static_cast<std::uint64_t>((link_delay_ns + cycle_ns() - 1e-9) / cycle_ns());
  }
  /// Offered load in flits per cycle per host (1.0 saturates a link).
  double injection_rate_flits_per_cycle() const {
    return offered_gbps_per_host / link_bw_gbps;
  }
  /// Bernoulli packet-generation probability per host per cycle.
  double packet_rate_per_cycle() const {
    return injection_rate_flits_per_cycle() / static_cast<double>(packet_flits);
  }
  /// Convert a measured flits/cycle/host rate back to Gbit/s per host.
  double flits_per_cycle_to_gbps(double rate) const { return rate * link_bw_gbps; }

  void validate() const {
    DSN_REQUIRE(vcs >= 1, "need at least one virtual channel");
    DSN_REQUIRE(packet_flits >= 1, "packets need at least one flit");
    DSN_REQUIRE(buffer_flits >= 1, "buffers need at least one flit");
    DSN_REQUIRE(switching == SwitchingMode::kWormhole || buffer_flits >= packet_flits,
                "virtual cut-through needs buffers holding a whole packet");
    DSN_REQUIRE(hosts_per_switch >= 1, "need at least one host per switch");
    DSN_REQUIRE(link_bw_gbps > 0 && flit_bits > 0, "bandwidth and flit size must be positive");
    DSN_REQUIRE(offered_gbps_per_host >= 0, "offered load must be non-negative");
    DSN_REQUIRE(retry_backoff_cycles >= 1, "retry backoff must be positive");
    DSN_REQUIRE(retry_backoff_cap_cycles >= retry_backoff_cycles,
                "retry backoff cap must be >= the base backoff");
    DSN_REQUIRE(ttl_sweep_stride >= 1, "TTL sweep stride must be positive");
  }
};

}  // namespace dsn
