// Per-hop routing decisions for the simulator, decoupled from the engine.
//
// AdaptiveUpDownPolicy implements the paper's §VII-A scheme [24]: fully
// adaptive minimal routing on VCs 1..V-1 with up*/down* shortest legal paths
// as the escape layer on VC 0 (Duato's methodology for virtual cut-through).
//
// DsnCustomPolicy implements the paper's deadlock-free custom routing
// (Theorem 3, DSN-V realization): the Fig. 2 three-phase algorithm with the
// phase carried in the packet's routing state and mapped onto four VC
// classes — PRE-WORK on the Up class, MAIN on the main class, FINISH on the
// finish class with Extra channels near node 0. Phases only ever advance
// (PRE-WORK -> MAIN -> FINISH), which is what makes the channel dependency
// graph acyclic.
//
// Each policy threads a small opaque per-packet `state` byte through the
// engine: the adaptive policy stores its escape down-only bit, the custom
// policy stores the current phase.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dsn/routing/sim_routing.hpp"
#include "dsn/topology/dsn.hpp"

namespace dsn {

class ThreadPool;

/// One admissible (next switch, virtual channel) pair, in preference order.
struct RouteCandidate {
  NodeId next;
  std::uint32_t vc;
  bool escape;  ///< true when this candidate uses the escape layer
};

/// Snapshot of the simulator's live fault state handed to
/// SimRoutingPolicy::on_fault_update (masks indexed by LinkId / NodeId;
/// spans stay valid only for the duration of the call).
struct FaultView {
  const Topology* topo = nullptr;
  std::span<const std::uint8_t> link_alive;
  std::span<const std::uint8_t> switch_alive;

  bool all_alive() const {
    for (const std::uint8_t a : link_alive) {
      if (!a) return false;
    }
    for (const std::uint8_t a : switch_alive) {
      if (!a) return false;
    }
    return true;
  }
};

class SimRoutingPolicy {
 public:
  virtual ~SimRoutingPolicy() = default;
  virtual const char* name() const = 0;

  /// Routing state of a freshly injected packet.
  virtual std::uint8_t initial_state() const { return 0; }

  /// Fill `out` with admissible candidates for a packet at switch u headed to
  /// switch t, given the packet's routing state.
  virtual void candidates(NodeId u, NodeId t, std::uint8_t state,
                          std::vector<RouteCandidate>& out) const = 0;

  /// New routing state after taking hop u -> v via `chosen`.
  virtual std::uint8_t next_state(NodeId u, NodeId v, const RouteCandidate& chosen,
                                  std::uint8_t state) const = 0;

  /// Called by the simulator after every topology-changing fault event (when
  /// SimConfig::rebuild_routing_on_fault is set): rebuild whatever routing
  /// state the policy derives from the topology. Default: no recovery.
  virtual void on_fault_update(const FaultView& view) { (void)view; }

  /// When true the simulator resets every live packet's routing state to
  /// initial_state() after a rebuild — needed when the state references the
  /// previous topology (e.g. the up*/down* down-only bit of an orientation
  /// that no longer exists).
  virtual bool reset_state_on_fault() const { return false; }

  /// Human-readable name of a routing-state value, or nullptr when the state
  /// has no phase semantics. The simulator uses it to label per-phase hop
  /// counters (dsn.sim.hops.<phase>) for the paper's PRE-WORK/MAIN/FINISH
  /// accounting.
  virtual const char* phase_name(std::uint8_t state) const {
    (void)state;
    return nullptr;
  }
};

class AdaptiveUpDownPolicy final : public SimRoutingPolicy {
 public:
  /// vcs must be >= 2 (one escape VC + at least one adaptive VC).
  /// `rebuild_pool` overrides the global thread pool for degraded-table
  /// rebuilds on fault events (tables are identical for any worker count).
  AdaptiveUpDownPolicy(const SimRouting& routing, std::uint32_t vcs,
                       ThreadPool* rebuild_pool = nullptr);

  const char* name() const override { return "adaptive-updown"; }
  void candidates(NodeId u, NodeId t, std::uint8_t state,
                  std::vector<RouteCandidate>& out) const override;
  std::uint8_t next_state(NodeId u, NodeId v, const RouteCandidate& chosen,
                          std::uint8_t state) const override;
  /// Full recovery: re-derives APSP + up*/down* tables over the alive
  /// subgraph (root = lowest alive switch); drops back to the pristine
  /// tables once everything heals.
  void on_fault_update(const FaultView& view) override;
  /// The down-only bit refers to the orientation the packet was routed
  /// under; stale bits must not constrain routes on the new orientation.
  bool reset_state_on_fault() const override { return true; }

 private:
  const SimRouting& table() const { return degraded_ ? *degraded_ : *routing_; }

  const SimRouting* routing_;
  std::uint32_t vcs_;
  ThreadPool* rebuild_pool_;
  std::unique_ptr<SimRouting> degraded_;
};

/// Deterministic up*/down*-only routing on all VCs (the routing the paper
/// compares its custom routing against in the traffic-balance remark).
class UpDownOnlyPolicy final : public SimRoutingPolicy {
 public:
  UpDownOnlyPolicy(const SimRouting& routing, std::uint32_t vcs,
                   ThreadPool* rebuild_pool = nullptr);

  const char* name() const override { return "updown-only"; }
  void candidates(NodeId u, NodeId t, std::uint8_t state,
                  std::vector<RouteCandidate>& out) const override;
  std::uint8_t next_state(NodeId u, NodeId v, const RouteCandidate& chosen,
                          std::uint8_t state) const override;
  void on_fault_update(const FaultView& view) override;
  bool reset_state_on_fault() const override { return true; }

 private:
  const SimRouting& table() const { return degraded_ ? *degraded_ : *routing_; }

  const SimRouting* routing_;
  std::uint32_t vcs_;
  ThreadPool* rebuild_pool_;
  std::unique_ptr<SimRouting> degraded_;
};

/// The DSN custom routing with per-packet phase state (DSN-V): requires
/// exactly 4 VCs. Uses the overshoot-avoiding variant of §V-D in MAIN so the
/// FINISH phase only ever walks forward or backward a short distance.
class DsnCustomPolicy final : public SimRoutingPolicy {
 public:
  /// vcs must be a multiple of 4; with vcs = 4k each channel class owns k
  /// virtual channels (class c uses VCs [c*k, (c+1)*k)), preserving the
  /// Theorem 3 class separation while relieving per-class HOL blocking.
  explicit DsnCustomPolicy(const Dsn& dsn, std::uint32_t vcs = 4);

  const char* name() const override { return "dsn-custom"; }
  std::uint8_t initial_state() const override { return kPhasePreWork; }
  void candidates(NodeId u, NodeId t, std::uint8_t state,
                  std::vector<RouteCandidate>& out) const override;
  std::uint8_t next_state(NodeId u, NodeId v, const RouteCandidate& chosen,
                          std::uint8_t state) const override;
  /// Degraded mode: records the alive masks; candidates() then dodges dead
  /// hops with ring fallbacks (a dead shortcut is walked around on ring
  /// links in MAIN; a dead ring hop flips the walk direction in FINISH; a
  /// blocked PRE-WORK descent skips ahead to MAIN). Fallbacks never move a
  /// phase backward, preserving the Theorem 3 class ordering, but a
  /// multi-fault pattern can strand a destination — the simulator's TTL
  /// guard then accounts those packets as dropped.
  void on_fault_update(const FaultView& view) override;
  const char* phase_name(std::uint8_t state) const override {
    switch (state) {
      case kPhasePreWork: return "prework";
      case kPhaseMain: return "main";
      case kPhaseFinish: return "finish";
      default: return nullptr;
    }
  }

  /// Phase values stored in the packet routing state.
  static constexpr std::uint8_t kPhasePreWork = 0;
  static constexpr std::uint8_t kPhaseMain = 1;
  static constexpr std::uint8_t kPhaseFinish = 2;

  /// VC classes (base VC = class index * vcs_per_class).
  static constexpr std::uint32_t kVcExtra = 0;
  static constexpr std::uint32_t kVcUp = 1;
  static constexpr std::uint32_t kVcMain = 2;
  static constexpr std::uint32_t kVcFinish = 3;

  /// Deterministic next hop, VC class and successor phase for a packet at u
  /// headed to t in `phase`. The candidate's vc field holds the class.
  struct Decision {
    RouteCandidate candidate;
    std::uint8_t next_phase;
  };
  Decision decide(NodeId u, NodeId t, std::uint8_t phase) const;

  std::uint32_t vcs_per_class() const { return vcs_per_class_; }

 private:
  std::uint32_t level_for_distance(std::uint64_t d) const;
  RouteCandidate finish_hop(NodeId u, NodeId t) const;
  /// Any alive physical link u -> v (degraded mode only).
  bool hop_alive(NodeId u, NodeId v) const;

  const Dsn* dsn_;
  std::uint32_t vcs_per_class_;
  // Live fault state (empty until the first on_fault_update).
  const Topology* fault_topo_ = nullptr;
  std::vector<std::uint8_t> link_alive_;
  std::vector<std::uint8_t> switch_alive_;
  bool degraded_ = false;
};

/// Deliberately deadlock-PRONE policy for negative-control experiments: on a
/// ring topology, always route clockwise on a single VC. Its channel
/// dependency graph is the full directed ring cycle, so under load the
/// network wedges — which the simulator's watchdog must detect. Never use
/// outside tests/demos.
class RingClockwisePolicy final : public SimRoutingPolicy {
 public:
  explicit RingClockwisePolicy(const Topology& ring);

  const char* name() const override { return "ring-clockwise-unsafe"; }
  void candidates(NodeId u, NodeId t, std::uint8_t state,
                  std::vector<RouteCandidate>& out) const override;
  std::uint8_t next_state(NodeId u, NodeId v, const RouteCandidate& chosen,
                          std::uint8_t state) const override;

 private:
  const Topology* topo_;
};

/// Deterministic dimension-order routing on a torus with dateline virtual
/// channels: traffic in dimension d uses VCs {2d, 2d+1}, starting on the even
/// VC and switching to the odd one after crossing the wraparound link of that
/// dimension — the classic deadlock-free DOR scheme. Needs vcs >= 2 * rank.
/// Used by the torus-routing ablation (the paper runs the topology-agnostic
/// adaptive scheme on the torus; this shows what a native router changes).
class TorusDorPolicy final : public SimRoutingPolicy {
 public:
  TorusDorPolicy(const Topology& torus, std::uint32_t vcs);

  const char* name() const override { return "torus-dor"; }
  void candidates(NodeId u, NodeId t, std::uint8_t state,
                  std::vector<RouteCandidate>& out) const override;
  std::uint8_t next_state(NodeId u, NodeId v, const RouteCandidate& chosen,
                          std::uint8_t state) const override;

 private:
  /// Coordinate of node v in dimension d.
  std::uint32_t coord(NodeId v, std::size_t d) const;
  /// First dimension in which u and t differ, or rank() if u == t.
  std::size_t active_dimension(NodeId u, NodeId t) const;

  const Topology* topo_;
};

}  // namespace dsn
