// dsn-slint: deterministic — see demand.hpp.
#include "dsn/sim/demand.hpp"

#include <algorithm>

#include "dsn/common/error.hpp"

namespace dsn {

BernoulliDemand::BernoulliDemand(const TrafficPattern& pattern, double packet_rate,
                                 std::uint32_t packet_flits)
    : pattern_(&pattern), packet_rate_(packet_rate), packet_flits_(packet_flits) {
  DSN_REQUIRE(packet_flits > 0, "packet size must be positive");
}

void BernoulliDemand::emit(HostId src, std::uint64_t /*cycle*/, Rng& rng,
                           std::vector<Demand>& out) const {
  if (!rng.bernoulli(packet_rate_)) return;
  out.push_back({src, pattern_->dest(src, rng), packet_flits_});
}

std::vector<Demand> pattern_demands(const TrafficPattern& pattern,
                                    std::uint32_t num_hosts,
                                    std::uint32_t packets_per_host,
                                    std::uint32_t flits_per_packet,
                                    std::uint64_t seed) {
  DSN_REQUIRE(num_hosts > 0, "pattern demands need at least one host");
  DSN_REQUIRE(flits_per_packet > 0, "packet size must be positive");
  std::vector<Demand> demands;
  demands.reserve(static_cast<std::size_t>(num_hosts) * packets_per_host);
  SplitMix64 sm(seed);
  for (HostId h = 0; h < num_hosts; ++h) {
    Rng rng(sm.next());
    for (std::uint32_t k = 0; k < packets_per_host; ++k) {
      demands.push_back({h, pattern.dest(h, rng), flits_per_packet});
    }
  }
  return demands;
}

std::vector<TraceEntry> to_injection_trace(const std::vector<Demand>& demands,
                                           std::uint32_t packet_flits) {
  DSN_REQUIRE(packet_flits > 0, "packet size must be positive");
  HostId max_host = 0;
  for (const Demand& d : demands) max_host = std::max(max_host, d.src);
  // Next free injection slot (in packets) per source host.
  std::vector<std::uint64_t> next_slot(demands.empty() ? 0 : max_host + 1, 0);

  std::vector<TraceEntry> trace;
  for (const Demand& d : demands) {
    const std::uint64_t packets = (d.flits + packet_flits - 1) / packet_flits;
    for (std::uint64_t p = 0; p < packets; ++p) {
      trace.push_back({next_slot[d.src]++ * packet_flits, d.src, d.dst});
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceEntry& a, const TraceEntry& b) { return a.cycle < b.cycle; });
  return trace;
}

std::uint64_t total_flits(const std::vector<Demand>& demands) {
  std::uint64_t total = 0;
  for (const Demand& d : demands) total += d.flits;
  return total;
}

}  // namespace dsn
