// Synthetic traffic patterns (§VII-A): uniform random, bit reversal, and
// "neighboring" (90% of packets to 2-D-array neighbors), plus the classic
// transpose, shuffle and hotspot patterns for additional experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dsn/common/rng.hpp"
#include "dsn/common/types.hpp"

namespace dsn {

/// Destination chooser. Implementations must be stateless apart from the
/// caller-provided RNG so simulations stay reproducible.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual const char* name() const = 0;
  /// Pick a destination host for a packet from `src` (may equal src for
  /// patterns like bit reversal on palindromic addresses).
  virtual HostId dest(HostId src, Rng& rng) const = 0;
};

/// Uniformly random destination != src.
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(std::uint32_t num_hosts);
  const char* name() const override { return "uniform"; }
  HostId dest(HostId src, Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
};

/// Destination = bit-reversed source over ceil(log2(num_hosts)) bits.
/// Requires num_hosts to be a power of two.
class BitReversalTraffic final : public TrafficPattern {
 public:
  explicit BitReversalTraffic(std::uint32_t num_hosts);
  const char* name() const override { return "bit-reversal"; }
  HostId dest(HostId src, Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
  std::uint32_t bits_;
};

/// 90% of packets go to a uniformly chosen existing 4-neighbor in a 2-D array
/// layout of the hosts (no wraparound); the rest are uniform random (§VII-A).
class NeighboringTraffic final : public TrafficPattern {
 public:
  NeighboringTraffic(std::uint32_t num_hosts, double local_fraction = 0.9);
  const char* name() const override { return "neighboring"; }
  HostId dest(HostId src, Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
  std::uint32_t side_;
  double local_fraction_;
};

/// Destination = matrix transpose of the source index in a square array.
class TransposeTraffic final : public TrafficPattern {
 public:
  explicit TransposeTraffic(std::uint32_t num_hosts);
  const char* name() const override { return "transpose"; }
  HostId dest(HostId src, Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
  std::uint32_t side_;
};

/// Destination = source rotated left by one bit (perfect shuffle).
class ShuffleTraffic final : public TrafficPattern {
 public:
  explicit ShuffleTraffic(std::uint32_t num_hosts);
  const char* name() const override { return "shuffle"; }
  HostId dest(HostId src, Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
  std::uint32_t bits_;
};

/// A fraction of packets target one hot host; the rest are uniform.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(std::uint32_t num_hosts, HostId hot, double hot_fraction);
  const char* name() const override { return "hotspot"; }
  HostId dest(HostId src, Rng& rng) const override;

 private:
  std::uint32_t num_hosts_;
  HostId hot_;
  double hot_fraction_;
};

/// Factory by name: "uniform", "bit-reversal", "neighboring", "transpose",
/// "shuffle", "hotspot".
std::unique_ptr<TrafficPattern> make_traffic(const std::string& name,
                                             std::uint32_t num_hosts);

}  // namespace dsn
