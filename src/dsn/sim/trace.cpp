#include "dsn/sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "dsn/common/error.hpp"

namespace dsn {

std::vector<TraceEntry> parse_injection_trace(std::istream& is) {
  std::vector<TraceEntry> trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    DSN_REQUIRE(static_cast<bool>(ls >> e.cycle >> e.src >> e.dst),
                "malformed trace line " + std::to_string(lineno) + ": " + line);
    trace.push_back(e);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceEntry& a, const TraceEntry& b) { return a.cycle < b.cycle; });
  return trace;
}

std::vector<TraceEntry> parse_injection_trace_text(const std::string& text) {
  std::istringstream is(text);
  return parse_injection_trace(is);
}

std::string format_injection_trace(const std::vector<TraceEntry>& trace) {
  std::ostringstream os;
  os << "# cycle src_host dst_host\n";
  for (const TraceEntry& e : trace) {
    os << e.cycle << " " << e.src << " " << e.dst << "\n";
  }
  return os.str();
}

}  // namespace dsn
