// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "dsn/common/error.hpp"

namespace dsn {

std::vector<TraceEntry> parse_injection_trace(std::istream& is) {
  std::vector<TraceEntry> trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    DSN_REQUIRE(static_cast<bool>(ls >> e.cycle >> e.src >> e.dst),
                "malformed trace line " + std::to_string(lineno) + ": " + line);
    trace.push_back(e);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceEntry& a, const TraceEntry& b) { return a.cycle < b.cycle; });
  return trace;
}

std::vector<TraceEntry> parse_injection_trace_text(const std::string& text) {
  std::istringstream is(text);
  return parse_injection_trace(is);
}

std::string format_injection_trace(const std::vector<TraceEntry>& trace) {
  std::ostringstream os;
  os << "# cycle src_host dst_host\n";
  for (const TraceEntry& e : trace) {
    os << e.cycle << " " << e.src << " " << e.dst << "\n";
  }
  return os.str();
}

namespace {

FaultKind parse_fault_kind(const std::string& word, std::size_t lineno) {
  for (const FaultKind kind :
       {FaultKind::kLinkDown, FaultKind::kLinkUp, FaultKind::kSwitchDown,
        FaultKind::kSwitchUp}) {
    if (word == fault_kind_name(kind)) return kind;
  }
  DSN_REQUIRE(false, "unknown fault kind '" + word + "' on schedule line " +
                         std::to_string(lineno));
  return FaultKind::kLinkDown;  // unreachable
}

}  // namespace

FaultSchedule parse_fault_schedule(std::istream& is) {
  FaultSchedule schedule;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t cycle = 0;
    std::string kind;
    std::uint32_t id = 0;
    DSN_REQUIRE(static_cast<bool>(ls >> cycle >> kind >> id),
                "malformed fault schedule line " + std::to_string(lineno) + ": " + line);
    schedule.add({cycle, parse_fault_kind(kind, lineno), id});
  }
  return schedule;
}

FaultSchedule parse_fault_schedule_text(const std::string& text) {
  std::istringstream is(text);
  return parse_fault_schedule(is);
}

std::string format_fault_schedule(const FaultSchedule& schedule) {
  std::ostringstream os;
  os << "# cycle kind link_or_switch_id\n";
  for (const FaultEvent& e : schedule.events()) {
    os << e.cycle << " " << fault_kind_name(e.kind) << " " << e.id << "\n";
  }
  return os.str();
}

}  // namespace dsn

