// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/sim/fault.hpp"

#include <algorithm>

#include "dsn/common/json.hpp"
#include "dsn/common/rng.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/topology/topology.hpp"

namespace dsn {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kSwitchDown:
      return "switch-down";
    case FaultKind::kSwitchUp:
      return "switch-up";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::add(FaultEvent ev) {
  // Insert before the first later event: keeps the list sorted by cycle with
  // same-cycle events in insertion order (stable).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), ev,
      [](const FaultEvent& a, const FaultEvent& b) { return a.cycle < b.cycle; });
  events_.insert(pos, ev);
  return *this;
}

FaultSchedule& FaultSchedule::link_down(std::uint64_t cycle, LinkId link) {
  return add({cycle, FaultKind::kLinkDown, link});
}

FaultSchedule& FaultSchedule::link_up(std::uint64_t cycle, LinkId link) {
  return add({cycle, FaultKind::kLinkUp, link});
}

FaultSchedule& FaultSchedule::switch_down(std::uint64_t cycle, NodeId node) {
  return add({cycle, FaultKind::kSwitchDown, node});
}

FaultSchedule& FaultSchedule::switch_up(std::uint64_t cycle, NodeId node) {
  return add({cycle, FaultKind::kSwitchUp, node});
}

void FaultSchedule::validate(const Topology& topo) const {
  const Graph& g = topo.graph;
  for (const FaultEvent& ev : events_) {
    const bool link_event =
        ev.kind == FaultKind::kLinkDown || ev.kind == FaultKind::kLinkUp;
    if (link_event) {
      DSN_REQUIRE(ev.id < g.num_links(), "fault schedule link id out of range");
    } else {
      DSN_REQUIRE(ev.id < g.num_nodes(), "fault schedule switch id out of range");
    }
  }
}

FaultSchedule make_link_flap_schedule(const Topology& topo, double down_prob,
                                      std::uint64_t check_interval,
                                      std::uint64_t repair_cycles, std::uint64_t horizon,
                                      std::uint64_t seed,
                                      std::span<const LinkId> candidates) {
  DSN_REQUIRE(down_prob >= 0.0 && down_prob <= 1.0, "down_prob must be in [0, 1]");
  DSN_REQUIRE(check_interval >= 1, "check_interval must be positive");
  std::vector<LinkId> all;
  if (candidates.empty()) {
    all.resize(topo.graph.num_links());
    for (LinkId l = 0; l < all.size(); ++l) all[l] = l;
    candidates = all;
  }
  for (const LinkId l : candidates) {
    DSN_REQUIRE(l < topo.graph.num_links(), "flap candidate link out of range");
  }

  FaultSchedule schedule;
  Rng rng(seed);
  // up_at[i]: cycle at which candidate i is repaired (0 = currently up).
  std::vector<std::uint64_t> up_at(candidates.size(), 0);
  for (std::uint64_t t = check_interval; t < horizon; t += check_interval) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (up_at[i] > t) continue;  // still down, repair already scheduled
      if (!rng.bernoulli(down_prob)) continue;
      schedule.link_down(t, candidates[i]);
      schedule.link_up(t + repair_cycles, candidates[i]);
      up_at[i] = t + repair_cycles;
    }
  }
  return schedule;
}

namespace {

Json fault_record_json(const FaultRecord& r) {
  Json j = Json::object();
  j.set("cycle", r.event.cycle);
  j.set("kind", fault_kind_name(r.event.kind));
  j.set("id", std::uint64_t{r.event.id});
  j.set("flits_dropped", r.flits_dropped);
  j.set("packets_dropped", r.packets_dropped);
  j.set("packets_requeued", r.packets_requeued);
  j.set("rebuilt_routing", r.rebuilt_routing);
  j.set("reconnected", r.reconnected);
  j.set("reconnect_cycles", r.reconnect_cycles);
  return j;
}

Json epoch_json(const EpochStats& e) {
  Json j = Json::object();
  j.set("start_cycle", e.start_cycle);
  j.set("injected", e.injected);
  j.set("delivered", e.delivered);
  j.set("dropped", e.dropped);
  j.set("retried", e.retried);
  return j;
}

}  // namespace

Json to_json(const SimResult& r) {
  Json j = Json::object();
  j.set("offered_gbps_per_host", r.offered_gbps_per_host);
  j.set("accepted_gbps_per_host", r.accepted_gbps_per_host);
  j.set("avg_latency_ns", r.avg_latency_ns);
  j.set("p50_latency_ns", r.p50_latency_ns);
  j.set("p99_latency_ns", r.p99_latency_ns);
  j.set("avg_hops", r.avg_hops);
  j.set("packets_measured", r.packets_measured);
  j.set("packets_delivered", r.packets_delivered);
  j.set("drained", r.drained);
  j.set("deadlock", r.deadlock);
  j.set("cycles_run", r.cycles_run);
  j.set("packets_generated_total", r.packets_generated_total);
  j.set("packets_delivered_total", r.packets_delivered_total);
  j.set("packets_dropped", r.packets_dropped);
  j.set("packets_dropped_ttl", r.packets_dropped_ttl);
  j.set("packets_retried", r.packets_retried);
  j.set("flits_dropped", r.flits_dropped);
  j.set("packets_in_flight_at_end", r.packets_in_flight_at_end);
  j.set("conservation_ok", r.conservation_ok);
  j.set("routing_rebuilds", std::uint64_t{r.routing_rebuilds});
  Json faults = Json::array();
  for (const FaultRecord& rec : r.fault_log) faults.push_back(fault_record_json(rec));
  j.set("fault_log", std::move(faults));
  Json epochs = Json::array();
  for (const EpochStats& e : r.epochs) epochs.push_back(epoch_json(e));
  j.set("epochs", std::move(epochs));
  return j;
}

Json degradation_curve_json(const SimResult& r) {
  Json j = Json::object();
  j.set("packets_generated_total", r.packets_generated_total);
  j.set("packets_delivered_total", r.packets_delivered_total);
  j.set("packets_dropped", r.packets_dropped);
  j.set("packets_retried", r.packets_retried);
  j.set("conservation_ok", r.conservation_ok);
  Json faults = Json::array();
  for (const FaultRecord& rec : r.fault_log) faults.push_back(fault_record_json(rec));
  j.set("faults", std::move(faults));
  Json epochs = Json::array();
  for (const EpochStats& e : r.epochs) epochs.push_back(epoch_json(e));
  j.set("epochs", std::move(epochs));
  return j;
}

}  // namespace dsn
