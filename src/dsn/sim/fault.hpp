// Live fault injection for the flit simulator: a deterministic schedule of
// link down/up and switch halt/revive events applied inside the Simulator's
// event loop, plus the per-event and per-epoch observability records that
// SimResult exposes for degraded-mode analysis.
//
// Determinism contract: a FaultSchedule is a plain sorted event list and the
// Bernoulli flap generator draws from the seeded dsn::Rng, so the same
// (schedule, SimConfig::seed) pair always produces the same simulation —
// byte-identical SimResult — regardless of how many worker threads rebuild
// the routing tables during recovery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsn/common/types.hpp"

namespace dsn {

struct Topology;

enum class FaultKind : std::uint8_t { kLinkDown, kLinkUp, kSwitchDown, kSwitchUp };

/// Stable text name ("link-down", "switch-up", ...), used by the schedule
/// text format and the JSON reports.
const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::kLinkDown;
  std::uint32_t id = 0;  ///< LinkId for link events, NodeId for switch events

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Builder for a deterministic fault timeline. Events are kept sorted by
/// cycle (same-cycle events preserve insertion order), so the simulator can
/// consume them with a single cursor. Redundant events (downing a dead link,
/// reviving a live switch) are legal and ignored at apply time.
class FaultSchedule {
 public:
  FaultSchedule& link_down(std::uint64_t cycle, LinkId link);
  FaultSchedule& link_up(std::uint64_t cycle, LinkId link);
  FaultSchedule& switch_down(std::uint64_t cycle, NodeId node);
  FaultSchedule& switch_up(std::uint64_t cycle, NodeId node);
  FaultSchedule& add(FaultEvent ev);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  std::span<const FaultEvent> events() const { return events_; }

  /// Throws unless every event id is a valid link/switch of the topology.
  void validate(const Topology& topo) const;

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by cycle, stable
};

/// Seeded Bernoulli link-flap model: every `check_interval` cycles each live
/// candidate link goes down with probability `down_prob` and comes back
/// `repair_cycles` later (repairs past `horizon` are still scheduled so no
/// link stays down forever by accident). With an empty `candidates` span all
/// links of the topology flap. Same arguments => same schedule.
FaultSchedule make_link_flap_schedule(const Topology& topo, double down_prob,
                                      std::uint64_t check_interval,
                                      std::uint64_t repair_cycles, std::uint64_t horizon,
                                      std::uint64_t seed,
                                      std::span<const LinkId> candidates = {});

/// Outcome of one applied fault event (SimResult::fault_log entry).
struct FaultRecord {
  FaultEvent event;
  std::uint64_t flits_dropped = 0;     ///< flits purged from buffers and wires
  std::uint64_t packets_dropped = 0;   ///< damaged packets that exhausted retries
  std::uint64_t packets_requeued = 0;  ///< damaged packets requeued at their NIC
  bool rebuilt_routing = false;
  bool reconnected = false;  ///< some packet was delivered after this event
  std::uint64_t reconnect_cycles = 0;  ///< event -> first subsequent delivery

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// One bucket of the degradation curve (SimResult::epochs entry; bucket
/// width is SimConfig::epoch_cycles).
struct EpochStats {
  std::uint64_t start_cycle = 0;
  std::uint64_t injected = 0;   ///< packets generated in the epoch (all phases)
  std::uint64_t delivered = 0;  ///< tails ejected in the epoch
  std::uint64_t dropped = 0;    ///< drops accounted in the epoch (fault + TTL)
  std::uint64_t retried = 0;    ///< requeue events in the epoch

  friend bool operator==(const EpochStats&, const EpochStats&) = default;
};

}  // namespace dsn
