// dsn-slint: deterministic — the active-set core must replay byte-identically
// against the legacy full-scan core for any shard count; every work list is
// kept in (or restored to) ascending component order before processing and
// every cross-shard merge runs in shard order at an epoch barrier.
//
// Active-set simulator engine. The legacy core pays O(switches × ports × vcs)
// per cycle regardless of load; this engine touches only components with
// work:
//
//   - a wakeup calendar per shard (ring of per-cycle buckets + a far heap)
//     holds exact-time events: wire arrivals, credit returns, head-ready
//     timestamps, NIC retry wakeups;
//   - per-stage active sets: input VCs awaiting VC allocation, switches with
//     allocated flits to move, NICs with queued packets;
//   - the network is sharded by contiguous switch ranges across the global
//     dsn::ThreadPool with three parallel phases per cycle (deliver+allocate,
//     switch allocation, NIC streaming) separated by serial merge sections.
//
// Determinism argument (the equivalence suite asserts all of this):
//   - every wire queue and every credit queue has exactly one writer (the
//     single upstream (switch, port) or the port's own NIC) and switch
//     allocation grants at most one flit per output port per cycle, so at
//     most one push per queue per cycle exists and cross-shard pushes can be
//     mailboxed and drained at the barrier in shard order without changing
//     any queue's contents;
//   - work lists are processed in ascending global component id — exactly
//     the legacy scan order — so arbitration (output-VC claiming, round-robin
//     pointers, RNG draws) sees identical state in identical order;
//   - packet pool slots and ids are assigned in the serial injection section
//     in host order, and per-shard frees/latencies/traces/stat deltas are
//     merged in shard order, which equals the legacy per-cycle append order
//     because shards cover ascending switch ranges.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "dsn/common/epoch.hpp"
#include "dsn/common/thread_pool.hpp"
#include "dsn/sim/sim_metrics.hpp"
#include "dsn/sim/simulator.hpp"
#include "dsn/sim/switch_kernel.hpp"

namespace dsn {

#if DSN_OBS
using sim_detail::SimMetrics;
#endif  // DSN_OBS

namespace {

// Calendar event encoding: 4-bit type tag in the top bits, component id in
// the payload. Ordering between event types within a cycle is fixed by the
// processing passes (wire/credit, then head-ready, then NIC wake), never by
// the encoded value.
constexpr std::uint64_t kEvWire = 0;    ///< payload: global wire (input port) id
constexpr std::uint64_t kEvCredit = 1;  ///< payload: global (out port, vc) id
constexpr std::uint64_t kEvHead = 2;    ///< payload: global input-VC id
constexpr std::uint64_t kEvNic = 3;     ///< payload: host id

constexpr std::uint64_t kEvShift = 60;
constexpr std::uint64_t kEvPayloadMask = (std::uint64_t{1} << kEvShift) - 1;

inline std::uint64_t enc_event(std::uint64_t type, std::uint64_t payload) {
  return (type << kEvShift) | payload;
}

inline std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

class ActiveCore {
 public:
  explicit ActiveCore(Simulator& sim) : S(sim) {}

  SimResult run();

 private:
  using Arrival = Simulator::Arrival;
  using CreditReturn = Simulator::CreditReturn;
  using InputVc = Simulator::InputVc;
  using SwitchState = Simulator::SwitchState;
  using NicState = Simulator::NicState;

  /// Exact-time wakeup calendar: a power-of-two ring of per-cycle event
  /// buckets for near events plus a min-heap for events beyond the horizon.
  /// Events are lazy: processing re-checks the component state (queue fronts,
  /// ready times), so stale registrations left behind by purges are no-ops
  /// and re-registration is always safe.
  struct Calendar {
    std::vector<std::vector<std::uint64_t>> buckets;
    std::uint64_t mask = 0;
    std::priority_queue<std::pair<std::uint64_t, std::uint64_t>,
                        std::vector<std::pair<std::uint64_t, std::uint64_t>>,
                        std::greater<std::pair<std::uint64_t, std::uint64_t>>>
        far;

    void init(std::uint64_t horizon_pow2) {
      buckets.assign(horizon_pow2, {});
      mask = horizon_pow2 - 1;
    }
    /// Schedule `ev` at absolute cycle `due` (caller guarantees the bucket
    /// for `due` has not been drained yet this cycle, i.e. due >= now except
    /// for same-cycle head-ready events appended mid-drain).
    void schedule(std::uint64_t due, std::uint64_t now_cycle, std::uint64_t ev) {
      if (due - now_cycle >= buckets.size()) {
        far.emplace(due, ev);
      } else {
        buckets[due & mask].push_back(ev);
      }
    }
  };

  struct WireMail {
    std::uint32_t wire_gid;
    Arrival a;
  };
  struct CreditMail {
    std::uint32_t credit_gid;
    CreditReturn c;
  };

  struct Shard {
    Calendar cal;
    /// Input VCs awaiting VC allocation (head ready, not yet granted).
    /// Sorted ascending before processing; blocked entries stay listed so
    /// they are re-arbitrated every cycle exactly like the legacy scan.
    std::vector<std::uint32_t> alloc_pending;
    bool alloc_dirty = false;
    /// Switches with at least one active input VC holding buffered flits.
    std::vector<std::uint32_t> sa_list;
    bool sa_dirty = false;
    /// NICs with streaming, queued, or retry work.
    std::vector<std::uint32_t> nic_list;
    /// Cross-shard pushes, drained at the post-SA barrier in shard order.
    std::vector<std::vector<WireMail>> wire_out;
    std::vector<std::vector<CreditMail>> credit_out;
    Simulator::SaScratch scratch;
    std::vector<RouteCandidate> cand_scratch;
    std::vector<PacketSlot> freed;
    std::vector<PacketSlot> ttl_out;
    std::vector<std::pair<HostId, HostId>> draws;
    std::vector<std::uint32_t> latencies;
    std::vector<PacketTrace> traces;
    // Per-cycle stat deltas, folded into the simulator totals in shard order.
    std::uint64_t d_ejected = 0;
    std::uint64_t d_meas_delivered = 0;
    std::uint64_t d_meas_hops = 0;
    std::uint64_t d_delivered = 0;
    std::uint64_t d_epoch_delivered = 0;
    std::uint64_t d_inflight_dec = 0;
    bool d_progress = false;
    bool d_delivered_any = false;
    // Per-shard instrumentation counts (folded once per cycle, serially).
    std::uint64_t c_events = 0;
    std::uint64_t c_alloc_checks = 0;
    std::uint64_t c_sa_visits = 0;
  };

  /// Switch-allocation sink for one shard: same-shard pushes go straight to
  /// the target queue (plus a calendar registration), cross-shard pushes are
  /// mailboxed; accounting goes to the shard delta.
  struct ShardSink {
    ActiveCore* C;
    Shard* sh;
    std::size_t s;

    void push_wire(NodeId down_sw, std::uint32_t dport, const Arrival& a) {
      const std::uint32_t gid = C->wire_base_[down_sw] + dport;
      const std::size_t dest = C->shard_of_switch_[down_sw];
      if (dest == s) {
        C->S.switches_[down_sw].wire[dport].push_back(a);
        sh->cal.schedule(std::max(a.cycle, C->now_ + 1), C->now_,
                         enc_event(kEvWire, gid));
      } else {
        sh->wire_out[dest].push_back({gid, a});
      }
    }
    void push_credit(NodeId up_sw, std::uint32_t idx, const CreditReturn& c) {
      const std::uint32_t gid = C->ivc_base_[up_sw] + idx;
      const std::size_t dest = C->shard_of_switch_[up_sw];
      if (dest == s) {
        C->S.switches_[up_sw].credits[idx].push_back(c);
        sh->cal.schedule(std::max(c.cycle, C->now_ + 1), C->now_,
                         enc_event(kEvCredit, gid));
      } else {
        sh->credit_out[dest].push_back({gid, c});
      }
    }
    void add_ejected_flits(std::uint32_t flits) { sh->d_ejected += flits; }
    void on_measured_delivery(Packet& pkt, std::uint64_t eject) {
      ++sh->d_meas_delivered;
      sh->d_meas_hops += pkt.hops;
      DSN_OBS_OBSERVE(SimMetrics::get().latency_cycles, eject - pkt.gen_cycle);
      sh->latencies.push_back(static_cast<std::uint32_t>(eject - pkt.gen_cycle));
      // Over-approximate the global trace cap with the pre-cycle global size
      // (stable during the parallel phase); the serial merge enforces the
      // exact cut in shard order — identical to the legacy fill order.
      if (C->S.config_.record_packet_traces &&
          C->S.traces_.size() + sh->traces.size() < C->S.config_.trace_limit) {
        sh->traces.push_back({pkt.id, pkt.src_host, pkt.dst_host, pkt.gen_cycle,
                              pkt.inject_cycle, eject, pkt.hops, pkt.retries});
      }
    }
    void on_delivery(std::uint64_t, std::uint64_t) {
      ++sh->d_delivered;
      ++sh->d_epoch_delivered;
      sh->d_delivered_any = true;
    }
    void release_packet(PacketSlot slot) {
      ++sh->d_inflight_dec;
      sh->freed.push_back(slot);
    }
    void after_grant(NodeId u, std::uint32_t idx, bool went_idle) {
      InputVc& ivc = C->S.switches_[u].in[idx];
      // The granted VC was listed active (active + nonempty was a grant
      // precondition); recompute its membership after the pop.
      if (went_idle || ivc.buffer.empty()) C->sa_remove(u, idx);
      // Tail departure exposes the next packet's head (if buffered): re-arm
      // its allocation wakeup from the recorded ready time.
      if (went_idle && !ivc.buffer.empty() && ivc.buffer.front().head) {
        DSN_ASSERT(!ivc.head_ready.empty(), "queued head must have a ready time");
        const std::uint32_t gid = C->ivc_base_[u] + idx;
        sh->cal.schedule(std::max(ivc.head_ready.front(), C->now_ + 1), C->now_,
                         enc_event(kEvHead, gid));
      }
    }
    void on_progress(std::uint64_t) { sh->d_progress = true; }
  };

  void build();
  void rebuild_active_sets();
  void phase_deliver_allocate(std::size_t s);
  void phase_switch_allocation(std::size_t s);
  void phase_nic_stream(std::size_t s);
  void serial_inject();
  void serial_ttl_purge();
  void serial_merge();

  void deliver_wire(Shard& sh, std::uint32_t wire_gid);
  void apply_credit(std::uint32_t credit_gid);
  void consider_alloc_listing(std::uint32_t ivc_gid);

  void list_alloc(std::uint32_t ivc_gid) {
    if (alloc_listed_[ivc_gid]) return;
    alloc_listed_[ivc_gid] = 1;
    Shard& sh = shards_[shard_of_switch_[ivc_switch_[ivc_gid]]];
    sh.alloc_pending.push_back(ivc_gid);
    sh.alloc_dirty = true;
  }
  /// List input VC `local` of switch `u` as active (state kActive with a
  /// nonempty buffer) for switch allocation, listing the switch itself on
  /// first membership. The per-switch lists are unordered sets — the
  /// sa_switch_active kernel re-sorts by round-robin key, so insertion and
  /// removal order never reach arbitration.
  void sa_add(NodeId u, std::uint32_t local) {
    const std::uint32_t gid = ivc_base_[u] + local;
    if (sa_member_[gid]) return;
    sa_member_[gid] = 1;
    sa_active_[u].push_back(local);
    if (sa_listed_[u]) return;
    sa_listed_[u] = 1;
    Shard& sh = shards_[shard_of_switch_[u]];
    sh.sa_list.push_back(u);
    sh.sa_dirty = true;
  }
  void sa_remove(NodeId u, std::uint32_t local) {
    const std::uint32_t gid = ivc_base_[u] + local;
    if (!sa_member_[gid]) return;
    sa_member_[gid] = 0;
    auto& v = sa_active_[u];
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == local) {  // swap-pop: set semantics, order irrelevant
        v[i] = v.back();
        v.pop_back();
        break;
      }
    }
  }
  void list_nic(HostId h) {
    if (nic_listed_[h]) return;
    nic_listed_[h] = 1;
    shards_[shard_of_switch_[h / S.config_.hosts_per_switch]].nic_list.push_back(h);
  }

  Simulator& S;

  std::size_t nshards_ = 1;
  std::vector<std::uint32_t> shard_begin_;      ///< switch range per shard
  std::vector<std::uint32_t> shard_of_switch_;  ///< switch -> shard
  std::vector<std::uint32_t> ivc_base_;   ///< switch -> first global IVC id
  std::vector<std::uint32_t> wire_base_;  ///< switch -> first global wire id
  std::vector<std::uint32_t> ivc_switch_;   ///< global IVC id -> switch
  std::vector<std::uint32_t> wire_switch_;  ///< global wire id -> switch

  std::vector<std::uint8_t> alloc_listed_;  ///< per global IVC id
  std::vector<std::uint8_t> sa_listed_;     ///< per switch
  std::vector<std::uint8_t> sa_member_;     ///< per global IVC id: in sa_active_
  /// Per switch: local indices of active+nonempty input VCs — the candidate
  /// set sa_switch_active arbitrates over (unordered; kernel sorts by RR key).
  std::vector<std::vector<std::uint32_t>> sa_active_;
  std::vector<std::uint8_t> nic_listed_;    ///< per host

  std::vector<Shard> shards_;

  std::uint64_t now_ = 0;
  bool in_window_ = false;
  std::uint64_t window_end_ = 0;
};

void ActiveCore::build() {
  const std::uint32_t n = S.num_switches_;
  std::size_t threads = S.config_.sim_threads == 0
                            ? ThreadPool::global().size()
                            : S.config_.sim_threads;
  if (threads < 1) threads = 1;
  nshards_ = std::min<std::size_t>(threads, n);

  shard_begin_.assign(nshards_ + 1, 0);
  const std::uint32_t base = n / static_cast<std::uint32_t>(nshards_);
  const std::uint32_t rem = n % static_cast<std::uint32_t>(nshards_);
  for (std::size_t s = 0; s < nshards_; ++s) {
    shard_begin_[s + 1] = shard_begin_[s] + base + (s < rem ? 1 : 0);
  }
  shard_of_switch_.assign(n, 0);
  for (std::size_t s = 0; s < nshards_; ++s) {
    for (std::uint32_t u = shard_begin_[s]; u < shard_begin_[s + 1]; ++u) {
      shard_of_switch_[u] = static_cast<std::uint32_t>(s);
    }
  }

  ivc_base_.assign(n, 0);
  wire_base_.assign(n, 0);
  std::uint32_t ivc_total = 0;
  std::uint32_t wire_total = 0;
  for (NodeId u = 0; u < n; ++u) {
    ivc_base_[u] = ivc_total;
    wire_base_[u] = wire_total;
    ivc_total += S.switches_[u].num_ports * S.config_.vcs;
    wire_total += S.switches_[u].num_ports;
  }
  ivc_switch_.assign(ivc_total, 0);
  wire_switch_.assign(wire_total, 0);
  for (NodeId u = 0; u < n; ++u) {
    const std::uint32_t ivcs = S.switches_[u].num_ports * S.config_.vcs;
    for (std::uint32_t i = 0; i < ivcs; ++i) ivc_switch_[ivc_base_[u] + i] = u;
    for (std::uint32_t p = 0; p < S.switches_[u].num_ports; ++p) {
      wire_switch_[wire_base_[u] + p] = u;
    }
  }

  alloc_listed_.assign(ivc_total, 0);
  sa_listed_.assign(n, 0);
  sa_member_.assign(ivc_total, 0);
  sa_active_.assign(n, {});
  nic_listed_.assign(S.num_hosts_, 0);

  // Horizon covering every bounded registration delay (wire/credit pushes,
  // head-ready, and the common retry-backoff range); rarer far events (long
  // backoffs under a large cap) spill into the per-shard heap.
  const std::uint64_t span =
      std::max({S.link_delay_, S.router_delay_,
                std::min<std::uint64_t>(S.config_.retry_backoff_cap_cycles,
                                        16384)}) +
      2;
  const std::uint64_t horizon = next_pow2(span);

  shards_.resize(nshards_);
  for (Shard& sh : shards_) {
    sh.cal.init(horizon);
    sh.wire_out.resize(nshards_);
    sh.credit_out.resize(nshards_);
    sh.scratch.input_used.assign(S.max_ports_, 0);
    sh.scratch.used_inputs.reserve(S.max_ports_);
  }

  window_end_ = S.config_.warmup_cycles + S.config_.measure_cycles;
}

void ActiveCore::rebuild_active_sets() {
  for (Shard& sh : shards_) {
    sh.alloc_pending.clear();
    sh.alloc_dirty = false;
    sh.sa_list.clear();
    sh.sa_dirty = false;
    sh.nic_list.clear();
  }
  std::fill(alloc_listed_.begin(), alloc_listed_.end(), 0);
  std::fill(sa_listed_.begin(), sa_listed_.end(), 0);
  std::fill(sa_member_.begin(), sa_member_.end(), 0);
  std::fill(nic_listed_.begin(), nic_listed_.end(), 0);

  for (NodeId u = 0; u < S.num_switches_; ++u) {
    SwitchState& sw = S.switches_[u];
    Shard& sh = shards_[shard_of_switch_[u]];
    sa_active_[u].clear();
    const std::uint32_t ivcs = sw.num_ports * S.config_.vcs;
    for (std::uint32_t i = 0; i < ivcs; ++i) {
      InputVc& ivc = sw.in[i];
      if (ivc.state == InputVc::State::kActive && !ivc.buffer.empty()) {
        sa_member_[ivc_base_[u] + i] = 1;
        sa_active_[u].push_back(i);
      }
      if (ivc.state == InputVc::State::kIdle && !ivc.buffer.empty() &&
          ivc.buffer.front().head) {
        DSN_ASSERT(!ivc.head_ready.empty(), "head flit must have a ready time");
        const std::uint32_t gid = ivc_base_[u] + i;
        if (ivc.head_ready.front() <= now_) {
          list_alloc(gid);
        } else {
          sh.cal.schedule(ivc.head_ready.front(), now_, enc_event(kEvHead, gid));
        }
      }
    }
    if (!sa_active_[u].empty()) {
      sa_listed_[u] = 1;
      sh.sa_list.push_back(u);  // ascending u per shard: already sorted
    }
  }
  for (HostId h = 0; h < S.num_hosts_; ++h) {
    const NicState& nic = S.nics_[h];
    // Conservative: NICs whose only work is a far-future retry get listed
    // too; their first visit computes the exact wakeup and unlists them.
    if (nic.busy || !nic.source_queue.empty() || !nic.retry_queue.empty()) {
      list_nic(h);
    }
  }
}

void ActiveCore::deliver_wire(Shard& sh, std::uint32_t wire_gid) {
  const NodeId u = wire_switch_[wire_gid];
  SwitchState& sw = S.switches_[u];
  const std::uint32_t port = wire_gid - wire_base_[u];
  auto& wire = sw.wire[port];
  while (!wire.empty() && wire.front().cycle <= now_) {
    const Arrival a = wire.front();
    wire.pop_front();
    InputVc& ivc = sw.in[port * S.config_.vcs + a.vc];
    DSN_ASSERT(ivc.buffer.size() < S.config_.buffer_flits,
               "credit flow control must prevent buffer overflow");
    const bool was_empty = ivc.buffer.empty();
    if (a.flit.head) {
      ivc.head_ready.push_back(now_ + S.router_delay_);
      sh.cal.schedule(now_ + S.router_delay_, now_,
                      enc_event(kEvHead, ivc_base_[u] + port * S.config_.vcs + a.vc));
    }
    ivc.buffer.push_back(a.flit);
    if (was_empty && ivc.state == InputVc::State::kActive) {
      sa_add(u, port * S.config_.vcs + a.vc);
    }
  }
}

void ActiveCore::apply_credit(std::uint32_t credit_gid) {
  const NodeId u = ivc_switch_[credit_gid];
  SwitchState& sw = S.switches_[u];
  const std::uint32_t idx = credit_gid - ivc_base_[u];
  auto& q = sw.credits[idx];
  while (!q.empty() && q.front().cycle <= now_) {
    sw.out[idx].credits += q.front().count;
    q.pop_front();
  }
}

void ActiveCore::consider_alloc_listing(std::uint32_t ivc_gid) {
  const NodeId u = ivc_switch_[ivc_gid];
  const InputVc& ivc = S.switches_[u].in[ivc_gid - ivc_base_[u]];
  // Lazy event: list only if the VC is allocatable right now. A stale
  // registration (head already granted, purged, or re-timed by a purge
  // rebuild) is a no-op — the rebuild registered a fresh event if needed.
  if (ivc.state != InputVc::State::kIdle) return;
  if (ivc.buffer.empty() || !ivc.buffer.front().head) return;
  if (ivc.head_ready.empty() || ivc.head_ready.front() > now_) return;
  list_alloc(ivc_gid);
}

void ActiveCore::phase_deliver_allocate(std::size_t s) {
  Shard& sh = shards_[s];
  const HostId host_begin = shard_begin_[s] * S.config_.hosts_per_switch;
  const HostId host_end = shard_begin_[s + 1] * S.config_.hosts_per_switch;

  // Open-loop Bernoulli draws: RNG consumption matches the legacy generator
  // exactly (one bernoulli per live host per pre-window cycle, plus the
  // destination draw on success); the packets are materialized in host order
  // by the serial injection section.
  if (!S.use_trace_) {
    const double rate = S.config_.packet_rate_per_cycle();
    if (rate > 0.0 && now_ < window_end_) {
      for (HostId h = host_begin; h < host_end; ++h) {
        NicState& nic = S.nics_[h];
        if (S.faults_armed_ && !S.switch_alive_[h / S.config_.hosts_per_switch]) {
          continue;
        }
        if (!nic.rng.bernoulli(rate)) continue;
        sh.draws.emplace_back(h, S.traffic_->dest(h, nic.rng));
      }
    }
  }

  // Drain this cycle's calendar bucket in typed passes (wire/credit before
  // head-ready before NIC wakes). Head-ready events registered mid-drain for
  // this same cycle (router_delay == 0) append to the live bucket; the
  // index-based loops pick them up.
  auto& bucket = sh.cal.buckets[now_ & sh.cal.mask];
  while (!sh.cal.far.empty() && sh.cal.far.top().first <= now_) {
    bucket.push_back(sh.cal.far.top().second);
    sh.cal.far.pop();
  }
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    const std::uint64_t type = bucket[i] >> kEvShift;
    const std::uint64_t payload = bucket[i] & kEvPayloadMask;
    if (type == kEvWire) {
      deliver_wire(sh, static_cast<std::uint32_t>(payload));
    } else if (type == kEvCredit) {
      apply_credit(static_cast<std::uint32_t>(payload));
    }
  }
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] >> kEvShift == kEvHead) {
      consider_alloc_listing(static_cast<std::uint32_t>(bucket[i] & kEvPayloadMask));
    }
  }
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] >> kEvShift == kEvNic) {
      list_nic(static_cast<std::uint32_t>(bucket[i] & kEvPayloadMask));
    }
  }
  sh.c_events += bucket.size();
  bucket.clear();

  // Strided TTL sweep over this shard's NIC queues (same stride as legacy).
  if (S.config_.packet_ttl_cycles != 0 &&
      now_ % S.config_.ttl_sweep_stride == 0) {
    S.sweep_nic_ttl(now_, host_begin, host_end, sh.ttl_out);
  }

  // VC allocation over the pending list in ascending global IVC id — the
  // legacy (switch, port, vc) scan order — so output-VC claiming conflicts
  // resolve identically. Blocked entries stay listed (re-arbitrated every
  // cycle); granted or stale entries are unlisted in place.
  if (sh.alloc_dirty) {
    std::sort(sh.alloc_pending.begin(), sh.alloc_pending.end());
    sh.alloc_dirty = false;
  }
  std::size_t keep = 0;
  for (std::size_t i = 0; i < sh.alloc_pending.size(); ++i) {
    const std::uint32_t gid = sh.alloc_pending[i];
    const NodeId u = ivc_switch_[gid];
    const std::uint32_t local = gid - ivc_base_[u];
    InputVc& ivc = S.switches_[u].in[local];
    ++sh.c_alloc_checks;
    const bool eligible = ivc.state == InputVc::State::kIdle &&
                          !ivc.buffer.empty() && ivc.buffer.front().head &&
                          !ivc.head_ready.empty() &&
                          ivc.head_ready.front() <= now_;
    if (!eligible) {
      alloc_listed_[gid] = 0;
      continue;
    }
    // TTL guard mirrors the legacy allocation scan: expired heads are
    // collected (purged serially after the phase) and stay listed — the
    // purge rebuild resets every list anyway.
    if (S.config_.packet_ttl_cycles != 0 &&
        now_ - S.packets_[ivc.buffer.front().packet].gen_cycle >
            S.config_.packet_ttl_cycles) {
      sh.ttl_out.push_back(ivc.buffer.front().packet);
      sh.alloc_pending[keep++] = gid;
      continue;
    }
    const std::uint32_t port = local / S.config_.vcs;
    const std::uint32_t vc = local % S.config_.vcs;
    if (S.try_allocate(u, port, vc, now_, sh.cand_scratch)) {
      ivc.head_ready.pop_front();
      alloc_listed_[gid] = 0;
      sa_add(u, local);
    } else {
      sh.alloc_pending[keep++] = gid;  // blocked: retry next cycle
    }
  }
  sh.alloc_pending.resize(keep);
}

void ActiveCore::phase_switch_allocation(std::size_t s) {
  Shard& sh = shards_[s];
  if (sh.sa_dirty) {
    std::sort(sh.sa_list.begin(), sh.sa_list.end());
    sh.sa_dirty = false;
  }
  ShardSink sink{this, &sh, s};
  std::size_t keep = 0;
  for (std::size_t i = 0; i < sh.sa_list.size(); ++i) {
    const NodeId u = sh.sa_list[i];
    if (sa_active_[u].empty()) {
      sa_listed_[u] = 0;  // quiesced since its last grant: drop from the list
      continue;
    }
    ++sh.c_sa_visits;
    // The restricted-arbitration kernel: O(active VCs) per switch instead of
    // the full O(ports x vcs) scan, byte-identical grants and stall counts.
    S.sa_switch_active(u, now_, in_window_, sa_active_[u], sh.scratch, sink);
    sh.sa_list[keep++] = u;
  }
  sh.sa_list.resize(keep);
}

void ActiveCore::phase_nic_stream(std::size_t s) {
  Shard& sh = shards_[s];
  const std::uint32_t hps = S.config_.hosts_per_switch;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < sh.nic_list.size(); ++i) {
    const HostId h = sh.nic_list[i];
    const NodeId sw_id = h / hps;
    SwitchState& sw = S.switches_[sw_id];
    const std::uint32_t in_port = sw.num_net_ports + (h % hps);
    auto& wq = sw.wire[in_port];
    const std::size_t wired_before = wq.size();
    std::uint64_t wake_at = 0;
    const bool keep_listed = S.nic_step(h, now_, &wake_at);
    if (wq.size() != wired_before) {
      // The NIC put a flit on its injection wire: register its arrival.
      sh.cal.schedule(std::max(wq.back().cycle, now_ + 1), now_,
                      enc_event(kEvWire, wire_base_[sw_id] + in_port));
    }
    if (keep_listed) {
      sh.nic_list[keep++] = h;
    } else {
      nic_listed_[h] = 0;
      if (wake_at != 0) {
        // Only backing-off retries remain: sleep until the earliest matures.
        sh.cal.schedule(std::max(wake_at, now_ + 1), now_, enc_event(kEvNic, h));
      }
    }
  }
  sh.nic_list.resize(keep);
}

void ActiveCore::serial_inject() {
  if (S.use_trace_) {
    while (S.trace_cursor_ < S.injection_trace_.size() &&
           S.injection_trace_[S.trace_cursor_].cycle <= now_) {
      const TraceEntry& e = S.injection_trace_[S.trace_cursor_++];
      S.enqueue_packet(e.src, e.dst, now_);
      list_nic(e.src);
    }
    return;
  }
  // Shards cover ascending host ranges, so shard-order concatenation of the
  // per-shard draw lists is exactly the legacy host-order generation loop —
  // packet ids and pool slots come out identical.
  for (Shard& sh : shards_) {
    for (const auto& [src, dst] : sh.draws) {
      S.enqueue_packet(src, dst, now_);
      list_nic(src);
    }
    sh.draws.clear();
  }
}

void ActiveCore::serial_ttl_purge() {
  bool any = false;
  for (Shard& sh : shards_) {
    if (sh.ttl_out.empty()) continue;
    any = true;
    S.ttl_expired_.insert(S.ttl_expired_.end(), sh.ttl_out.begin(),
                          sh.ttl_out.end());
    sh.ttl_out.clear();
  }
  if (!any) return;
  S.purge_packets(S.ttl_expired_, now_, /*allow_requeue=*/false, /*ttl=*/true,
                  nullptr);
  S.recompute_credits();
  S.ttl_expired_.clear();
  // Purges mutate arbitrary component state (erased flits, released
  // allocations, re-timed heads, requeued retries): rebuild every work list
  // from the surviving state instead of patching incrementally.
  rebuild_active_sets();
}

void ActiveCore::serial_merge() {
  bool delivered_any = false;
  std::uint64_t events = 0;
  std::uint64_t alloc_checks = 0;
  std::uint64_t sa_visits = 0;
  for (std::size_t s = 0; s < nshards_; ++s) {
    Shard& sh = shards_[s];
    S.ejected_flits_in_window_ += sh.d_ejected;
    S.measured_delivered_ += sh.d_meas_delivered;
    S.measured_hops_ += sh.d_meas_hops;
    S.delivered_total_ += sh.d_delivered;
    if (S.config_.epoch_cycles != 0 && sh.d_epoch_delivered != 0) {
      S.epoch_at(now_).delivered += sh.d_epoch_delivered;
    }
    S.in_flight_packets_ -= sh.d_inflight_dec;
    if (sh.d_progress) S.last_progress_cycle_ = now_;
    delivered_any = delivered_any || sh.d_delivered_any;
    for (const std::uint32_t lat : sh.latencies) {
      S.measured_latencies_.push_back(lat);
    }
    for (const PacketTrace& tr : sh.traces) {
      if (S.traces_.size() < S.config_.trace_limit) S.traces_.push_back(tr);
    }
    for (const PacketSlot slot : sh.freed) S.free_slots_.push_back(slot);
    sh.latencies.clear();
    sh.traces.clear();
    sh.freed.clear();
    sh.d_ejected = sh.d_meas_delivered = sh.d_meas_hops = 0;
    sh.d_delivered = sh.d_epoch_delivered = sh.d_inflight_dec = 0;
    sh.d_progress = false;
    sh.d_delivered_any = false;
    events += sh.c_events;
    alloc_checks += sh.c_alloc_checks;
    sa_visits += sh.c_sa_visits;
    sh.c_events = sh.c_alloc_checks = sh.c_sa_visits = 0;

    // Cross-shard handoff: every one of these queues has a single writer and
    // receives at most one push per cycle, so draining src shards in order
    // reproduces the legacy push sequence exactly.
    for (std::size_t dest = 0; dest < nshards_; ++dest) {
      for (const WireMail& m : sh.wire_out[dest]) {
        const NodeId u = wire_switch_[m.wire_gid];
        S.switches_[u].wire[m.wire_gid - wire_base_[u]].push_back(m.a);
        shards_[dest].cal.schedule(std::max(m.a.cycle, now_ + 1), now_,
                                   enc_event(kEvWire, m.wire_gid));
      }
      sh.wire_out[dest].clear();
      for (const CreditMail& m : sh.credit_out[dest]) {
        const NodeId u = ivc_switch_[m.credit_gid];
        S.switches_[u].credits[m.credit_gid - ivc_base_[u]].push_back(m.c);
        shards_[dest].cal.schedule(std::max(m.c.cycle, now_ + 1), now_,
                                   enc_event(kEvCredit, m.credit_gid));
      }
      sh.credit_out[dest].clear();
    }
  }
  if (delivered_any) {
    // Any delivery ends the reconnection window of pending down events
    // (same eject timestamp for every delivery of this cycle).
    const std::uint64_t eject = now_ + S.link_delay_;
    for (const std::size_t idx : S.pending_reconnect_) {
      S.fault_log_[idx].reconnected = true;
      S.fault_log_[idx].reconnect_cycles = eject - S.fault_log_[idx].event.cycle;
    }
    S.pending_reconnect_.clear();
  }
#if DSN_OBS
  if (events != 0) DSN_OBS_ADD(SimMetrics::get().active_events, events);
  if (alloc_checks != 0) {
    DSN_OBS_ADD(SimMetrics::get().active_alloc_checks, alloc_checks);
  }
  if (sa_visits != 0) DSN_OBS_ADD(SimMetrics::get().active_sa_visits, sa_visits);
#else
  (void)events;
  (void)alloc_checks;
  (void)sa_visits;
#endif
}

SimResult ActiveCore::run() {
  build();
  rebuild_active_sets();

  const std::uint64_t hard_end = window_end_ + S.config_.drain_cycles;
  const std::uint64_t watchdog = 4 * (S.router_delay_ + S.link_delay_) +
                                 4ull * S.config_.packet_flits + 10'000;
  const std::uint64_t window_start = S.config_.warmup_cycles;

  ThreadPool* pool = nshards_ > 1 ? &ThreadPool::global() : nullptr;
  const ShardEpoch epoch(pool, nshards_);

  bool deadlock = false;
  std::uint64_t now = 0;
  S.last_progress_cycle_ = 0;
  for (; now < hard_end; ++now) {
    now_ = now;
    in_window_ = now >= window_start && now < window_end_;

    if (S.faults_armed_ && S.apply_fault_events(now)) rebuild_active_sets();

    epoch.run([this](std::size_t s) { phase_deliver_allocate(s); });
    serial_inject();
    serial_ttl_purge();
    epoch.run([this](std::size_t s) { phase_switch_allocation(s); });
    serial_merge();
    epoch.run([this](std::size_t s) { phase_nic_stream(s); });

    DSN_OBS_ONLY(S.emit_trace_sample(now);)
    DSN_OBS_GAUGE_SET(SimMetrics::get().in_flight,
                      static_cast<std::int64_t>(S.in_flight_packets_));

    if (now >= window_end_ &&
        S.measured_delivered_ + S.measured_dropped_ == S.measured_generated_) {
      ++now;
      break;  // every measured packet accounted (delivered or dropped) — done
    }
    if (S.in_flight_packets_ > 0 && now - S.last_progress_cycle_ > watchdog) {
      deadlock = true;
      break;
    }
  }

  return S.finalize_result(now, deadlock);
}

SimResult Simulator::run_active() {
  ActiveCore core(*this);
  return core.run();
}

}  // namespace dsn
