// dsn-slint: deterministic — output feeds byte-identical replay/merge gates;
// traversal order here must be a function of the data, never a hash seed.
#include "dsn/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "dsn/obs/obs.hpp"
#include "dsn/sim/sim_metrics.hpp"
#include "dsn/sim/switch_kernel.hpp"

namespace dsn {

#if DSN_OBS
using sim_detail::SimMetrics;
#endif  // DSN_OBS

Simulator::Simulator(const Topology& topo, SimRoutingPolicy& policy,
                     const TrafficPattern& traffic, const SimConfig& config)
    : topo_(&topo), policy_(&policy), traffic_(&traffic), config_(config) {
  config_.validate();
  demand_ = std::make_unique<BernoulliDemand>(traffic, config_.packet_rate_per_cycle(),
                                              config_.packet_flits);
#if DSN_OBS
  if (obs::metrics_on()) {
    for (std::uint32_t s = 0; s < hop_phase_metrics_.size(); ++s) {
      if (const char* phase = policy.phase_name(static_cast<std::uint8_t>(s))) {
        hop_phase_metrics_[s] = obs::MetricsRegistry::global().counter(
            std::string("dsn.sim.hops.") + phase);
      }
    }
  }
#endif
  num_switches_ = topo.num_nodes();
  num_hosts_ = num_switches_ * config_.hosts_per_switch;
  router_delay_ = config_.router_delay_cycles();
  link_delay_ = config_.link_delay_cycles();

  const Graph& g = topo.graph;
  switches_.resize(num_switches_);
  upstream_.resize(num_switches_);
  downstream_.resize(num_switches_);
  out_link_index_.resize(num_switches_);
  link_flits_.assign(g.num_links() * 2, 0);
  link_alive_.assign(g.num_links(), 1);
  switch_alive_.assign(num_switches_, 1);
  link_ports_.resize(g.num_links());

  for (NodeId u = 0; u < num_switches_; ++u) {
    SwitchState& sw = switches_[u];
    sw.num_net_ports = static_cast<std::uint32_t>(g.degree(u));
    sw.num_ports = sw.num_net_ports + config_.hosts_per_switch;
    sw.in.resize(static_cast<std::size_t>(sw.num_ports) * config_.vcs);
    sw.out.resize(static_cast<std::size_t>(sw.num_ports) * config_.vcs);
    sw.wire.resize(sw.num_ports);
    sw.credits.resize(static_cast<std::size_t>(sw.num_ports) * config_.vcs);
    sw.sa_rr.assign(sw.num_ports, 0);
    // Network output VCs start with a full downstream buffer of credits;
    // ejection output VCs are effectively infinite (host sinks).
    for (std::uint32_t port = 0; port < sw.num_ports; ++port) {
      for (std::uint32_t vc = 0; vc < config_.vcs; ++vc) {
        sw.out[port * config_.vcs + vc].credits =
            port < sw.num_net_ports ? config_.buffer_flits
                                    : std::numeric_limits<std::uint32_t>::max() / 2;
      }
    }
    upstream_[u].resize(sw.num_net_ports);
    downstream_[u].resize(sw.num_net_ports);
    out_link_index_[u].resize(sw.num_net_ports);
  }

  // Build the reverse port map: input port i of u is fed by the neighbor's
  // output port that carries the same link id.
  for (NodeId u = 0; u < num_switches_; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::uint32_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i].to;
      const LinkId link = nbrs[i].link;
      const auto vn = g.neighbors(v);
      std::uint32_t vport = kInvalidNode;
      for (std::uint32_t j = 0; j < vn.size(); ++j) {
        if (vn[j].link == link) {
          vport = j;
          break;
        }
      }
      DSN_ASSERT(vport != kInvalidNode, "link must appear in both adjacencies");
      upstream_[u][i] = {v, vport};
      downstream_[u][i] = {v, vport};  // symmetric: out port i feeds v's port vport
      const auto [a, b] = g.link_endpoints(link);
      // Direction bit: 0 when this output sends a->b.
      out_link_index_[u][i] = 2 * link + (u == a ? 0u : 1u);
      link_ports_[link][u == a ? 0 : 1] = {u, i};
    }
  }

  nics_.resize(num_hosts_);
  for (HostId h = 0; h < num_hosts_; ++h) {
    nics_[h].credits.assign(config_.vcs, config_.buffer_flits);
    nics_[h].rng = Rng(config_.seed * 0x9e3779b97f4a7c15ULL + h + 1);
  }

  for (const SwitchState& sw : switches_) {
    max_ports_ = std::max(max_ports_, sw.num_ports);
  }
  sa_scratch_.input_used.assign(max_ports_, 0);
  sa_scratch_.used_inputs.reserve(max_ports_);
}

PacketSlot Simulator::alloc_packet() {
  if (!free_slots_.empty()) {
    const PacketSlot s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  packets_.emplace_back();
  return static_cast<PacketSlot>(packets_.size() - 1);
}

void Simulator::free_packet(PacketSlot slot) { free_slots_.push_back(slot); }

void Simulator::set_injection_trace(std::vector<TraceEntry> trace) {
  for (const TraceEntry& e : trace) {
    DSN_REQUIRE(e.src < num_hosts_ && e.dst < num_hosts_,
                "trace host id out of range");
  }
  injection_trace_ = std::move(trace);
  trace_cursor_ = 0;
  use_trace_ = true;
}

void Simulator::set_fault_schedule(FaultSchedule schedule) {
  schedule.validate(*topo_);
  fault_schedule_ = std::move(schedule);
  fault_cursor_ = 0;
  faults_armed_ = true;
}

EpochStats& Simulator::epoch_at(std::uint64_t now) {
  const std::size_t idx = now / config_.epoch_cycles;
  while (epochs_.size() <= idx) {
    EpochStats e;
    e.start_cycle = epochs_.size() * config_.epoch_cycles;
    epochs_.push_back(e);
  }
  return epochs_[idx];
}

void Simulator::enqueue_packet(HostId src, HostId dst, std::uint64_t now) {
  const std::uint64_t window_end = config_.warmup_cycles + config_.measure_cycles;
  const PacketSlot slot = alloc_packet();
  Packet& pkt = packets_[slot];
  pkt = Packet{};
  pkt.id = next_packet_id_++;
  pkt.src_host = src;
  pkt.dst_host = dst;
  pkt.src_switch = src / config_.hosts_per_switch;
  pkt.dst_switch = pkt.dst_host / config_.hosts_per_switch;
  pkt.size_flits = config_.packet_flits;
  pkt.gen_cycle = now;
  pkt.measured = now >= config_.warmup_cycles && now < window_end;
  pkt.route_state = policy_->initial_state();
  if (pkt.measured) ++measured_generated_;
  ++generated_total_;
  if (config_.epoch_cycles != 0) ++epoch_at(now).injected;
  nics_[src].source_queue.push_back(slot);
  ++in_flight_packets_;
}

void Simulator::generate_traffic(std::uint64_t now) {
  const std::uint64_t window_end = config_.warmup_cycles + config_.measure_cycles;

  if (use_trace_) {
    while (trace_cursor_ < injection_trace_.size() &&
           injection_trace_[trace_cursor_].cycle <= now) {
      const TraceEntry& e = injection_trace_[trace_cursor_++];
      enqueue_packet(e.src, e.dst, now);
    }
    return;
  }

  if (config_.packet_rate_per_cycle() <= 0.0) return;
  // Open-loop generation stops after the measurement window so the drain
  // phase can complete; background load persists through the window itself.
  if (now >= window_end) return;
  for (HostId h = 0; h < num_hosts_; ++h) {
    NicState& nic = nics_[h];
    // Hosts of a halted switch stop generating (their rng simply pauses and
    // resumes deterministically on revival).
    if (faults_armed_ && !switch_alive_[h / config_.hosts_per_switch]) continue;
    demand_scratch_.clear();
    demand_->emit(h, now, nic.rng, demand_scratch_);
    for (const Demand& d : demand_scratch_) enqueue_packet(d.src, d.dst, now);
  }
}

bool Simulator::nic_step(HostId h, std::uint64_t now, std::uint64_t* wake_at) {
  NicState& nic = nics_[h];
  // A halted switch freezes its hosts' NICs (queues keep their packets for
  // the revival; any active stream was purged by the halt itself).
  if (faults_armed_ && !switch_alive_[h / config_.hosts_per_switch]) return true;
  const std::uint32_t start_credits =
      config_.switching == SwitchingMode::kVirtualCutThrough ? config_.packet_flits
                                                             : 1;
  if (!nic.busy) {
    if (nic.source_queue.empty() && nic.retry_queue.empty()) return false;
    // Virtual cut-through from the NIC too: pick a VC whose injection
    // buffer can hold the whole packet (one flit under wormhole).
    std::uint32_t chosen = config_.vcs;
    for (std::uint32_t k = 0; k < config_.vcs; ++k) {
      const std::uint32_t vc = (static_cast<std::uint32_t>(now) + k) % config_.vcs;
      if (nic.credits[vc] >= start_credits) {
        chosen = vc;
        break;
      }
    }
    if (chosen == config_.vcs) return true;
    // Retries whose backoff expired go first (queue order); otherwise a
    // fresh packet — a still-backing-off retry never blocks new traffic.
    PacketSlot slot = kInvalidPacketSlot;
    for (std::size_t i = 0; i < nic.retry_queue.size(); ++i) {
      if (packets_[nic.retry_queue[i]].retry_at <= now) {
        slot = nic.retry_queue[i];
        nic.retry_queue.erase_at(i);
        break;
      }
    }
    if (slot == kInvalidPacketSlot) {
      if (nic.source_queue.empty()) {
        // Nothing but backing-off retries: idle until the earliest matures.
        if (wake_at != nullptr) {
          std::uint64_t earliest = std::numeric_limits<std::uint64_t>::max();
          for (std::size_t i = 0; i < nic.retry_queue.size(); ++i) {
            earliest = std::min(earliest, packets_[nic.retry_queue[i]].retry_at);
          }
          *wake_at = earliest;
        }
        return false;
      }
      slot = nic.source_queue.front();
      nic.source_queue.pop_front();
    }
    nic.busy = true;
    nic.streaming = slot;
    nic.flits_sent = 0;
    nic.stream_vc = chosen;
    packets_[nic.streaming].inject_cycle = now;
  }
  // Send one flit per cycle toward the injection input port; under
  // wormhole the NIC stalls when the injection buffer has no credit.
  if (config_.switching == SwitchingMode::kWormhole &&
      nic.credits[nic.stream_vc] == 0) {
    DSN_OBS_ADD(SimMetrics::get().credit_stalls, 1);
    return true;
  }
  Packet& pkt = packets_[nic.streaming];
  NodeId sw_id = pkt.src_switch;
  SwitchState& sw = switches_[sw_id];
  const std::uint32_t in_port =
      sw.num_net_ports + (h % config_.hosts_per_switch);
  Flit flit;
  flit.packet = nic.streaming;
  flit.seq = nic.flits_sent;
  flit.head = nic.flits_sent == 0;
  flit.tail = nic.flits_sent + 1 == pkt.size_flits;
  sw.wire[in_port].push_back({now + link_delay_, flit, nic.stream_vc});
  --nic.credits[nic.stream_vc];
  ++nic.flits_sent;
  if (nic.flits_sent == pkt.size_flits) nic.busy = false;
  return true;
}

void Simulator::nic_stream(std::uint64_t now) {
  for (HostId h = 0; h < num_hosts_; ++h) nic_step(h, now, nullptr);
}

void Simulator::deliver_wire_flits(std::uint64_t now) {
  for (NodeId u = 0; u < num_switches_; ++u) {
    SwitchState& sw = switches_[u];
    for (std::uint32_t port = 0; port < sw.num_ports; ++port) {
      auto& wire = sw.wire[port];
      while (!wire.empty() && wire.front().cycle <= now) {
        const Arrival a = wire.front();
        wire.pop_front();
        InputVc& ivc = sw.in[port * config_.vcs + a.vc];
        DSN_ASSERT(ivc.buffer.size() < config_.buffer_flits,
                   "credit flow control must prevent buffer overflow");
        if (a.flit.head) ivc.head_ready.push_back(now + router_delay_);
        ivc.buffer.push_back(a.flit);
      }
    }
  }
}

void Simulator::apply_credit_returns(std::uint64_t now) {
  for (NodeId u = 0; u < num_switches_; ++u) {
    SwitchState& sw = switches_[u];
    for (std::uint32_t idx = 0; idx < sw.credits.size(); ++idx) {
      auto& q = sw.credits[idx];
      while (!q.empty() && q.front().cycle <= now) {
        sw.out[idx].credits += q.front().count;
        q.pop_front();
      }
    }
  }
}

bool Simulator::try_allocate(NodeId sw_id, std::uint32_t in_port, std::uint32_t vc,
                             std::uint64_t now,
                             std::vector<RouteCandidate>& scratch) {
  SwitchState& sw = switches_[sw_id];
  InputVc& ivc = sw.in[in_port * config_.vcs + vc];
  const Flit& head = ivc.buffer.front();
  Packet& pkt = packets_[head.packet];

  if (pkt.dst_switch == sw_id) {
    // Ejection: any ejection output VC (they have effectively infinite
    // credit); port selected by the destination host's local index.
    const std::uint32_t out_port =
        sw.num_net_ports + (pkt.dst_host % config_.hosts_per_switch);
    for (std::uint32_t ovc = 0; ovc < config_.vcs; ++ovc) {
      OutputVc& o = sw.out[out_port * config_.vcs + ovc];
      if (o.owned) continue;
      o.owned = true;
      o.owner_port = in_port;
      o.owner_vc = vc;
      ivc.state = InputVc::State::kActive;
      ivc.out_port = out_port;
      ivc.out_vc = ovc;
      ivc.cur_packet = head.packet;
      return true;
    }
    return false;
  }

  policy_->candidates(sw_id, pkt.dst_switch, pkt.route_state, scratch);
  const std::size_t count = scratch.size();
  if (count == 0) return false;
  const auto nbrs = topo_->graph.neighbors(sw_id);
  // Escape candidates (flagged by the policy) must be strictly lower priority
  // than adaptive ones: trying escape first would let packets wander up the
  // up*/down* tree while adaptive hops are free (livelock). Rotation for load
  // spreading is applied within the non-escape prefix only; policies place
  // escape candidates at the end.
  std::size_t adaptive_count = 0;
  while (adaptive_count < count && !scratch[adaptive_count].escape) {
    ++adaptive_count;
  }
  const std::size_t rotate =
      adaptive_count > 0 ? (now + sw_id) % adaptive_count : 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pos = k < adaptive_count
                                ? (k + rotate) % adaptive_count
                                : k;
    const RouteCandidate& cand = scratch[pos];
    // Find the output port toward cand.next: first matching adjacency entry
    // whose link (and downstream switch) is alive — parallel links (DSN-E Up
    // links) mean the liveness check must be per link id, not per neighbor.
    std::uint32_t out_port = kInvalidNode;
    for (std::uint32_t j = 0; j < nbrs.size(); ++j) {
      if (nbrs[j].to != cand.next) continue;
      if (faults_armed_ &&
          (!link_alive_[nbrs[j].link] || !switch_alive_[cand.next])) {
        continue;
      }
      out_port = j;
      break;
    }
    if (out_port == kInvalidNode) {
      // Without live faults a missing port is a policy bug; with them it is
      // a dead hop the policy has not (yet) routed around — skip it.
      DSN_ASSERT(faults_armed_, "candidate next hop must be a neighbor");
      continue;
    }
    OutputVc& o = sw.out[out_port * config_.vcs + cand.vc];
    if (o.owned) continue;
    // VCT: the downstream buffer must absorb the whole packet. Wormhole:
    // one flit of space suffices (the packet may stall spanning switches).
    const std::uint32_t needed =
        config_.switching == SwitchingMode::kVirtualCutThrough ? pkt.size_flits : 1;
    if (o.credits < needed) {
      DSN_OBS_ADD(SimMetrics::get().credit_stalls, 1);
      continue;
    }
    o.owned = true;
    o.owner_port = in_port;
    o.owner_vc = vc;
    ivc.state = InputVc::State::kActive;
    ivc.out_port = out_port;
    ivc.out_vc = cand.vc;
    ivc.cur_packet = head.packet;
    // Per-hop packet state update happens at allocation time (head decision).
    // The hop is attributed to the phase the packet was in when it took it.
#if DSN_OBS
    if (obs::metrics_on()) {
      auto& registry = obs::MetricsRegistry::global();
      registry.add(SimMetrics::get().hops, 1);
      if (pkt.route_state < hop_phase_metrics_.size()) {
        registry.add(hop_phase_metrics_[pkt.route_state], 1);
      }
    }
#endif
    pkt.route_state = policy_->next_state(sw_id, cand.next, cand, pkt.route_state);
    ++pkt.hops;
    return true;
  }
  return false;
}

void Simulator::allocate_vcs(std::uint64_t now) {
  for (NodeId u = 0; u < num_switches_; ++u) {
    SwitchState& sw = switches_[u];
    for (std::uint32_t port = 0; port < sw.num_ports; ++port) {
      for (std::uint32_t vc = 0; vc < config_.vcs; ++vc) {
        InputVc& ivc = sw.in[port * config_.vcs + vc];
        if (ivc.state != InputVc::State::kIdle) continue;
        if (ivc.buffer.empty()) continue;
        const Flit& front = ivc.buffer.front();
        if (!front.head) continue;  // tail of a previous packet still draining
        DSN_ASSERT(!ivc.head_ready.empty(), "head flit must have a ready time");
        if (ivc.head_ready.front() > now) continue;
        // TTL guard: packets stuck past their deadline (a destination inside
        // a dead region, or a livelocked detour) are collected and purged
        // after the scan so the drop accounting stays exact.
        if (config_.packet_ttl_cycles != 0 &&
            now - packets_[front.packet].gen_cycle > config_.packet_ttl_cycles) {
          ttl_expired_.push_back(front.packet);
          continue;
        }
        if (try_allocate(u, port, vc, now, scratch_candidates_)) {
          ivc.head_ready.pop_front();
        }
      }
    }
  }
  // Queued packets age out too: a NIC frozen by a dead source switch (or a
  // retry queue whose destination never heals) would otherwise hold its
  // packets in flight forever and wedge the drain. The sweep is strided:
  // TTL deadlines are coarse, so scanning every NIC queue every cycle is
  // pure overhead at high n (expiries land at the next stride boundary).
  if (config_.packet_ttl_cycles != 0 && now % config_.ttl_sweep_stride == 0) {
    sweep_nic_ttl(now, 0, num_hosts_, ttl_expired_);
  }
  if (!ttl_expired_.empty()) {
    purge_packets(ttl_expired_, now, /*allow_requeue=*/false, /*ttl=*/true, nullptr);
    recompute_credits();
    ttl_expired_.clear();
  }
}

void Simulator::sweep_nic_ttl(std::uint64_t now, HostId begin, HostId end,
                              std::vector<PacketSlot>& out) {
  const auto expired = [&](PacketSlot s) {
    if (now - packets_[s].gen_cycle <= config_.packet_ttl_cycles) return false;
    out.push_back(s);
    return true;
  };
  for (HostId h = begin; h < end; ++h) {
    nics_[h].source_queue.erase_if(expired);
    nics_[h].retry_queue.erase_if(expired);
  }
}

void Simulator::switch_allocation(std::uint64_t now) {
  const std::uint64_t window_start = config_.warmup_cycles;
  const std::uint64_t window_end = config_.warmup_cycles + config_.measure_cycles;
  const bool in_window = now >= window_start && now < window_end;

  // The legacy sink writes every side effect straight to the global state —
  // exactly what the pre-kernel monolithic loop did.
  struct DirectSink {
    Simulator* S;
    void push_wire(NodeId down_sw, std::uint32_t dport, const Arrival& a) {
      S->switches_[down_sw].wire[dport].push_back(a);
    }
    void push_credit(NodeId up_sw, std::uint32_t idx, const CreditReturn& c) {
      S->switches_[up_sw].credits[idx].push_back(c);
    }
    void add_ejected_flits(std::uint32_t flits) {
      S->ejected_flits_in_window_ += flits;
    }
    void on_measured_delivery(Packet& pkt, std::uint64_t eject) {
      ++S->measured_delivered_;
      S->measured_hops_ += pkt.hops;
      DSN_OBS_OBSERVE(SimMetrics::get().latency_cycles, eject - pkt.gen_cycle);
      S->measured_latencies_.push_back(
          static_cast<std::uint32_t>(eject - pkt.gen_cycle));
      if (S->config_.record_packet_traces &&
          S->traces_.size() < S->config_.trace_limit) {
        S->traces_.push_back({pkt.id, pkt.src_host, pkt.dst_host, pkt.gen_cycle,
                              pkt.inject_cycle, eject, pkt.hops, pkt.retries});
      }
    }
    void on_delivery(std::uint64_t now_cycle, std::uint64_t eject) {
      ++S->delivered_total_;
      if (S->config_.epoch_cycles != 0) ++S->epoch_at(now_cycle).delivered;
      // Any delivery ends the reconnection window of pending down events.
      for (const std::size_t idx : S->pending_reconnect_) {
        S->fault_log_[idx].reconnected = true;
        S->fault_log_[idx].reconnect_cycles = eject - S->fault_log_[idx].event.cycle;
      }
      S->pending_reconnect_.clear();
    }
    void release_packet(PacketSlot slot) {
      --S->in_flight_packets_;
      S->free_packet(slot);
    }
    void after_grant(NodeId, std::uint32_t, bool) {}
    void on_progress(std::uint64_t now_cycle) {
      S->last_progress_cycle_ = now_cycle;
    }
  } sink{this};

  for (NodeId u = 0; u < num_switches_; ++u) {
    sa_switch(u, now, in_window, sa_scratch_, sink);
  }
}

void Simulator::collect_link_packets(LinkId l, std::vector<PacketSlot>& out) const {
  for (const auto& [node, port] : link_ports_[l]) {
    const SwitchState& sw = switches_[node];
    // Flits in flight on the wire into this endpoint's input port.
    for (const Arrival& a : sw.wire[port]) out.push_back(a.flit.packet);
    // Packets mid-stream across the link: an allocation at this endpoint
    // whose output port is the link's port streams toward the other side.
    for (const InputVc& ivc : sw.in) {
      if (ivc.state == InputVc::State::kActive && ivc.out_port == port) {
        out.push_back(ivc.cur_packet);
      }
    }
  }
}

void Simulator::collect_switch_packets(NodeId s, std::vector<PacketSlot>& out) const {
  const SwitchState& sw = switches_[s];
  // Everything buffered inside the halted switch is lost.
  for (const InputVc& ivc : sw.in) {
    for (const Flit& f : ivc.buffer) out.push_back(f.packet);
    if (ivc.state == InputVc::State::kActive) out.push_back(ivc.cur_packet);
  }
  for (const auto& wire : sw.wire) {
    for (const Arrival& a : wire) out.push_back(a.flit.packet);
  }
  // Streams crossing any incident link (either direction) are cut too.
  for (const AdjHalf& h : topo_->graph.neighbors(s)) collect_link_packets(h.link, out);
  // NIC streams of the halted switch's hosts have nowhere to land.
  for (std::uint32_t k = 0; k < config_.hosts_per_switch; ++k) {
    const NicState& nic = nics_[s * config_.hosts_per_switch + k];
    if (nic.busy) out.push_back(nic.streaming);
  }
}

void Simulator::purge_packets(std::vector<PacketSlot>& slots, std::uint64_t now,
                              bool allow_requeue, bool ttl, FaultRecord* record) {
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  if (slots.empty()) return;
  std::vector<std::uint8_t> dead(packets_.size(), 0);
  for (const PacketSlot s : slots) dead[s] = 1;

  // Abort NIC streams of dead packets (their sent flits are purged below; a
  // requeued packet restarts from flit 0).
  for (NicState& nic : nics_) {
    if (nic.busy && dead[nic.streaming]) nic.busy = false;
  }

  std::uint64_t flits_removed = 0;
  for (SwitchState& sw : switches_) {
    for (auto& wire : sw.wire) {
      flits_removed +=
          wire.erase_if([&](const Arrival& a) { return dead[a.flit.packet] != 0; });
    }
    for (InputVc& ivc : sw.in) {
      bool touched = false;
      if (ivc.state == InputVc::State::kActive && dead[ivc.cur_packet]) {
        // Release the allocation the dead stream held.
        sw.out[ivc.out_port * config_.vcs + ivc.out_vc].owned = false;
        ivc.state = InputVc::State::kIdle;
        ivc.cur_packet = kInvalidPacketSlot;
        touched = true;
      }
      const std::size_t removed =
          ivc.buffer.erase_if([&](const Flit& f) { return dead[f.packet] != 0; });
      if (removed != 0) {
        flits_removed += removed;
        touched = true;
      }
      if (!touched) continue;
      // Rebuild head_ready: one entry per unallocated head flit left in the
      // buffer, routable after a fresh router delay (the post-fault
      // re-route). The active stream's own head (if still buffered) already
      // consumed its entry at allocation and gets none.
      ivc.head_ready.clear();
      bool skipped_active_head = ivc.state != InputVc::State::kActive;
      for (const Flit& f : ivc.buffer) {
        if (!f.head) continue;
        if (!skipped_active_head && f.packet == ivc.cur_packet) {
          skipped_active_head = true;
          continue;
        }
        ivc.head_ready.push_back(now + router_delay_);
      }
    }
  }

  // Account every dead packet: bounded-backoff requeue at its source NIC, or
  // an explicit drop.
  for (const PacketSlot slot : slots) {
    Packet& pkt = packets_[slot];
    if (allow_requeue && pkt.retries < config_.max_retries) {
      ++pkt.retries;
      ++retried_total_;
      if (config_.epoch_cycles != 0) ++epoch_at(now).retried;
      pkt.hops = 0;
      pkt.route_state = policy_->initial_state();
      const std::uint32_t shift = pkt.retries - 1;
      std::uint64_t backoff = config_.retry_backoff_cap_cycles;
      if (shift < 32) {
        backoff = std::min(backoff, config_.retry_backoff_cycles << shift);
      }
      pkt.retry_at = now + backoff;
      nics_[pkt.src_host].retry_queue.push_back(slot);
      if (record != nullptr) ++record->packets_requeued;
    } else {
      ++dropped_total_;
      if (ttl) ++dropped_ttl_;
      if (pkt.measured) ++measured_dropped_;
      if (config_.epoch_cycles != 0) ++epoch_at(now).dropped;
      --in_flight_packets_;
      free_packet(slot);
      if (record != nullptr) ++record->packets_dropped;
    }
  }
  flits_dropped_ += flits_removed;
  if (record != nullptr) record->flits_dropped += flits_removed;
  last_progress_cycle_ = now;  // purging/requeuing is progress, not a wedge
}

void Simulator::recompute_credits() {
  // Exact recount from the flow-control invariant
  //   credits + pending returns + wire in-flight + downstream occupancy
  //     == buffer_flits
  // with the pending returns flushed (they are part of the free space the
  // recount observes directly). Fault events are the only callers, so the
  // cycle after a fault every credit counter is exact; in-flight streams can
  // only ever see their credit view grow.
  for (NodeId u = 0; u < num_switches_; ++u) {
    SwitchState& sw = switches_[u];
    for (std::uint32_t op = 0; op < sw.num_net_ports; ++op) {
      const auto [down_sw, dport] = downstream_[u][op];
      SwitchState& dn = switches_[down_sw];
      for (std::uint32_t vc = 0; vc < config_.vcs; ++vc) {
        sw.credits[op * config_.vcs + vc].clear();
        std::uint32_t used =
            static_cast<std::uint32_t>(dn.in[dport * config_.vcs + vc].buffer.size());
        for (const Arrival& a : dn.wire[dport]) {
          if (a.vc == vc) ++used;
        }
        DSN_ASSERT(used <= config_.buffer_flits, "occupancy exceeds buffer depth");
        sw.out[op * config_.vcs + vc].credits = config_.buffer_flits - used;
      }
    }
  }
  // NIC credit returns are applied immediately (never queued), so the NIC
  // recount only reflects purged injection-buffer flits.
  for (HostId h = 0; h < num_hosts_; ++h) {
    const NodeId s = h / config_.hosts_per_switch;
    const SwitchState& sw = switches_[s];
    const std::uint32_t ip = sw.num_net_ports + (h % config_.hosts_per_switch);
    for (std::uint32_t vc = 0; vc < config_.vcs; ++vc) {
      std::uint32_t used =
          static_cast<std::uint32_t>(sw.in[ip * config_.vcs + vc].buffer.size());
      for (const Arrival& a : sw.wire[ip]) {
        if (a.vc == vc) ++used;
      }
      DSN_ASSERT(used <= config_.buffer_flits, "occupancy exceeds buffer depth");
      nics_[h].credits[vc] = config_.buffer_flits - used;
    }
  }
}

void Simulator::reset_route_states() {
  std::vector<std::uint8_t> freed(packets_.size(), 0);
  for (const PacketSlot s : free_slots_) freed[s] = 1;
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    if (!freed[i]) packets_[i].route_state = policy_->initial_state();
  }
}

bool Simulator::apply_fault_events(std::uint64_t now) {
  bool any_changed = false;
  const std::span<const FaultEvent> events = fault_schedule_.events();
  while (fault_cursor_ < events.size() && events[fault_cursor_].cycle <= now) {
    const FaultEvent ev = events[fault_cursor_++];
    bool changed = false;
    std::vector<PacketSlot> damaged;
    switch (ev.kind) {
      case FaultKind::kLinkDown:
        if (link_alive_[ev.id]) {
          link_alive_[ev.id] = 0;
          collect_link_packets(ev.id, damaged);
          changed = true;
        }
        break;
      case FaultKind::kLinkUp:
        if (!link_alive_[ev.id]) {
          link_alive_[ev.id] = 1;
          changed = true;
        }
        break;
      case FaultKind::kSwitchDown:
        if (switch_alive_[ev.id]) {
          switch_alive_[ev.id] = 0;
          collect_switch_packets(ev.id, damaged);
          changed = true;
        }
        break;
      case FaultKind::kSwitchUp:
        if (!switch_alive_[ev.id]) {
          switch_alive_[ev.id] = 1;
          changed = true;
        }
        break;
    }
    if (!changed) continue;  // redundant event (already in that state)
    any_changed = true;
    DSN_OBS_ADD(SimMetrics::get().fault_events, 1);
    DSN_OBS_SPAN("sim.fault_recovery");

    FaultRecord record;
    record.event = ev;
    purge_packets(damaged, now, config_.retry_on_fault, /*ttl=*/false, &record);
    recompute_credits();
    if (config_.rebuild_routing_on_fault) {
      DSN_OBS_SPAN("sim.routing_rebuild");
      policy_->on_fault_update({topo_, link_alive_, switch_alive_});
      record.rebuilt_routing = true;
      ++routing_rebuilds_;
      if (policy_->reset_state_on_fault()) reset_route_states();
    }
    if (ev.kind == FaultKind::kLinkDown || ev.kind == FaultKind::kSwitchDown) {
      pending_reconnect_.push_back(fault_log_.size());
    }
    fault_log_.push_back(record);
    last_progress_cycle_ = now;
  }
  return any_changed;
}

/// Sampled counter tracks on the active trace: channel occupancy (owned
/// network output VCs) and packets in flight, every 64 cycles so even long
/// runs stay viewable. A no-op unless a trace writer is active.
void Simulator::emit_trace_sample(std::uint64_t now) {
#if DSN_OBS
  obs::TraceWriter* writer = obs::active_trace();
  if (writer == nullptr || now % 64 != 0) return;
  std::uint64_t occupied = 0;
  for (const SwitchState& sw : switches_) {
    const std::uint32_t net_vcs = sw.num_net_ports * config_.vcs;
    for (std::uint32_t idx = 0; idx < net_vcs; ++idx) {
      if (sw.out[idx].owned) ++occupied;
    }
  }
  writer->counter("sim.occupied_channels", static_cast<double>(occupied));
  writer->counter("sim.in_flight_packets",
                  static_cast<double>(in_flight_packets_));
#else
  (void)now;
#endif
}

SimResult Simulator::run() {
  // Start from the simulator's own fault state (all alive): a policy object
  // reused across runs must not carry a previous run's degraded tables.
  policy_->on_fault_update({topo_, link_alive_, switch_alive_});

  DSN_OBS_SPAN("sim.run");
  if (config_.legacy_core) return run_legacy();
  return run_active();
}

SimResult Simulator::run_legacy() {
  const std::uint64_t window_end = config_.warmup_cycles + config_.measure_cycles;
  const std::uint64_t hard_end = window_end + config_.drain_cycles;
  // Watchdog: if flits are in flight but nothing moved for this long, the
  // network is deadlocked (or a policy is broken) — abort and report.
  const std::uint64_t watchdog = 4 * (router_delay_ + link_delay_) +
                                 4ull * config_.packet_flits + 10'000;

  bool deadlock = false;
  std::uint64_t now = 0;
  last_progress_cycle_ = 0;
  for (; now < hard_end; ++now) {
    if (faults_armed_) apply_fault_events(now);
    generate_traffic(now);
    deliver_wire_flits(now);
    apply_credit_returns(now);
    allocate_vcs(now);
    switch_allocation(now);
    nic_stream(now);
    DSN_OBS_ONLY(emit_trace_sample(now);)
    DSN_OBS_GAUGE_SET(SimMetrics::get().in_flight,
                      static_cast<std::int64_t>(in_flight_packets_));

    if (now >= window_end &&
        measured_delivered_ + measured_dropped_ == measured_generated_) {
      ++now;
      break;  // every measured packet accounted (delivered or dropped) — done
    }
    if (in_flight_packets_ > 0 && now - last_progress_cycle_ > watchdog) {
      deadlock = true;
      break;
    }
  }

  return finalize_result(now, deadlock);
}

SimResult Simulator::finalize_result(std::uint64_t now, bool deadlock) {
  SimResult result;
  result.offered_gbps_per_host = config_.offered_gbps_per_host;
  result.deadlock = deadlock;
  result.cycles_run = now;
  result.packets_measured = measured_generated_;
  result.packets_delivered = measured_delivered_;
  result.drained =
      measured_delivered_ + measured_dropped_ == measured_generated_ && !result.deadlock;
  const double cyc_ns = config_.cycle_ns();
  if (!measured_latencies_.empty()) {
    std::vector<std::uint32_t> sorted = measured_latencies_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (const auto v : sorted) sum += v;
    result.avg_latency_ns = sum / static_cast<double>(sorted.size()) * cyc_ns;
    result.p50_latency_ns = sorted[sorted.size() / 2] * cyc_ns;
    result.p99_latency_ns = sorted[sorted.size() * 99 / 100] * cyc_ns;
    // hops counts switch-to-switch link traversals (ejection excluded).
    result.avg_hops = static_cast<double>(measured_hops_) /
                      static_cast<double>(measured_delivered_);
  }
  const double accepted_rate =
      static_cast<double>(ejected_flits_in_window_) /
      (static_cast<double>(config_.measure_cycles) * num_hosts_);
  result.accepted_gbps_per_host = config_.flits_per_cycle_to_gbps(accepted_rate);

  // Fault bookkeeping + the conservation check the fuzz harness asserts on:
  // every injected packet must be delivered, explicitly dropped, or still
  // allocated in a packet slot at the end.
  result.packets_generated_total = generated_total_;
  result.packets_delivered_total = delivered_total_;
  result.packets_dropped = dropped_total_;
  result.packets_dropped_ttl = dropped_ttl_;
  result.packets_retried = retried_total_;
  result.flits_dropped = flits_dropped_;
  const std::uint64_t live =
      static_cast<std::uint64_t>(packets_.size()) - free_slots_.size();
  result.packets_in_flight_at_end = live;
  result.conservation_ok =
      live == in_flight_packets_ &&
      generated_total_ == delivered_total_ + dropped_total_ + live;
  result.routing_rebuilds = routing_rebuilds_;
  result.fault_log = fault_log_;
  result.epochs = epochs_;
  return result;
}

SimResult run_simulation(const Topology& topo, SimRoutingPolicy& policy,
                         const TrafficPattern& traffic, const SimConfig& config) {
  Simulator sim(topo, policy, traffic, config);
  return sim.run();
}

}  // namespace dsn
