// Trace-driven injection: replay an explicit (cycle, src_host, dst_host)
// schedule instead of the open-loop Bernoulli generators — for reproducing
// application traces or constructing adversarial workloads in tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dsn/common/types.hpp"
#include "dsn/sim/fault.hpp"

namespace dsn {

struct TraceEntry {
  std::uint64_t cycle = 0;
  HostId src = 0;
  HostId dst = 0;
};

/// Parse a whitespace-separated trace ("cycle src dst" per line; '#' comment
/// lines allowed). Entries are sorted by cycle. Throws on malformed input.
std::vector<TraceEntry> parse_injection_trace(std::istream& is);
std::vector<TraceEntry> parse_injection_trace_text(const std::string& text);

/// Render a trace in the same format.
std::string format_injection_trace(const std::vector<TraceEntry>& trace);

/// Parse a fault schedule ("cycle kind id" per line with kind one of
/// link-down, link-up, switch-down, switch-up; '#' comment lines allowed).
/// Entries are sorted by cycle. Throws on malformed input.
FaultSchedule parse_fault_schedule(std::istream& is);
FaultSchedule parse_fault_schedule_text(const std::string& text);

/// Render a schedule in the same format.
std::string format_fault_schedule(const FaultSchedule& schedule);

}  // namespace dsn
